//! Cross-crate integration tests: the full stack (page store → WAL → locks
//! → trees) driven together, including all three Π-tree members sharing one
//! store, one log, and one recovery pass.

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_hb::{HbConfig, HbTree};
use pitree_tsb::{TsbConfig, TsbTree};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[test]
fn three_tree_kinds_share_one_store_and_log() {
    let cs = CrashableStore::create(2048, 300_000).unwrap();
    let blink = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(8, 8)).unwrap();
    let tsb = TsbTree::create(Arc::clone(&cs.store), 2, TsbConfig::small_nodes(8, 8)).unwrap();
    let hb = HbTree::create(Arc::clone(&cs.store), 3, HbConfig::small_nodes(8, 16)).unwrap();

    for i in 0..100u64 {
        let mut t = blink.begin();
        blink.insert(&mut t, &key(i), b"blink").unwrap();
        t.commit().unwrap();

        let mut t = tsb.begin();
        tsb.put(&mut t, &key(i % 10), format!("v{i}").as_bytes())
            .unwrap();
        t.commit().unwrap();

        let mut t = hb.begin();
        hb.insert(&mut t, &[i * 37 % 1000, i * 91 % 1000], b"hb")
            .unwrap();
        t.commit().unwrap();
    }
    blink.run_completions().unwrap();
    tsb.run_completions().unwrap();
    hb.run_completions().unwrap();

    assert!(blink.validate().unwrap().is_well_formed());
    assert!(tsb.validate().unwrap().is_well_formed());
    assert!(hb.validate().unwrap().is_well_formed());

    assert_eq!(
        blink.get_unlocked(&key(42)).unwrap(),
        Some(b"blink".to_vec())
    );
    assert_eq!(tsb.get_current(&key(2)).unwrap(), Some(b"v92".to_vec()));
    assert_eq!(
        hb.get(&[42 * 37 % 1000, 42 * 91 % 1000]).unwrap(),
        Some(b"hb".to_vec())
    );
}

#[test]
fn shared_store_crash_recovers_all_trees() {
    let blink_cfg = PiTreeConfig::small_nodes(8, 8);
    let tsb_cfg = TsbConfig::small_nodes(8, 8);
    let cs = CrashableStore::create(2048, 300_000).unwrap();
    {
        let blink = PiTree::create(Arc::clone(&cs.store), 1, blink_cfg).unwrap();
        let tsb = TsbTree::create(Arc::clone(&cs.store), 2, tsb_cfg).unwrap();
        for i in 0..80u64 {
            let mut t = blink.begin();
            blink.insert(&mut t, &key(i), b"b").unwrap();
            t.commit().unwrap();
            let mut t = tsb.begin();
            tsb.put(&mut t, &key(i % 8), b"t").unwrap();
            t.commit().unwrap();
        }
    }
    let cs2 = cs.crash().unwrap();
    // One recovery pass serves every tree (the log is shared and the
    // physiological records are tree-agnostic). The B-link handler suffices
    // because only B-link logical-undo records can be in flight here.
    let (blink2, _) = PiTree::recover(Arc::clone(&cs2.store), 1, blink_cfg).unwrap();
    let tsb2 = TsbTree::open(Arc::clone(&cs2.store), 2, tsb_cfg).unwrap();
    assert!(blink2.validate().unwrap().is_well_formed());
    assert!(tsb2.validate().unwrap().is_well_formed());
    assert_eq!(blink2.validate().unwrap().records, 80);
    for i in 0..8u64 {
        assert_eq!(tsb2.get_current(&key(i)).unwrap(), Some(b"t".to_vec()));
    }
}

#[test]
fn checkpointed_mixed_workload_recovers() {
    let cfg = PiTreeConfig::small_nodes(8, 8);
    let cs = CrashableStore::create(1024, 100_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    for i in 0..60u64 {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), &key(i)).unwrap();
        t.commit().unwrap();
    }
    cs.store.pool.flush_all().unwrap();
    cs.store.txns.checkpoint().unwrap();
    for i in 60..90u64 {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), &key(i)).unwrap();
        t.commit().unwrap();
    }
    for i in 0..30u64 {
        let mut t = tree.begin();
        tree.delete(&mut t, &key(i)).unwrap();
        t.commit().unwrap();
    }
    drop(tree);
    let cs2 = cs.crash().unwrap();
    let (tree2, stats) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
    assert!(stats.analysis_start.0 > 1);
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 60);
}

#[test]
fn concurrent_mixed_trees_under_threads() {
    let cs = CrashableStore::create(4096, 500_000).unwrap();
    let blink = Arc::new(
        PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(8, 8)).unwrap(),
    );
    let tsb =
        Arc::new(TsbTree::create(Arc::clone(&cs.store), 2, TsbConfig::small_nodes(8, 8)).unwrap());
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let blink = Arc::clone(&blink);
            s.spawn(move || {
                for i in 0..100 {
                    let mut t = blink.begin();
                    blink.insert(&mut t, &key(i * 4 + tid), b"b").unwrap();
                    t.commit().unwrap();
                }
            });
        }
        for tid in 0..2u64 {
            let tsb = Arc::clone(&tsb);
            s.spawn(move || {
                for i in 0..100 {
                    let mut t = tsb.begin();
                    tsb.put(&mut t, &key(i % 16 + tid * 100), b"t").unwrap();
                    t.commit().unwrap();
                }
            });
        }
    });
    blink.run_completions().unwrap();
    tsb.run_completions().unwrap();
    assert!(blink.validate().unwrap().is_well_formed());
    assert!(tsb.validate().unwrap().is_well_formed());
    assert_eq!(blink.validate().unwrap().records, 400);
}
