//! Integration tests of the harness utilities plus end-to-end protocol
//! comparisons: the Π-tree and both baselines produce identical results on
//! identical workloads.

use pitree::PiTreeConfig;
use pitree_baselines::{ConcurrentIndex, LockCouplingTree, SerialSmoTree};
use pitree_harness::{KeyDist, PiTreeIndex, Workload};
use std::sync::Arc;

fn run_workload(idx: &dyn ConcurrentIndex, dist: KeyDist, n: u64) -> Vec<Option<Vec<u8>>> {
    let mut w = Workload::new(dist, 1000, 99);
    for i in 0..n {
        let k = w.next_key();
        idx.insert(&k, format!("v{i}").as_bytes());
    }
    (0..1000u64).map(|i| idx.get(&i.to_be_bytes())).collect()
}

#[test]
fn all_protocols_agree_on_uniform_workload() {
    let pi = PiTreeIndex::new(1024, PiTreeConfig::small_nodes(8, 8));
    let lc = LockCouplingTree::new(1024, 8);
    let ss = SerialSmoTree::new(1024, 8);
    let a = run_workload(&pi, KeyDist::Uniform, 800);
    let b = run_workload(&lc, KeyDist::Uniform, 800);
    let c = run_workload(&ss, KeyDist::Uniform, 800);
    assert_eq!(a, b, "pi-tree vs lock-coupling");
    assert_eq!(a, c, "pi-tree vs serial-smo");
    assert!(pi.tree().validate().unwrap().is_well_formed());
}

#[test]
fn all_protocols_agree_on_sequential_workload() {
    let pi = PiTreeIndex::new(1024, PiTreeConfig::small_nodes(8, 8));
    let lc = LockCouplingTree::new(1024, 8);
    let a = run_workload(&pi, KeyDist::Sequential, 600);
    let b = run_workload(&lc, KeyDist::Sequential, 600);
    assert_eq!(a, b);
}

#[test]
fn protocols_agree_under_concurrency() {
    let pi = Arc::new(PiTreeIndex::new(2048, PiTreeConfig::small_nodes(8, 8)));
    let lc = Arc::new(LockCouplingTree::new(2048, 8));
    for idx_run in 0..2 {
        let run = |idx: Arc<dyn ConcurrentIndex>| {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let idx = Arc::clone(&idx);
                    s.spawn(move || {
                        for i in 0..150u64 {
                            let k = (i * 4 + t).to_be_bytes();
                            idx.insert(&k, b"v");
                        }
                    });
                }
            });
        };
        if idx_run == 0 {
            run(Arc::clone(&pi) as Arc<dyn ConcurrentIndex>);
        } else {
            run(Arc::clone(&lc) as Arc<dyn ConcurrentIndex>);
        }
    }
    for i in 0..600u64 {
        let k = i.to_be_bytes();
        assert_eq!(pi.get(&k), lc.get(&k), "key {i}");
    }
    assert!(pi.tree().validate().unwrap().is_well_formed());
}

#[test]
fn pitree_adapter_handles_deletes() {
    let pi = PiTreeIndex::new(512, PiTreeConfig::small_nodes(8, 8));
    for i in 0..100u64 {
        pi.insert(&i.to_be_bytes(), b"x");
    }
    for i in 0..50u64 {
        assert!(pi.delete(&i.to_be_bytes()), "key {i}");
    }
    for i in 0..50u64 {
        assert_eq!(pi.get(&i.to_be_bytes()), None);
    }
    for i in 50..100u64 {
        assert_eq!(pi.get(&i.to_be_bytes()), Some(b"x".to_vec()));
    }
    assert!(pi.tree().validate().unwrap().is_well_formed());
}
