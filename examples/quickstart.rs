//! Quickstart: create a store, open a Π-tree, run transactions, watch the
//! structure-change machinery work.
//!
//! Run with: `cargo run --example quickstart`

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use std::sync::Arc;

fn main() {
    // A store bundles the buffer pool, write-ahead log, lock manager, and
    // space map. `CrashableStore` keeps the durable/volatile split explicit
    // so you can simulate crashes (see the crash_recovery example).
    let store = CrashableStore::create(1024, 100_000).expect("create store");

    // Small nodes so this demo actually splits; production code would leave
    // the defaults (page-size-limited nodes).
    let cfg = PiTreeConfig::small_nodes(16, 16);
    let tree = PiTree::create(Arc::clone(&store.store), 1, cfg).expect("create tree");

    // Transactions give you atomic multi-key updates with record locking.
    let mut txn = tree.begin();
    for i in 0..500u64 {
        let key = i.to_be_bytes();
        let value = format!("account-balance-{}", i * 100);
        tree.insert(&mut txn, &key, value.as_bytes())
            .expect("insert");
    }
    txn.commit().expect("commit");

    // Point reads (latch-only; use `get(&txn, ..)` for locked reads).
    let v = tree.get_unlocked(&42u64.to_be_bytes()).expect("get");
    println!("key 42 -> {:?}", String::from_utf8(v.unwrap()).unwrap());

    // Range scans walk the leaf side-pointer chain.
    let range = tree
        .scan(&100u64.to_be_bytes(), &110u64.to_be_bytes())
        .expect("scan");
    println!("keys in [100, 110): {}", range.len());

    // Aborting rolls records back (structure changes, having run as
    // independent atomic actions, persist — exactly the paper's design).
    let mut txn = tree.begin();
    tree.insert(&mut txn, b"doomed", b"never-visible")
        .expect("insert");
    txn.abort(Some(&tree.undo_handler())).expect("abort");
    assert_eq!(tree.get_unlocked(b"doomed").expect("get"), None);

    // The tree validates its own §2.1.3 well-formedness invariants.
    let report = tree.validate().expect("validate");
    assert!(report.is_well_formed(), "{:?}", report.violations);
    println!(
        "tree: {} records, nodes per level {:?}, height {}",
        report.records,
        report.nodes_per_level,
        tree.height().expect("height"),
    );

    // Structure-change statistics from the run.
    println!("\nstructure-change activity:");
    for (name, value) in tree.stats().snapshot() {
        if value > 0 {
            println!("  {name:24} {value}");
        }
    }
}
