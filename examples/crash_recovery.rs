//! Crash recovery walkthrough: kill the "machine" mid-workload — including
//! mid-structure-change — and watch recovery restore a well-formed tree with
//! no special measures, then lazy completion finish what the crash
//! interrupted (§1 point 4, §5.1 of the paper).
//!
//! Run with: `cargo run --example crash_recovery`

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use std::sync::Arc;

fn main() {
    let cfg = PiTreeConfig::small_nodes(8, 8);
    let cs = CrashableStore::create(512, 100_000).expect("store");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).expect("tree");

    // Committed work: forced to the durable log at each commit.
    for i in 0..200u64 {
        let mut txn = tree.begin();
        tree.insert(&mut txn, &i.to_be_bytes(), b"committed")
            .expect("insert");
        txn.commit().expect("commit");
    }

    // In-flight work: a transaction whose updates are in the log tail but
    // whose commit never happens.
    let mut doomed = tree.begin();
    for i in 1000..1010u64 {
        tree.insert(&mut doomed, &i.to_be_bytes(), b"uncommitted")
            .expect("insert");
    }
    cs.store.log.force_all().expect("force"); // updates durable, commit not
    std::mem::forget(doomed);

    println!("before crash: {} records", tree.validate().unwrap().records);
    drop(tree);

    // CRASH. Volatile state (buffer pool, unforced log tail, completion
    // queue) is gone; only the disk image and the forced log prefix remain.
    let cs2 = cs.crash().expect("crash");

    // Recovery: plain analysis / redo / undo. No tree-specific code runs
    // beyond the logical-undo handler for in-flight record compensation.
    let (tree2, stats) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).expect("recover");
    println!(
        "recovery: scanned {} records, redone {}, rolled back {} in-flight action(s)",
        stats.scanned,
        stats.redone,
        stats.losers.len()
    );

    let report = tree2.validate().expect("validate");
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(
        report.records, 200,
        "committed survives, uncommitted is gone"
    );
    println!(
        "after recovery: {} records, {} unposted intermediate state(s)",
        report.records, report.unposted_nodes
    );

    // Normal processing detects any intermediate states via side pointers
    // and completes them lazily.
    for i in 0..200u64 {
        assert_eq!(
            tree2.get_unlocked(&i.to_be_bytes()).expect("get"),
            Some(b"committed".to_vec())
        );
    }
    tree2.run_completions().expect("completions");
    tree2.run_completions().expect("completions");
    let report2 = tree2.validate().expect("validate");
    assert!(report2.is_well_formed());
    println!(
        "after lazy completion: {} unposted state(s) — the tree healed itself",
        report2.unposted_nodes
    );
}
