//! Versioned key-value store on the TSB-tree: every write is timestamped,
//! and the full history of every key stays queryable — the paper's §2.2.2 /
//! Figure 1 structure as an application.
//!
//! Scenario: an account ledger where auditors ask "what was the balance as
//! of timestamp T?".
//!
//! Run with: `cargo run --example versioned_store`

use pitree::store::CrashableStore;
use pitree_tsb::{TsbConfig, TsbTree};
use std::sync::Arc;

fn main() {
    let store = CrashableStore::create(1024, 100_000).expect("store");
    let tree =
        TsbTree::create(Arc::clone(&store.store), 1, TsbConfig::small_nodes(16, 16)).expect("tree");

    // Day 1: open accounts.
    let mut t_open = 0;
    for acct in 0..50u64 {
        let mut txn = tree.begin();
        t_open = tree
            .put(&mut txn, &acct.to_be_bytes(), b"balance=100")
            .expect("put");
        txn.commit().expect("commit");
    }

    // Days 2..20: lots of activity on a few hot accounts — this churn forces
    // *time splits*, migrating old versions to history nodes.
    let mut mid_stamp = 0;
    for day in 2..20u64 {
        for acct in [7u64, 13, 21] {
            let mut txn = tree.begin();
            let balance = format!("balance={}", 100 + day * 10);
            let ts = tree
                .put(&mut txn, &acct.to_be_bytes(), balance.as_bytes())
                .expect("put");
            txn.commit().expect("commit");
            if day == 10 && acct == 7 {
                mid_stamp = ts;
            }
        }
    }
    // Account 13 is closed (a tombstone version).
    let mut txn = tree.begin();
    tree.delete(&mut txn, &13u64.to_be_bytes()).expect("delete");
    txn.commit().expect("commit");

    // Auditor queries.
    let now = |k: u64| tree.get_current(&k.to_be_bytes()).expect("get");
    let asof = |k: u64, t| tree.get_as_of(&k.to_be_bytes(), t).expect("as-of");

    println!(
        "account 7 now:        {:?}",
        now(7).map(|v| String::from_utf8(v).unwrap())
    );
    println!(
        "account 7 at day 10:  {:?}",
        asof(7, mid_stamp).map(|v| String::from_utf8(v).unwrap())
    );
    println!(
        "account 7 at opening: {:?}",
        asof(7, t_open).map(|v| String::from_utf8(v).unwrap())
    );
    println!("account 13 now (closed): {:?}", now(13));
    assert!(now(13).is_none());
    assert!(asof(13, mid_stamp).is_some(), "history survives the close");

    // Full version history of a hot account.
    let history = tree.history(&7u64.to_be_bytes()).expect("history");
    println!("account 7 has {} versions", history.len());
    assert!(history.len() >= 19);

    // Snapshot scan: all live accounts as of the opening day.
    let snapshot = tree
        .scan_as_of(&0u64.to_be_bytes(), &100u64.to_be_bytes(), t_open)
        .expect("scan");
    println!("accounts alive at opening: {}", snapshot.len());

    let report = tree.validate().expect("validate");
    assert!(report.is_well_formed(), "{:?}", report.violations);
    println!(
        "structure: {} current nodes, {} history nodes, {} versions",
        report.current_nodes, report.history_nodes, report.versions
    );
}
