//! Spatial indexing on the hB-tree: two-attribute point data with window
//! queries — the paper's §2.2.3 / Figure 2 structure as an application.
//!
//! Scenario: a delivery service indexes drop-off locations by (x, y) city
//! coordinates and asks "what's in this district?".
//!
//! Run with: `cargo run --example spatial_index`

use pitree::store::CrashableStore;
use pitree_hb::{HbConfig, HbTree, Point, Rect};
use pitree_sim::SimRng;
use std::sync::Arc;

fn main() {
    let store = CrashableStore::create(2048, 200_000).expect("store");
    let tree =
        HbTree::create(Arc::clone(&store.store), 1, HbConfig::small_nodes(16, 24)).expect("tree");

    // Drop-offs cluster around three depots plus background noise.
    let mut rng = SimRng::new(2026);
    let depots: [Point; 3] = [[2_000, 2_000], [8_000, 3_000], [5_000, 8_000]];
    let mut n = 0u32;
    for _ in 0..900 {
        let p: Point = if rng.chance(0.7) {
            let d = *rng.pick(&depots);
            [
                d[0].saturating_add(rng.below(800)),
                d[1].saturating_add(rng.below(800)),
            ]
        } else {
            [rng.below(10_000), rng.below(10_000)]
        };
        let mut txn = tree.begin();
        if tree
            .insert(&mut txn, &p, format!("parcel-{n}").as_bytes())
            .expect("insert")
        {
            n += 1;
        }
        txn.commit().expect("commit");
    }
    println!("indexed {n} distinct drop-off points");

    // Window query: everything near depot 1.
    let district = Rect {
        lo: [1_500, 1_500],
        hi: [3_500, 3_500],
    };
    let hits = tree.window_query(&district).expect("window");
    println!("parcels in depot-1 district {district:?}: {}", hits.len());
    assert!(!hits.is_empty());

    // Point lookups route through kd fragments and sibling pointers.
    let (p0, v0) = &hits[0];
    assert_eq!(tree.get(p0).expect("get").as_deref(), Some(v0.as_slice()));

    // Structure report: holey-brick nodes, clipping, intermediate states.
    let report = tree.validate().expect("validate");
    assert!(report.is_well_formed(), "{:?}", report.violations);
    println!(
        "structure: nodes per level {:?}, {} multi-parent nodes (clipped terms), \
         {} records",
        report.nodes_per_level, report.multi_parent_nodes, report.records
    );
    println!("\nstructure-change activity:");
    for (name, value) in tree.stats().snapshot() {
        if value > 0 {
            println!("  {name:24} {value}");
        }
    }
}
