#!/usr/bin/env bash
# Run the concurrency-heavy test suites under ThreadSanitizer.
#
# The pitree-lint flow rules prove the latch/log *disciplines* statically;
# TSan checks the complementary claim — that the primitives those
# disciplines rest on (the latch table, the sharded buffer pool, the WAL
# group-commit path, the lock manager) contain no data races in the
# interleavings the tests actually drive.
#
# `-Zsanitizer=thread` needs a nightly toolchain with the rust-src
# component (the standard library must be rebuilt instrumented). On a
# machine without one this script *skips* with exit 0 rather than failing:
# it is an extra assurance layer, not a gate the pinned stable toolchain
# could ever pass.
#
#   ./scripts/tsan.sh                # auto-detect nightly, run or skip
#   TSAN_TOOLCHAIN=nightly-2025-06-01 ./scripts/tsan.sh   # pin a nightly
set -euo pipefail
cd "$(dirname "$0")/.."

toolchain="${TSAN_TOOLCHAIN:-nightly}"

if ! command -v rustup >/dev/null 2>&1; then
  echo "tsan.sh: rustup not installed; skipping ThreadSanitizer run" >&2
  exit 0
fi
if ! rustup run "$toolchain" cargo --version >/dev/null 2>&1; then
  echo "tsan.sh: toolchain '$toolchain' unavailable; skipping ThreadSanitizer run" >&2
  exit 0
fi
if ! rustup component list --toolchain "$toolchain" 2>/dev/null \
    | grep -q 'rust-src (installed)'; then
  echo "tsan.sh: rust-src not installed for '$toolchain'; skipping" >&2
  echo "         (rustup component add rust-src --toolchain $toolchain)" >&2
  exit 0
fi

host="$(rustup run "$toolchain" rustc -vV | sed -n 's/^host: //p')"

echo "==> ThreadSanitizer run on $toolchain ($host)"

# Suites whose whole point is cross-thread interleaving: the latch table
# and sharded buffer pool (pagestore), group commit and the durability
# broadcast (wal), and two-phase locking (txnlock). Library unit tests of
# the same crates ride along via --lib.
run_tsan() {
  local pkg="$1"; shift
  echo "==> tsan: $pkg $*"
  RUSTFLAGS="-Zsanitizer=thread" \
  RUSTDOCFLAGS="-Zsanitizer=thread" \
  TSAN_OPTIONS="halt_on_error=1" \
    rustup run "$toolchain" cargo test --offline \
      -Zbuild-std --target "$host" -p "$pkg" "$@"
}

run_tsan pitree-pagestore --lib
run_tsan pitree-pagestore --test latch_sim
run_tsan pitree-pagestore --test shard_hammer
run_tsan pitree-wal --lib
run_tsan pitree-txnlock --lib

echo "tsan.sh: all ThreadSanitizer suites passed"
