#!/usr/bin/env bash
# Full offline verification gate for the workspace. Everything here runs
# with --offline: the workspace has no external dependencies by design
# (DESIGN.md §5), so a registry is never consulted.
#
#   ./scripts/verify.sh          # fmt + clippy + pitree-lint + build + tests
#                                # + sim sweep + pitree-check oracles
#   SKIP_LINT=1 ./scripts/verify.sh   # skip fmt/clippy (e.g. toolchain lacks them)
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

if [[ -z "${SKIP_LINT:-}" ]]; then
  if cargo fmt --version >/dev/null 2>&1; then
    step "cargo fmt --check"
    cargo fmt --all -- --check
  else
    echo "warning: rustfmt unavailable; skipping format check" >&2
  fi
  if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
  else
    echo "warning: clippy unavailable; skipping lint" >&2
  fi
fi

step "pitree-lint (protocol discipline gate; prints the per-rule summary)"
mkdir -p target
cargo run --offline -q -p analyze -- . --dot target/latch_order.dot

step "latch-order graph is acyclic (paper 4.1; artifact: target/latch_order.dot)"
grep -q '^// acyclic: true$' target/latch_order.dot || {
  echo "latch-acquisition order graph has a cycle; see target/latch_order.dot" >&2
  exit 1
}
# The graph must also be non-trivial: if the parser silently stopped seeing
# acquisitions the cycle check would pass vacuously.
edges="$(grep -c ' -> ' target/latch_order.dot || true)"
if [[ "$edges" -lt 4 ]]; then
  echo "latch-order graph has only $edges edges; the flow analysis is blind" >&2
  exit 1
fi

step "cargo build --release (-D warnings)"
RUSTFLAGS="-D warnings" cargo build --release --offline

step "pitree-lint wall-clock budget (whole-workspace flow analysis stays cheap)"
lint_start=$SECONDS
./target/release/pitree-lint . >/dev/null
lint_elapsed=$(( SECONDS - lint_start ))
if [[ "$lint_elapsed" -ge 10 ]]; then
  echo "pitree-lint took ${lint_elapsed}s (budget 10s); the fixpoints are diverging" >&2
  exit 1
fi

step "cargo test (workspace)"
cargo test --offline -q

step "alloc gate (steady-state point read allocates exactly once)"
cargo test --offline --release -q -p pitree-harness --test alloc_gate

step "sim acceptance sweep (64 seeds, crash-recover-verify + shake)"
cargo test --offline -q -p pitree-sim --test sim_sweep -- --nocapture

step "pitree-check fixtures (each oracle must reject its seeded violation)"
cargo run --offline --release -q -p pitree-check -- --fixtures

step "pitree-check sweep (differential + linearizability + durability, 8 seeds)"
cargo run --offline --release -q -p pitree-check -- --sweep 8

step "bench target compiles (bench-ext feature)"
cargo build --offline -p pitree-bench --benches --features bench-ext

step "rustdoc gate (zero warnings, broken intra-doc links are errors)"
RUSTDOCFLAGS="-D rustdoc::broken_intra_doc_links -D warnings" \
  cargo doc --offline --no-deps --workspace

step "obstop smoke (observability report + deterministic event stream)"
out="$(cargo run --offline --release -q --bin obstop)"
for metric in latch.acquire_s buf.misses wal.appends lock.acquires \
              tree.splits recovery.redo_ns; do
  grep -q "$metric" <<<"$out" || { echo "obstop report missing $metric" >&2; exit 1; }
done

step "commit-schedule determinism (two fixed seeds, run twice each)"
for i in 1 2; do
  cargo test --offline -q -p pitree-wal --test commit_schedule -- \
    seeded_schedule >/dev/null
done

step "throughput smoke (group-commit bench emits well-formed JSON; groups must form)"
tp_out="$(mktemp)"
mttr_out="$(mktemp)"
scen_dir="$(mktemp -d)"
trap 'rm -f "$tp_out" "$mttr_out"; rm -rf "$scen_dir"' EXIT
cargo run --offline --release -q --bin throughput -- --smoke --out "$tp_out" >/dev/null
for key in '"bench": "throughput"' '"mode": "smoke"' '"threads"' '"ops_per_sec"' \
           '"wal_group_size_p50"' '"ack_p95_ns"' '"txn_elr_released"' \
           '"wal_linger_p50_ns"' '"wal_force_waiters"' '"buf_shard_conflicts"'; do
  grep -q "$key" "$tp_out" || { echo "throughput smoke output missing $key" >&2; exit 1; }
done
# Group commit must actually group: at >= 4 threads the median commits per
# forced batch must be at least 2 (the regression this gate exists for
# measured p50 = 1 at every thread count).
while read -r threads p50; do
  if [[ "$threads" -ge 4 && "$p50" -lt 2 ]]; then
    echo "wal_group_size_p50 = $p50 at $threads threads: group commit is not grouping" >&2
    exit 1
  fi
done < <(sed -n 's/.*"threads": \([0-9]*\),.*"wal_group_size_p50": \([0-9]*\),.*/\1 \2/p' "$tp_out")

step "mttr smoke (instant restart: first op must beat stop-the-world replay)"
cargo run --offline --release -q --bin mttr -- --smoke --out "$mttr_out" >/dev/null
for key in '"bench": "mttr"' '"mode": "smoke"' '"first_op_ns"' '"full_replay_ns"' \
           '"ttfo_speedup"' '"full_recovery_ns"' '"redo_pages"' \
           '"on_demand_redos"' '"post_checkpoint_bytes"'; do
  grep -q "$key" "$mttr_out" || { echo "mttr smoke output missing $key" >&2; exit 1; }
done
# Instant restart must answer its first op well before a full replay
# would: gate at 2x so the check is robust to warm-cache CI machines
# (the committed full-mode BENCH_mttr.json shows the cold-cache margin).
while read -r full first; do
  if (( first * 2 > full )); then
    echo "first_op_ns=$first vs full_replay_ns=$full: instant restart is not instant" >&2
    exit 1
  fi
done < <(sed -n 's/.*"full_replay_ns": \([0-9]*\),.*"first_op_ns": \([0-9]*\),.*/\1 \2/p' "$mttr_out")

step "scenario smoke (matrix runs end to end; every oracle twin must pass)"
scen_start=$SECONDS
cargo run --offline --release -q --bin scenarios -- --smoke --out-dir "$scen_dir" >/dev/null
scen_elapsed=$(( SECONDS - scen_start ))
if [[ "$scen_elapsed" -ge 120 ]]; then
  echo "scenarios --smoke took ${scen_elapsed}s (budget 120s)" >&2
  exit 1
fi
scen_count=$(ls "$scen_dir"/BENCH_scenario_*.json 2>/dev/null | wc -l)
if [[ "$scen_count" -lt 6 ]]; then
  echo "scenarios --smoke emitted only $scen_count BENCH files (need >= 6)" >&2
  exit 1
fi
for f in "$scen_dir"/BENCH_scenario_*.json; do
  for key in '"bench": "scenario"' '"version"' '"pool_pct"' '"ops_per_sec"' \
             '"evictions"' '"writebacks"' '"oracle_twin"'; do
    grep -q "$key" "$f" || { echo "$(basename "$f") missing $key" >&2; exit 1; }
  done
  grep -q '"oracle_twin": {"status": "pass"' "$f" || {
    echo "$(basename "$f"): oracle twin did not pass" >&2
    sed -n 's/.*"oracle_twin".*/&/p' "$f" >&2
    exit 1
  }
done
# Zero-copy read-path sanity: the pi-tree's fully-cached smoke p50 for the
# read-only mix sits at ~2 us; a p50 above 8191 ns means the hot path grew
# allocations or per-probe decodes back (two full histogram buckets of
# headroom for slow CI machines).
ycsbc_p50="$(sed -n 's/.*"name": "pi-tree",[^}]*"p50_ns": \([0-9]*\).*/\1/p' \
  "$scen_dir"/BENCH_scenario_ycsb_c.json | head -1)"
if [[ -z "$ycsbc_p50" || "$ycsbc_p50" -gt 8191 ]]; then
  echo "ycsb-c smoke p50_ns=${ycsbc_p50:-missing} (bound 8191): read hot path regressed" >&2
  exit 1
fi

step "ThreadSanitizer suites (skips cleanly without an instrumented nightly)"
./scripts/tsan.sh

printf '\nverify.sh: all checks passed\n'
