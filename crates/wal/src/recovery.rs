//! Crash recovery: analysis, redo ("repeating history"), undo.
//!
//! The paper's point 4 (§1): "When a system crash occurs during the sequence
//! of atomic actions that constitutes a complete Π-tree structure change,
//! crash recovery takes no special measures." This module is those
//! no-special-measures: it is a plain ARIES-style recovery driver that knows
//! nothing about trees. Atomic actions whose `Commit` record is durable are
//! redone; the rest are rolled back. Because every individual action leaves
//! the tree well-formed, the recovered tree is well-formed — possibly in an
//! *intermediate* state (split done, index term not posted), which normal
//! processing later detects and completes (§5.1).
//!
//! Recovery reads only the *durable* log: the group-commit tail
//! (`crate::log`) buffers unforced records in memory, so after a crash they
//! simply do not exist. A torn frame at the durable tail ends the scan at the
//! last whole record (committed-prefix semantics), and a corrupt frame in the
//! middle of the log surfaces as [`StoreError::Corrupt`] — recovery returns
//! typed errors and never panics (`pitree-lint`'s `panic-free-recovery` rule
//! enforces this mechanically).
//!
//! Two entry points share the passes extracted here:
//!
//! * [`recover`] — classic stop-the-world ARIES: analysis, full serial redo,
//!   undo. Simple and the baseline the MTTR bench measures against.
//! * `crate::instant` — instant restart: after analysis and undo the
//!   store opens for traffic, and redo happens per page (on first pin, or in
//!   the background partitioned by buffer-pool shard). See `RECOVERY.md`.
//!
//! [`take_checkpoint`] writes the fuzzy checkpoint (dirty-page table +
//! active-action table) that bounds both analysis and the redo horizon.

use crate::log::LogManager;
use crate::record::{ActionId, ActionIdentity, LogRecord, RecordKind, UndoInfo};
use pitree_obs::{EventKind, Stopwatch};
use pitree_pagestore::buffer::BufferPool;
use pitree_pagestore::page::PageType;
use pitree_pagestore::{Lsn, StoreError, StoreResult};
use std::collections::HashMap;

/// Callback through which recovery (and normal rollback) performs
/// non-page-oriented UNDO: the tree registers a handler that compensates a
/// logged logical operation through its own (idempotent) APIs.
pub trait LogicalUndoHandler: Sync {
    /// Undo the logical operation `(tag, payload)`.
    fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()>;
}

/// What recovery did, for tests and the recovery experiments (E3).
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Log records scanned during analysis.
    pub scanned: usize,
    /// Redo operations actually applied (page LSN < record LSN).
    pub redone: usize,
    /// Redo operations skipped because the page was already current.
    pub redo_skipped: usize,
    /// Actions found incomplete and rolled back, with their identities.
    pub losers: Vec<(ActionId, ActionIdentity)>,
    /// CLRs written during the undo pass.
    pub clrs_written: usize,
    /// Where analysis started (master checkpoint or log start).
    pub analysis_start: Lsn,
}

/// Look up an undo chain's most recent LSN. The undo pass only walks
/// actions seeded into `last_lsns`, so a miss means the log chain is
/// inconsistent — report it rather than panic mid-recovery.
fn last_lsn(last_lsns: &HashMap<ActionId, Lsn>, action: ActionId) -> StoreResult<Lsn> {
    last_lsns.get(&action).copied().ok_or_else(|| {
        StoreError::Corrupt(format!(
            "undo pass reached action {} with no known last LSN",
            action.0
        ))
    })
}

/// What the analysis pass learned, shared by stop-the-world [`recover`] and
/// instant restart (`crate::instant`): the loser table, the highest action
/// id seen, where the scan started, and every record the redo pass must
/// consider (already bounded below by the checkpoint's dirty-page table).
pub(crate) struct Analysis {
    /// Actions with no durable `Commit`/`End`: identity + last known LSN.
    pub active: HashMap<ActionId, (ActionIdentity, Lsn)>,
    /// Highest action id seen (recovery reserves past it).
    pub max_action: u64,
    /// Records from the redo horizon (min dirty-page recovery LSN) onward.
    pub redo_records: Vec<LogRecord>,
}

/// Analysis pass: seed from the master checkpoint when present (falling back
/// to a full scan if the master points at a torn or missing record — the
/// master is only advanced *after* its checkpoint is durable, so a readable
/// master always names a whole checkpoint), then scan forward building the
/// active-action table and the redo record list.
pub(crate) fn analyze(log: &LogManager, stats: &mut RecoveryStats) -> StoreResult<Analysis> {
    let master = log.store().master();
    let mut active: HashMap<ActionId, (ActionIdentity, Lsn)> = HashMap::new();
    let mut redo_start = Lsn(1);
    let mut scan_from = Lsn(1);
    if master != Lsn::ZERO {
        if let Ok(rec) = log.read(master) {
            if let RecordKind::Checkpoint {
                active: ckpt_active,
                dirty,
            } = rec.kind
            {
                for (a, id, last) in ckpt_active {
                    active.insert(a, (id, last));
                }
                redo_start = dirty.iter().map(|&(_, l)| l).min().unwrap_or(master);
                scan_from = master;
            }
        }
    }

    let records = log.scan(Some(scan_from))?;
    let mut max_action = 0u64;
    for rec in &records {
        stats.scanned += 1;
        max_action = max_action.max(rec.action.0);
        match &rec.kind {
            RecordKind::Begin { identity } => {
                active.insert(rec.action, (*identity, rec.lsn));
            }
            RecordKind::Commit | RecordKind::End => {
                active.remove(&rec.action);
            }
            RecordKind::Checkpoint { .. } => {}
            _ => {
                if let Some(entry) = active.get_mut(&rec.action) {
                    entry.1 = rec.lsn;
                }
            }
        }
    }

    // Redo must start at the earliest point that might concern a dirty page.
    // (When seeded from a checkpoint, older records are covered by the
    // dirty-page table; otherwise the scan already began at the log start.)
    let redo_records = if redo_start < scan_from {
        log.scan(Some(redo_start))?
    } else {
        records
    };
    stats.analysis_start = scan_from;
    Ok(Analysis {
        active,
        max_action,
        redo_records,
    })
}

/// Run full crash recovery over `pool` + `log`.
///
/// `handler` is required if the log can contain logical-undo records (i.e.
/// the tree was configured with non-page-oriented UNDO).
///
/// This is the stop-the-world path: the store is unavailable until every
/// page is redone. `crate::instant::start_instant` opens after analysis +
/// undo and redoes pages on demand; both paths produce byte-identical pages
/// (gated by the determinism test in `pitree-harness`).
pub fn recover(
    pool: &BufferPool,
    log: &LogManager,
    handler: Option<&dyn LogicalUndoHandler>,
) -> StoreResult<RecoveryStats> {
    let mut stats = RecoveryStats::default();
    let rec = log.recorder().clone();
    let pass_timer = Stopwatch::start();

    let analysis = analyze(log, &mut stats)?;

    rec.hist("recovery.analysis_ns")
        .record(pass_timer.elapsed_ns());
    let pass_timer = Stopwatch::start();

    // ---- Redo: repeat history, serially ------------------------------------
    for rec in &analysis.redo_records {
        let (pid, op) = match &rec.kind {
            RecordKind::Update { pid, redo, .. } => (*pid, redo),
            RecordKind::Clr { pid, redo, .. } => (*pid, redo),
            _ => continue,
        };
        let page = pool.fetch_or_create(pid, PageType::Free)?;
        let mut g = page.x();
        if g.lsn() < rec.lsn {
            op.apply(&mut g)?;
            g.set_lsn(rec.lsn);
            // pitree-lint: allow(log-before-dirty) redo applies a record that is already durable in the log
            page.mark_dirty_at(rec.lsn);
            stats.redone += 1;
        } else {
            stats.redo_skipped += 1;
        }
    }

    rec.hist("recovery.redo_ns").record(pass_timer.elapsed_ns());
    let pass_timer = Stopwatch::start();

    undo_pass(pool, log, handler, &analysis.active, &mut stats)?;

    log.reserve_action_ids(analysis.max_action);
    log.force_all()?;
    rec.hist("recovery.undo_ns").record(pass_timer.elapsed_ns());
    Ok(stats)
}

/// Undo pass: roll back losers. Multi-chain undo in globally descending LSN
/// order, writing CLRs so a crash during recovery's own undo is safe.
///
/// Under instant restart this runs *while the on-demand redo hook is
/// installed*: each `pool.fetch` below replays the touched page's pending
/// redo records before the undo reads it, so undo always compensates against
/// fully-redone state.
pub(crate) fn undo_pass(
    pool: &BufferPool,
    log: &LogManager,
    handler: Option<&dyn LogicalUndoHandler>,
    active: &HashMap<ActionId, (ActionIdentity, Lsn)>,
    stats: &mut RecoveryStats,
) -> StoreResult<()> {
    let mut cursors: HashMap<ActionId, Lsn> = HashMap::new();
    let mut last_lsns: HashMap<ActionId, Lsn> = HashMap::new();
    for (a, (id, last)) in active {
        stats.losers.push((*a, *id));
        cursors.insert(*a, *last);
        last_lsns.insert(*a, *last);
    }

    while let Some((&action, &cursor)) = cursors.iter().max_by_key(|&(_, &l)| l) {
        if cursor == Lsn::ZERO {
            cursors.remove(&action);
            continue;
        }
        let rec = log.read(cursor)?;
        match rec.kind {
            RecordKind::Update { pid, undo, .. } => {
                let last = last_lsn(&last_lsns, action)?;
                match undo {
                    UndoInfo::Physiological(inv) => {
                        let page = pool.fetch(pid)?;
                        let mut g = page.x();
                        let clr = log.append(
                            action,
                            last,
                            RecordKind::Clr {
                                pid,
                                redo: inv.clone(),
                                undo_next: rec.prev,
                            },
                        );
                        inv.apply(&mut g)?;
                        g.set_lsn(clr);
                        page.mark_dirty_at(clr);
                        last_lsns.insert(action, clr);
                        stats.clrs_written += 1;
                    }
                    UndoInfo::Logical { tag, payload } => {
                        let h = handler.ok_or_else(|| {
                            StoreError::Corrupt(
                                "logical undo record during recovery but no handler registered"
                                    .to_string(),
                            )
                        })?;
                        h.undo(tag, &payload)?;
                        let clr = log.append(
                            action,
                            last,
                            RecordKind::LogicalClr {
                                undo_next: rec.prev,
                            },
                        );
                        last_lsns.insert(action, clr);
                        stats.clrs_written += 1;
                    }
                    UndoInfo::None => {}
                }
                cursors.insert(action, rec.prev);
            }
            RecordKind::Clr { undo_next, .. } | RecordKind::LogicalClr { undo_next } => {
                cursors.insert(action, undo_next);
            }
            RecordKind::Begin { .. } => {
                log.append(action, last_lsn(&last_lsns, action)?, RecordKind::End);
                cursors.remove(&action);
            }
            _ => {
                cursors.insert(action, rec.prev);
            }
        }
    }
    Ok(())
}

/// Take a fuzzy checkpoint: log the active-action and dirty-page tables,
/// force the log, and point the master record at the checkpoint.
///
/// Fuzzy means no quiescing: updates keep flowing while the tables are
/// snapshotted. Soundness rests on two orderings enforced elsewhere —
/// every updater marks its page dirty *before* appending the update record
/// (`crate::action`), so a page absent from the dirty-page table has all
/// its records at or past the checkpoint LSN; and the buffer pool clears a
/// frame's dirty flag only *after* write-back I/O completes, so a page
/// mid-write still shows up in the table. The master is advanced only after
/// the checkpoint record is durable: a crash mid-checkpoint leaves the old
/// master, whose checkpoint is still whole.
pub fn take_checkpoint(
    pool: &BufferPool,
    log: &LogManager,
    active: Vec<(ActionId, ActionIdentity, Lsn)>,
) -> StoreResult<Lsn> {
    let rec = log.recorder();
    let timer = Stopwatch::start();
    let dirty = pool.dirty_pages();
    rec.hist("wal.ckpt_dirty").record(dirty.len() as u64);
    let lsn = log.append(
        ActionId(0),
        Lsn::ZERO,
        RecordKind::Checkpoint { active, dirty },
    );
    log.force_all()?;
    log.store().set_master(lsn);
    log.note_checkpoint();
    rec.counter("wal.ckpt_taken").inc();
    rec.hist("wal.ckpt_ns").record(timer.elapsed_ns());
    rec.event(EventKind::WalCheckpoint, lsn.0, 0);
    Ok(lsn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::AtomicAction;
    use crate::log::{LogManager, LogStore, MemLogStore};
    use pitree_pagestore::{MemDisk, PageId, PageOp};
    use std::sync::Arc;

    struct World {
        disk: Arc<MemDisk>,
        store: Arc<MemLogStore>,
        pool: Arc<BufferPool>,
        log: Arc<LogManager>,
    }

    fn world() -> World {
        let disk = Arc::new(MemDisk::new());
        let store = Arc::new(MemLogStore::new());
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<_>, 32));
        let log = Arc::new(LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap());
        pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
        World {
            disk,
            store,
            pool,
            log,
        }
    }

    /// Crash: keep only the durable disk image and the durable log prefix.
    fn crash(w: &World) -> World {
        let disk = Arc::new(w.disk.snapshot());
        let store = Arc::new(w.store.snapshot());
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<_>, 32));
        let log = Arc::new(LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap());
        pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
        World {
            disk,
            store,
            pool,
            log,
        }
    }

    fn put(w: &World, pid: PageId, slot: u16, bytes: &[u8], force: bool) {
        let page = w.pool.fetch_or_create(pid, PageType::Free).unwrap();
        let mut act = AtomicAction::begin(&w.log, ActionIdentity::SystemTransaction);
        {
            let mut g = page.x();
            if g.page_type().unwrap() == PageType::Free {
                act.apply(&page, &mut g, PageOp::Format { ty: PageType::Node })
                    .unwrap();
            }
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot,
                    bytes: bytes.to_vec(),
                },
            )
            .unwrap();
        }
        if force {
            act.commit_force().unwrap();
        } else {
            act.commit();
        }
    }

    #[test]
    fn committed_forced_action_survives_crash() {
        let w = world();
        put(&w, PageId(7), 0, b"durable", true);
        // Crash without flushing any page.
        let w2 = crash(&w);
        let stats = recover(&w2.pool, &w2.log, None).unwrap();
        assert!(stats.losers.is_empty());
        assert!(stats.redone >= 2);
        let page = w2.pool.fetch(PageId(7)).unwrap();
        assert_eq!(page.s().get(0).unwrap(), b"durable");
    }

    #[test]
    fn unforced_action_is_rolled_back() {
        let w = world();
        put(&w, PageId(7), 0, b"base", true);
        put(&w, PageId(7), 1, b"lost", false); // commit not forced
        let w2 = crash(&w);
        let stats = recover(&w2.pool, &w2.log, None).unwrap();
        // The second action's records never reached the durable log at all,
        // so it is simply absent — no loser, no trace.
        assert!(stats.losers.is_empty());
        let page = w2.pool.fetch(PageId(7)).unwrap();
        let g = page.s();
        assert_eq!(g.slot_count(), 1);
        assert_eq!(g.get(0).unwrap(), b"base");
    }

    #[test]
    fn action_with_durable_updates_but_no_commit_is_undone() {
        let w = world();
        put(&w, PageId(7), 0, b"base", true);
        // Begin + update durable, commit NOT durable.
        let page = w.pool.fetch(PageId(7)).unwrap();
        let mut act = AtomicAction::begin(&w.log, ActionIdentity::SeparateTransaction);
        {
            let mut g = page.x();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 1,
                    bytes: b"half".to_vec(),
                },
            )
            .unwrap();
        }
        w.log.force_all().unwrap(); // updates durable...
        act.commit(); // ...commit only in the volatile tail
        drop(page);
        // Flush the page so the half-done update is on disk — the hard case.
        w.pool.flush_all().unwrap();
        let w2 = crash(&w);
        let stats = recover(&w2.pool, &w2.log, None).unwrap();
        assert_eq!(stats.losers.len(), 1);
        assert!(stats.clrs_written >= 1);
        let page = w2.pool.fetch(PageId(7)).unwrap();
        let g = page.s();
        assert_eq!(g.slot_count(), 1, "uncommitted insert must be undone");
        assert_eq!(g.get(0).unwrap(), b"base");
    }

    #[test]
    fn redo_skips_pages_already_current() {
        let w = world();
        put(&w, PageId(7), 0, b"x", true);
        w.pool.flush_all().unwrap(); // page on disk with final LSN
        let w2 = crash(&w);
        let stats = recover(&w2.pool, &w2.log, None).unwrap();
        assert_eq!(stats.redone, 0);
        assert!(stats.redo_skipped >= 2);
    }

    #[test]
    fn recovery_is_idempotent() {
        let w = world();
        put(&w, PageId(7), 0, b"a", true);
        put(&w, PageId(8), 0, b"b", true);
        let w2 = crash(&w);
        recover(&w2.pool, &w2.log, None).unwrap();
        // Crash again immediately (post-recovery log is forced) and recover.
        let w3 = crash(&w2);
        let stats = recover(&w3.pool, &w3.log, None).unwrap();
        assert!(stats.losers.is_empty());
        let page = w3.pool.fetch(PageId(7)).unwrap();
        assert_eq!(page.s().get(0).unwrap(), b"a");
        let page8 = w3.pool.fetch(PageId(8)).unwrap();
        assert_eq!(page8.s().get(0).unwrap(), b"b");
    }

    #[test]
    fn crash_during_rollback_resumes_via_undo_next() {
        let w = world();
        put(&w, PageId(7), 0, b"base", true);
        let page = w.pool.fetch(PageId(7)).unwrap();
        let mut act = AtomicAction::begin(&w.log, ActionIdentity::SeparateTransaction);
        {
            let mut g = page.x();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 1,
                    bytes: b"u1".to_vec(),
                },
            )
            .unwrap();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 2,
                    bytes: b"u2".to_vec(),
                },
            )
            .unwrap();
        }
        drop(page);
        w.log.force_all().unwrap();
        // Simulate a crash mid-rollback: manually write the Abort and ONE CLR
        // (undoing u2), then "crash".
        let id = act.id();
        let last = act.last_lsn();
        let abort = w.log.append(id, last, RecordKind::Abort);
        {
            let page = w.pool.fetch(PageId(7)).unwrap();
            let mut g = page.x();
            let rec_u2 = w.log.read(last).unwrap();
            let clr = w.log.append(
                id,
                abort,
                RecordKind::Clr {
                    pid: PageId(7),
                    redo: PageOp::RemoveSlot { slot: 2 },
                    undo_next: rec_u2.prev,
                },
            );
            PageOp::RemoveSlot { slot: 2 }.apply(&mut g).unwrap();
            g.set_lsn(clr);
            page.mark_dirty_at(clr);
        }
        w.log.force_all().unwrap();
        w.pool.flush_all().unwrap();
        let _ = act; // the action object is dead with the crash
        let w2 = crash(&w);
        let stats = recover(&w2.pool, &w2.log, None).unwrap();
        assert_eq!(stats.losers.len(), 1);
        // Only u1 still needed compensation.
        assert_eq!(stats.clrs_written, 1);
        let page = w2.pool.fetch(PageId(7)).unwrap();
        let g = page.s();
        assert_eq!(g.slot_count(), 1);
        assert_eq!(g.get(0).unwrap(), b"base");
    }

    #[test]
    fn checkpoint_bounds_analysis() {
        let w = world();
        for i in 0..5 {
            put(&w, PageId(7), i, format!("r{i}").as_bytes(), true);
        }
        w.pool.flush_all().unwrap();
        take_checkpoint(&w.pool, &w.log, vec![]).unwrap();
        put(&w, PageId(7), 5, b"after", true);
        let w2 = crash(&w);
        let stats = recover(&w2.pool, &w2.log, None).unwrap();
        assert!(
            stats.analysis_start > Lsn(1),
            "analysis must start at the checkpoint"
        );
        // Only the post-checkpoint action needs redo.
        assert_eq!(stats.redone, 1);
        let page = w2.pool.fetch(PageId(7)).unwrap();
        assert_eq!(page.s().slot_count(), 6);
    }

    #[test]
    fn every_log_prefix_recovers_to_a_consistent_store() {
        // Log-prefix crash fuzzing: truncate the durable log at every byte
        // boundary and verify recovery never fails and never produces a
        // store where a committed action is half-applied.
        let w = world();
        put(&w, PageId(7), 0, b"one", true);
        put(&w, PageId(7), 1, b"two", true);
        put(&w, PageId(8), 0, b"three", true);
        let full = w.store.durable_len();
        for cut in 0..=full {
            let disk = Arc::new(w.disk.snapshot());
            let store = Arc::new(w.store.snapshot_truncated(cut));
            // Master may point past the cut; reset it (a real master record
            // is only updated after its checkpoint is durable).
            store.set_master(Lsn::ZERO);
            let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<_>, 32));
            let log = Arc::new(LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap());
            pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
            let stats = recover(&pool, &log, None).unwrap();
            // Committed-and-durable actions must be fully present: check that
            // any slot that exists has the full expected content.
            if let Ok(page) = pool.fetch(PageId(7)) {
                let g = page.s();
                if g.page_type().unwrap() == PageType::Node {
                    for i in 0..g.slot_count() {
                        let rec = g.get(i).unwrap();
                        assert!(rec == b"one" || rec == b"two", "cut={cut}");
                    }
                }
            }
            drop(stats);
        }
    }
}
