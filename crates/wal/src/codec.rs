//! Minimal binary codec for log records.
//!
//! Hand-rolled little-endian encoding: the log format wants length-prefixed,
//! checksummed, self-delimiting frames, which is simpler to guarantee by
//! writing the bytes ourselves than through a general serializer.

use pitree_pagestore::{StoreError, StoreResult};

/// Append-only byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl std::fmt::Debug for Writer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Writer").finish_non_exhaustive()
    }
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Consume and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Sequential byte reader with bounds checking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl std::fmt::Debug for Reader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reader").finish_non_exhaustive()
    }
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::Corrupt(format!(
                "log decode overrun: need {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a byte.
    pub fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> StoreResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> StoreResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Whether all input was consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// FNV-1a hash used as the per-record checksum (detects torn log tails).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0102_0304_0506_0708);
        w.bytes(b"payload");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert!(r.is_done());
    }

    #[test]
    fn overrun_is_an_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
    }

    #[test]
    fn checksum_differs_on_flip() {
        let a = checksum(b"hello world");
        let b = checksum(b"hello worle");
        assert_ne!(a, b);
        assert_eq!(a, checksum(b"hello world"));
    }
}
