//! Atomic actions (§4, §4.3.2).
//!
//! An [`AtomicAction`] brackets a group of page updates that must be
//! all-or-nothing and must leave the tree well-formed. Π-tree structure
//! changes are decomposed into sequences of these (§5): the node split is one
//! action, the index-term posting another, a consolidation a third.
//!
//! Actions above the leaf level are independent of database transactions and
//! of short duration; their commit is *relatively durable* — [`AtomicAction::commit`]
//! appends a `Commit` record without forcing the log (§4.3.1). A user
//! transaction's commit uses [`AtomicAction::commit_force`], which also
//! carries every earlier unforced action commit to disk (same-log
//! assumption, as the paper notes).

use crate::log::LogManager;
use crate::record::{ActionId, ActionIdentity, RecordKind, UndoInfo};
use crate::recovery::LogicalUndoHandler;
use pitree_obs::EventKind;
use pitree_pagestore::buffer::{BufferPool, PinnedPage};
use pitree_pagestore::latch::XGuard;
use pitree_pagestore::page::Page;
use pitree_pagestore::{Lsn, PageOp, StoreError, StoreResult};

/// Stable numeric code for an action identity, used as the `b` payload of
/// [`EventKind::ActionBegin`] events.
pub fn identity_code(identity: &ActionIdentity) -> u64 {
    match identity {
        ActionIdentity::Transaction => 0,
        ActionIdentity::SeparateTransaction => 1,
        ActionIdentity::SystemTransaction => 2,
        ActionIdentity::NestedTopAction { .. } => 3,
    }
}

/// A live atomic action: owns a log chain; applies and logs page operations.
pub struct AtomicAction<'a> {
    log: &'a LogManager,
    id: ActionId,
    identity: ActionIdentity,
    last: Lsn,
    updates: u64,
}

impl std::fmt::Debug for AtomicAction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicAction").finish_non_exhaustive()
    }
}

impl<'a> AtomicAction<'a> {
    /// Begin an action with the given recovery identity.
    pub fn begin(log: &'a LogManager, identity: ActionIdentity) -> AtomicAction<'a> {
        let id = log.next_action_id();
        let last = log.append(id, Lsn::ZERO, RecordKind::Begin { identity });
        let rec = log.recorder();
        rec.counter("action.begins").inc();
        rec.event(EventKind::ActionBegin, id.0, identity_code(&identity));
        AtomicAction {
            log,
            id,
            identity,
            last,
            updates: 0,
        }
    }

    /// This action's id.
    pub fn id(&self) -> ActionId {
        self.id
    }

    /// The action's recovery identity.
    pub fn identity(&self) -> ActionIdentity {
        self.identity
    }

    /// LSN of the action's most recent record.
    pub fn last_lsn(&self) -> Lsn {
        self.last
    }

    /// Number of page updates applied so far.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Log and apply `op` to the X-latched page, with page-oriented
    /// (physiological) undo information. Stamps the page LSN and marks the
    /// frame dirty — the full WAL discipline in one place.
    pub fn apply(
        &mut self,
        page: &PinnedPage<'_>,
        g: &mut XGuard<'_, Page>,
        op: PageOp,
    ) -> StoreResult<Lsn> {
        let undo = UndoInfo::Physiological(op.invert(g)?);
        self.apply_with_undo(page, g, op, undo)
    }

    /// Log and apply `op` with *logical* undo information: on rollback the
    /// registered [`LogicalUndoHandler`] receives `(tag, payload)` and
    /// compensates through tree operations (non-page-oriented UNDO, §4.2).
    pub fn apply_logical(
        &mut self,
        page: &PinnedPage<'_>,
        g: &mut XGuard<'_, Page>,
        op: PageOp,
        tag: u8,
        payload: Vec<u8>,
    ) -> StoreResult<Lsn> {
        self.apply_with_undo(page, g, op, UndoInfo::Logical { tag, payload })
    }

    /// Log and apply `op` with no undo information (redo-only).
    pub fn apply_redo_only(
        &mut self,
        page: &PinnedPage<'_>,
        g: &mut XGuard<'_, Page>,
        op: PageOp,
    ) -> StoreResult<Lsn> {
        self.apply_with_undo(page, g, op, UndoInfo::None)
    }

    fn apply_with_undo(
        &mut self,
        page: &PinnedPage<'_>,
        g: &mut XGuard<'_, Page>,
        op: PageOp,
        undo: UndoInfo,
    ) -> StoreResult<Lsn> {
        // Mark the frame dirty *before* the append so a fuzzy checkpoint
        // running concurrently can never observe the update record in the
        // log while the page is still absent from its dirty-page table
        // (which would leave the record below the recovered redo horizon).
        // The conservative recovery LSN — the current tail — is ≤ the
        // record's LSN, so the redo scan can only start earlier, never miss.
        // The §4.3.1 ordering this inverts is write-back vs append, and
        // that is still enforced: the page content changes only after the
        // append below, and write-back forces the log to the page LSN.
        // pitree-lint: allow(log-before-dirty) conservative pre-append dirty marking closes the fuzzy-checkpoint DPT race; content changes only after the append
        page.mark_dirty_at(self.log.tail_lsn());
        let lsn = self.log.append(
            self.id,
            self.last,
            RecordKind::Update {
                pid: page.id(),
                redo: op.clone(),
                undo,
            },
        );
        op.apply(g)?;
        g.set_lsn(lsn);
        self.last = lsn;
        self.updates += 1;
        Ok(lsn)
    }

    /// Commit without forcing the log — relative durability (§4.3.1).
    pub fn commit(mut self) -> Lsn {
        self.last = self.log.append(self.id, self.last, RecordKind::Commit);
        let rec = self.log.recorder();
        rec.counter("action.commits").inc();
        rec.event(EventKind::ActionCommit, self.id.0, 0);
        self.last
    }

    /// Commit for the pipelined path: append the `Commit` record and emit
    /// the commit event, but do not wait for a force. Past this point the
    /// action can no longer abort — it is *committed in the log* — yet it
    /// is not durable: callers acknowledge only once
    /// [`LogManager::flushed_lsn`] covers the returned LSN (early lock
    /// release over the §4.3.1 durable-watermark discipline). The event
    /// payload still distinguishes forced-class commits so observability
    /// matches [`AtomicAction::commit`] / [`AtomicAction::commit_force`].
    pub fn commit_append(mut self) -> Lsn {
        self.last = self.log.append(self.id, self.last, RecordKind::Commit);
        let rec = self.log.recorder();
        rec.counter("action.commits").inc();
        let forced_class = matches!(self.identity, ActionIdentity::Transaction);
        rec.event(EventKind::ActionCommit, self.id.0, u64::from(forced_class));
        self.last
    }

    /// Commit and force the log (user-transaction commit). Everything
    /// earlier in the log — including unforced atomic-action commits whose
    /// results this transaction may depend on — becomes durable with it.
    pub fn commit_force(mut self) -> StoreResult<Lsn> {
        self.last = self.log.append(self.id, self.last, RecordKind::Commit);
        self.log.force_to(self.last)?;
        let rec = self.log.recorder();
        rec.counter("action.commits").inc();
        rec.event(EventKind::ActionCommit, self.id.0, 1);
        Ok(self.last)
    }

    /// Roll the action back now, applying undo information in reverse order
    /// and writing CLRs so that a crash mid-rollback never compensates
    /// twice.
    pub fn rollback(
        mut self,
        pool: &BufferPool,
        handler: Option<&dyn LogicalUndoHandler>,
    ) -> StoreResult<()> {
        self.last = self.log.append(self.id, self.last, RecordKind::Abort);
        let rec = self.log.recorder();
        rec.counter("action.aborts").inc();
        rec.event(EventKind::ActionAbort, self.id.0, 0);
        let mut cursor = self.last;
        while cursor != Lsn::ZERO {
            let rec = self.log.read(cursor)?;
            match rec.kind {
                RecordKind::Update { pid, undo, .. } => {
                    match undo {
                        UndoInfo::Physiological(inv) => {
                            let page = pool.fetch(pid)?;
                            let mut g = page.x();
                            // Same pre-append marking as `apply_with_undo`:
                            // the CLR must be in the checkpoint's redo range.
                            page.mark_dirty_at(self.log.tail_lsn());
                            let clr = self.log.append(
                                self.id,
                                self.last,
                                RecordKind::Clr {
                                    pid,
                                    redo: inv.clone(),
                                    undo_next: rec.prev,
                                },
                            );
                            inv.apply(&mut g)?;
                            g.set_lsn(clr);
                            self.last = clr;
                        }
                        UndoInfo::Logical { tag, payload } => {
                            let h = handler.ok_or_else(|| {
                                StoreError::Corrupt(
                                    "logical undo record but no LogicalUndoHandler registered"
                                        .to_string(),
                                )
                            })?;
                            h.undo(tag, &payload)?;
                            self.last = self.log.append(
                                self.id,
                                self.last,
                                RecordKind::LogicalClr {
                                    undo_next: rec.prev,
                                },
                            );
                        }
                        UndoInfo::None => {}
                    }
                    cursor = rec.prev;
                }
                RecordKind::Clr { undo_next, .. } | RecordKind::LogicalClr { undo_next } => {
                    cursor = undo_next;
                }
                RecordKind::Begin { .. } => break,
                // Abort (just written) and anything else: step back.
                _ => cursor = rec.prev,
            }
        }
        self.log.append(self.id, self.last, RecordKind::End);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogManager, LogStore, MemLogStore};
    use pitree_pagestore::page::PageType;
    use pitree_pagestore::{MemDisk, PageId};
    use std::sync::Arc;

    fn setup() -> (Arc<BufferPool>, Arc<LogManager>) {
        let disk = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, 32));
        let log =
            Arc::new(LogManager::open(Arc::new(MemLogStore::new()) as Arc<dyn LogStore>).unwrap());
        pool.set_wal_hook(Arc::clone(&log) as Arc<dyn pitree_pagestore::buffer::WalFlush>);
        (pool, log)
    }

    #[test]
    fn apply_stamps_lsn_and_dirties() {
        let (pool, log) = setup();
        let page = pool.fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut act = AtomicAction::begin(&log, ActionIdentity::SystemTransaction);
        {
            let mut g = page.x();
            let lsn = act
                .apply(
                    &page,
                    &mut g,
                    PageOp::InsertSlot {
                        slot: 0,
                        bytes: b"r".to_vec(),
                    },
                )
                .unwrap();
            assert_eq!(g.lsn(), lsn);
        }
        act.commit();
        assert_eq!(pool.dirty_pages().len(), 1);
    }

    #[test]
    fn rollback_restores_page_content() {
        let (pool, log) = setup();
        let page = pool.fetch_or_create(PageId(5), PageType::Node).unwrap();
        {
            let mut g = page.x();
            let mut act = AtomicAction::begin(&log, ActionIdentity::SystemTransaction);
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"keep".to_vec(),
                },
            )
            .unwrap();
            act.commit();
        }
        let mut act = AtomicAction::begin(&log, ActionIdentity::SystemTransaction);
        {
            let mut g = page.x();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 1,
                    bytes: b"bye".to_vec(),
                },
            )
            .unwrap();
            act.apply(
                &page,
                &mut g,
                PageOp::UpdateSlot {
                    slot: 0,
                    bytes: b"mod!".to_vec(),
                },
            )
            .unwrap();
        }
        act.rollback(&pool, None).unwrap();
        let g = page.s();
        assert_eq!(g.slot_count(), 1);
        assert_eq!(g.get(0).unwrap(), b"keep");
    }

    #[test]
    fn rollback_writes_clr_chain() {
        let (pool, log) = setup();
        let page = pool.fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut act = AtomicAction::begin(&log, ActionIdentity::SeparateTransaction);
        {
            let mut g = page.x();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"a".to_vec(),
                },
            )
            .unwrap();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 1,
                    bytes: b"b".to_vec(),
                },
            )
            .unwrap();
        }
        let id = act.id();
        act.rollback(&pool, None).unwrap();
        let recs: Vec<_> = log
            .scan(None)
            .expect("scan")
            .into_iter()
            .filter(|r| r.action == id)
            .collect();
        // Begin, 2 updates, Abort, 2 CLRs, End.
        assert_eq!(recs.len(), 7);
        assert!(matches!(recs[3].kind, RecordKind::Abort));
        assert!(matches!(recs[4].kind, RecordKind::Clr { .. }));
        assert!(matches!(recs[6].kind, RecordKind::End));
        // CLR undo_next pointers walk backwards through the updates.
        if let RecordKind::Clr { undo_next, .. } = recs[4].kind {
            assert_eq!(undo_next, recs[1].lsn);
        }
        if let RecordKind::Clr { undo_next, .. } = recs[5].kind {
            assert_eq!(undo_next, recs[0].lsn, "last CLR points back to Begin");
        }
    }

    #[test]
    fn logical_undo_invokes_handler() {
        struct H(pitree_pagestore::sync::Mutex<Vec<(u8, Vec<u8>)>>);
        impl LogicalUndoHandler for H {
            fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
                self.0.lock().push((tag, payload.to_vec()));
                Ok(())
            }
        }
        let (pool, log) = setup();
        let page = pool.fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut act = AtomicAction::begin(&log, ActionIdentity::Transaction);
        {
            let mut g = page.x();
            act.apply_logical(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"rec".to_vec(),
                },
                7,
                b"key-7".to_vec(),
            )
            .unwrap();
        }
        let h = H(pitree_pagestore::sync::Mutex::new(Vec::new()));
        act.rollback(&pool, Some(&h)).unwrap();
        let calls = h.0.lock();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0], (7, b"key-7".to_vec()));
    }

    #[test]
    fn commit_is_not_forced_but_commit_force_is() {
        let (pool, log) = setup();
        let page = pool.fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut act = AtomicAction::begin(&log, ActionIdentity::SystemTransaction);
        {
            let mut g = page.x();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"x".to_vec(),
                },
            )
            .unwrap();
        }
        act.commit();
        assert_eq!(
            log.flushed_lsn(),
            Lsn(0),
            "atomic-action commit must not force"
        );

        let mut act2 = AtomicAction::begin(&log, ActionIdentity::Transaction);
        {
            let mut g = page.x();
            act2.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 1,
                    bytes: b"y".to_vec(),
                },
            )
            .unwrap();
        }
        let commit_lsn = act2.commit_force().unwrap();
        assert!(
            log.flushed_lsn() >= commit_lsn,
            "commit_force must make the commit durable"
        );
        // The earlier, unforced commit rode along.
        let durable = log.store().durable_bytes().unwrap();
        let recs = crate::log::scan_bytes(&durable, None);
        assert!(recs.iter().any(|r| matches!(r.kind, RecordKind::Commit)));
        assert!(recs.len() >= 6);
    }
}
