//! The log manager: append, group-commit force, and scan.
//!
//! LSNs are `offset + 1` where `offset` is the record frame's byte position,
//! so `Lsn::ZERO` stays free as the null LSN. Frames are
//! `[len u32][checksum u32][body]`; the checksum lets recovery stop cleanly
//! at a torn tail, which the crash harness exploits by truncating the durable
//! log at arbitrary byte positions.
//!
//! Durability is split between the volatile tail (`LogTail`) and a
//! [`LogStore`] holding what has been *forced*. Atomic-action commits are
//! **not** forced (§4.3.1, "relative durability"); forces happen at
//! user-transaction commit and through the buffer pool's WAL hook before a
//! dirty page write.
//!
//! # Lock-split group commit
//!
//! Two small mutexes replace the old monolithic `Mutex<LogInner>` that was
//! held across the durable `store.append()`:
//!
//! * `tail` guards only the volatile tail bytes — [`LogManager::append`]
//!   holds it for a few `extend_from_slice` calls and never across I/O.
//! * `force` guards the leader/follower protocol: the first committer to
//!   find no leader active becomes the **leader**, takes the current group
//!   goal (the max target offset of every registered force), drains the
//!   tail up to that goal *outside* the tail mutex, writes one batch to the
//!   store, publishes `flushed` through an `AtomicU64`, and notifies the
//!   condvar. Followers whose target the batch covered return without
//!   touching the store — their commit is durable because the leader's
//!   batch covered their LSN (the paper's §4.3.1 "relatively durable" rule,
//!   applied across threads). Followers the batch missed elect the next
//!   leader.
//!
//! A freshly elected leader does not drain immediately: it **lingers** for a
//! bounded adaptive window (see [`LogManager::linger_budget_ns`]) so commits
//! already in flight register and ride its batch instead of the next one —
//! eager election produced degenerate groups of one whenever the first
//! committer won the race. The budget starts at zero, doubles while batches
//! actually group (or late arrivals keep queuing), and halves after solo
//! batches, so single-threaded runs never take a timed wait and stay
//! byte-deterministic. Deterministic tests can freeze the window with
//! [`LogManager::set_linger_hold`].
//!
//! Only the unflushed suffix is retained in memory (`base` + tail), so log
//! memory is O(unflushed); [`LogManager::read`] falls back to the store for
//! already-forced LSNs. On the single-threaded paths every force drains
//! exactly the bytes the old design wrote, so the durable byte stream (and
//! the crash-point sequence the sim kit counts) is unchanged.

use crate::codec::checksum;
use crate::record::{ActionId, LogRecord, RecordKind};
use pitree_obs::{Counter, EventKind, Hist, Recorder, Stopwatch};
use pitree_pagestore::buffer::WalFlush;
use pitree_pagestore::fault::{FaultSite, InjectorHandle};
use pitree_pagestore::sync::{Condvar, Mutex};
use pitree_pagestore::{Lsn, StoreError, StoreResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Durable log storage.
pub trait LogStore: Send + Sync {
    /// Durably append bytes.
    fn append(&self, bytes: &[u8]) -> StoreResult<()>;
    /// The full durable contents (recovery input).
    fn durable_bytes(&self) -> StoreResult<Vec<u8>>;
    /// Durable length in bytes.
    fn durable_len(&self) -> u64;
    /// Record the master LSN (last checkpoint).
    fn set_master(&self, lsn: Lsn);
    /// The recorded master LSN.
    fn master(&self) -> Lsn;
    /// Read `len` bytes starting at byte `offset` of the durable log.
    /// Backs [`LogManager::read`] for already-forced LSNs; implementations
    /// should override the default whole-log copy with a ranged read.
    fn read_range(&self, offset: u64, len: usize) -> StoreResult<Vec<u8>> {
        let all = self.durable_bytes()?;
        let start = offset as usize;
        let end = start.checked_add(len);
        end.and_then(|e| all.get(start..e))
            .map(<[u8]>::to_vec)
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "log range {offset}+{len} beyond durable end {}",
                    all.len()
                ))
            })
    }
}

/// In-memory durable log used by tests and the crash harness.
pub struct MemLogStore {
    durable: Mutex<Vec<u8>>,
    master: AtomicU64,
    injector: Option<InjectorHandle>,
}

impl std::fmt::Debug for MemLogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemLogStore").finish_non_exhaustive()
    }
}

impl MemLogStore {
    /// Empty store.
    pub fn new() -> MemLogStore {
        MemLogStore {
            durable: Mutex::new(Vec::new()),
            master: AtomicU64::new(0),
            injector: None,
        }
    }

    /// Empty store whose appends (log forces) consult `injector` first —
    /// the simulation kit's crash point at every WAL-flush boundary.
    pub fn with_injector(injector: InjectorHandle) -> MemLogStore {
        MemLogStore {
            durable: Mutex::new(Vec::new()),
            master: AtomicU64::new(0),
            injector: Some(injector),
        }
    }

    /// A copy of the durable contents truncated to `len` bytes — the
    /// survivor of a crash whose final force was cut short. The snapshot
    /// carries no injector: recovery must run unimpeded.
    pub fn snapshot_truncated(&self, len: u64) -> MemLogStore {
        let durable = self.durable.lock();
        let cut = (len as usize).min(durable.len());
        MemLogStore {
            durable: Mutex::new(durable.get(..cut).map(<[u8]>::to_vec).unwrap_or_default()),
            master: AtomicU64::new(self.master.load(Ordering::SeqCst)),
            injector: None,
        }
    }

    /// A copy of the full durable contents (a crash right after a force).
    pub fn snapshot(&self) -> MemLogStore {
        self.snapshot_truncated(u64::MAX)
    }
}

impl Default for MemLogStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> StoreResult<()> {
        if let Some(inj) = &self.injector {
            inj.check(FaultSite::LogAppend { bytes: bytes.len() })?;
        }
        self.durable.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn durable_bytes(&self) -> StoreResult<Vec<u8>> {
        Ok(self.durable.lock().clone())
    }

    fn durable_len(&self) -> u64 {
        self.durable.lock().len() as u64
    }

    fn set_master(&self, lsn: Lsn) {
        self.master.store(lsn.0, Ordering::SeqCst);
    }

    fn master(&self) -> Lsn {
        Lsn(self.master.load(Ordering::SeqCst))
    }

    fn read_range(&self, offset: u64, len: usize) -> StoreResult<Vec<u8>> {
        let durable = self.durable.lock();
        let start = offset as usize;
        start
            .checked_add(len)
            .and_then(|end| durable.get(start..end))
            .map(<[u8]>::to_vec)
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "log range {offset}+{len} beyond durable end {}",
                    durable.len()
                ))
            })
    }
}

/// File-backed log store for benchmarks. The master LSN lives in a sibling
/// `.master` file.
pub struct FileLogStore {
    file: Mutex<File>,
    master_path: std::path::PathBuf,
    master: AtomicU64,
}

impl std::fmt::Debug for FileLogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileLogStore").finish_non_exhaustive()
    }
}

impl FileLogStore {
    /// Open (or create) the log file at `path`.
    pub fn open(path: &Path) -> StoreResult<FileLogStore> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| StoreError::Corrupt(format!("open log {path:?}: {e}")))?;
        let master_path = path.with_extension("master");
        let master = std::fs::read(&master_path)
            .ok()
            .and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0);
        Ok(FileLogStore {
            file: Mutex::new(file),
            master_path,
            master: AtomicU64::new(master),
        })
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> StoreResult<()> {
        let mut f = self.file.lock();
        f.write_all(bytes)
            .and_then(|_| f.sync_data())
            .map_err(|e| StoreError::Corrupt(format!("log append: {e}")))
    }

    fn durable_bytes(&self) -> StoreResult<Vec<u8>> {
        let mut f = self.file.lock();
        let mut out = Vec::new();
        f.seek(SeekFrom::Start(0))
            .and_then(|_| f.read_to_end(&mut out))
            .map_err(|e| StoreError::Corrupt(format!("log read: {e}")))?;
        Ok(out)
    }

    fn durable_len(&self) -> u64 {
        self.file.lock().metadata().map(|m| m.len()).unwrap_or(0)
    }

    fn set_master(&self, lsn: Lsn) {
        self.master.store(lsn.0, Ordering::SeqCst);
        let _ = std::fs::write(&self.master_path, lsn.0.to_le_bytes());
    }

    fn master(&self) -> Lsn {
        Lsn(self.master.load(Ordering::SeqCst))
    }

    fn read_range(&self, offset: u64, len: usize) -> StoreResult<Vec<u8>> {
        let mut f = self.file.lock();
        let mut out = vec![0u8; len];
        f.seek(SeekFrom::Start(offset))
            .and_then(|_| f.read_exact(&mut out))
            .map_err(|e| StoreError::Corrupt(format!("log range {offset}+{len}: {e}")))?;
        Ok(out)
    }
}

/// The volatile tail: bytes appended but not yet handed to the store.
/// `base` is the byte offset in log space of `buf[0]`; bytes below `base`
/// are either durable (`< flushed`) or inside the current leader's in-flight
/// batch (`>= flushed`, only while a leader is active).
struct LogTail {
    base: u64,
    buf: Vec<u8>,
    /// End offsets (ascending) of the commit frames still in `buf` —
    /// drained per batch so `wal.group_size` reports how many commits each
    /// force made durable, which is the group-commit size whether the
    /// committers are blocking on the force or have published and moved on.
    commit_ends: Vec<u64>,
}

/// Leader/follower election state for the group-commit force path.
struct ForceState {
    /// A leader is currently draining/writing a batch.
    leader: bool,
    /// Force calls currently inside the slow path (cohort accounting for
    /// the linger adaptation and the scripted-schedule rig).
    pending: u64,
    /// Scripted-schedule freeze: while set, an elected leader parks inside
    /// its linger window until [`LogManager::set_linger_hold`] releases it.
    linger_hold: bool,
}

/// Default cap on the adaptive linger window: long enough to absorb a
/// committing cohort already in flight, short enough to bound the latency a
/// leader adds to its own commit.
const LINGER_MAX_DEFAULT_NS: u64 = 200_000;
/// Smallest non-zero budget the adaptation grows to from a cold start.
const LINGER_STEP_NS: u64 = 25_000;
/// Floor for a single timed wait inside the linger loop (condvar timeouts
/// below this are dominated by wakeup jitter).
const LINGER_SLICE_MIN_NS: u64 = 20_000;

/// Stable numeric code for a record kind, used as the `b` payload of
/// [`EventKind::WalAppend`] events (documented in `OBSERVABILITY.md`).
pub fn record_kind_code(kind: &RecordKind) -> u64 {
    match kind {
        RecordKind::Begin { .. } => 0,
        RecordKind::Commit => 1,
        RecordKind::Abort => 2,
        RecordKind::End => 3,
        RecordKind::Update { .. } => 4,
        RecordKind::Clr { .. } => 5,
        RecordKind::LogicalClr { .. } => 6,
        RecordKind::Checkpoint { .. } => 7,
    }
}

/// Little-endian u32 at `off`, or `None` when the slice is too short.
fn le_u32_at(buf: &[u8], off: usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(off..off.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// The log manager. Shared via `Arc`; also registered as the buffer pool's
/// [`WalFlush`] hook.
pub struct LogManager {
    tail: Mutex<LogTail>,
    force: Mutex<ForceState>,
    force_cv: Condvar,
    /// Bytes durably in the store (published by the group-commit leader).
    flushed: AtomicU64,
    /// Total bytes ever appended (`base + buf.len()`, updated under `tail`).
    tail_end: AtomicU64,
    store: Arc<dyn LogStore>,
    next_action: AtomicU64,
    /// `tail_end` as of the last fuzzy checkpoint ([`LogManager::note_checkpoint`]);
    /// [`LogManager::bytes_since_checkpoint`] drives the log-volume trigger.
    ckpt_end: AtomicU64,
    /// Current adaptive linger budget in ns (0 = drain immediately, the
    /// single-threaded behaviour — and the cold-start value, so sequential
    /// runs never take a timed wait and stay byte-deterministic).
    linger_cur: AtomicU64,
    /// Upper bound the adaptation may grow `linger_cur` to.
    linger_max: AtomicU64,
    /// Whether the budget adapts; pinned by [`LogManager::pin_linger_ns`].
    linger_adaptive: AtomicBool,
    rec: Recorder,
    appends: Counter,
    forces: Counter,
    force_waiters: Counter,
    force_ns: Hist,
    group_size: Hist,
    linger_ns: Hist,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager").finish_non_exhaustive()
    }
}

impl LogManager {
    /// A log manager over `store`; existing durable contents stay in the
    /// store (recovery will scan them) and only the unflushed suffix is
    /// ever buffered in memory. Records into a fresh private registry; see
    /// [`LogManager::open_observed`].
    pub fn open(store: Arc<dyn LogStore>) -> StoreResult<LogManager> {
        LogManager::open_observed(store, Recorder::detached())
    }

    /// [`LogManager::open`] recording `wal.*` metrics and WAL events into
    /// `rec`'s registry (the store assembly shares one registry across all
    /// layers).
    pub fn open_observed(store: Arc<dyn LogStore>, rec: Recorder) -> StoreResult<LogManager> {
        let durable = store.durable_len();
        Ok(LogManager {
            tail: Mutex::new(LogTail {
                base: durable,
                buf: Vec::new(),
                commit_ends: Vec::new(),
            }),
            force: Mutex::new(ForceState {
                leader: false,
                pending: 0,
                linger_hold: false,
            }),
            force_cv: Condvar::new(),
            flushed: AtomicU64::new(durable),
            tail_end: AtomicU64::new(durable),
            store,
            next_action: AtomicU64::new(1),
            ckpt_end: AtomicU64::new(durable),
            linger_cur: AtomicU64::new(0),
            linger_max: AtomicU64::new(LINGER_MAX_DEFAULT_NS),
            linger_adaptive: AtomicBool::new(true),
            appends: rec.counter("wal.appends"),
            forces: rec.counter("wal.forces"),
            force_waiters: rec.counter("wal.force_waiters"),
            force_ns: rec.hist("wal.force_ns"),
            group_size: rec.hist("wal.group_size"),
            linger_ns: rec.hist("wal.linger_ns"),
            rec,
        })
    }

    /// The recorder this log manager reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The durable store (for crash snapshots and the master record).
    pub fn store(&self) -> &Arc<dyn LogStore> {
        &self.store
    }

    /// Allocate a fresh action id.
    pub fn next_action_id(&self) -> ActionId {
        ActionId(self.next_action.fetch_add(1, Ordering::SeqCst))
    }

    /// Bump the action-id counter past `floor` (recovery calls this with the
    /// highest id seen in the log).
    pub fn reserve_action_ids(&self, floor: u64) {
        self.next_action.fetch_max(floor + 1, Ordering::SeqCst);
    }

    /// Record that a fuzzy checkpoint just covered everything appended so
    /// far; resets [`LogManager::bytes_since_checkpoint`].
    pub fn note_checkpoint(&self) {
        self.ckpt_end
            .store(self.tail_end.load(Ordering::Acquire), Ordering::Release);
    }

    /// Log bytes appended since the last [`LogManager::note_checkpoint`]
    /// (or since open). The checkpoint trigger in `pitree-txnlock` compares
    /// this against its configured threshold.
    pub fn bytes_since_checkpoint(&self) -> u64 {
        self.tail_end
            .load(Ordering::Acquire)
            .saturating_sub(self.ckpt_end.load(Ordering::Acquire))
    }

    /// Append a record, returning its LSN. Does not force. The tail mutex
    /// is held only for the in-memory copy — never across I/O.
    pub fn append(&self, action: ActionId, prev: Lsn, kind: RecordKind) -> Lsn {
        let rec = LogRecord {
            lsn: Lsn::ZERO,
            prev,
            action,
            kind,
        };
        let kind_code = record_kind_code(&rec.kind);
        let is_commit = matches!(rec.kind, RecordKind::Commit);
        let body = rec.encode_body();
        let mut tail = self.tail.lock();
        let lsn = Lsn(tail.base + tail.buf.len() as u64 + 1);
        tail.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        tail.buf.extend_from_slice(&checksum(&body).to_le_bytes());
        tail.buf.extend_from_slice(&body);
        let end = tail.base + tail.buf.len() as u64;
        if is_commit {
            tail.commit_ends.push(end);
        }
        self.tail_end.store(end, Ordering::Release);
        drop(tail);
        self.appends.inc();
        self.rec.event(EventKind::WalAppend, lsn.0, kind_code);
        lsn
    }

    /// Read the record at `lsn` — from the volatile tail when it is still
    /// buffered, otherwise from the durable store (the tail no longer
    /// retains the flushed prefix).
    pub fn read(&self, lsn: Lsn) -> StoreResult<LogRecord> {
        let off = lsn
            .0
            .checked_sub(1)
            .ok_or_else(|| StoreError::Corrupt("null lsn".into()))?;
        loop {
            {
                let tail = self.tail.lock();
                if off >= tail.base {
                    return read_at_base(&tail.buf, tail.base, lsn);
                }
            }
            if self.flushed.load(Ordering::Acquire) > off {
                return self.read_durable(off, lsn);
            }
            // `off` sits in a leader's in-flight batch (drained from the
            // tail, not yet published). Wait for the force to settle.
            let st = self.force.lock();
            if st.leader {
                drop(self.force_cv.wait(st));
            }
        }
    }

    /// Decode one frame from the durable store. `off` is a frame start
    /// strictly below `flushed` (batches end on frame boundaries, so the
    /// whole frame is durable).
    fn read_durable(&self, off: u64, lsn: Lsn) -> StoreResult<LogRecord> {
        let header = self.store.read_range(off, 8)?;
        let len = le_u32_at(&header, 0)
            .ok_or_else(|| StoreError::Corrupt(format!("short log header at {lsn}")))?
            as usize;
        let sum = le_u32_at(&header, 4)
            .ok_or_else(|| StoreError::Corrupt(format!("short log header at {lsn}")))?;
        let body = self.store.read_range(off + 8, len)?;
        if checksum(&body) != sum {
            return Err(StoreError::Corrupt(format!("bad checksum at {lsn}")));
        }
        LogRecord::decode_body(lsn, &body)
    }

    /// Current end of log (the LSN the *next* record will get). Lock-free.
    pub fn tail_lsn(&self) -> Lsn {
        Lsn(self.tail_end.load(Ordering::Acquire) + 1)
    }

    /// LSN up to which the log is durable. Lock-free.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed.load(Ordering::Acquire))
    }

    /// Force the log through the record that *starts* at `lsn`. Returns a
    /// typed error (never panics) if `lsn` points into a torn or truncated
    /// volatile tail.
    pub fn force_to(&self, lsn: Lsn) -> StoreResult<()> {
        if lsn == Lsn::ZERO {
            return Ok(());
        }
        let off = lsn.0 - 1;
        if self.flushed.load(Ordering::Acquire) > off {
            return Ok(()); // the whole frame is durable (frame-aligned batches)
        }
        // Resolve the target: the end offset of the frame starting at `off`.
        let target = {
            let tail = self.tail.lock();
            let end_total = tail.base + tail.buf.len() as u64;
            if off >= end_total {
                return Ok(()); // at/past the log end: nothing to force
            }
            if off < tail.base {
                // Already drained by a batch (durable or in flight); the
                // frame ended at or before the drained boundary.
                tail.base
            } else {
                let rel = (off - tail.base) as usize;
                let len = le_u32_at(&tail.buf, rel)
                    .ok_or_else(|| StoreError::Corrupt(format!("torn volatile tail at {lsn}")))?
                    as u64;
                let end = off + 8 + len;
                if end > end_total {
                    return Err(StoreError::Corrupt(format!(
                        "torn record at {lsn}: frame ends at {end}, tail at {end_total}"
                    )));
                }
                end
            }
        };
        self.force_until(target, Some(lsn))
    }

    /// Force the entire log.
    pub fn force_all(&self) -> StoreResult<()> {
        let target = self.tail_end.load(Ordering::Acquire);
        self.force_until(target, None)
    }

    /// Group-commit slow path: make bytes `< target` durable, either by
    /// leading a batch or by riding a concurrent leader's.
    fn force_until(&self, target: u64, lsn_for_event: Option<Lsn>) -> StoreResult<()> {
        if self.flushed.load(Ordering::Acquire) >= target {
            return Ok(());
        }
        let mut st = self.force.lock();
        st.pending += 1;
        let mut waited = false;
        let result = loop {
            if self.flushed.load(Ordering::Acquire) >= target {
                break Ok(());
            }
            if st.leader {
                // A leader is writing; its batch may cover us. Wait for it.
                if !waited {
                    waited = true;
                    self.force_waiters.inc();
                }
                st = self.force_cv.wait(st);
                continue;
            }
            // Become the leader. Before draining, linger briefly so
            // committers already in flight register and ride this batch —
            // the eager-election bug drained only the leader's own bytes
            // and pushed every concurrent commit into the *next* round.
            st.leader = true;
            st = self.linger(st);
            // Group is snapshotted *after* the linger window, so the batch
            // covers everyone who arrived during it.
            let group = st.pending;
            drop(st);
            let res = self.lead_force(lsn_for_event);
            st = self.force.lock();
            st.leader = false;
            if self.linger_adaptive.load(Ordering::Relaxed) {
                // AIMD: a batch that grouped (or left late arrivals still
                // pending) says the window pays for itself; a solo batch
                // with a quiet queue says halve it back toward zero.
                let cur = self.linger_cur.load(Ordering::Relaxed);
                let next = if group >= 2 || st.pending > group {
                    let max = self.linger_max.load(Ordering::Relaxed);
                    cur.saturating_mul(2).max(LINGER_STEP_NS).min(max)
                } else {
                    cur / 2
                };
                self.linger_cur.store(next, Ordering::Relaxed);
            }
            self.force_cv.notify_all();
            if res.is_err() {
                break res;
            }
            // Loop: `flushed` now covers `target` (goal >= target).
        };
        st.pending -= 1;
        drop(st);
        result
    }

    /// Leader-side bounded linger: freshly elected, wait a short adaptive
    /// window for committers already in flight to register so their commits
    /// ride this batch. Exits after a quiet slice (no new registrations —
    /// the cohort has assembled) or when the budget runs out; with a zero
    /// budget (the cold-start and single-threaded steady state) no timed
    /// wait is taken at all, keeping sequential runs byte-deterministic.
    /// While [`LogManager::set_linger_hold`] holds the window open, the
    /// leader parks on the condvar instead of the clock, which lets
    /// scripted commit schedules assemble a cohort deterministically.
    fn linger<'g>(
        &self,
        mut st: pitree_pagestore::sync::MutexGuard<'g, ForceState>,
    ) -> pitree_pagestore::sync::MutexGuard<'g, ForceState> {
        let budget = self.linger_cur.load(Ordering::Relaxed);
        if budget == 0 && !st.linger_hold {
            return st;
        }
        let timer = Stopwatch::start();
        loop {
            while st.linger_hold {
                st = self.force_cv.wait(st);
            }
            let spent = timer.elapsed_ns();
            if spent >= budget {
                break;
            }
            let before = st.pending;
            let slice = (budget / 4).max(LINGER_SLICE_MIN_NS).min(budget - spent);
            let (g, _) = self
                .force_cv
                .wait_timeout(st, std::time::Duration::from_nanos(slice));
            st = g;
            if st.linger_hold {
                continue;
            }
            if st.pending <= before {
                break; // quiet slice: waiters are no longer trending up
            }
        }
        self.linger_ns.record(timer.elapsed_ns());
        st
    }

    /// Number of force calls currently registered in the group-commit slow
    /// path. Test instrumentation: scripted schedules use it to know when a
    /// cohort has fully assembled behind a held linger window.
    pub fn pending_forces(&self) -> u64 {
        self.force.lock().pending
    }

    /// Hold every elected leader inside its linger window (`true`) or
    /// release it (`false`). With the window held, commits and force
    /// registrations proceed but no batch is drained — the deterministic
    /// freeze the commit-schedule rig and the linger-crash tests build on.
    pub fn set_linger_hold(&self, hold: bool) {
        let mut st = self.force.lock();
        st.linger_hold = hold;
        drop(st);
        self.force_cv.notify_all();
    }

    /// Pin the linger budget to `ns` and disable adaptation (benchmarks and
    /// tests that need a fixed window).
    pub fn pin_linger_ns(&self, ns: u64) {
        self.linger_adaptive.store(false, Ordering::Relaxed);
        self.linger_cur.store(ns, Ordering::Relaxed);
    }

    /// Cap the adaptive linger window; `0` disables lingering entirely.
    pub fn set_max_linger_ns(&self, ns: u64) {
        self.linger_max.store(ns, Ordering::Relaxed);
        self.linger_cur.fetch_min(ns, Ordering::Relaxed);
    }

    /// The current linger budget in nanoseconds (adaptive unless pinned).
    pub fn linger_budget_ns(&self) -> u64 {
        self.linger_cur.load(Ordering::Relaxed)
    }

    /// Leader: drain the **whole** tail as of drain time, write one batch,
    /// publish `flushed`. Draining past the leader's own goal is always
    /// safe (more of the log durable, still frame-aligned — appends are
    /// atomic under the tail mutex) and it is what makes pipelined commits
    /// group: the oldest ack's force carries every commit published behind
    /// it. Runs with **no** lock held across the store write.
    fn lead_force(&self, lsn_for_event: Option<Lsn>) -> StoreResult<()> {
        let (batch_base, batch, batch_commits) = {
            let mut tail = self.tail.lock();
            let end = tail.base + tail.buf.len() as u64;
            if end <= tail.base {
                return Ok(()); // covered by an earlier batch
            }
            let batch = std::mem::take(&mut tail.buf);
            let batch_base = tail.base;
            tail.base = end;
            // Commit frames ending inside the batch are the ones this force
            // makes durable (batches end on frame boundaries).
            let batch_commits = std::mem::take(&mut tail.commit_ends);
            (batch_base, batch, batch_commits)
        };
        let timer = Stopwatch::start();
        let res = self.store.append(&batch);
        self.force_ns.record(timer.elapsed_ns());
        match res {
            Ok(()) => {
                let end = batch_base + batch.len() as u64;
                self.flushed.store(end, Ordering::Release);
                self.forces.inc();
                // The group-commit size: commit records this single store
                // append made durable. Batches carrying no commit (e.g. a
                // page-flush WAL force over updates only) are not groups.
                if !batch_commits.is_empty() {
                    self.group_size.record(batch_commits.len() as u64);
                }
                let event_lsn = lsn_for_event.map_or(end, |l| l.0);
                self.rec
                    .event(EventKind::WalForce, event_lsn, batch.len() as u64);
                Ok(())
            }
            Err(e) => {
                // Splice the batch back in front of the tail so the log
                // image stays contiguous; a later force (or a follower
                // promoted to leader) retries the same bytes.
                let mut tail = self.tail.lock();
                let rest = std::mem::take(&mut tail.buf);
                let mut restored = batch;
                restored.extend_from_slice(&rest);
                tail.buf = restored;
                tail.base = batch_base;
                let rest_ends = std::mem::take(&mut tail.commit_ends);
                let mut restored_ends = batch_commits;
                restored_ends.extend(rest_ends);
                tail.commit_ends = restored_ends;
                Err(e)
            }
        }
    }

    /// Scan all records from `from` (or the start): the durable suffix
    /// concatenated with the volatile tail. Stops at the first torn/corrupt
    /// frame.
    ///
    /// Only bytes from `from` onward are read from the store, so a scan
    /// seeded at the master checkpoint costs O(log written since that
    /// checkpoint), not O(total log) — the property that keeps restart
    /// analysis time bounded by the checkpoint interval rather than the
    /// age of the database (see `RECOVERY.md`).
    pub fn scan(&self, from: Option<Lsn>) -> StoreResult<Vec<LogRecord>> {
        let from_off = from.map_or(0, |l| l.0.saturating_sub(1));
        loop {
            let durable_len = self.store.durable_len();
            {
                let tail = self.tail.lock();
                if durable_len == tail.base {
                    // The suffix starts inside the durable prefix (read
                    // just that range) or inside the tail (read nothing).
                    let base = from_off.min(tail.base);
                    let mut all = if base < tail.base {
                        self.store.read_range(base, (tail.base - base) as usize)?
                    } else {
                        Vec::new()
                    };
                    all.extend_from_slice(&tail.buf);
                    return Ok(scan_bytes_base(&all, base, from));
                }
            }
            // A leader's batch is in flight between the snapshot and the
            // tail (durable is a stale prefix of `base`). Wait and retry.
            let st = self.force.lock();
            if st.leader {
                drop(self.force_cv.wait(st));
            }
        }
    }

    /// A copy of the volatile (unforced) tail bytes — the part of the log a
    /// crash would lose. Exposed for crash-harness tests that freeze the
    /// "batch written, `flushed` not yet published" window.
    pub fn unflushed_tail(&self) -> Vec<u8> {
        let tail = self.tail.lock();
        tail.buf.clone()
    }
}

impl WalFlush for LogManager {
    fn flush_to(&self, lsn: Lsn) -> StoreResult<()> {
        self.force_to(lsn)
    }
}

/// Decode the record whose frame starts at `lsn` within `buf`.
pub fn read_at(buf: &[u8], lsn: Lsn) -> StoreResult<LogRecord> {
    read_at_base(buf, 0, lsn)
}

/// [`read_at`] against a buffer whose first byte sits at log offset `base`.
fn read_at_base(buf: &[u8], base: u64, lsn: Lsn) -> StoreResult<LogRecord> {
    let abs = lsn
        .0
        .checked_sub(1)
        .ok_or_else(|| StoreError::Corrupt("null lsn".into()))?;
    let off = abs
        .checked_sub(base)
        .ok_or_else(|| StoreError::Corrupt(format!("lsn {lsn} below buffer base {base}")))?
        as usize;
    let len = le_u32_at(buf, off)
        .ok_or_else(|| StoreError::Corrupt(format!("lsn {lsn} beyond log end")))?
        as usize;
    let sum = le_u32_at(buf, off + 4)
        .ok_or_else(|| StoreError::Corrupt(format!("lsn {lsn} beyond log end")))?;
    let body = off
        .checked_add(8)
        .and_then(|s| s.checked_add(len).and_then(|e| buf.get(s..e)))
        .ok_or_else(|| StoreError::Corrupt(format!("torn record at {lsn}")))?;
    if checksum(body) != sum {
        return Err(StoreError::Corrupt(format!("bad checksum at {lsn}")));
    }
    LogRecord::decode_body(lsn, body)
}

/// Decode every complete record in `buf` starting at `from`; stops cleanly
/// at a torn tail.
pub fn scan_bytes(buf: &[u8], from: Option<Lsn>) -> Vec<LogRecord> {
    scan_bytes_base(buf, 0, from)
}

/// [`scan_bytes`] against a buffer whose first byte sits at log offset
/// `base` (a `from` below the buffer is clamped to its start).
fn scan_bytes_base(buf: &[u8], base: u64, from: Option<Lsn>) -> Vec<LogRecord> {
    let mut out = Vec::new();
    let mut lsn = from.unwrap_or(Lsn(base + 1)).max(Lsn(base + 1));
    while let Ok(rec) = read_at_base(buf, base, lsn) {
        let Some(len) = le_u32_at(buf, (lsn.0 - 1 - base) as usize) else {
            break;
        };
        lsn = Lsn(lsn.0 + 8 + len as u64);
        out.push(rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ActionIdentity, UndoInfo};
    use pitree_pagestore::{PageId, PageOp};

    fn mgr() -> (Arc<MemLogStore>, LogManager) {
        let store = Arc::new(MemLogStore::new());
        let log = LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap();
        (store, log)
    }

    #[test]
    fn append_read_roundtrip() {
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let l1 = log.append(
            a,
            Lsn::ZERO,
            RecordKind::Begin {
                identity: ActionIdentity::Transaction,
            },
        );
        let l2 = log.append(a, l1, RecordKind::Commit);
        assert!(l1 < l2);
        let r1 = log.read(l1).unwrap();
        assert_eq!(r1.action, a);
        assert!(matches!(r1.kind, RecordKind::Begin { .. }));
        let r2 = log.read(l2).unwrap();
        assert_eq!(r2.prev, l1);
        assert!(matches!(r2.kind, RecordKind::Commit));
    }

    #[test]
    fn nothing_durable_until_forced() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        assert_eq!(store.durable_len(), 0);
        log.force_all().unwrap();
        assert!(store.durable_len() > 0);
    }

    #[test]
    fn force_to_drains_greedily() {
        // `force_to(lsn)` guarantees durability *through* `lsn`'s frame and
        // the leader drains the whole tail available at drain time — the
        // greedy batch that lets the oldest pipelined ack carry every
        // commit published behind it.
        let (store, log) = mgr();
        let a = log.next_action_id();
        let l1 = log.append(a, Lsn::ZERO, RecordKind::Commit);
        let l2 = log.append(a, l1, RecordKind::End);
        log.force_to(l1).unwrap();
        assert!(log.flushed_lsn() >= l1, "forced frame must be durable");
        let durable = store.durable_bytes().unwrap();
        let recs = scan_bytes(&durable, None);
        assert_eq!(recs.len(), 2, "the greedy leader drains the whole tail");
        assert!(matches!(recs[0].kind, RecordKind::Commit));
        assert!(log.flushed_lsn() >= l2);
        assert!(log.unflushed_tail().is_empty());
    }

    #[test]
    fn read_falls_back_to_store_after_force() {
        // The flushed prefix is no longer retained in memory; reads of old
        // LSNs must come back from the store.
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let l1 = log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.force_all().unwrap();
        assert!(
            log.unflushed_tail().is_empty(),
            "forced bytes must leave the volatile tail"
        );
        let r1 = log.read(l1).unwrap();
        assert!(matches!(r1.kind, RecordKind::Commit));
        // And a record appended afterwards still reads from the tail.
        let l2 = log.append(a, l1, RecordKind::End);
        let r2 = log.read(l2).unwrap();
        assert!(matches!(r2.kind, RecordKind::End));
        assert_eq!(r2.prev, l1);
    }

    #[test]
    fn force_to_torn_tail_is_an_error_not_a_panic() {
        // Regression for the old `buf[off..off + 4].try_into().unwrap()`:
        // a force targeting an LSN whose frame header is cut off by the
        // tail end must surface `StoreError::Corrupt`.
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let l1 = log.append(a, Lsn::ZERO, RecordKind::Commit);
        {
            // Truncate the volatile tail mid-header (2 bytes into l1's frame).
            let mut tail = log.tail.lock();
            tail.buf.truncate(2);
            log.tail_end
                .store(tail.base + tail.buf.len() as u64, Ordering::Release);
        }
        assert!(matches!(
            log.force_to(l1),
            Err(StoreError::Corrupt(msg)) if msg.contains("torn volatile tail")
        ));
        // A frame whose header survives but whose body is cut short is also
        // a typed error.
        let (_s2, log2) = mgr();
        let l1 = log2.append(a, Lsn::ZERO, RecordKind::Commit);
        {
            let mut tail = log2.tail.lock();
            let cut = tail.buf.len() - 3;
            tail.buf.truncate(cut);
            log2.tail_end
                .store(tail.base + tail.buf.len() as u64, Ordering::Release);
        }
        assert!(matches!(
            log2.force_to(l1),
            Err(StoreError::Corrupt(msg)) if msg.contains("torn record")
        ));
    }

    #[test]
    fn lsn_reads_are_consistent_without_locks() {
        let (_s, log) = mgr();
        assert_eq!(log.tail_lsn(), Lsn(1));
        assert_eq!(log.flushed_lsn(), Lsn(0));
        let a = log.next_action_id();
        let l1 = log.append(a, Lsn::ZERO, RecordKind::Commit);
        assert!(log.tail_lsn() > l1);
        log.force_all().unwrap();
        assert_eq!(log.flushed_lsn().0 + 1, log.tail_lsn().0);
    }

    #[test]
    fn scan_recovers_all_records() {
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let mut prev = Lsn::ZERO;
        prev = log.append(
            a,
            prev,
            RecordKind::Begin {
                identity: ActionIdentity::SystemTransaction,
            },
        );
        for slot in 0..5u16 {
            prev = log.append(
                a,
                prev,
                RecordKind::Update {
                    pid: PageId(2),
                    redo: PageOp::InsertSlot {
                        slot,
                        bytes: vec![slot as u8],
                    },
                    undo: UndoInfo::Physiological(PageOp::RemoveSlot { slot }),
                },
            );
        }
        log.append(a, prev, RecordKind::Commit);
        let recs = log.scan(None).unwrap();
        assert_eq!(recs.len(), 7);
        // Chain integrity.
        for w in recs.windows(2) {
            assert_eq!(w[1].prev, w[0].lsn);
        }
    }

    #[test]
    fn scan_spans_durable_prefix_and_volatile_tail() {
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let l1 = log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.force_all().unwrap();
        log.append(a, l1, RecordKind::End);
        let recs = log.scan(None).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[1].kind, RecordKind::End));
    }

    /// A seeded scan must read only the suffix, and that suffix must equal
    /// the tail of a full scan — whether `from` lands in the durable prefix
    /// or inside the volatile tail.
    #[test]
    fn seeded_scan_equals_full_scan_suffix() {
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let mut lsns = Vec::new();
        let mut prev = Lsn::ZERO;
        for i in 0..4 {
            prev = log.append(
                a,
                prev,
                RecordKind::Update {
                    pid: PageId(i),
                    redo: PageOp::InsertSlot {
                        slot: 0,
                        bytes: vec![i as u8],
                    },
                    undo: UndoInfo::Physiological(PageOp::RemoveSlot { slot: 0 }),
                },
            );
            lsns.push(prev);
            if i == 1 {
                log.force_all().unwrap(); // records 0/1 durable, 2/3 volatile
            }
        }
        let full = log.scan(None).unwrap();
        assert_eq!(full.len(), 4);
        for (i, &from) in lsns.iter().enumerate() {
            let suffix = log.scan(Some(from)).unwrap();
            assert_eq!(suffix.len(), 4 - i, "scan from record {i}");
            assert_eq!(suffix[0].lsn, from);
            assert_eq!(
                suffix.iter().map(|r| r.lsn).collect::<Vec<_>>(),
                full[i..].iter().map(|r| r.lsn).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn torn_tail_stops_scan() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.append(a, Lsn::ZERO, RecordKind::End);
        log.force_all().unwrap();
        let full = store.durable_len();
        // Truncate mid-way through the second record.
        let torn = store.snapshot_truncated(full - 3);
        let recs = scan_bytes(&torn.durable_bytes().unwrap(), None);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn corrupt_checksum_stops_scan() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.force_all().unwrap();
        let mut bytes = store.durable_bytes().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(scan_bytes(&bytes, None).is_empty());
    }

    #[test]
    fn reopen_sees_durable_records() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.force_all().unwrap();
        let log2 = LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap();
        assert_eq!(log2.scan(None).unwrap().len(), 1);
        assert_eq!(log2.flushed_lsn().0, store.durable_len());
    }

    #[test]
    fn master_record_roundtrip() {
        let (store, _log) = mgr();
        store.set_master(Lsn(42));
        assert_eq!(store.master(), Lsn(42));
        let snap = store.snapshot();
        assert_eq!(snap.master(), Lsn(42));
    }

    #[test]
    fn read_range_default_and_override_agree() {
        let store = MemLogStore::new();
        store.append(b"0123456789").unwrap();
        assert_eq!(store.read_range(3, 4).unwrap(), b"3456");
        assert!(store.read_range(8, 4).is_err());
    }

    #[test]
    fn action_id_reservation() {
        let (_s, log) = mgr();
        log.reserve_action_ids(100);
        assert_eq!(log.next_action_id(), ActionId(101));
    }
}
