//! The log manager: append, force, and scan.
//!
//! LSNs are `offset + 1` where `offset` is the record frame's byte position,
//! so `Lsn::ZERO` stays free as the null LSN. Frames are
//! `[len u32][checksum u32][body]`; the checksum lets recovery stop cleanly
//! at a torn tail, which the crash harness exploits by truncating the durable
//! log at arbitrary byte positions.
//!
//! Durability is split between the in-memory tail (`buf`) and a [`LogStore`]
//! holding what has been *forced*. Atomic-action commits are **not** forced
//! (§4.3.1, "relative durability"); forces happen at user-transaction commit
//! and through the buffer pool's WAL hook before a dirty page write.

use crate::codec::checksum;
use crate::record::{ActionId, LogRecord, RecordKind};
use pitree_obs::{Counter, EventKind, Hist, Recorder, Stopwatch};
use pitree_pagestore::buffer::WalFlush;
use pitree_pagestore::fault::{FaultSite, InjectorHandle};
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{Lsn, StoreError, StoreResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Durable log storage.
pub trait LogStore: Send + Sync {
    /// Durably append bytes.
    fn append(&self, bytes: &[u8]) -> StoreResult<()>;
    /// The full durable contents (recovery input).
    fn durable_bytes(&self) -> StoreResult<Vec<u8>>;
    /// Durable length in bytes.
    fn durable_len(&self) -> u64;
    /// Record the master LSN (last checkpoint).
    fn set_master(&self, lsn: Lsn);
    /// The recorded master LSN.
    fn master(&self) -> Lsn;
}

/// In-memory durable log used by tests and the crash harness.
pub struct MemLogStore {
    durable: Mutex<Vec<u8>>,
    master: AtomicU64,
    injector: Option<InjectorHandle>,
}

impl std::fmt::Debug for MemLogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemLogStore").finish_non_exhaustive()
    }
}

impl MemLogStore {
    /// Empty store.
    pub fn new() -> MemLogStore {
        MemLogStore {
            durable: Mutex::new(Vec::new()),
            master: AtomicU64::new(0),
            injector: None,
        }
    }

    /// Empty store whose appends (log forces) consult `injector` first —
    /// the simulation kit's crash point at every WAL-flush boundary.
    pub fn with_injector(injector: InjectorHandle) -> MemLogStore {
        MemLogStore {
            durable: Mutex::new(Vec::new()),
            master: AtomicU64::new(0),
            injector: Some(injector),
        }
    }

    /// A copy of the durable contents truncated to `len` bytes — the
    /// survivor of a crash whose final force was cut short. The snapshot
    /// carries no injector: recovery must run unimpeded.
    pub fn snapshot_truncated(&self, len: u64) -> MemLogStore {
        let durable = self.durable.lock();
        let cut = (len as usize).min(durable.len());
        MemLogStore {
            durable: Mutex::new(durable[..cut].to_vec()),
            master: AtomicU64::new(self.master.load(Ordering::SeqCst)),
            injector: None,
        }
    }

    /// A copy of the full durable contents (a crash right after a force).
    pub fn snapshot(&self) -> MemLogStore {
        self.snapshot_truncated(u64::MAX)
    }
}

impl Default for MemLogStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> StoreResult<()> {
        if let Some(inj) = &self.injector {
            inj.check(FaultSite::LogAppend { bytes: bytes.len() })?;
        }
        self.durable.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn durable_bytes(&self) -> StoreResult<Vec<u8>> {
        Ok(self.durable.lock().clone())
    }

    fn durable_len(&self) -> u64 {
        self.durable.lock().len() as u64
    }

    fn set_master(&self, lsn: Lsn) {
        self.master.store(lsn.0, Ordering::SeqCst);
    }

    fn master(&self) -> Lsn {
        Lsn(self.master.load(Ordering::SeqCst))
    }
}

/// File-backed log store for benchmarks. The master LSN lives in a sibling
/// `.master` file.
pub struct FileLogStore {
    file: Mutex<File>,
    master_path: std::path::PathBuf,
    master: AtomicU64,
}

impl std::fmt::Debug for FileLogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileLogStore").finish_non_exhaustive()
    }
}

impl FileLogStore {
    /// Open (or create) the log file at `path`.
    pub fn open(path: &Path) -> StoreResult<FileLogStore> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| StoreError::Corrupt(format!("open log {path:?}: {e}")))?;
        let master_path = path.with_extension("master");
        let master = std::fs::read(&master_path)
            .ok()
            .and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0);
        Ok(FileLogStore {
            file: Mutex::new(file),
            master_path,
            master: AtomicU64::new(master),
        })
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> StoreResult<()> {
        let mut f = self.file.lock();
        f.write_all(bytes)
            .and_then(|_| f.sync_data())
            .map_err(|e| StoreError::Corrupt(format!("log append: {e}")))
    }

    fn durable_bytes(&self) -> StoreResult<Vec<u8>> {
        let mut f = self.file.lock();
        let mut out = Vec::new();
        f.seek(SeekFrom::Start(0))
            .and_then(|_| f.read_to_end(&mut out))
            .map_err(|e| StoreError::Corrupt(format!("log read: {e}")))?;
        Ok(out)
    }

    fn durable_len(&self) -> u64 {
        self.file.lock().metadata().map(|m| m.len()).unwrap_or(0)
    }

    fn set_master(&self, lsn: Lsn) {
        self.master.store(lsn.0, Ordering::SeqCst);
        let _ = std::fs::write(&self.master_path, lsn.0.to_le_bytes());
    }

    fn master(&self) -> Lsn {
        Lsn(self.master.load(Ordering::SeqCst))
    }
}

struct LogInner {
    /// The whole log, durable prefix + volatile tail.
    buf: Vec<u8>,
    /// Bytes already in the durable store.
    flushed: u64,
}

/// Stable numeric code for a record kind, used as the `b` payload of
/// [`EventKind::WalAppend`] events (documented in `OBSERVABILITY.md`).
pub fn record_kind_code(kind: &RecordKind) -> u64 {
    match kind {
        RecordKind::Begin { .. } => 0,
        RecordKind::Commit => 1,
        RecordKind::Abort => 2,
        RecordKind::End => 3,
        RecordKind::Update { .. } => 4,
        RecordKind::Clr { .. } => 5,
        RecordKind::LogicalClr { .. } => 6,
        RecordKind::Checkpoint { .. } => 7,
    }
}

/// The log manager. Shared via `Arc`; also registered as the buffer pool's
/// [`WalFlush`] hook.
pub struct LogManager {
    inner: Mutex<LogInner>,
    store: Arc<dyn LogStore>,
    next_action: AtomicU64,
    rec: Recorder,
    appends: Counter,
    forces: Counter,
    force_ns: Hist,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager").finish_non_exhaustive()
    }
}

impl LogManager {
    /// A log manager over `store`, reading back any existing durable
    /// contents (recovery will scan them). Records into a fresh private
    /// registry; see [`LogManager::open_observed`].
    pub fn open(store: Arc<dyn LogStore>) -> StoreResult<LogManager> {
        LogManager::open_observed(store, Recorder::detached())
    }

    /// [`LogManager::open`] recording `wal.*` metrics and WAL events into
    /// `rec`'s registry (the store assembly shares one registry across all
    /// layers).
    pub fn open_observed(store: Arc<dyn LogStore>, rec: Recorder) -> StoreResult<LogManager> {
        let buf = store.durable_bytes()?;
        let flushed = buf.len() as u64;
        Ok(LogManager {
            inner: Mutex::new(LogInner { buf, flushed }),
            store,
            next_action: AtomicU64::new(1),
            appends: rec.counter("wal.appends"),
            forces: rec.counter("wal.forces"),
            force_ns: rec.hist("wal.force_ns"),
            rec,
        })
    }

    /// The recorder this log manager reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The durable store (for crash snapshots and the master record).
    pub fn store(&self) -> &Arc<dyn LogStore> {
        &self.store
    }

    /// Allocate a fresh action id.
    pub fn next_action_id(&self) -> ActionId {
        ActionId(self.next_action.fetch_add(1, Ordering::SeqCst))
    }

    /// Bump the action-id counter past `floor` (recovery calls this with the
    /// highest id seen in the log).
    pub fn reserve_action_ids(&self, floor: u64) {
        self.next_action.fetch_max(floor + 1, Ordering::SeqCst);
    }

    /// Append a record, returning its LSN. Does not force.
    pub fn append(&self, action: ActionId, prev: Lsn, kind: RecordKind) -> Lsn {
        let rec = LogRecord {
            lsn: Lsn::ZERO,
            prev,
            action,
            kind,
        };
        let kind_code = record_kind_code(&rec.kind);
        let body = rec.encode_body();
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.buf.len() as u64 + 1);
        inner
            .buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(&checksum(&body).to_le_bytes());
        inner.buf.extend_from_slice(&body);
        drop(inner);
        self.appends.inc();
        self.rec.event(EventKind::WalAppend, lsn.0, kind_code);
        lsn
    }

    /// Read the record at `lsn` (from the in-memory image, which includes
    /// the volatile tail).
    pub fn read(&self, lsn: Lsn) -> StoreResult<LogRecord> {
        let inner = self.inner.lock();
        read_at(&inner.buf, lsn)
    }

    /// Current end of log (the LSN the *next* record will get).
    pub fn tail_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().buf.len() as u64 + 1)
    }

    /// LSN up to which the log is durable.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().flushed)
    }

    /// Force the log through the record that *starts* at `lsn`.
    pub fn force_to(&self, lsn: Lsn) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        if lsn == Lsn::ZERO {
            return Ok(());
        }
        let off = (lsn.0 - 1) as usize;
        if off as u64 >= inner.flushed && off < inner.buf.len() {
            let len = u32::from_le_bytes(inner.buf[off..off + 4].try_into().unwrap()) as usize;
            let end = (off + 8 + len) as u64;
            let start = inner.flushed as usize;
            let timer = Stopwatch::start();
            self.store.append(&inner.buf[start..end as usize])?;
            self.force_ns.record(timer.elapsed_ns());
            inner.flushed = end;
            let bytes = end - start as u64;
            drop(inner);
            self.forces.inc();
            self.rec.event(EventKind::WalForce, lsn.0, bytes);
        }
        Ok(())
    }

    /// Force the entire log.
    pub fn force_all(&self) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        let start = inner.flushed as usize;
        if start < inner.buf.len() {
            let timer = Stopwatch::start();
            self.store.append(&inner.buf[start..])?;
            self.force_ns.record(timer.elapsed_ns());
            let end = inner.buf.len() as u64;
            inner.flushed = end;
            let bytes = end - start as u64;
            drop(inner);
            self.forces.inc();
            self.rec.event(EventKind::WalForce, end, bytes);
        }
        Ok(())
    }

    /// Scan all records in the in-memory image from `from` (or the start).
    /// Stops at the first torn/corrupt frame.
    pub fn scan(&self, from: Option<Lsn>) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        scan_bytes(&inner.buf, from)
    }
}

impl WalFlush for LogManager {
    fn flush_to(&self, lsn: Lsn) -> StoreResult<()> {
        self.force_to(lsn)
    }
}

/// Decode the record whose frame starts at `lsn` within `buf`.
pub fn read_at(buf: &[u8], lsn: Lsn) -> StoreResult<LogRecord> {
    let off = (lsn
        .0
        .checked_sub(1)
        .ok_or_else(|| StoreError::Corrupt("null lsn".into()))?) as usize;
    if off + 8 > buf.len() {
        return Err(StoreError::Corrupt(format!("lsn {lsn} beyond log end")));
    }
    let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
    let sum = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
    if off + 8 + len > buf.len() {
        return Err(StoreError::Corrupt(format!("torn record at {lsn}")));
    }
    let body = &buf[off + 8..off + 8 + len];
    if checksum(body) != sum {
        return Err(StoreError::Corrupt(format!("bad checksum at {lsn}")));
    }
    LogRecord::decode_body(lsn, body)
}

/// Decode every complete record in `buf` starting at `from`; stops cleanly
/// at a torn tail.
pub fn scan_bytes(buf: &[u8], from: Option<Lsn>) -> Vec<LogRecord> {
    let mut out = Vec::new();
    let mut lsn = from.unwrap_or(Lsn(1));
    while let Ok(rec) = read_at(buf, lsn) {
        let len = {
            let off = (lsn.0 - 1) as usize;
            u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize
        };
        lsn = Lsn(lsn.0 + 8 + len as u64);
        out.push(rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ActionIdentity, UndoInfo};
    use pitree_pagestore::{PageId, PageOp};

    fn mgr() -> (Arc<MemLogStore>, LogManager) {
        let store = Arc::new(MemLogStore::new());
        let log = LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap();
        (store, log)
    }

    #[test]
    fn append_read_roundtrip() {
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let l1 = log.append(
            a,
            Lsn::ZERO,
            RecordKind::Begin {
                identity: ActionIdentity::Transaction,
            },
        );
        let l2 = log.append(a, l1, RecordKind::Commit);
        assert!(l1 < l2);
        let r1 = log.read(l1).unwrap();
        assert_eq!(r1.action, a);
        assert!(matches!(r1.kind, RecordKind::Begin { .. }));
        let r2 = log.read(l2).unwrap();
        assert_eq!(r2.prev, l1);
        assert!(matches!(r2.kind, RecordKind::Commit));
    }

    #[test]
    fn nothing_durable_until_forced() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        assert_eq!(store.durable_len(), 0);
        log.force_all().unwrap();
        assert!(store.durable_len() > 0);
    }

    #[test]
    fn force_to_is_partial() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        let l1 = log.append(a, Lsn::ZERO, RecordKind::Commit);
        let _l2 = log.append(a, l1, RecordKind::End);
        log.force_to(l1).unwrap();
        let durable = store.durable_bytes().unwrap();
        let recs = scan_bytes(&durable, None);
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].kind, RecordKind::Commit));
    }

    #[test]
    fn scan_recovers_all_records() {
        let (_s, log) = mgr();
        let a = log.next_action_id();
        let mut prev = Lsn::ZERO;
        prev = log.append(
            a,
            prev,
            RecordKind::Begin {
                identity: ActionIdentity::SystemTransaction,
            },
        );
        for slot in 0..5u16 {
            prev = log.append(
                a,
                prev,
                RecordKind::Update {
                    pid: PageId(2),
                    redo: PageOp::InsertSlot {
                        slot,
                        bytes: vec![slot as u8],
                    },
                    undo: UndoInfo::Physiological(PageOp::RemoveSlot { slot }),
                },
            );
        }
        log.append(a, prev, RecordKind::Commit);
        let recs = log.scan(None);
        assert_eq!(recs.len(), 7);
        // Chain integrity.
        for w in recs.windows(2) {
            assert_eq!(w[1].prev, w[0].lsn);
        }
    }

    #[test]
    fn torn_tail_stops_scan() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.append(a, Lsn::ZERO, RecordKind::End);
        log.force_all().unwrap();
        let full = store.durable_len();
        // Truncate mid-way through the second record.
        let torn = store.snapshot_truncated(full - 3);
        let recs = scan_bytes(&torn.durable_bytes().unwrap(), None);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn corrupt_checksum_stops_scan() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.force_all().unwrap();
        let mut bytes = store.durable_bytes().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(scan_bytes(&bytes, None).is_empty());
    }

    #[test]
    fn reopen_sees_durable_records() {
        let (store, log) = mgr();
        let a = log.next_action_id();
        log.append(a, Lsn::ZERO, RecordKind::Commit);
        log.force_all().unwrap();
        let log2 = LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap();
        assert_eq!(log2.scan(None).len(), 1);
        assert_eq!(log2.flushed_lsn().0, store.durable_len());
    }

    #[test]
    fn master_record_roundtrip() {
        let (store, _log) = mgr();
        store.set_master(Lsn(42));
        assert_eq!(store.master(), Lsn(42));
        let snap = store.snapshot();
        assert_eq!(snap.master(), Lsn(42));
    }

    #[test]
    fn action_id_reservation() {
        let (_s, log) = mgr();
        log.reserve_action_ids(100);
        assert_eq!(log.next_action_id(), ActionId(101));
    }
}
