#![warn(missing_docs)]
//! Write-ahead logging, atomic actions, and crash recovery.
//!
//! This crate implements §4.3 of Lomet & Salzberg's "Access Method
//! Concurrency with Recovery" (SIGMOD 1992):
//!
//! * **WAL protocol** — log records describing page updates are appended
//!   before the pages reach disk; the buffer pool enforces this via the
//!   [`log::LogManager`]'s `WalFlush` hook.
//! * **Atomic actions** ([`action::AtomicAction`]) — short all-or-nothing
//!   groups of page updates with *relative durability* (§4.3.1): action
//!   commits are not forced; the next forced record carries them.
//! * **Recovery identities** (§4.3.2) — an action can be a separate
//!   transaction, a system transaction, or a nested top action; recovery
//!   treats them uniformly.
//! * **Recovery** ([`recovery::recover`]) — ARIES-style analysis / redo /
//!   undo with CLRs, supporting both page-oriented and logical UNDO (§4.2).
//! * **Instant restart** ([`instant::start_instant`]) — fuzzy checkpoints
//!   ([`recovery::take_checkpoint`]) bound the redo horizon; after analysis
//!   and undo the store opens for traffic, with redo running per page on
//!   first pin and/or in the background partitioned by buffer-pool shard
//!   ([`instant::InstantRecovery::drive`]). See `RECOVERY.md`.
//!
//! Everything here is tree-agnostic: log payloads are the physiological
//! [`pitree_pagestore::PageOp`]s, so the same recovery code serves the
//! B-link, TSB-, and hB-tree instantiations.

pub mod action;
pub mod codec;
pub mod instant;
pub mod log;
pub mod record;
pub mod recovery;

pub use action::AtomicAction;
pub use instant::{start_instant, InstantRecovery};
pub use log::{FileLogStore, LogManager, LogStore, MemLogStore};
pub use record::{ActionId, ActionIdentity, LogRecord, RecordKind, UndoInfo};
pub use recovery::{recover, take_checkpoint, LogicalUndoHandler, RecoveryStats};
