//! Instant restart: open for traffic after analysis, redo per page.
//!
//! Classic [`crate::recovery::recover`] is stop-the-world: no operation can
//! be served until every record in the redo range has been replayed, so MTTR
//! grows linearly with log volume. This module implements the Sauer–Härder
//! style upgrade (PAPERS.md "fast, REDO-only recovery"; Lomet, "Implementing
//! Performance Competitive Logical Recovery"), which the paper's own §4.3.2
//! makes sound for the Π-tree: interrupted structure changes need no special
//! measures, so a tree that is *partially* redone is merely a tree in an
//! intermediate-but-well-formed state.
//!
//! [`start_instant`] runs analysis, partitions the redo range into per-page
//! record lists (a *redo plan*), installs the plan as the buffer pool's
//! [`RedoHook`], runs undo, and returns. From that moment the store serves
//! traffic: any fetch of a page that still owes records replays exactly
//! those records, under the plan shard's mutex, before the pin is handed
//! out — time-to-first-op is O(analysis), not O(log). A background
//! [`InstantRecovery::drive`] walks the remaining plan on N worker threads,
//! partitioned by [`page_shard`] so each pool shard's pages are replayed by
//! one worker, mirroring run-time placement.
//!
//! # Soundness
//!
//! * **Per-page exclusion** — a page's plan entry is removed and replayed
//!   under its plan-shard mutex; a racing second pinner blocks on that mutex
//!   and finds the entry gone. LSN comparison (`page LSN < record LSN`)
//!   makes replay idempotent on top of that.
//! * **Undo sees redone state** — undo runs with the hook installed, so its
//!   own fetches trigger on-demand redo of each loser page first; CLRs are
//!   always computed against fully-repeated history.
//! * **Traffic sees redone state** — every pin goes through the hook until
//!   the plan is empty, at which point the pool uninstalls it
//!   ([`RedoHook::is_complete`]).
//! * **No deadlock** — the hook acquires `plan-shard mutex → page X latch`.
//!   Any thread holding a page latch after the hook is installed pinned that
//!   page through the hook, so its plan entry is already gone and no replayer
//!   can be waiting on that page's latch.
//!
//! Byte-equivalence of serial, parallel, and on-demand redo is gated by the
//! determinism test in `pitree-harness` (`tests/instant_restart.rs`); the
//! crash matrix covers crash-mid-parallel-redo and reads served against a
//! half-recovered store. `RECOVERY.md` has the full walkthrough.

use crate::log::LogManager;
use crate::record::RecordKind;
use crate::recovery::{analyze, undo_pass, LogicalUndoHandler, RecoveryStats};
use pitree_obs::{Counter, Stopwatch};
use pitree_pagestore::buffer::{page_shard, BufferPool, PinnedPage, RedoHook};
use pitree_pagestore::page::PageType;
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{Lsn, PageId, PageOp, StoreError, StoreResult};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of plan shards. Matches the buffer pool's shard-count cap so a
/// [`InstantRecovery::drive`] worker's partition aligns with pool shards.
const REDO_SHARDS: usize = 16;

/// One plan shard: the pending pages hashed here, each with its redo
/// records in log order.
type PlanShard = Mutex<HashMap<PageId, Vec<(Lsn, PageOp)>>>;

thread_local! {
    /// Set while this thread is inside [`InstantRecovery::drive_partition`],
    /// so the hook can tell background replay from traffic-triggered
    /// (`recovery.on_demand_redos`) replay.
    static IN_DRIVE: Cell<bool> = const { Cell::new(false) };
}

/// The redo plan of an instant restart: per-page, LSN-ordered record lists,
/// sharded by [`page_shard`]. Installed as the pool's [`RedoHook`] by
/// [`start_instant`]; drained on demand by traffic and/or in the background
/// by [`InstantRecovery::drive`].
pub struct InstantRecovery {
    /// `plan[s]` holds the pending pages whose `page_shard(pid, REDO_SHARDS)`
    /// is `s`. Each entry is the page's redo records in log order.
    plan: Box<[PlanShard]>,
    /// Pages still owing redo; 0 ⇒ complete and the pool drops the hook.
    pending_pages: AtomicUsize,
    /// `recovery.redo_pages`: pages replayed (background + on demand).
    redo_pages: Counter,
    /// `recovery.on_demand_redos`: pages replayed because traffic touched
    /// them before the background pass did.
    on_demand: Counter,
}

impl std::fmt::Debug for InstantRecovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstantRecovery")
            .field("pending_pages", &self.pending_pages.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl InstantRecovery {
    /// The plan shard that owns `pid`.
    fn shard_slot(&self, pid: PageId) -> StoreResult<&PlanShard> {
        let idx = page_shard(pid, self.plan.len());
        self.plan.get(idx).ok_or_else(|| {
            StoreError::Corrupt(format!("redo plan shard {idx} out of range for page {pid}"))
        })
    }

    /// Pages still owing redo records.
    pub fn pending_page_count(&self) -> usize {
        self.pending_pages.load(Ordering::SeqCst)
    }

    /// Whether every page's redo has completed.
    pub fn is_complete(&self) -> bool {
        self.pending_page_count() == 0
    }

    /// Replay `page`'s pending records, if any. The plan-shard mutex is held
    /// across the replay: that is the per-page exclusion that keeps two
    /// first-pinners from applying the same records concurrently.
    fn redo_page(&self, page: &PinnedPage<'_>) -> StoreResult<()> {
        let pid = page.id();
        let mut shard = self.shard_slot(pid)?.lock();
        let records = match shard.remove(&pid) {
            Some(r) => r,
            None => return Ok(()),
        };
        let mut g = page.x();
        let mut marked = false;
        for (lsn, op) in &records {
            if g.lsn() < *lsn {
                if !marked {
                    // pitree-lint: allow(log-before-dirty) redo replays records that are already durable in the log
                    page.mark_dirty_at(*lsn);
                    marked = true;
                }
                if let Err(e) = op.apply(&mut g) {
                    // Put the plan entry back so a retry (or the background
                    // drive) sees the page as still pending; the applied
                    // prefix is skipped by the LSN check on the next pass.
                    drop(g);
                    shard.insert(pid, records);
                    return Err(e);
                }
                g.set_lsn(*lsn);
            }
        }
        drop(g);
        self.pending_pages.fetch_sub(1, Ordering::SeqCst);
        self.redo_pages.inc();
        if !IN_DRIVE.with(Cell::get) {
            self.on_demand.inc();
        }
        Ok(())
    }

    /// Whether `pid` still owes redo records.
    fn pending_for(&self, pid: PageId) -> bool {
        match self.shard_slot(pid) {
            Ok(slot) => slot.lock().contains_key(&pid),
            Err(_) => false,
        }
    }

    /// Replay every remaining page of this worker's plan shards
    /// (`shard % stride == worker`). Fetching a pending page through the
    /// pool routes it back into the installed hook — the fetch is the
    /// replay; pages another thread drained in the meantime are no-ops.
    ///
    /// Public (not just used by [`InstantRecovery::drive`]) so the crash
    /// matrix can complete one worker's partition and crash with the rest of
    /// the plan still pending.
    pub fn drive_partition(
        &self,
        pool: &BufferPool,
        worker: usize,
        stride: usize,
    ) -> StoreResult<()> {
        let stride = stride.max(1);
        IN_DRIVE.with(|c| c.set(true));
        let res = self.drive_partition_inner(pool, worker, stride);
        IN_DRIVE.with(|c| c.set(false));
        res
    }

    fn drive_partition_inner(
        &self,
        pool: &BufferPool,
        worker: usize,
        stride: usize,
    ) -> StoreResult<()> {
        for (si, shard) in self.plan.iter().enumerate() {
            if si % stride != worker {
                continue;
            }
            let pids: Vec<PageId> = shard.lock().keys().copied().collect();
            for pid in pids {
                // `fetch_or_create`, not `fetch`: a page that only ever
                // lived in the log has no disk image yet. Already-drained
                // pages resolve to a pool hit or a clean disk read.
                let _pin = pool.fetch_or_create(pid, PageType::Free)?;
            }
        }
        Ok(())
    }

    /// Background redo: replay the whole remaining plan on `workers`
    /// threads, each owning the plan shards `s ≡ w (mod workers)`. Returns
    /// when the plan is fully drained (traffic may have helped); uninstalls
    /// the pool hook if this call finished the plan.
    pub fn drive(&self, pool: &Arc<BufferPool>, workers: usize) -> StoreResult<()> {
        let workers = workers.clamp(1, REDO_SHARDS);
        let result: StoreResult<()> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| s.spawn(move || self.drive_partition(pool, w, workers)))
                .collect();
            let mut first_err = None;
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        first_err.get_or_insert(e);
                    }
                    Err(_) => {
                        first_err.get_or_insert(StoreError::Corrupt(
                            "parallel-redo worker panicked".to_string(),
                        ));
                    }
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        result?;
        if self.is_complete() {
            pool.end_recovery();
        }
        Ok(())
    }
}

impl RedoHook for InstantRecovery {
    fn redo(&self, page: &PinnedPage<'_>) -> StoreResult<()> {
        self.redo_page(page)
    }

    fn pending(&self, pid: PageId) -> bool {
        self.pending_for(pid)
    }

    fn is_complete(&self) -> bool {
        InstantRecovery::is_complete(self)
    }
}

/// Instant restart: analysis + redo-plan build + undo, then open.
///
/// Returns once the store is safe to serve traffic — O(analysis scan), not
/// O(log). The returned [`InstantRecovery`] is already installed as `pool`'s
/// [`RedoHook`] (unless the plan is empty, in which case recovery is already
/// complete); call [`InstantRecovery::drive`] on worker threads to finish
/// redo in the background while serving.
///
/// The returned [`RecoveryStats`] covers analysis and undo; per-page redo
/// work is reported through the `recovery.redo_pages` and
/// `recovery.on_demand_redos` counters as it happens instead of
/// `RecoveryStats::redone`.
pub fn start_instant(
    pool: &Arc<BufferPool>,
    log: &LogManager,
    handler: Option<&dyn LogicalUndoHandler>,
) -> StoreResult<(Arc<InstantRecovery>, RecoveryStats)> {
    let mut stats = RecoveryStats::default();
    let rec = log.recorder().clone();
    let timer = Stopwatch::start();

    let analysis = analyze(log, &mut stats)?;

    // Build the redo plan: per-page, LSN-ordered record lists. Log order
    // within a page is preserved by construction (the scan is in LSN order).
    let plan: Box<[PlanShard]> = (0..REDO_SHARDS)
        .map(|_| Mutex::new(HashMap::new()))
        .collect();
    let mut pages = 0usize;
    for r in &analysis.redo_records {
        let (pid, op) = match &r.kind {
            RecordKind::Update { pid, redo, .. } => (*pid, redo),
            RecordKind::Clr { pid, redo, .. } => (*pid, redo),
            _ => continue,
        };
        let idx = page_shard(pid, REDO_SHARDS);
        let slot = plan.get(idx).ok_or_else(|| {
            StoreError::Corrupt(format!("redo plan shard {idx} out of range for page {pid}"))
        })?;
        let mut shard = slot.lock();
        let entry = shard.entry(pid).or_default();
        if entry.is_empty() {
            pages += 1;
        }
        entry.push((r.lsn, op.clone()));
    }

    let ir = Arc::new(InstantRecovery {
        plan,
        pending_pages: AtomicUsize::new(pages),
        redo_pages: rec.counter("recovery.redo_pages"),
        on_demand: rec.counter("recovery.on_demand_redos"),
    });
    rec.hist("recovery.analysis_ns").record(timer.elapsed_ns());

    if pages > 0 {
        pool.begin_recovery(Arc::clone(&ir) as Arc<dyn RedoHook>);
    }

    // Undo runs with the hook installed: each loser page it touches is
    // redone on first pin, so compensation always sees repeated history.
    let timer = Stopwatch::start();
    undo_pass(pool, log, handler, &analysis.active, &mut stats)?;
    log.reserve_action_ids(analysis.max_action);
    log.force_all()?;
    rec.hist("recovery.undo_ns").record(timer.elapsed_ns());

    Ok((ir, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::AtomicAction;
    use crate::log::{LogStore, MemLogStore};
    use crate::record::ActionIdentity;
    use crate::recovery::{recover, take_checkpoint};
    use pitree_pagestore::{DiskManager, MemDisk};

    struct World {
        disk: Arc<MemDisk>,
        store: Arc<MemLogStore>,
        pool: Arc<BufferPool>,
        log: Arc<LogManager>,
    }

    fn world() -> World {
        let disk = Arc::new(MemDisk::new());
        let store = Arc::new(MemLogStore::new());
        let pool = Arc::new(BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            32,
        ));
        let log = Arc::new(LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap());
        pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
        World {
            disk,
            store,
            pool,
            log,
        }
    }

    fn crash(w: &World) -> World {
        let disk = Arc::new(w.disk.snapshot());
        let store = Arc::new(w.store.snapshot());
        let pool = Arc::new(BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            32,
        ));
        let log = Arc::new(LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap());
        pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
        World {
            disk,
            store,
            pool,
            log,
        }
    }

    fn put(w: &World, pid: PageId, slot: u16, bytes: &[u8]) {
        let page = w.pool.fetch_or_create(pid, PageType::Free).unwrap();
        let mut act = AtomicAction::begin(&w.log, ActionIdentity::SystemTransaction);
        {
            let mut g = page.x();
            if g.page_type().unwrap() == PageType::Free {
                act.apply(&page, &mut g, PageOp::Format { ty: PageType::Node })
                    .unwrap();
            }
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot,
                    bytes: bytes.to_vec(),
                },
            )
            .unwrap();
        }
        act.commit_force().unwrap();
    }

    #[test]
    fn on_demand_redo_serves_first_fetch() {
        let w = world();
        put(&w, PageId(7), 0, b"seven");
        put(&w, PageId(8), 0, b"eight");
        let w2 = crash(&w);
        let (ir, stats) = start_instant(&w2.pool, &w2.log, None).unwrap();
        assert!(stats.losers.is_empty());
        assert!(!ir.is_complete());
        assert!(w2.pool.is_recovering());
        // First fetch replays only that page.
        let page = w2.pool.fetch(PageId(7)).unwrap();
        assert_eq!(page.s().get(0).unwrap(), b"seven");
        assert_eq!(ir.pending_page_count(), 1);
        // Draining the rest completes recovery and drops the hook.
        ir.drive(&w2.pool, 2).unwrap();
        assert!(ir.is_complete());
        assert!(!w2.pool.is_recovering());
        let page8 = w2.pool.fetch(PageId(8)).unwrap();
        assert_eq!(page8.s().get(0).unwrap(), b"eight");
    }

    #[test]
    fn instant_and_serial_recovery_agree() {
        let w = world();
        for i in 0..12u64 {
            put(&w, PageId(10 + i % 4), (i / 4) as u16, &i.to_be_bytes());
        }
        // Serial baseline.
        let ws = crash(&w);
        recover(&ws.pool, &ws.log, None).unwrap();
        // Instant with background drive.
        let wi = crash(&w);
        let (ir, _) = start_instant(&wi.pool, &wi.log, None).unwrap();
        ir.drive(&wi.pool, 4).unwrap();
        for pid in 10..14u64 {
            let ps = ws.pool.fetch(PageId(pid)).unwrap();
            let pi = wi.pool.fetch(PageId(pid)).unwrap();
            assert_eq!(ps.s().as_bytes(), pi.s().as_bytes(), "page {pid} diverged");
        }
    }

    #[test]
    fn empty_plan_is_complete_immediately() {
        let w = world();
        put(&w, PageId(7), 0, b"x");
        w.pool.flush_all().unwrap();
        take_checkpoint(&w.pool, &w.log, vec![]).unwrap();
        let w2 = crash(&w);
        let (ir, _) = start_instant(&w2.pool, &w2.log, None).unwrap();
        assert!(ir.is_complete());
        assert!(!w2.pool.is_recovering(), "no plan ⇒ hook never installed");
        let page = w2.pool.fetch(PageId(7)).unwrap();
        assert_eq!(page.s().get(0).unwrap(), b"x");
    }

    #[test]
    fn undo_compensates_against_redone_pages() {
        let w = world();
        put(&w, PageId(7), 0, b"base");
        // Durable update without a durable commit: a loser.
        let page = w.pool.fetch(PageId(7)).unwrap();
        let mut act = AtomicAction::begin(&w.log, ActionIdentity::SeparateTransaction);
        {
            let mut g = page.x();
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 1,
                    bytes: b"half".to_vec(),
                },
            )
            .unwrap();
        }
        w.log.force_all().unwrap();
        act.commit(); // volatile only
        drop(page);
        let w2 = crash(&w);
        let (ir, stats) = start_instant(&w2.pool, &w2.log, None).unwrap();
        assert_eq!(stats.losers.len(), 1);
        assert!(stats.clrs_written >= 1);
        ir.drive(&w2.pool, 2).unwrap();
        let page = w2.pool.fetch(PageId(7)).unwrap();
        let g = page.s();
        assert_eq!(g.slot_count(), 1, "loser insert must be undone");
        assert_eq!(g.get(0).unwrap(), b"base");
    }
}
