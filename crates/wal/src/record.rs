//! Log record types and their binary encoding.
//!
//! Records form per-action backward chains through `prev_lsn`, exactly as in
//! ARIES \[13\]; CLRs carry `undo_next` so that undo after a crash-during-undo
//! never compensates twice. The `PageOp` payloads come from
//! `pitree-pagestore`, keeping the log (and therefore recovery) ignorant of
//! tree semantics.

use crate::codec::{Reader, Writer};
use pitree_pagestore::page::PageType;
use pitree_pagestore::{Lsn, PageId, PageOp, StoreError, StoreResult};
use std::fmt;

/// Identifier of an atomic action or a database transaction. Both are
/// log-chain owners; the paper's §4.3.2 lists the ways an atomic action can
/// be *identified to* the recovery manager — see [`ActionIdentity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u64);

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// How an atomic action is identified to the recovery manager (§4.3.2):
/// "(i) a separate database transaction, (ii) a special system transaction,
/// or (iii) as a nested top level action."
///
/// All three provide atomicity; they differ only in bookkeeping, which is why
/// the paper's approach "works with any of these techniques". Recovery rolls
/// back any identity whose chain lacks a durable `Commit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionIdentity {
    /// A user database transaction (holds database locks; commit is forced).
    Transaction,
    /// An independent atomic action run as a separate transaction.
    SeparateTransaction,
    /// A system transaction: not user-visible, relatively durable commit.
    SystemTransaction,
    /// A nested top action of `parent`: logs under its own chain so that the
    /// parent's rollback does not undo it, mirroring ARIES NTAs.
    NestedTopAction {
        /// The user transaction on whose behalf the action runs.
        parent: ActionId,
    },
}

/// Undo information carried by an update record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoInfo {
    /// Page-oriented undo: apply this inverse operation to the same page
    /// (§4.2's "undos ... must take place on the same page as the original
    /// update").
    Physiological(PageOp),
    /// Logical undo: hand `(tag, payload)` to the tree's registered
    /// [`crate::recovery::LogicalUndoHandler`], which compensates through
    /// the tree's own (idempotent, testable) operations.
    Logical {
        /// Dispatch tag interpreted by the handler.
        tag: u8,
        /// Opaque payload (e.g. an encoded key).
        payload: Vec<u8>,
    },
    /// Redo-only update (protected by a coarser mechanism, e.g. applied and
    /// compensated within the same atomic action).
    None,
}

/// The body of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordKind {
    /// Start of an action's chain.
    Begin {
        /// How this action is identified to recovery.
        identity: ActionIdentity,
    },
    /// The action completed. Durability is *relative* (§4.3.1): no log force
    /// happens here; the next forced record carries it.
    Commit,
    /// The action decided to roll back (undo follows, ending with `End`).
    Abort,
    /// Rollback finished; the action is fully gone.
    End,
    /// A physiological page update with undo information.
    Update {
        /// Page the redo applies to.
        pid: PageId,
        /// Redo operation.
        redo: PageOp,
        /// Undo information.
        undo: UndoInfo,
    },
    /// Compensation record: redo-only re-application of an undo, with the
    /// `undo_next` pointer that makes undo restartable.
    Clr {
        /// Page the compensation applies to.
        pid: PageId,
        /// The (inverse) operation that was applied as compensation.
        redo: PageOp,
        /// Next record of this chain still to undo.
        undo_next: Lsn,
    },
    /// Marker CLR for a completed *logical* undo step (the compensation was
    /// performed through tree operations that logged their own updates).
    LogicalClr {
        /// Next record of this chain still to undo.
        undo_next: Lsn,
    },
    /// Fuzzy checkpoint: a snapshot of the active-action table and dirty-page
    /// table.
    Checkpoint {
        /// (action, identity, last LSN) of every live action.
        active: Vec<(ActionId, ActionIdentity, Lsn)>,
        /// (page, recovery LSN) of every dirty buffered page.
        dirty: Vec<(PageId, Lsn)>,
    },
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// This record's LSN (assigned at append; not stored in the frame).
    pub lsn: Lsn,
    /// Previous record of the same action's chain, or `Lsn::ZERO`.
    pub prev: Lsn,
    /// Owning action.
    pub action: ActionId,
    /// Payload.
    pub kind: RecordKind,
}

// ---- PageOp codec ----------------------------------------------------------

fn put_pageop(w: &mut Writer, op: &PageOp) {
    match op {
        PageOp::Format { ty } => {
            w.u8(0);
            w.u8(*ty as u8);
        }
        PageOp::InsertSlot { slot, bytes } => {
            w.u8(1);
            w.u16(*slot);
            w.bytes(bytes);
        }
        PageOp::RemoveSlot { slot } => {
            w.u8(2);
            w.u16(*slot);
        }
        PageOp::UpdateSlot { slot, bytes } => {
            w.u8(3);
            w.u16(*slot);
            w.bytes(bytes);
        }
        PageOp::SetFlags { flags } => {
            w.u8(4);
            w.u8(*flags);
        }
        PageOp::SetBit { bit } => {
            w.u8(5);
            w.u32(*bit);
        }
        PageOp::ClearBit { bit } => {
            w.u8(6);
            w.u32(*bit);
        }
        PageOp::FullImage { bytes } => {
            w.u8(7);
            w.bytes(bytes);
        }
        PageOp::KeyedInsert { bytes } => {
            w.u8(8);
            w.bytes(bytes);
        }
        PageOp::KeyedRemove { key } => {
            w.u8(9);
            w.bytes(key);
        }
        PageOp::KeyedUpdate { bytes } => {
            w.u8(10);
            w.bytes(bytes);
        }
    }
}

fn get_pageop(r: &mut Reader<'_>) -> StoreResult<PageOp> {
    Ok(match r.u8()? {
        0 => PageOp::Format {
            ty: PageType::from_u8(r.u8()?)?,
        },
        1 => PageOp::InsertSlot {
            slot: r.u16()?,
            bytes: r.bytes()?,
        },
        2 => PageOp::RemoveSlot { slot: r.u16()? },
        3 => PageOp::UpdateSlot {
            slot: r.u16()?,
            bytes: r.bytes()?,
        },
        4 => PageOp::SetFlags { flags: r.u8()? },
        5 => PageOp::SetBit { bit: r.u32()? },
        6 => PageOp::ClearBit { bit: r.u32()? },
        7 => PageOp::FullImage { bytes: r.bytes()? },
        8 => PageOp::KeyedInsert { bytes: r.bytes()? },
        9 => PageOp::KeyedRemove { key: r.bytes()? },
        10 => PageOp::KeyedUpdate { bytes: r.bytes()? },
        t => return Err(StoreError::Corrupt(format!("bad PageOp tag {t}"))),
    })
}

fn put_identity(w: &mut Writer, id: &ActionIdentity) {
    match id {
        ActionIdentity::Transaction => w.u8(0),
        ActionIdentity::SeparateTransaction => w.u8(1),
        ActionIdentity::SystemTransaction => w.u8(2),
        ActionIdentity::NestedTopAction { parent } => {
            w.u8(3);
            w.u64(parent.0);
        }
    }
}

fn get_identity(r: &mut Reader<'_>) -> StoreResult<ActionIdentity> {
    Ok(match r.u8()? {
        0 => ActionIdentity::Transaction,
        1 => ActionIdentity::SeparateTransaction,
        2 => ActionIdentity::SystemTransaction,
        3 => ActionIdentity::NestedTopAction {
            parent: ActionId(r.u64()?),
        },
        t => return Err(StoreError::Corrupt(format!("bad identity tag {t}"))),
    })
}

impl LogRecord {
    /// Encode the frame body (everything but the length/checksum envelope).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.prev.0);
        w.u64(self.action.0);
        match &self.kind {
            RecordKind::Begin { identity } => {
                w.u8(0);
                put_identity(&mut w, identity);
            }
            RecordKind::Commit => w.u8(1),
            RecordKind::Abort => w.u8(2),
            RecordKind::End => w.u8(3),
            RecordKind::Update { pid, redo, undo } => {
                w.u8(4);
                w.u64(pid.0);
                put_pageop(&mut w, redo);
                match undo {
                    UndoInfo::Physiological(op) => {
                        w.u8(0);
                        put_pageop(&mut w, op);
                    }
                    UndoInfo::Logical { tag, payload } => {
                        w.u8(1);
                        w.u8(*tag);
                        w.bytes(payload);
                    }
                    UndoInfo::None => w.u8(2),
                }
            }
            RecordKind::Clr {
                pid,
                redo,
                undo_next,
            } => {
                w.u8(5);
                w.u64(pid.0);
                put_pageop(&mut w, redo);
                w.u64(undo_next.0);
            }
            RecordKind::LogicalClr { undo_next } => {
                w.u8(6);
                w.u64(undo_next.0);
            }
            RecordKind::Checkpoint { active, dirty } => {
                w.u8(7);
                w.u32(active.len() as u32);
                for (a, id, l) in active {
                    w.u64(a.0);
                    put_identity(&mut w, id);
                    w.u64(l.0);
                }
                w.u32(dirty.len() as u32);
                for (p, l) in dirty {
                    w.u64(p.0);
                    w.u64(l.0);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a frame body. `lsn` is supplied by the caller (it is the
    /// frame's position in the log).
    pub fn decode_body(lsn: Lsn, body: &[u8]) -> StoreResult<LogRecord> {
        let mut r = Reader::new(body);
        let prev = Lsn(r.u64()?);
        let action = ActionId(r.u64()?);
        let kind = match r.u8()? {
            0 => RecordKind::Begin {
                identity: get_identity(&mut r)?,
            },
            1 => RecordKind::Commit,
            2 => RecordKind::Abort,
            3 => RecordKind::End,
            4 => {
                let pid = PageId(r.u64()?);
                let redo = get_pageop(&mut r)?;
                let undo = match r.u8()? {
                    0 => UndoInfo::Physiological(get_pageop(&mut r)?),
                    1 => UndoInfo::Logical {
                        tag: r.u8()?,
                        payload: r.bytes()?,
                    },
                    2 => UndoInfo::None,
                    t => return Err(StoreError::Corrupt(format!("bad undo tag {t}"))),
                };
                RecordKind::Update { pid, redo, undo }
            }
            5 => RecordKind::Clr {
                pid: PageId(r.u64()?),
                redo: get_pageop(&mut r)?,
                undo_next: Lsn(r.u64()?),
            },
            6 => RecordKind::LogicalClr {
                undo_next: Lsn(r.u64()?),
            },
            7 => {
                let na = r.u32()?;
                let mut active = Vec::with_capacity(na as usize);
                for _ in 0..na {
                    let a = ActionId(r.u64()?);
                    let id = get_identity(&mut r)?;
                    let l = Lsn(r.u64()?);
                    active.push((a, id, l));
                }
                let nd = r.u32()?;
                let mut dirty = Vec::with_capacity(nd as usize);
                for _ in 0..nd {
                    dirty.push((PageId(r.u64()?), Lsn(r.u64()?)));
                }
                RecordKind::Checkpoint { active, dirty }
            }
            t => return Err(StoreError::Corrupt(format!("bad record tag {t}"))),
        };
        if !r.is_done() {
            return Err(StoreError::Corrupt("trailing bytes in log record".into()));
        }
        Ok(LogRecord {
            lsn,
            prev,
            action,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: RecordKind) {
        let rec = LogRecord {
            lsn: Lsn(123),
            prev: Lsn(45),
            action: ActionId(6),
            kind,
        };
        let body = rec.encode_body();
        let back = LogRecord::decode_body(Lsn(123), &body).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn control_records_roundtrip() {
        roundtrip(RecordKind::Begin {
            identity: ActionIdentity::Transaction,
        });
        roundtrip(RecordKind::Begin {
            identity: ActionIdentity::SystemTransaction,
        });
        roundtrip(RecordKind::Begin {
            identity: ActionIdentity::NestedTopAction {
                parent: ActionId(99),
            },
        });
        roundtrip(RecordKind::Commit);
        roundtrip(RecordKind::Abort);
        roundtrip(RecordKind::End);
    }

    #[test]
    fn update_records_roundtrip() {
        roundtrip(RecordKind::Update {
            pid: PageId(7),
            redo: PageOp::InsertSlot {
                slot: 3,
                bytes: b"rec".to_vec(),
            },
            undo: UndoInfo::Physiological(PageOp::RemoveSlot { slot: 3 }),
        });
        roundtrip(RecordKind::Update {
            pid: PageId(7),
            redo: PageOp::RemoveSlot { slot: 0 },
            undo: UndoInfo::Logical {
                tag: 2,
                payload: b"key".to_vec(),
            },
        });
        roundtrip(RecordKind::Update {
            pid: PageId(1),
            redo: PageOp::SetBit { bit: 900 },
            undo: UndoInfo::None,
        });
    }

    #[test]
    fn clr_roundtrip() {
        roundtrip(RecordKind::Clr {
            pid: PageId(9),
            redo: PageOp::UpdateSlot {
                slot: 1,
                bytes: b"old".to_vec(),
            },
            undo_next: Lsn(17),
        });
        roundtrip(RecordKind::LogicalClr { undo_next: Lsn(0) });
    }

    #[test]
    fn checkpoint_roundtrip() {
        roundtrip(RecordKind::Checkpoint {
            active: vec![
                (ActionId(1), ActionIdentity::Transaction, Lsn(10)),
                (ActionId(2), ActionIdentity::SeparateTransaction, Lsn(20)),
            ],
            dirty: vec![(PageId(3), Lsn(5)), (PageId(4), Lsn(6))],
        });
        roundtrip(RecordKind::Checkpoint {
            active: vec![],
            dirty: vec![],
        });
    }

    #[test]
    fn all_pageops_roundtrip() {
        for op in [
            PageOp::Format { ty: PageType::Node },
            PageOp::InsertSlot {
                slot: 0,
                bytes: vec![1, 2, 3],
            },
            PageOp::RemoveSlot { slot: 5 },
            PageOp::UpdateSlot {
                slot: 2,
                bytes: vec![],
            },
            PageOp::SetFlags { flags: 0xff },
            PageOp::SetBit { bit: 31999 },
            PageOp::ClearBit { bit: 0 },
            PageOp::FullImage {
                bytes: vec![0u8; 64],
            },
            PageOp::KeyedInsert {
                bytes: vec![2, 0, b'a', b'b', 9, 9],
            },
            PageOp::KeyedRemove {
                key: b"ab".to_vec(),
            },
            PageOp::KeyedUpdate {
                bytes: vec![1, 0, b'z', 7],
            },
        ] {
            roundtrip(RecordKind::Update {
                pid: PageId(1),
                redo: op,
                undo: UndoInfo::None,
            });
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(LogRecord::decode_body(Lsn(1), &[]).is_err());
        assert!(LogRecord::decode_body(Lsn(1), &[0u8; 17]).is_err());
        // Trailing bytes are an error.
        let rec = LogRecord {
            lsn: Lsn(1),
            prev: Lsn(0),
            action: ActionId(1),
            kind: RecordKind::Commit,
        };
        let mut body = rec.encode_body();
        body.push(0);
        assert!(LogRecord::decode_body(Lsn(1), &body).is_err());
    }
}
