//! Scripted commit-schedule tests (§4.3.1 group commit, deterministically).
//!
//! These drive the `pitree_sim::schedule` rig: committer arrivals are a
//! script, the linger window is held open until the whole cohort has
//! registered, and each group must drain as exactly ONE `LogStore::append`.
//! Because the driver thread appends every record in script order, the
//! durable byte stream and the batch boundaries are a pure function of the
//! schedule — asserted byte-for-byte across two runs of the same seed.

use pitree_sim::schedule::{gen_schedule, run_schedule};
use pitree_wal::log::scan_bytes;
use pitree_wal::RecordKind;

#[test]
fn scripted_cohort_lands_in_single_appends() {
    // Four windows: a trio, a solo, a pair, and a quartet. Every committer
    // in a window arrives while the leader lingers; the batch must carry
    // them all.
    let schedule = vec![vec![1, 2, 3], vec![4], vec![5, 6], vec![7, 8, 9, 10]];
    let out = run_schedule(&schedule).unwrap();
    assert_eq!(out.appends, 4, "one store append per scripted group");
    // Begin+Commit frames have fixed encodings, so batch bytes scale
    // exactly with group size: the solo group calibrates the per-committer
    // cost.
    let per_committer = out.batch_lens[1];
    for (group, len) in schedule.iter().zip(&out.batch_lens) {
        assert_eq!(
            *len,
            per_committer * group.len(),
            "batch bytes must cover exactly the group's frames"
        );
    }
    // The durable log holds every record, in script order.
    let recs = scan_bytes(&out.durable, None);
    assert_eq!(recs.len(), 2 * 10);
    let commits = recs
        .iter()
        .filter(|r| matches!(r.kind, RecordKind::Commit))
        .count();
    assert_eq!(commits, 10);
}

fn assert_seed_byte_deterministic(seed: u64) {
    let schedule = gen_schedule(seed, 12, 6);
    let a = run_schedule(&schedule).unwrap();
    let b = run_schedule(&schedule).unwrap();
    assert_eq!(
        a, b,
        "same seed must reproduce the durable log, batch boundaries, and \
         append count byte-for-byte"
    );
    assert_eq!(a.appends as usize, schedule.len());
    let total: usize = schedule.iter().map(Vec::len).sum();
    assert_eq!(scan_bytes(&a.durable, None).len(), 2 * total);
}

#[test]
fn seeded_schedule_0x00c0ffee_is_byte_deterministic() {
    assert_seed_byte_deterministic(0x00C0_FFEE);
}

#[test]
fn seeded_schedule_0x005eed01_is_byte_deterministic() {
    assert_seed_byte_deterministic(0x005E_ED01);
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = run_schedule(&gen_schedule(0x00C0_FFEE, 12, 6)).unwrap();
    let b = run_schedule(&gen_schedule(0x005E_ED01, 12, 6)).unwrap();
    assert_ne!(a.durable, b.durable);
}
