//! Nested-top-action semantics (§4.3.2 option iii): an atomic action that
//! runs on behalf of a transaction but whose committed effects survive the
//! transaction's rollback — exactly how a split performed "independent of
//! and before T" must behave.

use pitree_pagestore::buffer::BufferPool;
use pitree_pagestore::page::PageType;
use pitree_pagestore::{MemDisk, PageId, PageOp};
use pitree_wal::{recover, ActionIdentity, AtomicAction, LogManager, LogStore, MemLogStore};
use std::sync::Arc;

struct World {
    disk: Arc<MemDisk>,
    store: Arc<MemLogStore>,
    pool: Arc<BufferPool>,
    log: Arc<LogManager>,
}

fn world() -> World {
    let disk = Arc::new(MemDisk::new());
    let store = Arc::new(MemLogStore::new());
    let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<_>, 32));
    let log = Arc::new(LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap());
    pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
    World {
        disk,
        store,
        pool,
        log,
    }
}

#[test]
fn committed_nta_survives_parent_rollback() {
    let w = world();
    let page = w.pool.fetch_or_create(PageId(5), PageType::Node).unwrap();

    // Parent transaction writes slot 0.
    let mut parent = AtomicAction::begin(&w.log, ActionIdentity::Transaction);
    {
        let mut g = page.x();
        parent
            .apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"parent".to_vec(),
                },
            )
            .unwrap();
    }

    // A nested top action (e.g. a structure change on the parent's behalf)
    // writes slot 1 and commits.
    let mut nta = AtomicAction::begin(
        &w.log,
        ActionIdentity::NestedTopAction {
            parent: parent.id(),
        },
    );
    {
        let mut g = page.x();
        nta.apply(
            &page,
            &mut g,
            PageOp::InsertSlot {
                slot: 1,
                bytes: b"nta".to_vec(),
            },
        )
        .unwrap();
    }
    nta.commit();

    // Parent writes more, then rolls back.
    {
        let mut g = page.x();
        parent
            .apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 2,
                    bytes: b"more".to_vec(),
                },
            )
            .unwrap();
    }
    parent.rollback(&w.pool, None).unwrap();

    // The NTA's effect persists; the parent's own writes are gone.
    let g = page.s();
    assert_eq!(g.slot_count(), 1);
    assert_eq!(g.get(0).unwrap(), b"nta");
}

#[test]
fn committed_nta_survives_crash_that_loses_the_parent() {
    let w = world();
    {
        let page = w.pool.fetch_or_create(PageId(5), PageType::Free).unwrap();
        let mut setup = AtomicAction::begin(&w.log, ActionIdentity::SystemTransaction);
        {
            let mut g = page.x();
            setup
                .apply(&page, &mut g, PageOp::Format { ty: PageType::Node })
                .unwrap();
        }
        setup.commit();

        let mut parent = AtomicAction::begin(&w.log, ActionIdentity::Transaction);
        {
            let mut g = page.x();
            parent
                .apply(
                    &page,
                    &mut g,
                    PageOp::InsertSlot {
                        slot: 0,
                        bytes: b"parent".to_vec(),
                    },
                )
                .unwrap();
        }
        let mut nta = AtomicAction::begin(
            &w.log,
            ActionIdentity::NestedTopAction {
                parent: parent.id(),
            },
        );
        {
            let mut g = page.x();
            nta.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 1,
                    bytes: b"nta".to_vec(),
                },
            )
            .unwrap();
        }
        nta.commit();
        // Make everything so far durable, then "crash" with the parent still
        // in flight (commit never written).
        w.log.force_all().unwrap();
        w.pool.flush_all().unwrap();
        let _abandoned = parent; // never committed: its commit record is simply not written
    }
    let disk2 = Arc::new(w.disk.snapshot());
    let store2 = Arc::new(w.store.snapshot());
    let pool2 = Arc::new(BufferPool::new(Arc::clone(&disk2) as Arc<_>, 32));
    let log2 = Arc::new(LogManager::open(Arc::clone(&store2) as Arc<dyn LogStore>).unwrap());
    pool2.set_wal_hook(Arc::clone(&log2) as Arc<_>);
    let stats = recover(&pool2, &log2, None).unwrap();
    // The parent is the only loser; the NTA's committed chain is not.
    assert_eq!(stats.losers.len(), 1);
    assert!(matches!(stats.losers[0].1, ActionIdentity::Transaction));
    let page = pool2.fetch(PageId(5)).unwrap();
    let g = page.s();
    assert_eq!(g.slot_count(), 1, "parent's write undone, NTA's preserved");
    assert_eq!(g.get(0).unwrap(), b"nta");
}
