//! Property-based crash testing of the WAL: arbitrary interleavings of
//! atomic actions (committed forced, committed unforced, rolled back,
//! abandoned), crashed at an arbitrary durable-log prefix, must always
//! recover to a state where exactly the durably-committed actions' effects
//! are present.
//!
//! Runs on the pitree-sim property runner: fixed seed corpus, replayable
//! with `PITREE_SIM_SEED=<seed>`.

use pitree_pagestore::buffer::BufferPool;
use pitree_pagestore::page::PageType;
use pitree_pagestore::{MemDisk, PageId, PageOp};
use pitree_sim::{prop, SimRng};
use pitree_wal::{recover, ActionIdentity, AtomicAction, LogManager, LogStore, MemLogStore};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scripted action: writes `values` to distinct keys (as keyed entries
/// on a page chosen by `page_sel`), then ends one of four ways.
#[derive(Debug, Clone)]
struct Script {
    page_sel: u8,
    n_writes: u8,
    ending: u8, // 0 commit_force, 1 commit (unforced), 2 rollback, 3 abandon
}

fn gen_script(rng: &mut SimRng) -> Script {
    Script {
        page_sel: rng.byte(),
        n_writes: rng.range(1..4) as u8,
        ending: rng.below(4) as u8,
    }
}

#[test]
fn any_prefix_recovers_exactly_the_durable_commits() {
    prop::run_cases(
        "any_prefix_recovers_exactly_the_durable_commits",
        64,
        |rng| {
            let n_scripts = rng.range_usize(1..12);
            let scripts: Vec<Script> = (0..n_scripts).map(|_| gen_script(rng)).collect();
            let cut_frac = rng.below(1 << 24) as f64 / (1u64 << 24) as f64;

            let disk = Arc::new(MemDisk::new());
            let log_store = Arc::new(MemLogStore::new());
            let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<_>, 64));
            let log =
                Arc::new(LogManager::open(Arc::clone(&log_store) as Arc<dyn LogStore>).unwrap());
            pool.set_wal_hook(Arc::clone(&log) as Arc<_>);

            // Execute the scripts sequentially; remember which unique keys each
            // action wrote and the LSN of each forced commit. Half-way through,
            // flush all pages (the hard case for undo); the crash cut below must
            // respect the WAL invariant and never drop log records covering
            // flushed pages.
            // (durable log length at commit, the key/value pairs it committed)
            type CommitRecord = (u64, Vec<(PageId, Vec<u8>)>);
            let mut committed_at: Vec<CommitRecord> = Vec::new();
            let mut serial = 0u64;
            let mut min_cut = 0u64;
            let half = scripts.len() / 2;
            // Pages whose formatting action was abandoned in-flight: under the
            // real latch protocol nobody else can touch them until recovery, so
            // the scripts must not reuse them either.
            let mut poisoned: std::collections::HashSet<PageId> = std::collections::HashSet::new();
            for (idx, sc) in scripts.iter().enumerate() {
                if idx == half && cut_frac > 0.5 {
                    pool.flush_all().unwrap();
                    // Flushing forced the log up to every flushed page LSN; a
                    // legal crash cannot lose that prefix.
                    min_cut = log_store.durable_len();
                }
                let pid = (0..)
                    .map(|o| PageId(5 + (sc.page_sel as u64 + o) % 16))
                    .find(|p| !poisoned.contains(p))
                    .unwrap();
                let page = pool.fetch_or_create(pid, PageType::Free).unwrap();
                let mut act = AtomicAction::begin(&log, ActionIdentity::SystemTransaction);
                let mut wrote = Vec::new();
                {
                    let mut g = page.x();
                    if g.page_type().unwrap() == PageType::Free {
                        act.apply(&page, &mut g, PageOp::Format { ty: PageType::Node })
                            .unwrap();
                        act.apply(
                            &page,
                            &mut g,
                            PageOp::InsertSlot {
                                slot: 0,
                                bytes: b"hdr".to_vec(),
                            },
                        )
                        .unwrap();
                    }
                    for _ in 0..sc.n_writes {
                        serial += 1;
                        let key = serial.to_be_bytes().to_vec();
                        act.apply(
                            &page,
                            &mut g,
                            PageOp::KeyedInsert {
                                bytes: pitree_pagestore::Page::make_entry(&key, b"v"),
                            },
                        )
                        .unwrap();
                        wrote.push((pid, key));
                    }
                }
                match sc.ending {
                    0 => {
                        act.commit_force().unwrap();
                        committed_at.push((log_store.durable_len(), wrote));
                    }
                    1 => {
                        act.commit();
                        // Durable only if a LATER force carries it; recorded when
                        // that force happens (conservatively: attribute to the
                        // current in-memory tail position — it becomes durable
                        // exactly when durable_len reaches it).
                        committed_at.push((log.tail_lsn().0 - 1, wrote));
                    }
                    2 => {
                        act.rollback(&pool, None).unwrap();
                    }
                    _ => {
                        let _ = act; // abandoned in flight
                        poisoned.insert(pid);
                    }
                }
            }
            // Crash at an arbitrary durable prefix at or after the last page
            // flush (the WAL protocol guarantees that much log survives).
            let full = log_store.durable_len();
            let cut = min_cut + ((full - min_cut) as f64 * cut_frac) as u64;
            let disk2 = Arc::new(disk.snapshot());
            let store2 = Arc::new(log_store.snapshot_truncated(cut));
            let pool2 = Arc::new(BufferPool::new(Arc::clone(&disk2) as Arc<_>, 64));
            let log2 =
                Arc::new(LogManager::open(Arc::clone(&store2) as Arc<dyn LogStore>).unwrap());
            pool2.set_wal_hook(Arc::clone(&log2) as Arc<_>);
            recover(&pool2, &log2, None).unwrap();

            // Every action whose commit record is inside the surviving prefix
            // must be fully present; everything else must be fully absent.
            let mut expected: BTreeMap<(PageId, Vec<u8>), bool> = BTreeMap::new();
            for (durable_len, wrote) in &committed_at {
                let survives = *durable_len <= cut;
                for kv in wrote {
                    expected.insert(kv.clone(), survives);
                }
            }
            for ((pid, key), survives) in expected {
                let present = match pool2.fetch(pid) {
                    Ok(p) => {
                        let g = p.s();
                        g.page_type().unwrap() == PageType::Node
                            && g.keyed_find(&key).unwrap().is_ok()
                    }
                    Err(_) => false,
                };
                assert_eq!(
                    present, survives,
                    "key {key:?} on {pid}: present={present} expected={survives}"
                );
            }
        },
    );
}
