//! Multi-threaded exercises of the group-commit log manager (§4.3.1).
//!
//! Three properties the lock-split design must keep:
//!
//! 1. `flushed_lsn` is monotone under concurrent forces, and when
//!    `force_to(lsn)` returns the record at `lsn` is readable from the
//!    durable store alone (durability is not merely promised).
//! 2. Single-threaded runs are deterministic: same seed, byte-identical
//!    durable log — group commit is a scheduling optimisation, not a
//!    format change.
//! 3. Followers ride the leader's batch: commits that arrive while a
//!    force is in flight are absorbed into one store append ("relative
//!    durability" — the leader's force carries them).
//! 4. Groups actually FORM: with a linger window pinned open, concurrent
//!    committers batch at `group_size_p50 >= threads/2` — the eager
//!    election of the original design measured p50 = 1 because the first
//!    arrival drained only its own bytes.

use pitree_obs::Registry;
use pitree_pagestore::sync::{Condvar, Mutex};
use pitree_pagestore::{Lsn, StoreResult};
use pitree_sim::SimRng;
use pitree_wal::{ActionId, ActionIdentity, LogManager, LogStore, MemLogStore, RecordKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn begin() -> RecordKind {
    RecordKind::Begin {
        identity: ActionIdentity::SeparateTransaction,
    }
}

#[test]
fn concurrent_forces_are_durable_and_flushed_is_monotone() {
    let log =
        Arc::new(LogManager::open(Arc::new(MemLogStore::new()) as Arc<dyn LogStore>).unwrap());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Observer: flushed_lsn never moves backwards.
        s.spawn(|| {
            let mut prev = Lsn::ZERO;
            while !stop.load(Ordering::Acquire) {
                let f = log.flushed_lsn();
                assert!(f >= prev, "flushed_lsn went backwards: {prev} -> {f}");
                prev = f;
                std::thread::yield_now();
            }
        });
        let mut workers = Vec::new();
        for t in 0..8u64 {
            let log = Arc::clone(&log);
            workers.push(s.spawn(move || {
                for i in 0..200u64 {
                    let action = ActionId(1 + t * 1000 + i);
                    let b = log.append(action, Lsn::ZERO, begin());
                    let c = log.append(action, b, RecordKind::Commit);
                    log.force_to(c).unwrap();
                    // Durability on return: flushed covers the commit...
                    assert!(log.flushed_lsn() >= c);
                    // ...and (sampled — this is an O(log) scan) the record
                    // is really in the durable store, not just the cache.
                    if i % 32 == 0 {
                        let durable = log.store().durable_bytes().unwrap();
                        let rec = pitree_wal::log::read_at(&durable, c).unwrap();
                        assert_eq!(rec.action, action);
                        assert!(matches!(rec.kind, RecordKind::Commit));
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
    });
    log.force_all().unwrap();
    assert_eq!(log.flushed_lsn().0 + 1, log.tail_lsn().0);
    assert_eq!(log.scan(None).unwrap().len(), 8 * 200 * 2);
}

#[test]
fn single_threaded_durable_bytes_are_deterministic() {
    let run = |seed: u64| -> Vec<u8> {
        let store = Arc::new(MemLogStore::new());
        let log = LogManager::open(Arc::clone(&store) as Arc<dyn LogStore>).unwrap();
        let mut rng = SimRng::new(seed);
        let mut last = Lsn::ZERO;
        for i in 0..500u64 {
            let kind = if rng.chance(0.5) {
                RecordKind::Commit
            } else {
                begin()
            };
            let lsn = log.append(ActionId(1 + i / 4), last, kind);
            last = lsn;
            if rng.chance(0.3) {
                log.force_to(lsn).unwrap();
            }
        }
        log.force_all().unwrap();
        store.durable_bytes().unwrap()
    };
    let a = run(0x5eed);
    let b = run(0x5eed);
    assert_eq!(a, b, "same seed must produce a byte-identical durable log");
    assert_ne!(run(0x0dd5eed), a, "different seed should differ");
}

#[test]
fn linger_forms_groups_of_at_least_half_the_threads() {
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 40;
    let reg = Registry::new();
    let log = Arc::new(
        LogManager::open_observed(
            Arc::new(MemLogStore::new()) as Arc<dyn LogStore>,
            reg.recorder(),
        )
        .unwrap(),
    );
    // Pin a generous window so the test exercises group FORMATION, not the
    // adaptation schedule: the cohort assembles, a quiet slice ends the
    // linger, and the whole round drains as one batch.
    log.pin_linger_ns(2_000_000);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..ROUNDS {
                    let action = ActionId(1 + t * 1000 + i);
                    let b = log.append(action, Lsn::ZERO, begin());
                    let c = log.append(action, b, RecordKind::Commit);
                    log.force_to(c).unwrap();
                }
            });
        }
    });
    // Hist buckets are log2: a reported p50 >= 4 can only come from true
    // group sizes >= 4 (= THREADS/2).
    let (p50, _, _, _) = reg.recorder().hist("wal.group_size").percentiles();
    assert!(
        p50 >= THREADS / 2,
        "group_size_p50 = {p50}, want >= {} — the linger window failed to \
         absorb the committing cohort",
        THREADS / 2
    );
    assert_eq!(
        log.scan(None).unwrap().len(),
        (THREADS * ROUNDS * 2) as usize
    );
}

/// A store whose `append` blocks until the test opens a gate, so the test
/// can deterministically pile commits up behind an in-flight force.
struct GateStore {
    inner: MemLogStore,
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicU64,
    appends: AtomicU64,
}

impl GateStore {
    fn new() -> GateStore {
        GateStore {
            inner: MemLogStore::new(),
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicU64::new(0),
            appends: AtomicU64::new(0),
        }
    }

    fn open_gate(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

impl LogStore for GateStore {
    fn append(&self, bytes: &[u8]) -> StoreResult<()> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock();
        while !*open {
            open = self.cv.wait(open);
        }
        drop(open);
        self.appends.fetch_add(1, Ordering::SeqCst);
        self.inner.append(bytes)
    }
    fn durable_bytes(&self) -> StoreResult<Vec<u8>> {
        self.inner.durable_bytes()
    }
    fn durable_len(&self) -> u64 {
        self.inner.durable_len()
    }
    fn set_master(&self, lsn: Lsn) {
        self.inner.set_master(lsn)
    }
    fn master(&self) -> Lsn {
        self.inner.master()
    }
}

#[test]
fn followers_ride_the_leaders_batch() {
    let store = Arc::new(GateStore::new());
    let reg = Registry::new();
    let log = Arc::new(
        LogManager::open_observed(Arc::clone(&store) as Arc<dyn LogStore>, reg.recorder()).unwrap(),
    );
    let waiters = reg.recorder().counter("wal.force_waiters");

    let l1 = log.append(ActionId(1), Lsn::ZERO, RecordKind::Commit);
    std::thread::scope(|s| {
        let leader = {
            let log = Arc::clone(&log);
            s.spawn(move || log.force_to(l1))
        };
        // Wait until the leader is inside the (gated) store append.
        while store.entered.load(Ordering::SeqCst) < 1 {
            std::thread::yield_now();
        }
        // These commits arrive while the leader's batch is in flight; their
        // forces must queue as followers, not start their own I/O.
        let l2 = log.append(ActionId(2), Lsn::ZERO, RecordKind::Commit);
        let l3 = log.append(ActionId(3), Lsn::ZERO, RecordKind::Commit);
        let f2 = {
            let log = Arc::clone(&log);
            s.spawn(move || log.force_to(l2))
        };
        let f3 = {
            let log = Arc::clone(&log);
            s.spawn(move || log.force_to(l3))
        };
        while waiters.get() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(
            store.entered.load(Ordering::SeqCst),
            1,
            "followers must not start their own store I/O"
        );
        store.open_gate();
        leader.join().unwrap().unwrap();
        f2.join().unwrap().unwrap();
        f3.join().unwrap().unwrap();
    });
    // First batch carried r1; the next leader drained r2+r3 in ONE append.
    assert_eq!(
        store.appends.load(Ordering::SeqCst),
        2,
        "both waiting commits must share a single batch"
    );
    assert_eq!(log.scan(None).unwrap().len(), 3);
    assert_eq!(log.flushed_lsn().0 + 1, log.tail_lsn().0);
}
