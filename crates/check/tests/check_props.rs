//! Property sweeps: the check oracles driven from the sim kit's fixed,
//! replayable seed corpus, plus the seeded-violation rejection gates.
//!
//! Determinism contract: everything below derives from `pitree_sim`
//! seeds — no clocks, no entropy, no environment reads (enforced by
//! pitree-lint's determinism rule, which covers this file).

use pitree_check::durability::{fixture_script, tail_drop_violation, DurConfig};
use pitree_check::index::{LostWriteIndex, ModelIndex, StaleReadIndex};
use pitree_check::shrink::shrink_tail_drop;
use pitree_check::{
    all_indexes, lin_targets, run_differential, run_linearizability, sweep_seed, DiffConfig,
    LinConfig,
};
use pitree_sim::prop;

#[test]
fn differential_all_indexes_match_model() {
    prop::run_cases("check.diff.all-indexes", 8, |rng| {
        let seed = rng.next_u64();
        for idx in all_indexes() {
            if let Err(v) = run_differential(idx.as_ref(), seed, DiffConfig::default()) {
                panic!("{v}");
            }
        }
    });
}

#[test]
fn differential_rejects_lost_write_fixture() {
    prop::run_cases("check.diff.fixture", 4, |rng| {
        let broken = LostWriteIndex::new(ModelIndex::default(), 7);
        run_differential(&broken, rng.next_u64(), DiffConfig::default())
            .expect_err("oracle must reject an index that drops writes");
    });
}

#[test]
fn linearizability_of_concurrent_targets() {
    prop::run_cases("check.linear.targets", 4, |rng| {
        let seed = rng.next_u64();
        for idx in lin_targets() {
            if let Err(e) = run_linearizability(idx.as_ref(), seed, LinConfig::default()) {
                panic!("{}: {e}", idx.name());
            }
        }
    });
}

#[test]
fn linearizability_under_heavy_contention() {
    // Single hot key: every operation conflicts; the per-key search does
    // real work here instead of degenerating into independent singletons.
    prop::run_cases("check.linear.hot-key", 3, |rng| {
        let cfg = LinConfig {
            threads: 4,
            ops_per_thread: 24,
            key_domain: 1,
        };
        let targets = lin_targets();
        let idx = targets[0].as_ref();
        if let Err(e) = run_linearizability(idx, rng.next_u64(), cfg) {
            panic!("{}: {e}", idx.name());
        }
    });
}

#[test]
fn linearizability_rejects_stale_read_fixture() {
    prop::run_cases("check.linear.fixture", 4, |rng| {
        // Single-threaded: no overlap, so the first stale observation is
        // unconditionally a violation (deterministic rejection).
        let cfg = LinConfig {
            threads: 1,
            ops_per_thread: 64,
            key_domain: 4,
        };
        let stale = StaleReadIndex::new(ModelIndex::default());
        run_linearizability(&stale, rng.next_u64(), cfg)
            .expect_err("oracle must reject a stale-reading index");
    });
}

#[test]
fn durability_sweep_recovers_committed_state() {
    prop::run_cases("check.dur.sweep", 2, |rng| {
        let cfg = DurConfig {
            ops: 24,
            max_crash_points: 5,
            ..DurConfig::default()
        };
        match sweep_seed(rng.next_u64(), &cfg) {
            Ok(report) => assert!(report.fault_points > 0, "workload crossed no boundary"),
            Err(v) => panic!("{v}"),
        }
    });
}

#[test]
fn durability_rejects_dropped_commit_and_shrinks_it() {
    prop::run_cases("check.dur.fixture", 2, |rng| {
        let seed = rng.next_u64();
        let cfg = DurConfig {
            ops: 12,
            max_crash_points: 2,
            ..DurConfig::default()
        };
        let script = fixture_script(seed, &cfg);
        let v = tail_drop_violation(&script, seed, &cfg)
            .expect("oracle must detect the chopped commit record");
        assert!(v.detail.contains("records") || v.detail.contains("key"));
        let min = shrink_tail_drop(&script, seed, &cfg);
        assert!(
            min.len() < script.len(),
            "shrinker made no progress on a {}-op script",
            script.len()
        );
    });
}
