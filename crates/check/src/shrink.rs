//! Minimizing shrinker for failing workload scripts.
//!
//! The sim kit's property runner deliberately does not shrink *seeds*
//! (a different seed is a different schedule), but once a seed fails the
//! durability oracle we hold its concrete **script** — and scripts shrink
//! soundly, because [`crate::durability::script_violation`] re-sweeps the
//! candidate's own crash-point space. This is a delta-debugging (ddmin)
//! reduction: remove ever-smaller chunks, keeping any candidate that
//! still fails, until no single op can be removed.

use crate::durability::{script_violation, tail_drop_violation, DurConfig, DurOp};

/// Minimize `input` under `fails` (which must hold for `input` itself).
/// Returns a 1-minimal failing subsequence: removing any single remaining
/// element makes the failure disappear.
pub fn ddmin<T: Clone, F: Fn(&[T]) -> bool>(input: &[T], fails: F) -> Vec<T> {
    assert!(fails(input), "shrinker needs a failing input to start from");
    let mut cur: Vec<T> = input.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if fails(&cand) {
                cur = cand; // chunk was irrelevant; keep position
            } else {
                i = end; // chunk is load-bearing; move past it
            }
        }
        if chunk == 1 {
            return cur;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Shrink a script that fails the full crash-point sweep, preserving the
/// failure as judged by [`script_violation`]. Expensive (each candidate
/// re-sweeps), so intended for one-off replay investigation, not gates.
pub fn shrink_durability(script: &[DurOp], seed: u64, cfg: &DurConfig) -> Vec<DurOp> {
    ddmin(script, |cand| script_violation(cand, seed, cfg).is_err())
}

/// Shrink a script that fails the tail-drop fixture oracle. Used by the
/// fixture gate to prove the shrinker minimizes a real violation.
pub fn shrink_tail_drop(script: &[DurOp], seed: u64, cfg: &DurConfig) -> Vec<DurOp> {
    ddmin(script, |cand| {
        !cand.is_empty() && tail_drop_violation(cand, seed, cfg).is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::fixture_script;

    #[test]
    fn ddmin_finds_single_culprit() {
        // Fails iff the input contains 7.
        let input: Vec<u32> = (0..40).collect();
        let out = ddmin(&input, |xs| xs.contains(&7));
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn ddmin_keeps_interacting_pair() {
        // Fails iff both 3 and 11 survive — ddmin must keep exactly those.
        let input: Vec<u32> = (0..24).collect();
        let out = ddmin(&input, |xs| xs.contains(&3) && xs.contains(&11));
        assert_eq!(out, vec![3, 11]);
    }

    #[test]
    fn tail_drop_failure_shrinks_to_one_insert() {
        let cfg = DurConfig {
            ops: 16,
            max_crash_points: 2,
            ..DurConfig::default()
        };
        let seed = 0x5eed;
        let script = fixture_script(seed, &cfg);
        let min = shrink_tail_drop(&script, seed, &cfg);
        assert!(
            min.len() <= 2,
            "a lost committed insert needs at most the insert itself \
             (plus maybe one earlier op), got {min:?}"
        );
        assert!(
            min.iter().any(|op| matches!(op, DurOp::Insert(_))),
            "the surviving op must be an insert: {min:?}"
        );
    }
}
