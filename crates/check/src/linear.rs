//! Linearizability checker for concurrent histories, plus the live
//! harness that produces them.
//!
//! The checker is a Wing–Gong-style search: find a total order of the
//! completed calls that (a) respects real time — if call `d` returned
//! before call `c` was invoked, `d` precedes `c` — and (b) is a legal
//! sequential run of the per-key [`model`](crate::model). Because every
//! operation here touches exactly one key, linearizability is *local*:
//! a history is linearizable iff its per-key sub-histories are, so the
//! search partitions by key first. Within a key the DFS memoizes
//! `(done-set, register state)` pairs, which keeps the worst case far
//! below the factorial frontier for the bounded harness histories.

use crate::history::{Call, HistoryLog, OpKind, OpRet};
use crate::index::CheckIndex;
use pitree_sim::SimRng;
use std::collections::{BTreeMap, HashSet};

/// Why a history was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinViolation {
    /// The key whose sub-history has no linearization.
    pub key: u64,
    /// The calls on that key, in invocation order (the minimal evidence).
    pub calls: Vec<Call>,
}

impl std::fmt::Display for LinViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "no linearization exists for the {} calls on key {}:",
            self.calls.len(),
            self.key
        )?;
        for c in &self.calls {
            writeln!(
                f,
                "  tid {} [{}..{}] {:?} arg={} -> {:?}",
                c.tid, c.invoke, c.ret_at, c.kind, c.arg, c.ret
            )?;
        }
        Ok(())
    }
}

/// Summary of a passing check.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinReport {
    /// Completed calls checked.
    pub calls: usize,
    /// Distinct keys (independent sub-histories).
    pub keys: usize,
}

/// Check a complete history (all calls returned) for linearizability
/// against the sequential single-record-per-key model.
pub fn check_history(calls: &[Call]) -> Result<LinReport, LinViolation> {
    let mut by_key: BTreeMap<u64, Vec<Call>> = BTreeMap::new();
    for c in calls {
        by_key.entry(c.key).or_default().push(*c);
    }
    for (key, sub) in &by_key {
        if !key_linearizable(sub) {
            return Err(LinViolation {
                key: *key,
                calls: sub.clone(),
            });
        }
    }
    Ok(LinReport {
        calls: calls.len(),
        keys: by_key.len(),
    })
}

/// Wing–Gong DFS over one key's sub-history. `calls` is sorted by invoke
/// clock (the decoder guarantees it).
fn key_linearizable(calls: &[Call]) -> bool {
    let n = calls.len();
    assert!(n <= 128, "per-key sub-history too large for the bitmask");
    if n == 0 {
        return true;
    }
    // Visited (done-set, register value) configurations; revisiting one
    // cannot succeed where the first visit failed.
    let mut seen: HashSet<(u128, Option<u64>)> = HashSet::new();
    dfs(calls, 0u128, None, &mut seen)
}

fn dfs(
    calls: &[Call],
    done: u128,
    state: Option<u64>,
    seen: &mut HashSet<(u128, Option<u64>)>,
) -> bool {
    let n = calls.len();
    if done.count_ones() as usize == n {
        return true;
    }
    if !seen.insert((done, state)) {
        return false;
    }
    // The earliest return among remaining calls bounds which may go next:
    // candidate c must be invoked before every other remaining call
    // returned, i.e. c.invoke < min(remaining returns) is too strict —
    // the correct condition is that no remaining d has d.ret_at < c.invoke.
    let min_ret = (0..n)
        .filter(|i| done & (1 << i) == 0)
        .map(|i| calls[i].ret_at)
        .min()
        .expect("non-empty remainder");
    for i in 0..n {
        if done & (1 << i) != 0 {
            continue;
        }
        let c = &calls[i];
        if c.invoke > min_ret {
            // Some remaining call returned before c was invoked, so c
            // cannot linearize first; later i only grow invoke (sorted).
            break;
        }
        if let Some(next) = apply(c, state) {
            if dfs(calls, done | (1 << i), next, seen) {
                return true;
            }
        }
    }
    false
}

/// Apply one call to the per-key register; `None` when the reported
/// result is inconsistent with the state.
fn apply(c: &Call, state: Option<u64>) -> Option<Option<u64>> {
    match (c.kind, c.ret) {
        (OpKind::Insert, OpRet::InsertedUnknown) => Some(Some(c.arg)),
        (OpKind::Insert, OpRet::Inserted(created)) => {
            (created == state.is_none()).then_some(Some(c.arg))
        }
        (OpKind::Delete, OpRet::Deleted(existed)) => (existed == state.is_some()).then_some(None),
        (OpKind::Get, OpRet::Got(v)) => (v == state).then_some(state),
        _ => None,
    }
}

// ---- live harness ---------------------------------------------------------

/// Knobs for one concurrent harness run.
#[derive(Debug, Clone, Copy)]
pub struct LinConfig {
    /// Worker threads.
    pub threads: u32,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Keys drawn from `0..key_domain`; small domains force contention.
    pub key_domain: u64,
}

impl Default for LinConfig {
    fn default() -> LinConfig {
        LinConfig {
            threads: 3,
            ops_per_thread: 40,
            key_domain: 8,
        }
    }
}

/// Errors from a live linearizability run.
#[derive(Debug)]
pub enum LinError {
    /// The recorded history could not be decoded.
    History(crate::history::HistoryError),
    /// The history decoded but has no linearization.
    Violation(LinViolation),
}

impl std::fmt::Display for LinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinError::History(e) => write!(f, "history decode failed: {e}"),
            LinError::Violation(v) => write!(f, "{v}"),
        }
    }
}

fn value_bytes(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

fn decode_value(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    u64::from_be_bytes(b)
}

/// Drive `index` from `cfg.threads` concurrent workers with seeded
/// per-thread op streams, recording every operation through a dedicated
/// [`HistoryLog`], then check the resulting history.
///
/// Values are unique per (thread, op) — `tid << 32 | op` — so a stale
/// read is distinguishable from a legal one.
pub fn run_linearizability(
    index: &(impl CheckIndex + ?Sized),
    seed: u64,
    cfg: LinConfig,
) -> Result<LinReport, LinError> {
    let log = HistoryLog::new();
    let mut root = SimRng::new(seed);
    let seeds: Vec<u64> = (0..cfg.threads).map(|_| root.next_u64()).collect();

    std::thread::scope(|scope| {
        for (t, tseed) in seeds.into_iter().enumerate() {
            let log = &log;
            scope.spawn(move || {
                let rec = log.recorder();
                let mut rng = SimRng::new(tseed);
                for i in 0..cfg.ops_per_thread {
                    let key = rng.below(cfg.key_domain);
                    let kb = key.to_be_bytes();
                    match rng.below(100) {
                        0..=49 => {
                            let v = (t as u64) << 32 | i as u64;
                            rec.invoke(OpKind::Insert, key, v);
                            let ret = match index.insert(&kb, &value_bytes(v)) {
                                Some(created) => OpRet::Inserted(created),
                                None => OpRet::InsertedUnknown,
                            };
                            rec.ret(OpKind::Insert, key, ret);
                        }
                        50..=69 => {
                            rec.invoke(OpKind::Delete, key, 0);
                            let existed = index.delete(&kb);
                            rec.ret(OpKind::Delete, key, OpRet::Deleted(existed));
                        }
                        _ => {
                            rec.invoke(OpKind::Get, key, 0);
                            let got = index.get(&kb).map(|bytes| decode_value(&bytes));
                            rec.ret(OpKind::Get, key, OpRet::Got(got));
                        }
                    }
                }
            });
        }
    });

    let calls = log.take_history().map_err(LinError::History)?;
    check_history(&calls).map_err(LinError::Violation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(
        tid: u32,
        invoke: u64,
        ret_at: u64,
        kind: OpKind,
        key: u64,
        arg: u64,
        ret: OpRet,
    ) -> Call {
        Call {
            tid,
            invoke,
            ret_at,
            kind,
            key,
            arg,
            ret,
        }
    }

    #[test]
    fn sequential_history_accepted() {
        let h = vec![
            call(0, 1, 2, OpKind::Insert, 5, 10, OpRet::Inserted(true)),
            call(0, 3, 4, OpKind::Get, 5, 0, OpRet::Got(Some(10))),
            call(0, 5, 6, OpKind::Delete, 5, 0, OpRet::Deleted(true)),
            call(0, 7, 8, OpKind::Get, 5, 0, OpRet::Got(None)),
        ];
        let r = check_history(&h).unwrap();
        assert_eq!(r.calls, 4);
        assert_eq!(r.keys, 1);
    }

    #[test]
    fn stale_read_rejected() {
        // insert(v1) returns, insert(v2) returns, THEN a read begins and
        // observes v1: no linear order explains it.
        let h = vec![
            call(0, 1, 2, OpKind::Insert, 5, 1, OpRet::Inserted(true)),
            call(0, 3, 4, OpKind::Insert, 5, 2, OpRet::Inserted(false)),
            call(1, 5, 6, OpKind::Get, 5, 0, OpRet::Got(Some(1))),
        ];
        let v = check_history(&h).unwrap_err();
        assert_eq!(v.key, 5);
        assert_eq!(v.calls.len(), 3);
    }

    #[test]
    fn overlapping_read_may_see_either_value() {
        // The read overlaps the second insert, so both v1 and v2 are legal.
        let sees_old = vec![
            call(0, 1, 2, OpKind::Insert, 5, 1, OpRet::Inserted(true)),
            call(0, 3, 8, OpKind::Insert, 5, 2, OpRet::Inserted(false)),
            call(1, 4, 6, OpKind::Get, 5, 0, OpRet::Got(Some(1))),
        ];
        check_history(&sees_old).unwrap();
        let sees_new = vec![
            call(0, 1, 2, OpKind::Insert, 5, 1, OpRet::Inserted(true)),
            call(0, 3, 8, OpKind::Insert, 5, 2, OpRet::Inserted(false)),
            call(1, 4, 6, OpKind::Get, 5, 0, OpRet::Got(Some(2))),
        ];
        check_history(&sees_new).unwrap();
    }

    #[test]
    fn wrong_created_flag_rejected() {
        let h = vec![
            call(0, 1, 2, OpKind::Insert, 5, 1, OpRet::Inserted(true)),
            call(0, 3, 4, OpKind::Insert, 5, 2, OpRet::Inserted(true)),
        ];
        assert!(check_history(&h).is_err(), "second insert cannot be 'new'");
    }

    #[test]
    fn keys_are_independent() {
        // A violation on key 9 is found even among clean traffic on key 5.
        let h = vec![
            call(0, 1, 2, OpKind::Insert, 5, 1, OpRet::Inserted(true)),
            call(0, 3, 4, OpKind::Get, 5, 0, OpRet::Got(Some(1))),
            call(1, 5, 6, OpKind::Get, 9, 0, OpRet::Got(Some(7))),
        ];
        let v = check_history(&h).unwrap_err();
        assert_eq!(v.key, 9);
    }
}
