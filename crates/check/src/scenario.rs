//! Scenario-twin oracle entry points.
//!
//! The million-key scenario harness (EXPERIMENTS.md S7) cannot be oracle-
//! checked at full scale — a crash-point sweep over a 1M-key workload is
//! days of work — so every scenario ships a *deterministic twin*: the same
//! op mix and distribution shape, scaled down to a domain small enough
//! that pitree-check's differential and durability layers can gate it
//! exhaustively. The harness generates the twin's explicit [`ScenOp`]
//! stream (from the very `Workload`/`Zipf` samplers the bench uses) and
//! hands it to the two entry points here:
//!
//! * [`differential_twin`] — replays the stream single-threaded against
//!   the Π-tree and all three baselines, demanding op-for-op agreement
//!   with the sequential [`Model`] plus a final full-domain sweep.
//! * [`durability_twin`] — the crash-point sweep engine of
//!   [`crate::durability`], generalized to streams that interleave reads
//!   and scans with the writes: every read is verified against the model
//!   *as the workload runs*, so a stale read inside the crash window
//!   surfaces as a non-injected violation, not silence.
//!
//! Both take the op stream by value from the caller rather than a seed +
//! generator pair, so the harness's distributions (real Zipf, YCSB mixes,
//! hot-key storms) gate exactly the code paths its benches exercise.

use crate::durability::{self, DurConfig, DurReport, DurViolation};
use crate::model::Model;
use crate::{all_indexes, CheckIndex, DiffViolation};
use pitree::CrashableStore;
use pitree::PiTree;
use pitree_pagestore::fault::is_injected;
use pitree_pagestore::{StoreError, StoreResult};
use pitree_sim::fault::CrashPlan;

/// One explicit scenario-twin step. Superset of
/// [`DurOp`](crate::durability::DurOp): scenarios are read-heavy, so the
/// twin must carry the reads too — a bench whose oracle only replays the
/// writes would never catch a wrong-scan-window or stale-read bug on the
/// exact mix being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenOp {
    /// Upsert of key `k` (value derives from key + op index).
    Insert(u64),
    /// Delete of key `k`.
    Delete(u64),
    /// Point read of key `k`, result checked against the model.
    Get(u64),
    /// Range scan `[lo, hi)`, result checked against the model (skipped by
    /// indexes that do not expose scans).
    Scan(u64, u64),
    /// Flush all dirty pages (durability twin only; no-op differentially).
    Flush,
    /// Fuzzy checkpoint (durability twin only; no-op differentially).
    Checkpoint,
}

fn key_bytes(k: u64) -> Vec<u8> {
    durability::key_bytes(k)
}

fn val_bytes(k: u64, i: usize) -> Vec<u8> {
    durability::val_bytes(k, i)
}

/// Summary of a passing twin run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwinReport {
    /// Operations replayed per index.
    pub ops: usize,
    /// Indexes driven to agreement.
    pub indexes: usize,
    /// Records in the model at the end.
    pub final_records: usize,
}

/// Replay an explicit op stream against every index in [`all_indexes`],
/// demanding op-for-op agreement with the sequential [`Model`] and a
/// final full-domain read sweep over every key the stream touched.
pub fn differential_twin(ops: &[ScenOp], seed: u64) -> Result<TwinReport, DiffViolation> {
    let mut final_records = 0;
    let indexes = all_indexes();
    for index in &indexes {
        let model = drive_index(index.as_ref(), ops, seed)?;
        final_records = model.len();
    }
    Ok(TwinReport {
        ops: ops.len(),
        indexes: indexes.len(),
        final_records,
    })
}

fn drive_index(index: &dyn CheckIndex, ops: &[ScenOp], seed: u64) -> Result<Model, DiffViolation> {
    let mut model = Model::new();
    let mut touched = std::collections::BTreeSet::new();
    let fail = |op: usize, detail: String| DiffViolation {
        index: index.name(),
        seed,
        op,
        detail,
    };
    for (i, op) in ops.iter().enumerate() {
        match *op {
            ScenOp::Insert(k) => {
                touched.insert(k);
                let key = key_bytes(k);
                let val = val_bytes(k, i);
                let got = index.insert(&key, &val);
                let want = model.insert(&key, &val);
                if let Some(created) = got {
                    if created != want {
                        return Err(fail(
                            i,
                            format!("insert({k}) created={created}, model says {want}"),
                        ));
                    }
                }
            }
            ScenOp::Delete(k) => {
                touched.insert(k);
                let key = key_bytes(k);
                let got = index.delete(&key);
                let want = model.delete(&key);
                if got != want {
                    return Err(fail(
                        i,
                        format!("delete({k}) existed={got}, model says {want}"),
                    ));
                }
            }
            ScenOp::Get(k) => {
                let key = key_bytes(k);
                let got = index.get(&key);
                let want = model.get(&key);
                if got != want {
                    return Err(fail(i, format!("get({k}) = {got:?}, model says {want:?}")));
                }
            }
            ScenOp::Scan(lo, hi) => {
                let (lo_b, hi_b) = (key_bytes(lo), key_bytes(hi));
                if let Some(got) = index.scan(&lo_b, &hi_b) {
                    let want = model.scan(&lo_b, &hi_b);
                    if got != want {
                        return Err(fail(
                            i,
                            format!(
                                "scan([{lo},{hi})) returned {} pairs, model has {}",
                                got.len(),
                                want.len()
                            ),
                        ));
                    }
                }
            }
            // Buffer/log management has no differential meaning on the
            // in-memory adapters; the durability twin covers it.
            ScenOp::Flush | ScenOp::Checkpoint => {}
        }
    }
    for &k in &touched {
        let key = key_bytes(k);
        let got = index.get(&key);
        let want = model.get(&key);
        if got != want {
            return Err(fail(
                usize::MAX,
                format!("final sweep: get({k}) = {got:?}, model says {want:?}"),
            ));
        }
    }
    Ok(model)
}

/// Run the stream against a crashable Π-tree, updating the model only on
/// committed writes and verifying every read against it in-line. A read
/// mismatch mid-workload comes back as `StoreError::Corrupt`, which the
/// sweep engine reports as a non-injected violation.
fn apply_scen_script(
    cs: &CrashableStore,
    tree: &PiTree,
    script: &[ScenOp],
    model: &mut Model,
) -> StoreResult<()> {
    for (i, op) in script.iter().enumerate() {
        match *op {
            ScenOp::Insert(k) => {
                let v = val_bytes(k, i);
                let mut t = tree.begin();
                if let Err(e) = tree.insert(&mut t, &key_bytes(k), &v) {
                    // A dead machine can't clean the txn up either.
                    std::mem::forget(t);
                    return Err(e);
                }
                let lsn = t.commit()?;
                durability::check_ack_watermark(cs, lsn)?;
                model.insert(&key_bytes(k), &v);
            }
            ScenOp::Delete(k) => {
                let mut t = tree.begin();
                if let Err(e) = tree.delete(&mut t, &key_bytes(k)) {
                    std::mem::forget(t);
                    return Err(e);
                }
                let lsn = t.commit()?;
                durability::check_ack_watermark(cs, lsn)?;
                model.delete(&key_bytes(k));
            }
            ScenOp::Get(k) => {
                let got = tree.get_unlocked(&key_bytes(k))?;
                let want = model.get(&key_bytes(k));
                if got != want {
                    return Err(StoreError::Corrupt(format!(
                        "twin read divergence at op {i}: get({k}) = {got:?}, model says {want:?}"
                    )));
                }
            }
            ScenOp::Scan(lo, hi) => {
                let got = tree.scan(&key_bytes(lo), &key_bytes(hi))?;
                let want = model.scan(&key_bytes(lo), &key_bytes(hi));
                if got != want {
                    return Err(StoreError::Corrupt(format!(
                        "twin scan divergence at op {i}: [{lo},{hi}) returned {} pairs, \
                         model has {}",
                        got.len(),
                        want.len()
                    )));
                }
            }
            ScenOp::Flush => cs.store.pool.flush_all()?,
            ScenOp::Checkpoint => {
                cs.store.txns.checkpoint()?;
            }
        }
    }
    Ok(())
}

/// Crash-point sweep over an explicit scenario stream: probe the fault
/// space with a no-crash run (reads verified in-line throughout), then
/// crash at a strided sample of durable-write boundaries, recover, and
/// demand exactly the committed model back — the
/// [`script_violation`](crate::durability::script_violation) engine with
/// the scenario's own op mix.
pub fn durability_twin(
    script: &[ScenOp],
    seed: u64,
    cfg: &DurConfig,
) -> Result<DurReport, DurViolation> {
    // Probe: measure the boundary space and verify the no-crash run.
    let plan = CrashPlan::count_only();
    let (cs, tree) = durability::build(cfg, &plan);
    plan.arm();
    let mut probe_model = Model::new();
    if let Err(e) = apply_scen_script(&cs, &tree, script, &mut probe_model) {
        return Err(DurViolation {
            seed,
            crash_point: 0,
            site: "probe".into(),
            detail: format!("no-crash run failed: {e}"),
        });
    }
    let fault_points = plan.hits();
    drop(tree);

    let mut points: Vec<u64> = if fault_points == 0 {
        Vec::new()
    } else {
        let stride = (fault_points as usize / cfg.max_crash_points.max(1)).max(1);
        (1..=fault_points).step_by(stride).collect()
    };
    if fault_points > 0 && points.last() != Some(&fault_points) {
        points.push(fault_points);
    }

    for &n in &points {
        let plan = CrashPlan::fire_at(n);
        let (cs, tree) = durability::build(cfg, &plan);
        plan.arm();
        let mut model = Model::new();
        let res = apply_scen_script(&cs, &tree, script, &mut model);
        let site = plan.fired_site().unwrap_or_else(|| "?".into());
        let fail = |detail: String| DurViolation {
            seed,
            crash_point: n,
            site: site.clone(),
            detail,
        };
        match res {
            Err(ref e) if is_injected(e) => {}
            Err(e) => return Err(fail(format!("non-injected error: {e}"))),
            Ok(()) => {
                return Err(fail(
                    "workload completed although the plan should have fired".into(),
                ))
            }
        }
        drop(tree);
        let crashed = match cs.crash() {
            Ok(c) => c,
            Err(e) => return Err(fail(format!("durable snapshot failed: {e}"))),
        };
        if let Some(detail) = durability::verify(&crashed, cfg, &model) {
            return Err(fail(detail));
        }
    }

    Ok(DurReport {
        fault_points,
        crash_points_tested: points.len(),
        final_records: probe_model.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_script() -> Vec<ScenOp> {
        let mut s = Vec::new();
        for i in 0..30u64 {
            s.push(ScenOp::Insert(i % 12));
            if i % 3 == 0 {
                s.push(ScenOp::Get(i % 12));
            }
            if i % 5 == 0 {
                s.push(ScenOp::Scan(0, 12));
            }
            if i % 7 == 0 {
                s.push(ScenOp::Delete((i + 1) % 12));
            }
            if i % 11 == 0 {
                s.push(ScenOp::Flush);
            }
            if i == 20 {
                s.push(ScenOp::Checkpoint);
            }
        }
        s
    }

    #[test]
    fn differential_twin_accepts_all_indexes() {
        let report = differential_twin(&mixed_script(), 0x7713).expect("twin must pass");
        assert_eq!(report.indexes, 4);
        assert!(report.final_records > 0);
    }

    #[test]
    fn differential_twin_rejects_lost_write() {
        use crate::index::{LostWriteIndex, ModelIndex};
        let broken = LostWriteIndex::new(ModelIndex::default(), 3);
        let err = drive_index(&broken, &mixed_script(), 0x7713)
            .expect_err("twin must catch dropped writes");
        assert_eq!(err.index, "fixture:lost-write");
    }

    #[test]
    fn durability_twin_accepts_the_real_tree() {
        let cfg = DurConfig {
            ops: 0, // unused: the script is explicit
            max_crash_points: 4,
            ..DurConfig::default()
        };
        let report =
            durability_twin(&mixed_script(), 0x7713, &cfg).expect("durability twin must pass");
        assert!(report.fault_points > 0);
        assert!(report.crash_points_tested >= 2);
    }
}
