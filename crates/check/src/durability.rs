//! Durability oracle: crash at every sampled durable-write boundary of a
//! seeded workload and demand that recovery yields exactly the committed
//! effects — present with their exact values, nothing uncommitted, and a
//! well-formed tree before and after lazy SMO completion.
//!
//! This is the non-panicking twin of `pitree_sim::crash`: instead of
//! asserting inside the sweep it returns a typed [`DurViolation`] carrying
//! the seed, crash point, and fault site, so the CLI can print a replay
//! line and the [shrinker](crate::shrink) can re-drive candidate scripts
//! through [`script_violation`] while minimizing.
//!
//! The seeded-violation fixtures live here too:
//! [`tail_drop_violation`] runs a workload to completion, then crashes
//! with the durable log truncated one byte short — chopping the final
//! forced commit record. That simulates a log device that acknowledged a
//! force it never made durable (the paper's §4.3 premise is exactly that
//! this must not happen), and the oracle is required to report the lost
//! committed write. [`ack_before_durable_violation`] models the early-
//! lock-release client bug — acknowledging a commit at publish time,
//! before the durable watermark covers its LSN — and the oracle must see
//! the lost write. [`elr_chain_violation`] sweeps log-prefix crashes over
//! a pipelined chain of commits that each jump the predecessor's released
//! lock, demanding the recovered value be exactly the last commit the
//! prefix covers.

use crate::model::Model;
use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_pagestore::fault::{is_injected, InjectorHandle};
use pitree_pagestore::{Lsn, StoreError, StoreResult};
use pitree_sim::fault::CrashPlan;
use pitree_sim::SimRng;
use std::sync::Arc;

/// One workload step. Mirrors the sim kit's crash workload shape so
/// failures found by either tool replay in the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurOp {
    /// Forced-commit upsert of key `k` (value derives from key + op index).
    Insert(u64),
    /// Forced-commit delete of key `k`.
    Delete(u64),
    /// Flush all dirty pages.
    Flush,
    /// Fuzzy checkpoint.
    Checkpoint,
}

/// Workload and sweep parameters.
#[derive(Debug, Clone)]
pub struct DurConfig {
    /// Operations per seed.
    pub ops: usize,
    /// Keys drawn from `0..key_domain`.
    pub key_domain: u64,
    /// Cap on crash points swept per seed (strided; last always included).
    pub max_crash_points: usize,
    /// Buffer-pool frames (small pools force evictions mid-workload).
    pub pool_frames: usize,
    /// Space-map capacity.
    pub max_pages: u64,
    /// Tree configuration (small nodes force SMO crash points).
    pub tree_cfg: PiTreeConfig,
}

impl Default for DurConfig {
    fn default() -> DurConfig {
        DurConfig {
            ops: 40,
            key_domain: 32,
            max_crash_points: 8,
            pool_frames: 64,
            max_pages: 10_000,
            tree_cfg: PiTreeConfig::small_nodes(4, 4),
        }
    }
}

/// A durability violation: recovery did not reproduce the committed state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurViolation {
    /// Seed whose workload exposed it (replayable).
    pub seed: u64,
    /// 1-based crash boundary, or 0 when the crash was synthetic (the
    /// tail-drop fixture).
    pub crash_point: u64,
    /// Human-readable fault site description.
    pub site: String,
    /// What recovery got wrong.
    pub detail: String,
}

impl std::fmt::Display for DurViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "durability violation (seed {:#x}, crash point {} at {}): {}",
            self.seed, self.crash_point, self.site, self.detail
        )
    }
}

/// Coverage of a passing sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurReport {
    /// Armed durable-write boundaries the workload crossed.
    pub fault_points: u64,
    /// Boundaries actually crash-tested.
    pub crash_points_tested: usize,
    /// Committed records at the end of the no-crash probe.
    pub final_records: usize,
}

/// Generate the seed's workload script (op mix matches the sim kit).
pub fn gen_script(seed: u64, cfg: &DurConfig) -> Vec<DurOp> {
    let mut rng = SimRng::new(seed);
    (0..cfg.ops)
        .map(|_| {
            let k = rng.below(cfg.key_domain);
            match rng.below(100) {
                0..=54 => DurOp::Insert(k),
                55..=84 => DurOp::Delete(k),
                85..=94 => DurOp::Flush,
                _ => DurOp::Checkpoint,
            }
        })
        .collect()
}

pub(crate) fn key_bytes(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

pub(crate) fn val_bytes(k: u64, op_index: usize) -> Vec<u8> {
    format!("v{k}-{op_index}").into_bytes()
}

pub(crate) fn build(cfg: &DurConfig, plan: &Arc<CrashPlan>) -> (CrashableStore, PiTree) {
    // Setup is disarmed: mkfs/root creation are not crash points.
    let cs = CrashableStore::create_with_injector(
        cfg.pool_frames,
        cfg.max_pages,
        Arc::clone(plan) as InjectorHandle,
    )
    .expect("store setup (disarmed) cannot crash");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg.tree_cfg)
        .expect("tree setup (disarmed) cannot crash");
    (cs, tree)
}

/// A forced commit's ack is only legal once the durable watermark covers
/// its LSN — the early-lock-release contract. Checked after every commit
/// the sweep performs, so a regression that acks at publish surfaces as a
/// violation at whatever crash point next loses the volatile tail.
pub(crate) fn check_ack_watermark(cs: &CrashableStore, lsn: Lsn) -> StoreResult<()> {
    let flushed = cs.store.log.flushed_lsn();
    if flushed < lsn {
        return Err(StoreError::Corrupt(format!(
            "commit acked at lsn {lsn} before the durable watermark ({flushed}) covered it"
        )));
    }
    Ok(())
}

/// Run the script, updating `model` only when a forced commit returns
/// `Ok` — so at any crash the model is exactly the committed data.
fn apply_script(
    cs: &CrashableStore,
    tree: &PiTree,
    script: &[DurOp],
    model: &mut Model,
) -> StoreResult<()> {
    for (i, op) in script.iter().enumerate() {
        match *op {
            DurOp::Insert(k) => {
                let v = val_bytes(k, i);
                let mut t = tree.begin();
                if let Err(e) = tree.insert(&mut t, &key_bytes(k), &v) {
                    // A dead machine can't clean the txn up either.
                    std::mem::forget(t);
                    return Err(e);
                }
                let lsn = t.commit()?;
                check_ack_watermark(cs, lsn)?;
                model.insert(&key_bytes(k), &v);
            }
            DurOp::Delete(k) => {
                let mut t = tree.begin();
                if let Err(e) = tree.delete(&mut t, &key_bytes(k)) {
                    std::mem::forget(t);
                    return Err(e);
                }
                let lsn = t.commit()?;
                check_ack_watermark(cs, lsn)?;
                model.delete(&key_bytes(k));
            }
            DurOp::Flush => cs.store.pool.flush_all()?,
            DurOp::Checkpoint => {
                cs.store.txns.checkpoint()?;
            }
        }
    }
    Ok(())
}

/// Recover `crashed` and compare against the committed `model`. Returns a
/// description of the first discrepancy, `None` when recovery is correct.
pub(crate) fn verify(crashed: &CrashableStore, cfg: &DurConfig, model: &Model) -> Option<String> {
    let (tree, _stats) = match PiTree::recover(Arc::clone(&crashed.store), 1, cfg.tree_cfg) {
        Ok(t) => t,
        Err(e) => return Some(format!("recovery failed: {e}")),
    };
    let report = match tree.validate() {
        Ok(r) => r,
        Err(e) => return Some(format!("validate failed: {e}")),
    };
    if !report.is_well_formed() {
        return Some(format!(
            "recovered tree ill-formed: {:?}",
            report.violations
        ));
    }
    if report.records != model.len() {
        return Some(format!(
            "{} records recovered, committed model has {} \
             (committed effect lost or uncommitted effect survived)",
            report.records,
            model.len()
        ));
    }
    for (k, v) in model.iter() {
        match tree.get_unlocked(k) {
            Ok(Some(got)) if got == *v => {}
            Ok(got) => {
                return Some(format!(
                    "committed key {k:?} recovered as {got:?}, expected {v:?}"
                ))
            }
            Err(e) => return Some(format!("get {k:?} failed: {e}")),
        }
    }
    // Interrupted SMOs must complete lazily without disturbing the data.
    for _ in 0..2 {
        if let Err(e) = tree.run_completions() {
            return Some(format!("lazy completion failed: {e}"));
        }
    }
    match tree.validate() {
        Ok(r) if !r.is_well_formed() => {
            Some(format!("ill-formed after completion: {:?}", r.violations))
        }
        Ok(r) if r.records != model.len() => Some("completion changed the record count".into()),
        Ok(_) => None,
        Err(e) => Some(format!("post-completion validate failed: {e}")),
    }
}

/// Sweep one explicit script over its crash-point space. This is the
/// engine behind [`sweep_seed`] and the predicate the shrinker re-drives.
/// Returns the first violation, or the coverage report.
pub fn script_violation(
    script: &[DurOp],
    seed: u64,
    cfg: &DurConfig,
) -> Result<DurReport, DurViolation> {
    // Probe: measure the boundary space and check the no-crash end state.
    let plan = CrashPlan::count_only();
    let (cs, tree) = build(cfg, &plan);
    plan.arm();
    let mut probe_model = Model::new();
    if let Err(e) = apply_script(&cs, &tree, script, &mut probe_model) {
        return Err(DurViolation {
            seed,
            crash_point: 0,
            site: "probe".into(),
            detail: format!("no-crash run failed: {e}"),
        });
    }
    let fault_points = plan.hits();
    drop(tree);

    let mut points: Vec<u64> = if fault_points == 0 {
        Vec::new()
    } else {
        let stride = (fault_points as usize / cfg.max_crash_points.max(1)).max(1);
        (1..=fault_points).step_by(stride).collect()
    };
    if fault_points > 0 && points.last() != Some(&fault_points) {
        points.push(fault_points);
    }

    for &n in &points {
        let plan = CrashPlan::fire_at(n);
        let (cs, tree) = build(cfg, &plan);
        plan.arm();
        let mut model = Model::new();
        let res = apply_script(&cs, &tree, script, &mut model);
        let site = plan.fired_site().unwrap_or_else(|| "?".into());
        let fail = |detail: String| DurViolation {
            seed,
            crash_point: n,
            site: site.clone(),
            detail,
        };
        match res {
            Err(ref e) if is_injected(e) => {}
            Err(e) => return Err(fail(format!("non-injected error: {e}"))),
            Ok(()) => {
                return Err(fail(
                    "workload completed although the plan should have fired".into(),
                ))
            }
        }
        drop(tree);
        let crashed = match cs.crash() {
            Ok(c) => c,
            Err(e) => return Err(fail(format!("durable snapshot failed: {e}"))),
        };
        if let Some(detail) = verify(&crashed, cfg, &model) {
            return Err(fail(detail));
        }
    }

    Ok(DurReport {
        fault_points,
        crash_points_tested: points.len(),
        final_records: probe_model.len(),
    })
}

/// Full crash–recover–verify sweep for one seed's generated workload.
pub fn sweep_seed(seed: u64, cfg: &DurConfig) -> Result<DurReport, DurViolation> {
    let script = gen_script(seed, cfg);
    script_violation(&script, seed, cfg)
}

/// The seeded-violation fixture: run `script` to completion on a fault-free
/// store, then "crash" with the durable log truncated one byte short —
/// destroying the final forced commit record that the workload was told
/// was durable. Returns the violation the oracle reports, or `None` if it
/// (wrongly) accepts the recovery.
pub fn tail_drop_violation(script: &[DurOp], seed: u64, cfg: &DurConfig) -> Option<DurViolation> {
    let cs = CrashableStore::create(cfg.pool_frames, cfg.max_pages).expect("store");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg.tree_cfg).expect("tree");
    let mut model = Model::new();
    apply_script(&cs, &tree, script, &mut model).expect("fault-free run");
    drop(tree);
    let len = cs.durable_log_len();
    assert!(len > 0, "workload wrote no log");
    let crashed = cs.crash_with_log_prefix(len - 1).expect("snapshot");
    verify(&crashed, cfg, &model).map(|detail| DurViolation {
        seed,
        crash_point: 0,
        site: "log tail dropped".into(),
        detail,
    })
}

/// A minimal script whose final op is a committed insert — the shape
/// [`tail_drop_violation`] needs to guarantee the chopped record is a
/// commit the caller observed succeed.
pub fn fixture_script(seed: u64, cfg: &DurConfig) -> Vec<DurOp> {
    let mut script = gen_script(seed, cfg);
    script.push(DurOp::Insert(cfg.key_domain));
    script
}

/// The early-lock-release seeded-violation fixture: run `script` to
/// completion, then model the client bug the ELR protocol must never
/// hide — acknowledging a commit at publish time. The transaction
/// publishes (locks released, `PendingCommit` dropped without
/// `wait_durable`), the "acked" write goes into the model, and the
/// machine dies with the commit record still in the volatile tail. The
/// oracle is required to report the lost write; `None` means it went
/// blind.
pub fn ack_before_durable_violation(
    script: &[DurOp],
    seed: u64,
    cfg: &DurConfig,
) -> Option<DurViolation> {
    let cs = CrashableStore::create(cfg.pool_frames, cfg.max_pages).expect("store");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg.tree_cfg).expect("tree");
    let mut model = Model::new();
    apply_script(&cs, &tree, script, &mut model).expect("fault-free run");
    // The bug under test: publish, tell the client "committed", never wait
    // for the watermark. (An off-domain key the script cannot overwrite.)
    let key = key_bytes(cfg.key_domain + 1);
    let mut t = tree.begin();
    tree.insert(&mut t, &key, b"acked-at-publish")
        .expect("fixture insert");
    let pc = t.commit_publish();
    assert!(
        !pc.is_durable(),
        "fixture needs the published commit to still sit in the volatile tail"
    );
    drop(pc); // the premature ack
    model.insert(&key, b"acked-at-publish");
    drop(tree);
    let crashed = cs.crash().expect("snapshot");
    verify(&crashed, cfg, &model).map(|detail| DurViolation {
        seed,
        crash_point: 0,
        site: "commit acked at publish".into(),
        detail,
    })
}

fn chain_val(i: usize) -> Vec<u8> {
    format!("elr-{i}").into_bytes()
}

/// End offset (exclusive) of the frame starting at `lsn` in the durable
/// log image: 8-byte header (length + checksum) plus the body length.
fn frame_end(durable: &[u8], lsn: Lsn) -> u64 {
    let off = (lsn.0 - 1) as usize;
    let len = u32::from_le_bytes(durable[off..off + 4].try_into().expect("frame header"));
    (off + 8 + len as usize) as u64
}

/// Early-lock-release pipelined-chain sweep: a seeded chain of
/// transactions updates one key back to back, each *publishing* its
/// commit (locks released, registry entry gone) before any of them is
/// durable — so every successor jumps the predecessor's released lock.
/// Acks (`wait_durable`) happen only after the whole chain has published,
/// and each must find the watermark covering its LSN.
///
/// Then the oracle replays a log-prefix crash just before and exactly at
/// every commit frame's end. The recovered value must be exactly the last
/// commit the prefix covers: a cut at `end(i)` recovers value `i`; a cut
/// one byte short tears commit `i`, making it a loser whose update is
/// undone back to value `i-1` (or the pre-chain base). Anything else is a
/// lost update or a reordering across the jumped lock. Returns the number
/// of prefix cuts verified.
pub fn elr_chain_violation(seed: u64, cfg: &DurConfig) -> Result<usize, DurViolation> {
    let mut rng = SimRng::new(seed);
    let chain_len = rng.range_usize(3..7);
    let key = key_bytes(rng.below(cfg.key_domain));
    let fail = |cut: u64, detail: String| DurViolation {
        seed,
        crash_point: cut,
        site: "elr chain log prefix".into(),
        detail,
    };
    let cs = CrashableStore::create(cfg.pool_frames, cfg.max_pages).expect("store");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg.tree_cfg).expect("tree");
    // Base committed value: what any cut below the chain must recover.
    let mut t = tree.begin();
    tree.insert(&mut t, &key, b"elr-base").expect("base insert");
    t.commit().expect("base commit");
    let base_len = cs.durable_log_len();

    // Publish the whole chain before acking any of it.
    let pending: Vec<_> = (0..chain_len)
        .map(|i| {
            let mut t = tree.begin();
            tree.insert(&mut t, &key, &chain_val(i))
                .expect("chain insert");
            t.commit_publish()
        })
        .collect();
    let mut commit_lsns = Vec::new();
    for pc in pending {
        let lsn = match pc.wait_durable() {
            Ok(lsn) => lsn,
            Err(e) => return Err(fail(0, format!("wait_durable failed: {e}"))),
        };
        if let Err(e) = check_ack_watermark(&cs, lsn) {
            return Err(fail(0, e.to_string()));
        }
        commit_lsns.push(lsn);
    }
    drop(tree);
    let durable = cs.store.log.store().durable_bytes().expect("durable bytes");

    let mut checked = 0usize;
    for (i, &lsn) in commit_lsns.iter().enumerate() {
        let end = frame_end(&durable, lsn);
        debug_assert!(end > base_len);
        for (cut, committed) in [(end - 1, i.checked_sub(1)), (end, Some(i))] {
            let want = match committed {
                Some(j) => chain_val(j),
                None => b"elr-base".to_vec(),
            };
            let crashed = match cs.crash_with_log_prefix(cut) {
                Ok(c) => c,
                Err(e) => return Err(fail(cut, format!("snapshot failed: {e}"))),
            };
            let mut model = Model::new();
            model.insert(&key, &want);
            if let Some(detail) = verify(&crashed, cfg, &model) {
                return Err(fail(cut, detail));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DurConfig {
        DurConfig {
            ops: 20,
            max_crash_points: 4,
            ..DurConfig::default()
        }
    }

    #[test]
    fn sweep_accepts_the_real_tree() {
        let report = sweep_seed(0xd0_5eed, &small()).expect("durability sweep must pass");
        assert!(report.fault_points > 0);
        assert!(report.crash_points_tested >= 2);
    }

    #[test]
    fn tail_drop_fixture_is_rejected() {
        let cfg = small();
        let script = fixture_script(0xd0_5eed, &cfg);
        let v = tail_drop_violation(&script, 0xd0_5eed, &cfg)
            .expect("oracle must detect the lost committed write");
        assert_eq!(v.crash_point, 0);
        assert!(v.site.contains("tail"));
    }

    #[test]
    fn elr_chain_sweep_accepts_the_real_tree() {
        let checked = elr_chain_violation(0xe1_5eed, &small()).expect("elr chain sweep must pass");
        // chain_len >= 3, two cuts per commit.
        assert!(checked >= 6, "swept only {checked} prefix cuts");
    }

    #[test]
    fn ack_before_durable_fixture_is_rejected() {
        let cfg = small();
        let script = gen_script(0xd0_5eed, &cfg);
        let v = ack_before_durable_violation(&script, 0xd0_5eed, &cfg)
            .expect("oracle must detect the prematurely acked commit");
        assert_eq!(v.crash_point, 0);
        assert!(v.site.contains("publish"));
    }
}
