//! The sequential specification: a `BTreeMap`-backed model of the
//! key/record interface every tree in the workspace exposes.
//!
//! This is the oracle all three check layers reduce to. The differential
//! driver compares a system under test against it op by op; the
//! linearizability checker asks whether some linear order of a concurrent
//! history is a legal run of it; the durability oracle tracks the
//! committed-prefix model across a crash and demands the recovered tree
//! equal it.

use std::collections::BTreeMap;

/// The sequential model: exactly the paper's abstract "single record per
/// key" search structure (§2.1), with upsert/delete/point-read/range-scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// Upsert. Returns `true` when the key was new (the same contract as
    /// [`pitree::PiTree::insert`]).
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> bool {
        self.map.insert(key.to_vec(), value.to_vec()).is_none()
    }

    /// Point read.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    /// Delete. Returns whether the key existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        self.map.remove(key).is_some()
    }

    /// Range scan of `[from, to)`, sorted by key — the same window
    /// convention as [`pitree::PiTree::scan`].
    pub fn scan(&self, from: &[u8], to: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map
            .range(from.to_vec()..to.to_vec())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the model holds no records.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over all `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Vec<u8>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete_contract() {
        let mut m = Model::new();
        assert!(m.insert(b"a", b"1"));
        assert!(!m.insert(b"a", b"2"), "upsert of existing key is not new");
        assert_eq!(m.get(b"a"), Some(b"2".to_vec()));
        assert!(m.delete(b"a"));
        assert!(!m.delete(b"a"));
        assert_eq!(m.get(b"a"), None);
    }

    #[test]
    fn scan_window_is_half_open() {
        let mut m = Model::new();
        for k in [b"a", b"b", b"c"] {
            m.insert(k, b"v");
        }
        let hit: Vec<Vec<u8>> = m.scan(b"a", b"c").into_iter().map(|(k, _)| k).collect();
        assert_eq!(hit, vec![b"a".to_vec(), b"b".to_vec()]);
    }
}
