//! Concurrent histories over the `pitree-obs` event rings.
//!
//! Harness threads record each operation as an [`EventKind::OpInvoke`] /
//! [`EventKind::OpReturn`] pair through a dedicated [`Registry`]; the
//! registry's logical clock stamps both edges, giving a real-time partial
//! order with no wall clocks (deterministic under replay). This module
//! owns the payload encoding and the decode back into [`Call`]s.
//!
//! Encoding (two `u64` payload words per event):
//! - `a` = `op_code << 56 | key` — op codes are [`OpKind`] discriminants,
//!   keys are small integers from the harness key domain.
//! - `b` on invoke = argument (the value being inserted; 0 otherwise).
//! - `b` on return = result: for [`OpKind::Get`], `0` for absent else
//!   `value + 1`; for [`OpKind::Insert`], `2` for "flag unknown", else
//!   the created flag; for [`OpKind::Delete`], the existed flag.

use pitree_obs::{Event, EventKind, Recorder, Registry};

/// The three point operations a history records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Upsert of `(key, arg)`.
    Insert,
    /// Delete of `key`.
    Delete,
    /// Point read of `key`.
    Get,
}

impl OpKind {
    fn code(self) -> u64 {
        match self {
            OpKind::Insert => 1,
            OpKind::Delete => 2,
            OpKind::Get => 3,
        }
    }

    fn from_code(code: u64) -> Option<OpKind> {
        match code {
            1 => Some(OpKind::Insert),
            2 => Some(OpKind::Delete),
            3 => Some(OpKind::Get),
            _ => None,
        }
    }
}

/// The result an operation reported, as carried in the return event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpRet {
    /// Insert with an unknown created flag (baseline-style interfaces).
    InsertedUnknown,
    /// Insert reporting whether the key was new.
    Inserted(bool),
    /// Delete reporting whether the key existed.
    Deleted(bool),
    /// Read observing `Some(value)` or `None`.
    Got(Option<u64>),
}

/// One completed operation: a matched invoke/return pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Call {
    /// Recording thread (registry-local id).
    pub tid: u32,
    /// Logical clock at invocation.
    pub invoke: u64,
    /// Logical clock at return; always `> invoke`.
    pub ret_at: u64,
    /// Which operation.
    pub kind: OpKind,
    /// The key operated on.
    pub key: u64,
    /// Insert argument (0 for delete/get).
    pub arg: u64,
    /// The reported result.
    pub ret: OpRet,
}

/// What went wrong while decoding a raw event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// A thread's stream had a return with no pending invoke, or two
    /// invokes in a row (operations within a thread are sequential).
    Unpaired {
        /// Thread whose stream is malformed.
        tid: u32,
        /// Logical clock of the offending event.
        clock: u64,
    },
    /// An event carried an op code outside [`OpKind`].
    BadOpCode {
        /// The unknown code.
        code: u64,
    },
    /// A return event did not match its invoke's op/key.
    Mismatched {
        /// Thread whose stream is malformed.
        tid: u32,
        /// Logical clock of the return event.
        clock: u64,
    },
    /// The ring dropped events, so the history is incomplete and cannot
    /// be checked soundly.
    Dropped,
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::Unpaired { tid, clock } => {
                write!(f, "unpaired invoke/return on tid {tid} at clock {clock}")
            }
            HistoryError::BadOpCode { code } => write!(f, "unknown op code {code}"),
            HistoryError::Mismatched { tid, clock } => {
                write!(
                    f,
                    "return does not match invoke on tid {tid} at clock {clock}"
                )
            }
            HistoryError::Dropped => write!(f, "event ring dropped history events"),
        }
    }
}

/// Records one thread's operations into a shared registry. Clone a fresh
/// recorder per thread from the same [`HistoryLog`].
#[derive(Debug)]
pub struct OpRecorder {
    rec: Recorder,
}

impl OpRecorder {
    fn packed(kind: OpKind, key: u64) -> u64 {
        debug_assert!(key < 1 << 56);
        kind.code() << 56 | key
    }

    /// Record the invocation edge.
    pub fn invoke(&self, kind: OpKind, key: u64, arg: u64) {
        self.rec
            .event(EventKind::OpInvoke, Self::packed(kind, key), arg);
    }

    /// Record the return edge.
    pub fn ret(&self, kind: OpKind, key: u64, ret: OpRet) {
        let b = match ret {
            OpRet::InsertedUnknown => 2,
            OpRet::Inserted(created) => u64::from(created),
            OpRet::Deleted(existed) => u64::from(existed),
            OpRet::Got(None) => 0,
            OpRet::Got(Some(v)) => v + 1,
        };
        self.rec
            .event(EventKind::OpReturn, Self::packed(kind, key), b);
    }
}

/// A history log: a dedicated registry sized so harness runs never drop
/// events (dropped events would make the checker unsound, so decode
/// refuses them).
#[derive(Debug)]
pub struct HistoryLog {
    registry: Registry,
}

impl Default for HistoryLog {
    fn default() -> HistoryLog {
        HistoryLog::new()
    }
}

impl HistoryLog {
    /// A log with room for 64Ki events per thread — far above what the
    /// bounded harness workloads emit.
    pub fn new() -> HistoryLog {
        HistoryLog {
            registry: Registry::with_event_capacity(64 * 1024),
        }
    }

    /// A per-thread recorder. Call once in each harness thread.
    pub fn recorder(&self) -> OpRecorder {
        OpRecorder {
            rec: self.registry.recorder(),
        }
    }

    /// Drain and decode the recorded history into completed calls,
    /// sorted by invocation clock.
    pub fn take_history(&self) -> Result<Vec<Call>, HistoryError> {
        decode(self.registry.drain_events())
    }
}

/// Decode a drained event stream into completed calls. Non-history event
/// kinds are ignored, so a harness may share the registry with the tree's
/// own instrumentation.
pub fn decode(events: Vec<Event>) -> Result<Vec<Call>, HistoryError> {
    // Per-tid pending invoke; ops within a thread are sequential.
    let mut pending: std::collections::HashMap<u32, Event> = std::collections::HashMap::new();
    // Per-tid last seen seq: a gap means the ring wrapped and dropped
    // events, which would silently hide operations from the checker.
    let mut last_seq: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut calls = Vec::new();
    for ev in events {
        if let Some(prev) = last_seq.insert(ev.tid, ev.seq) {
            if ev.seq != prev + 1 {
                return Err(HistoryError::Dropped);
            }
        }
        match ev.kind {
            EventKind::OpInvoke if pending.contains_key(&ev.tid) => {
                return Err(HistoryError::Unpaired {
                    tid: ev.tid,
                    clock: ev.clock,
                });
            }
            EventKind::OpInvoke => {
                pending.insert(ev.tid, ev);
            }
            EventKind::OpReturn => {
                let inv = pending.remove(&ev.tid).ok_or(HistoryError::Unpaired {
                    tid: ev.tid,
                    clock: ev.clock,
                })?;
                if inv.a != ev.a {
                    return Err(HistoryError::Mismatched {
                        tid: ev.tid,
                        clock: ev.clock,
                    });
                }
                let code = ev.a >> 56;
                let kind = OpKind::from_code(code).ok_or(HistoryError::BadOpCode { code })?;
                let key = ev.a & ((1 << 56) - 1);
                let ret = match kind {
                    OpKind::Insert => match ev.b {
                        2 => OpRet::InsertedUnknown,
                        f => OpRet::Inserted(f != 0),
                    },
                    OpKind::Delete => OpRet::Deleted(ev.b != 0),
                    OpKind::Get => OpRet::Got(ev.b.checked_sub(1)),
                };
                calls.push(Call {
                    tid: ev.tid,
                    invoke: inv.clock,
                    ret_at: ev.clock,
                    kind,
                    key,
                    arg: inv.b,
                    ret,
                });
            }
            _ => {}
        }
    }
    if !pending.is_empty() {
        // A leftover invoke means the harness lost a return (or a thread
        // died mid-op); the bounded harnesses always complete.
        let ev = pending.values().next().expect("non-empty");
        return Err(HistoryError::Unpaired {
            tid: ev.tid,
            clock: ev.clock,
        });
    }
    calls.sort_by_key(|c| c.invoke);
    Ok(calls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_decode_roundtrip() {
        let log = HistoryLog::new();
        let rec = log.recorder();
        rec.invoke(OpKind::Insert, 7, 41);
        rec.ret(OpKind::Insert, 7, OpRet::Inserted(true));
        rec.invoke(OpKind::Get, 7, 0);
        rec.ret(OpKind::Get, 7, OpRet::Got(Some(41)));
        rec.invoke(OpKind::Delete, 7, 0);
        rec.ret(OpKind::Delete, 7, OpRet::Deleted(true));
        rec.invoke(OpKind::Get, 7, 0);
        rec.ret(OpKind::Get, 7, OpRet::Got(None));

        let calls = log.take_history().unwrap();
        assert_eq!(calls.len(), 4);
        assert_eq!(calls[0].kind, OpKind::Insert);
        assert_eq!(calls[0].arg, 41);
        assert_eq!(calls[0].ret, OpRet::Inserted(true));
        assert_eq!(calls[1].ret, OpRet::Got(Some(41)));
        assert_eq!(calls[2].ret, OpRet::Deleted(true));
        assert_eq!(calls[3].ret, OpRet::Got(None));
        assert!(calls.windows(2).all(|w| w[0].invoke < w[1].invoke));
        assert!(calls.iter().all(|c| c.invoke < c.ret_at));
    }

    #[test]
    fn unpaired_return_is_an_error() {
        let log = HistoryLog::new();
        let rec = log.recorder();
        rec.ret(OpKind::Get, 1, OpRet::Got(None));
        assert!(matches!(
            log.take_history(),
            Err(HistoryError::Unpaired { .. })
        ));
    }

    #[test]
    fn dangling_invoke_is_an_error() {
        let log = HistoryLog::new();
        let rec = log.recorder();
        rec.invoke(OpKind::Get, 1, 0);
        assert!(matches!(
            log.take_history(),
            Err(HistoryError::Unpaired { .. })
        ));
    }
}
