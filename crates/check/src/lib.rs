//! `pitree-check`: the workspace's correctness tooling.
//!
//! Three oracles, one sequential model:
//!
//! 1. **Differential** ([`differential`]) — drive the Π-tree and the
//!    `baselines` trees with identical seeded single-threaded workloads
//!    and demand op-for-op agreement with the [`model`] spec.
//! 2. **Linearizability** ([`linear`]) — concurrent harness threads record
//!    invoke/return events through the `pitree-obs` logical-clock rings
//!    ([`history`]); a Wing–Gong search with per-key partition pruning
//!    decides whether some linear order of the history is a legal run of
//!    the model. This is the executable form of the paper's claim that
//!    searchers traversing *intermediate* SMO states still see exactly the
//!    committed record for every key (§1, §3.3).
//! 3. **Durability** ([`durability`]) — crash–recover sweeps over every
//!    sampled durable-write boundary, verifying committed-present /
//!    uncommitted-absent / well-formed after recovery (§4.3), with a
//!    delta-debugging [`shrink`]er that minimizes a failing script.
//!
//! Each layer must also *reject* a deliberately broken implementation —
//! the fixtures in [`index`], [`durability::tail_drop_violation`], and
//! [`durability::ack_before_durable_violation`] (a commit acknowledged at
//! publish, before the durable watermark covered it) —
//! so the gate in `scripts/verify.sh` proves the oracles have teeth
//! before trusting their green light. The `pitree-check` binary fronts
//! all of this over replayable seeds (see `--help`).

#![warn(missing_docs)]

pub mod differential;
pub mod durability;
pub mod history;
pub mod index;
pub mod linear;
pub mod model;
pub mod scenario;
pub mod shrink;

pub use differential::{run_differential, DiffConfig, DiffReport, DiffViolation};
pub use durability::{
    ack_before_durable_violation, elr_chain_violation, sweep_seed, DurConfig, DurReport,
    DurViolation,
};
pub use history::{Call, HistoryLog, OpKind, OpRet};
pub use index::{BaselineIndex, CheckIndex, ModelIndex, PiCheckIndex, PiElrIndex};
pub use linear::{check_history, run_linearizability, LinConfig, LinReport, LinViolation};
pub use model::Model;
pub use scenario::{differential_twin, durability_twin, ScenOp, TwinReport};

use pitree::PiTreeConfig;
use pitree_baselines::{LockCouplingTree, OptimisticCouplingTree, SerialSmoTree};

/// Every index the differential layer compares against the model: the
/// Π-tree (small nodes, so the workload crosses split/post/consolidate
/// paths) and the three baseline trees.
pub fn all_indexes() -> Vec<Box<dyn CheckIndex>> {
    vec![
        Box::new(PiCheckIndex::new(128, PiTreeConfig::small_nodes(4, 4))),
        Box::new(BaselineIndex(LockCouplingTree::new(128, 4))),
        Box::new(BaselineIndex(OptimisticCouplingTree::new(128, 4))),
        Box::new(BaselineIndex(SerialSmoTree::new(128, 4))),
    ]
}

/// The concurrent targets the linearizability layer drives: the Π-tree
/// with per-op forced commits, the same tree under early lock release
/// (commits published before they are durable, acks at the watermark),
/// and a baseline.
pub fn lin_targets() -> Vec<Box<dyn CheckIndex>> {
    vec![
        Box::new(PiCheckIndex::new(256, PiTreeConfig::small_nodes(4, 4))),
        Box::new(PiElrIndex::new(256, PiTreeConfig::small_nodes(4, 4))),
        Box::new(BaselineIndex(LockCouplingTree::new(256, 4))),
    ]
}
