//! Differential oracle: drive a system under test and the sequential
//! [`Model`] with the same seeded workload and demand identical answers.
//!
//! Because the driver is single-threaded, every legal implementation must
//! agree with the model exactly — there is no reordering slack. This is
//! the cheapest of the three layers and the one that catches plain logic
//! bugs (lost writes, wrong scan windows, bad created/existed flags).

use crate::index::CheckIndex;
use crate::model::Model;
use pitree_sim::SimRng;

/// Knobs for one differential run.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Operations to issue.
    pub ops: usize,
    /// Keys are drawn from `0..key_domain` (small domains force overwrite
    /// and delete-of-present paths).
    pub key_domain: u64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            ops: 400,
            key_domain: 64,
        }
    }
}

/// Where a differential run diverged from the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffViolation {
    /// The index that diverged.
    pub index: &'static str,
    /// Seed of the failing run (replayable via `pitree-check --replay`).
    pub seed: u64,
    /// Zero-based operation index at which the divergence was observed
    /// (`usize::MAX` for the final sweep).
    pub op: usize,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl std::fmt::Display for DiffViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "differential divergence in {} (seed {:#x}, op {}): {}",
            self.index, self.seed, self.op, self.detail
        )
    }
}

/// Summary of a passing differential run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffReport {
    /// Operations executed.
    pub ops: usize,
    /// Records live in the model at the end.
    pub final_records: usize,
}

fn key_bytes(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

/// Run one seeded differential workload against `index`, comparing every
/// observable result with the [`Model`] and finishing with a full-domain
/// point-read sweep.
pub fn run_differential(
    index: &dyn CheckIndex,
    seed: u64,
    cfg: DiffConfig,
) -> Result<DiffReport, DiffViolation> {
    let mut rng = SimRng::new(seed);
    let mut model = Model::new();
    let fail = |op: usize, detail: String| DiffViolation {
        index: index.name(),
        seed,
        op,
        detail,
    };

    for op in 0..cfg.ops {
        let k = rng.below(cfg.key_domain);
        let key = key_bytes(k);
        match rng.below(100) {
            // 45% insert/upsert
            0..=44 => {
                let val = format!("v{k}-{op}").into_bytes();
                let got = index.insert(&key, &val);
                let want = model.insert(&key, &val);
                if let Some(created) = got {
                    if created != want {
                        return Err(fail(
                            op,
                            format!("insert({k}) created={created}, model says {want}"),
                        ));
                    }
                }
            }
            // 20% delete
            45..=64 => {
                let got = index.delete(&key);
                let want = model.delete(&key);
                if got != want {
                    return Err(fail(
                        op,
                        format!("delete({k}) existed={got}, model says {want}"),
                    ));
                }
            }
            // 25% point read
            65..=89 => {
                let got = index.get(&key);
                let want = model.get(&key);
                if got != want {
                    return Err(fail(op, format!("get({k}) = {got:?}, model says {want:?}")));
                }
            }
            // 10% range scan (skipped by indexes that don't support it)
            _ => {
                let hi = k + 1 + rng.below(cfg.key_domain / 4 + 1);
                let (lo_b, hi_b) = (key_bytes(k), key_bytes(hi));
                if let Some(got) = index.scan(&lo_b, &hi_b) {
                    let want = model.scan(&lo_b, &hi_b);
                    if got != want {
                        return Err(fail(
                            op,
                            format!(
                                "scan([{k},{hi})) returned {} pairs, model has {}",
                                got.len(),
                                want.len()
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Final sweep: every key in the domain must agree, whether or not the
    // workload happened to read it.
    for k in 0..cfg.key_domain {
        let key = key_bytes(k);
        let got = index.get(&key);
        let want = model.get(&key);
        if got != want {
            return Err(fail(
                usize::MAX,
                format!("final sweep: get({k}) = {got:?}, model says {want:?}"),
            ));
        }
    }

    Ok(DiffReport {
        ops: cfg.ops,
        final_records: model.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{LostWriteIndex, ModelIndex};

    #[test]
    fn model_index_passes() {
        let report =
            run_differential(&ModelIndex::default(), 0xd1ff, DiffConfig::default()).unwrap();
        assert_eq!(report.ops, 400);
    }

    #[test]
    fn lost_write_fixture_is_rejected() {
        let broken = LostWriteIndex::new(ModelIndex::default(), 5);
        let err = run_differential(&broken, 0xd1ff, DiffConfig::default())
            .expect_err("differential oracle must catch dropped writes");
        assert_eq!(err.index, "fixture:lost-write");
        assert_eq!(err.seed, 0xd1ff);
    }
}
