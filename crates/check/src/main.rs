//! `pitree-check` — run the correctness oracles over replayable seeds.
//!
//! ```text
//! pitree-check --sweep <n>      # n-seed sweep of all three layers, summary
//!                               # table, exit 1 on any violation
//! pitree-check --fixtures       # prove each oracle rejects its seeded
//!                               # violation (exit 1 if one is accepted)
//! pitree-check --replay <seed> [--layer diff|linear|dur]
//!                               # verbose single-seed run; a durability
//!                               # failure is minimized by the shrinker
//! ```
//!
//! Seeds are drawn from the same stable corpus generator as the sim kit
//! (`pitree_sim::prop::case_seed`), so `--sweep` tests identical cases on
//! every machine and a printed seed replays exactly.

use pitree_check::durability::{
    ack_before_durable_violation, elr_chain_violation, fixture_script, gen_script,
    tail_drop_violation,
};
use pitree_check::index::{LostWriteIndex, ModelIndex, StaleReadIndex};
use pitree_check::shrink::{shrink_durability, shrink_tail_drop};
use pitree_check::{
    all_indexes, lin_targets, run_differential, run_linearizability, sweep_seed, CheckIndex,
    DiffConfig, DurConfig, LinConfig,
};
use pitree_sim::prop::case_seed;
use std::process::ExitCode;

fn usage() -> ExitCode {
    println!(
        "usage: pitree-check --sweep <n> | --fixtures | --replay <seed> [--layer diff|linear|dur]"
    );
    ExitCode::from(2)
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--sweep") => {
            let Some(n) = args.get(1).and_then(|s| s.parse::<usize>().ok()) else {
                return usage();
            };
            sweep(n)
        }
        Some("--fixtures") => fixtures(),
        Some("--replay") => {
            let Some(seed) = args.get(1).and_then(|s| parse_seed(s)) else {
                return usage();
            };
            let layer = match args.get(2).map(String::as_str) {
                Some("--layer") => args.get(3).map(String::as_str),
                None => None,
                _ => return usage(),
            };
            replay(seed, layer)
        }
        _ => usage(),
    }
}

/// One summary row, lint-gate style: layer, target, cases, verdict.
fn row(layer: &str, target: &str, cases: usize, verdict: &str) {
    println!("{layer:<16} {target:<24} {cases:>3} case(s)  {verdict}");
}

fn sweep(n: usize) -> ExitCode {
    let mut violations = 0usize;

    // Layer 1: differential vs the sequential model (per-seed fresh trees).
    for target in 0..all_indexes().len() {
        let mut name = "?";
        let mut failed = None;
        for i in 0..n {
            let seed = case_seed("pitree-check.diff", i);
            let indexes = all_indexes();
            let idx = indexes[target].as_ref();
            name = idx.name();
            if let Err(v) = run_differential(idx, seed, DiffConfig::default()) {
                failed = Some(v);
                break;
            }
        }
        match failed {
            None => row("differential", name, n, "ok"),
            Some(v) => {
                row("differential", name, n, "VIOLATION");
                eprintln!("  {v}");
                eprintln!("  replay: pitree-check --replay {:#x} --layer diff", v.seed);
                violations += 1;
            }
        }
    }

    // Layer 2: linearizability of concurrent histories.
    for target in 0..lin_targets().len() {
        let mut name = "?";
        let mut failed = None;
        for i in 0..n {
            let seed = case_seed("pitree-check.linear", i);
            let targets = lin_targets();
            let idx = targets[target].as_ref();
            name = idx.name();
            if let Err(e) = run_linearizability(idx, seed, LinConfig::default()) {
                failed = Some((seed, e));
                break;
            }
        }
        match failed {
            None => row("linearizability", name, n, "ok"),
            Some((seed, e)) => {
                row("linearizability", name, n, "VIOLATION");
                eprintln!("  seed {seed:#x}: {e}");
                eprintln!("  replay: pitree-check --replay {seed:#x} --layer linear");
                violations += 1;
            }
        }
    }

    // Layer 3: durability across the crash-point sweep (Π-tree only; the
    // baselines have no recovery story — that's the paper's point).
    {
        let mut tested = 0usize;
        let mut failed = None;
        for i in 0..n {
            let seed = case_seed("pitree-check.dur", i);
            match sweep_seed(seed, &DurConfig::default()) {
                Ok(r) => tested += r.crash_points_tested,
                Err(v) => {
                    failed = Some(v);
                    break;
                }
            }
        }
        match failed {
            None => row(
                "durability",
                "pi-tree",
                n,
                &format!("ok ({tested} crash points)"),
            ),
            Some(v) => {
                row("durability", "pi-tree", n, "VIOLATION");
                eprintln!("  {v}");
                eprintln!("  replay: pitree-check --replay {:#x} --layer dur", v.seed);
                violations += 1;
            }
        }
    }

    // Layer 3b: early-lock-release pipelined chains over log-prefix
    // crashes — acks only after the watermark, no lost update when a
    // successor jumps a released lock.
    {
        let mut cuts = 0usize;
        let mut failed = None;
        for i in 0..n {
            let seed = case_seed("pitree-check.elr", i);
            match elr_chain_violation(seed, &DurConfig::default()) {
                Ok(c) => cuts += c,
                Err(v) => {
                    failed = Some(v);
                    break;
                }
            }
        }
        match failed {
            None => row(
                "durability-elr",
                "pi-tree",
                n,
                &format!("ok ({cuts} prefix cuts)"),
            ),
            Some(v) => {
                row("durability-elr", "pi-tree", n, "VIOLATION");
                eprintln!("  {v}");
                eprintln!("  replay: pitree-check --replay {:#x} --layer dur", v.seed);
                violations += 1;
            }
        }
    }

    if violations == 0 {
        println!("pitree-check: clean");
        ExitCode::SUCCESS
    } else {
        println!("pitree-check: {violations} violation(s)");
        ExitCode::FAILURE
    }
}

/// Prove the oracles have teeth: each layer must reject its seeded
/// violation. An oracle that accepts a broken implementation is itself
/// the bug.
fn fixtures() -> ExitCode {
    let mut accepted = 0usize;

    let seed = case_seed("pitree-check.fixtures", 0);

    let broken = LostWriteIndex::new(ModelIndex::default(), 5);
    match run_differential(&broken, seed, DiffConfig::default()) {
        Err(v) => row(
            "differential",
            broken.name(),
            1,
            &format!("rejected (op {})", v.op),
        ),
        Ok(_) => {
            row(
                "differential",
                broken.name(),
                1,
                "ACCEPTED (oracle is blind)",
            );
            accepted += 1;
        }
    }

    let stale = StaleReadIndex::new(ModelIndex::default());
    let lin_cfg = LinConfig {
        threads: 1,
        ops_per_thread: 64,
        key_domain: 4,
    };
    match run_linearizability(&stale, seed, lin_cfg) {
        Err(_) => row("linearizability", stale.name(), 1, "rejected"),
        Ok(_) => {
            row(
                "linearizability",
                stale.name(),
                1,
                "ACCEPTED (oracle is blind)",
            );
            accepted += 1;
        }
    }

    let cfg = DurConfig {
        ops: 24,
        max_crash_points: 4,
        ..DurConfig::default()
    };
    let script = fixture_script(seed, &cfg);
    match tail_drop_violation(&script, seed, &cfg) {
        Some(v) => {
            let min = shrink_tail_drop(&script, seed, &cfg);
            row(
                "durability",
                "fixture:lost-commit",
                1,
                &format!("rejected; shrunk {} -> {} op(s)", script.len(), min.len()),
            );
            println!("  violation: {}", v.detail);
            println!("  minimal schedule: {min:?}");
        }
        None => {
            row(
                "durability",
                "fixture:lost-commit",
                1,
                "ACCEPTED (oracle is blind)",
            );
            accepted += 1;
        }
    }

    // The ELR contract: an ack is only legal once the watermark covers
    // the commit. Model the client that acks at publish; the oracle must
    // see the lost write after the crash.
    let elr_script = gen_script(seed, &cfg);
    match ack_before_durable_violation(&elr_script, seed, &cfg) {
        Some(v) => {
            row("durability", "fixture:ack-before-durable", 1, "rejected");
            println!("  violation: {}", v.detail);
        }
        None => {
            row(
                "durability",
                "fixture:ack-before-durable",
                1,
                "ACCEPTED (oracle is blind)",
            );
            accepted += 1;
        }
    }

    if accepted == 0 {
        println!("pitree-check: all seeded violations rejected");
        ExitCode::SUCCESS
    } else {
        println!("pitree-check: {accepted} fixture(s) wrongly accepted");
        ExitCode::FAILURE
    }
}

fn replay(seed: u64, layer: Option<&str>) -> ExitCode {
    let run_diff = matches!(layer, None | Some("diff"));
    let run_lin = matches!(layer, None | Some("linear"));
    let run_dur = matches!(layer, None | Some("dur"));
    if !(run_diff || run_lin || run_dur) {
        return usage();
    }
    let mut violations = 0usize;

    if run_diff {
        for idx in all_indexes() {
            match run_differential(idx.as_ref(), seed, DiffConfig::default()) {
                Ok(r) => println!(
                    "differential     {:<24} ok ({} ops, {} final records)",
                    idx.name(),
                    r.ops,
                    r.final_records
                ),
                Err(v) => {
                    println!("differential     {:<24} VIOLATION: {v}", idx.name());
                    violations += 1;
                }
            }
        }
    }

    if run_lin {
        for idx in lin_targets() {
            match run_linearizability(idx.as_ref(), seed, LinConfig::default()) {
                Ok(r) => println!(
                    "linearizability  {:<24} ok ({} calls over {} keys)",
                    idx.name(),
                    r.calls,
                    r.keys
                ),
                Err(e) => {
                    println!("linearizability  {:<24} VIOLATION:\n{e}", idx.name());
                    violations += 1;
                }
            }
        }
    }

    if run_dur {
        let cfg = DurConfig::default();
        match sweep_seed(seed, &cfg) {
            Ok(r) => println!(
                "durability       {:<24} ok ({} of {} crash points swept)",
                "pi-tree", r.crash_points_tested, r.fault_points
            ),
            Err(v) => {
                println!("durability       {:<24} VIOLATION: {v}", "pi-tree");
                println!("minimizing the failing script (this re-sweeps each candidate)...");
                let script = pitree_check::durability::gen_script(seed, &cfg);
                let min = shrink_durability(&script, seed, &cfg);
                println!("minimal failing schedule ({} op(s)): {min:?}", min.len());
                violations += 1;
            }
        }
        match elr_chain_violation(seed, &cfg) {
            Ok(c) => println!("durability-elr   {:<24} ok ({c} prefix cuts)", "pi-tree"),
            Err(v) => {
                println!("durability-elr   {:<24} VIOLATION: {v}", "pi-tree");
                violations += 1;
            }
        }
    }

    if violations == 0 {
        println!("pitree-check: seed {seed:#x} clean");
        ExitCode::SUCCESS
    } else {
        println!("pitree-check: seed {seed:#x}: {violations} violation(s)");
        ExitCode::FAILURE
    }
}
