//! The surface the checkers drive, adapters for every tree in the
//! workspace, and the deliberately broken fixtures the acceptance tests
//! feed to each layer.
//!
//! [`CheckIndex`] is wider than `pitree_baselines::ConcurrentIndex`: it
//! reports the insert's created/replaced flag when the implementation
//! knows it, and exposes range scans when the implementation has them —
//! the model covers both, and the checkers constrain exactly as much as
//! an implementation claims.

use crate::model::Model;
use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_baselines::ConcurrentIndex;
use pitree_pagestore::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One key/record index under check.
pub trait CheckIndex: Send + Sync {
    /// Upsert; `Some(created)` when the implementation reports whether the
    /// key was new, `None` when it cannot (the baselines' interface).
    fn insert(&self, key: &[u8], value: &[u8]) -> Option<bool>;
    /// Point read.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;
    /// Delete; returns whether the key existed.
    fn delete(&self, key: &[u8]) -> bool;
    /// Range scan of `[from, to)`; `None` when unsupported.
    fn scan(&self, _from: &[u8], _to: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        None
    }
    /// Name for report tables.
    fn name(&self) -> &'static str;
}

/// A Π-tree with its store, autocommitting one forced transaction per
/// operation: reads take S record locks, so every completed operation's
/// effect is committed — the strongest surface the paper's protocol
/// offers, and the one the linearizability claim is made for.
pub struct PiCheckIndex {
    _store: CrashableStore,
    tree: PiTree,
}

impl std::fmt::Debug for PiCheckIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiCheckIndex").finish_non_exhaustive()
    }
}

impl PiCheckIndex {
    /// Build over a fresh in-memory store.
    pub fn new(pool_frames: usize, cfg: PiTreeConfig) -> PiCheckIndex {
        let store = CrashableStore::create(pool_frames, 1 << 20).expect("store");
        let tree = PiTree::create(Arc::clone(&store.store), 1, cfg).expect("tree");
        PiCheckIndex {
            _store: store,
            tree,
        }
    }

    /// The wrapped tree (for stats and validation).
    pub fn tree(&self) -> &PiTree {
        &self.tree
    }
}

impl CheckIndex for PiCheckIndex {
    fn insert(&self, key: &[u8], value: &[u8]) -> Option<bool> {
        loop {
            let mut txn = self.tree.begin();
            match self.tree.insert(&mut txn, key, value) {
                Ok(created) => {
                    txn.commit().expect("commit");
                    return Some(created);
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    // Deadlock victim: abort and retry, like any client.
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        loop {
            let txn = self.tree.begin();
            match self.tree.get(&txn, key) {
                Ok(got) => {
                    txn.commit().expect("commit");
                    return got;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(None);
                }
                Err(e) => panic!("get failed: {e}"),
            }
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        loop {
            let mut txn = self.tree.begin();
            match self.tree.delete(&mut txn, key) {
                Ok(existed) => {
                    txn.commit().expect("commit");
                    return existed;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("delete failed: {e}"),
            }
        }
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        Some(self.tree.scan(from, to).expect("scan"))
    }

    fn name(&self) -> &'static str {
        "pi-tree"
    }
}

/// The Π-tree under early lock release: every write *publishes* its
/// commit first — record locks released at log append, so concurrent
/// operations are free to jump in while the force is still in flight —
/// and returns only once `wait_durable` sees the watermark cover the
/// commit LSN (the ack point). Reads are the same forced transactions as
/// [`PiCheckIndex`]; a reader that observed a jumped writer's value acks
/// through its own forced commit, which covers that writer's earlier LSN.
/// Histories this adapter produces must therefore still linearize, and
/// the checker holds ELR to exactly that.
pub struct PiElrIndex {
    _store: CrashableStore,
    tree: PiTree,
}

impl std::fmt::Debug for PiElrIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiElrIndex").finish_non_exhaustive()
    }
}

impl PiElrIndex {
    /// Build over a fresh in-memory store.
    pub fn new(pool_frames: usize, cfg: PiTreeConfig) -> PiElrIndex {
        let store = CrashableStore::create(pool_frames, 1 << 20).expect("store");
        let tree = PiTree::create(Arc::clone(&store.store), 1, cfg).expect("tree");
        PiElrIndex {
            _store: store,
            tree,
        }
    }
}

impl CheckIndex for PiElrIndex {
    fn insert(&self, key: &[u8], value: &[u8]) -> Option<bool> {
        loop {
            let mut txn = self.tree.begin();
            match self.tree.insert(&mut txn, key, value) {
                Ok(created) => {
                    txn.commit_publish().wait_durable().expect("ack");
                    return Some(created);
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        loop {
            let txn = self.tree.begin();
            match self.tree.get(&txn, key) {
                Ok(got) => {
                    txn.commit().expect("commit");
                    return got;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(None);
                }
                Err(e) => panic!("get failed: {e}"),
            }
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        loop {
            let mut txn = self.tree.begin();
            match self.tree.delete(&mut txn, key) {
                Ok(existed) => {
                    txn.commit_publish().wait_durable().expect("ack");
                    return existed;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("delete failed: {e}"),
            }
        }
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        Some(self.tree.scan(from, to).expect("scan"))
    }

    fn name(&self) -> &'static str {
        "pi-tree-elr"
    }
}

/// Adapter lifting any baseline [`ConcurrentIndex`] to the check surface
/// (no created flag, no scan — the checkers constrain accordingly).
#[derive(Debug)]
pub struct BaselineIndex<T: ConcurrentIndex>(pub T);

impl<T: ConcurrentIndex> CheckIndex for BaselineIndex<T> {
    fn insert(&self, key: &[u8], value: &[u8]) -> Option<bool> {
        self.0.insert(key, value);
        None
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.0.get(key)
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.0.delete(key)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// A reference implementation of [`CheckIndex`] over the [`Model`] itself
/// (sanity fixture: every checker must accept it).
#[derive(Debug, Default)]
pub struct ModelIndex {
    inner: Mutex<Model>,
}

impl CheckIndex for ModelIndex {
    fn insert(&self, key: &[u8], value: &[u8]) -> Option<bool> {
        Some(self.inner.lock().insert(key, value))
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.lock().get(key)
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.inner.lock().delete(key)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        Some(self.inner.lock().scan(from, to))
    }

    fn name(&self) -> &'static str {
        "model"
    }
}

// ---- seeded-violation fixtures --------------------------------------------

/// Broken-on-purpose wrapper: silently drops every `drop_every`-th insert
/// while claiming it happened. The differential oracle must reject it.
pub struct LostWriteIndex<T: CheckIndex> {
    inner: T,
    drop_every: u64,
    writes: pitree_obs::Counter,
}

impl<T: CheckIndex> std::fmt::Debug for LostWriteIndex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LostWriteIndex").finish_non_exhaustive()
    }
}

impl<T: CheckIndex> LostWriteIndex<T> {
    /// Wrap `inner`, dropping every `drop_every`-th insert (1-based).
    pub fn new(inner: T, drop_every: u64) -> LostWriteIndex<T> {
        assert!(drop_every > 0);
        LostWriteIndex {
            inner,
            drop_every,
            writes: pitree_obs::Recorder::detached().counter("fixture.writes"),
        }
    }
}

impl<T: CheckIndex> CheckIndex for LostWriteIndex<T> {
    fn insert(&self, key: &[u8], value: &[u8]) -> Option<bool> {
        self.writes.inc();
        if self.writes.get().is_multiple_of(self.drop_every) {
            // The lie: report "created" based on current state but never
            // perform the write.
            return Some(self.inner.get(key).is_none());
        }
        self.inner.insert(key, value)
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.inner.delete(key)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan(from, to)
    }

    fn name(&self) -> &'static str {
        "fixture:lost-write"
    }
}

/// Broken-on-purpose wrapper: remembers the value each key held *before*
/// its most recent overwrite and serves that stale value on reads. The
/// linearizability checker must reject histories it produces (a read that
/// begins after an overwrite's return cannot observe the older value).
pub struct StaleReadIndex<T: CheckIndex> {
    inner: T,
    stale: Mutex<HashMap<Vec<u8>, Option<Vec<u8>>>>,
}

impl<T: CheckIndex> std::fmt::Debug for StaleReadIndex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaleReadIndex").finish_non_exhaustive()
    }
}

impl<T: CheckIndex> StaleReadIndex<T> {
    /// Wrap `inner`.
    pub fn new(inner: T) -> StaleReadIndex<T> {
        StaleReadIndex {
            inner,
            stale: Mutex::new(HashMap::new()),
        }
    }
}

impl<T: CheckIndex> CheckIndex for StaleReadIndex<T> {
    fn insert(&self, key: &[u8], value: &[u8]) -> Option<bool> {
        let old = self.inner.get(key);
        let ret = self.inner.insert(key, value);
        self.stale.lock().insert(key.to_vec(), old);
        ret
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let stale = self.stale.lock();
        match stale.get(key) {
            // A key that has been overwritten serves its pre-overwrite
            // value forever: the seeded stale read.
            Some(old) => old.clone(),
            None => {
                drop(stale);
                self.inner.get(key)
            }
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.stale.lock().remove(key);
        self.inner.delete(key)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan(from, to)
    }

    fn name(&self) -> &'static str {
        "fixture:stale-read"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_adapter_roundtrip() {
        let idx = PiCheckIndex::new(256, PiTreeConfig::small_nodes(8, 8));
        assert_eq!(idx.insert(b"k", b"v"), Some(true));
        assert_eq!(idx.insert(b"k", b"w"), Some(false));
        assert_eq!(idx.get(b"k"), Some(b"w".to_vec()));
        assert_eq!(idx.scan(b"a", b"z").unwrap().len(), 1);
        assert!(idx.delete(b"k"));
        assert!(!idx.delete(b"k"));
    }

    #[test]
    fn elr_adapter_roundtrip() {
        let idx = PiElrIndex::new(256, PiTreeConfig::small_nodes(8, 8));
        assert_eq!(idx.insert(b"k", b"v"), Some(true));
        assert_eq!(idx.insert(b"k", b"w"), Some(false));
        assert_eq!(idx.get(b"k"), Some(b"w".to_vec()));
        assert!(idx.delete(b"k"));
        assert!(!idx.delete(b"k"));
    }

    #[test]
    fn lost_write_fixture_actually_loses() {
        let idx = LostWriteIndex::new(ModelIndex::default(), 2);
        idx.insert(b"a", b"1");
        idx.insert(b"b", b"2"); // dropped
        assert_eq!(idx.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(idx.get(b"b"), None);
    }

    #[test]
    fn stale_read_fixture_serves_pre_overwrite_value() {
        let idx = StaleReadIndex::new(ModelIndex::default());
        idx.insert(b"k", b"v1");
        assert_eq!(idx.get(b"k"), None, "pre-overwrite value of first insert");
        idx.insert(b"k", b"v2");
        assert_eq!(idx.get(b"k"), Some(b"v1".to_vec()));
    }
}
