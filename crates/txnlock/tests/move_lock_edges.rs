//! Move-lock edge cases from §4.1.2 (No-Wait Rule) and §4.2.2 (move
//! locks): conversions racing queued movers, the U ∨ Move = X supremum,
//! No-Wait probes against a held move lock, and the requirement that a
//! failed No-Wait attempt releases every lock the action had already
//! acquired (so a blocked mover is never wedged by a restarting updater).

use pitree_pagestore::{BufferPool, MemDisk, PageId};
use pitree_txnlock::{LockError, LockMode, LockName, LockTable, TxnManager};
use pitree_wal::{ActionId, ActionIdentity, LogManager, LogStore, MemLogStore};
use std::sync::Arc;
use std::time::Duration;

fn page(i: u64) -> LockName {
    LockName::Page(PageId(i))
}

fn key(k: &[u8]) -> LockName {
    LockName::Key(k.to_vec())
}

/// Spin until the table's cumulative wait counter passes `past` — i.e.
/// some request has actually parked in the waiter queue.
fn await_waiter(lt: &LockTable, past: u64) {
    while lt.wait_count() <= past {
        std::thread::yield_now();
    }
}

/// §4.1.1 + §4.2.2: an updater holding U must be able to convert to X
/// even while a structure change's Move request is queued behind it —
/// conversion grantability consults only the *granted* set, so the
/// converter jumps the queue instead of deadlocking against a mover that
/// is itself waiting for the updater to finish.
#[test]
fn u_to_x_promotion_jumps_a_queued_move_lock() {
    let lt = Arc::new(LockTable::new(Duration::from_secs(10)));
    let updater = ActionId(1);
    let mover = ActionId(2);
    lt.acquire(updater, &page(7), LockMode::U).unwrap();

    let waits_before = lt.wait_count();
    let lt2 = Arc::clone(&lt);
    let smo = std::thread::spawn(move || {
        // Move is incompatible with U: this parks until the updater ends.
        lt2.acquire(mover, &page(7), LockMode::Move).unwrap();
        lt2.is_move_locked(&page(7))
    });
    await_waiter(&lt, waits_before);

    // The conversion must be granted immediately, ahead of the queued Move.
    lt.acquire(updater, &page(7), LockMode::X).unwrap();
    assert_eq!(lt.holds(updater, &page(7)), Some(LockMode::X));
    assert_eq!(
        lt.holds(mover, &page(7)),
        None,
        "the mover must still be waiting while the updater holds X"
    );

    // Finishing the updater unblocks the mover.
    lt.release_all(updater);
    assert!(
        smo.join().unwrap(),
        "mover must hold the move lock after grant"
    );
    assert_eq!(lt.holds(mover, &page(7)), Some(LockMode::Move));
}

/// §4.2.2: a U holder that itself needs a move lock converts to the
/// supremum — and sup(U, Move) is X, because no proper supremum of the
/// two exists in the lattice. Sibling traversers still see the page as
/// move-locked (`is_move_locked` treats a page-level X as a move, since
/// nothing else in the tree protocol drives a page lock to X), so they
/// correctly refrain from scheduling postings across it.
#[test]
fn u_holder_requesting_move_converts_to_x() {
    let lt = LockTable::new(Duration::from_secs(10));
    let a = ActionId(1);
    lt.acquire(a, &page(3), LockMode::U).unwrap();
    lt.acquire(a, &page(3), LockMode::Move).unwrap();
    assert_eq!(lt.holds(a, &page(3)), Some(LockMode::X));
    assert!(
        lt.is_move_locked(&page(3)),
        "the X reached via U ∨ Move still reads as a move to traversers"
    );
    // An S reader — compatible with a real Move — must now be refused.
    assert_eq!(
        lt.try_acquire(ActionId(2), &page(3), LockMode::S),
        Err(LockError::WouldBlock)
    );
}

/// §4.2.2: while a move lock is held, No-Wait probes for U and IX must
/// fail with `WouldBlock` (update activity cannot be allowed to alter
/// what the move must relocate), while S and IS readers pass.
#[test]
fn no_wait_probes_against_a_move_lock() {
    let lt = LockTable::new(Duration::from_secs(10));
    let mover = ActionId(1);
    lt.acquire(mover, &page(9), LockMode::Move).unwrap();
    assert_eq!(
        lt.try_acquire(ActionId(2), &page(9), LockMode::U),
        Err(LockError::WouldBlock)
    );
    assert_eq!(
        lt.try_acquire(ActionId(3), &page(9), LockMode::IX),
        Err(LockError::WouldBlock)
    );
    lt.try_acquire(ActionId(4), &page(9), LockMode::S).unwrap();
    lt.try_acquire(ActionId(5), &page(9), LockMode::IS).unwrap();
}

fn mgr() -> TxnManager {
    let disk = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(disk, 32));
    let log =
        Arc::new(LogManager::open(Arc::new(MemLogStore::new()) as Arc<dyn LogStore>).unwrap());
    pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
    TxnManager::new(log, pool, Duration::from_secs(10))
}

/// §4.1.2: "the action releases its claim on all resources" when a
/// No-Wait probe fails. An updater that acquired its page intent lock but
/// lost the race for the record lock aborts; every lock it held must be
/// gone, so a mover needing that page proceeds without waiting.
#[test]
fn failed_no_wait_attempt_releases_partial_locks() {
    let m = mgr();
    let locks = m.locks();

    // A competing transaction owns the record.
    let blocker = m.begin(ActionIdentity::Transaction);
    blocker.lock(&key(b"r1"), LockMode::X).unwrap();

    // The updater gets its page intent lock, then probes the record and
    // loses — the No-Wait discipline says abort and restart, not wait.
    let updater = m.begin(ActionIdentity::Transaction);
    updater.try_lock(&page(4), LockMode::IX).unwrap();
    assert_eq!(
        updater.try_lock(&key(b"r1"), LockMode::X),
        Err(LockError::WouldBlock)
    );
    let updater_id = updater.id();
    updater.abort(None).unwrap();

    // The abort must have released the page lock too (partial acquisition
    // leaves nothing behind)…
    assert_eq!(locks.holds(updater_id, &page(4)), None);
    // …so a structure change can move-lock the page with a No-Wait probe.
    locks
        .try_acquire(ActionId(900), &page(4), LockMode::Move)
        .unwrap();
    assert!(locks.is_move_locked(&page(4)));

    blocker.commit().unwrap();
}
