//! Lock-manager stress tests: many threads, overlapping lock sets, and
//! randomized orders. Every blocked acquisition must end in a grant, a
//! detected deadlock, or (never, at these scales) a timeout — and the table
//! must drain to empty.

use pitree_sim::SimRng;
use pitree_txnlock::{LockError, LockMode, LockName, LockTable};
use pitree_wal::ActionId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn key(i: u64) -> LockName {
    LockName::Key(i.to_be_bytes().to_vec())
}

#[test]
fn randomized_two_phase_transactions_never_hang() {
    let lt = LockTable::new(Duration::from_secs(30));
    let granted = AtomicU64::new(0);
    let deadlocks = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let lt = &lt;
            let granted = &granted;
            let deadlocks = &deadlocks;
            s.spawn(move || {
                let mut rng = SimRng::new(t);
                for txn in 0..300u64 {
                    let owner = ActionId(t * 1_000 + txn + 1);
                    let mut held = 0;
                    for _ in 0..rng.range(1..5) {
                        let name = key(rng.below(12));
                        let mode = if rng.chance(0.5) {
                            LockMode::S
                        } else {
                            LockMode::X
                        };
                        match lt.acquire(owner, &name, mode) {
                            Ok(()) => {
                                held += 1;
                                granted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(LockError::Deadlock) => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                break; // victim: abort
                            }
                            Err(e) => panic!("unexpected lock failure: {e}"),
                        }
                    }
                    let _ = held;
                    lt.release_all(owner); // 2PL end
                }
            });
        }
    });
    assert!(
        granted.load(Ordering::Relaxed) > 1000,
        "most acquisitions succeed"
    );
    // The table must be fully drained.
    for i in 0..12 {
        assert!(lt.holders(&key(i)).is_empty(), "lock {i} leaked");
    }
    println!(
        "granted {} / deadlock victims {}",
        granted.load(Ordering::Relaxed),
        deadlocks.load(Ordering::Relaxed)
    );
}

#[test]
fn mixed_modes_with_move_locks_drain() {
    let lt = LockTable::new(Duration::from_secs(30));
    std::thread::scope(|s| {
        // Updaters: IX page + X key.
        for t in 0..4u64 {
            let lt = &lt;
            s.spawn(move || {
                let mut rng = SimRng::new(100 + t);
                for txn in 0..200u64 {
                    let owner = ActionId(10_000 + t * 1_000 + txn);
                    let page = LockName::Page(pitree_pagestore::PageId(rng.range(1..4)));
                    if lt.acquire(owner, &page, LockMode::IX).is_ok() {
                        let _ = lt.acquire(owner, &key(rng.below(8)), LockMode::X);
                    }
                    lt.release_all(owner);
                }
            });
        }
        // Movers: MOVE on pages (action-duration).
        for t in 0..2u64 {
            let lt = &lt;
            s.spawn(move || {
                let mut rng = SimRng::new(200 + t);
                for act in 0..200u64 {
                    let owner = ActionId(20_000 + t * 1_000 + act);
                    let page = LockName::Page(pitree_pagestore::PageId(rng.range(1..4)));
                    match lt.acquire(owner, &page, LockMode::Move) {
                        Ok(()) | Err(LockError::Deadlock) => {}
                        Err(e) => panic!("mover: {e}"),
                    }
                    lt.release_all(owner);
                }
            });
        }
        // Readers: S keys (compatible with MOVE).
        for t in 0..2u64 {
            let lt = &lt;
            s.spawn(move || {
                let mut rng = SimRng::new(300 + t);
                for txn in 0..400u64 {
                    let owner = ActionId(30_000 + t * 1_000 + txn);
                    match lt.acquire(owner, &key(rng.below(8)), LockMode::S) {
                        Ok(()) | Err(LockError::Deadlock) => {}
                        Err(e) => panic!("reader: {e}"),
                    }
                    lt.release_all(owner);
                }
            });
        }
    });
    for i in 0..8 {
        assert!(lt.holders(&key(i)).is_empty());
    }
    for p in 1..4 {
        assert!(lt
            .holders(&LockName::Page(pitree_pagestore::PageId(p)))
            .is_empty());
    }
}

#[test]
fn no_wait_try_acquire_never_blocks() {
    let lt = LockTable::new(Duration::from_secs(30));
    lt.acquire(ActionId(1), &key(0), LockMode::X).unwrap();
    // pitree-lint: allow(determinism) wall-clock upper bound on the no-wait loop; asserts a ceiling, not a timing
    let start = std::time::Instant::now();
    for _ in 0..10_000 {
        assert_eq!(
            lt.try_acquire(ActionId(2), &key(0), LockMode::S),
            Err(LockError::WouldBlock)
        );
    }
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "try_acquire must return immediately"
    );
    lt.release_all(ActionId(1));
}

#[test]
fn is_move_locked_sees_conversions() {
    let lt = LockTable::default();
    let page = LockName::Page(pitree_pagestore::PageId(7));
    lt.acquire(ActionId(1), &page, LockMode::IX).unwrap();
    assert!(!lt.is_move_locked(&page));
    // IX + Move converts to X; the page must still read as move-locked.
    lt.acquire(ActionId(1), &page, LockMode::Move).unwrap();
    assert!(lt.is_move_locked(&page));
    lt.release_all(ActionId(1));
    assert!(!lt.is_move_locked(&page));
}
