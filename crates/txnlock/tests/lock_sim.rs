//! Seeded simulation of the §4.2.2 move-lock protocol and the §4.1.2
//! No-Wait Rule: structure changes take Move locks on the pages whose
//! records they relocate; updaters probe with `try_acquire`, treat
//! `WouldBlock` as "restart the traversal" (never waiting while latched),
//! and must always make progress once the move finishes.

use pitree_sim::{prop, SimRng};
use pitree_txnlock::{LockError, LockMode, LockName, LockTable};
use pitree_wal::ActionId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn page(i: u64) -> LockName {
    LockName::Page(pitree_pagestore::PageId(i))
}

#[test]
fn move_lock_blocks_updaters_but_not_readers() {
    let lt = LockTable::new(Duration::from_secs(5));
    let smo = ActionId(1);
    lt.acquire(smo, &page(7), LockMode::Move).unwrap();
    assert!(lt.is_move_locked(&page(7)));
    // Readers coexist with the move (§4.2.2: moves commute with reads)…
    lt.acquire(ActionId(2), &page(7), LockMode::IS).unwrap();
    lt.acquire(ActionId(3), &page(7), LockMode::S).unwrap();
    // …but updaters must be refused, and per the No-Wait Rule they probe
    // with try_acquire rather than waiting.
    assert_eq!(
        lt.try_acquire(ActionId(4), &page(7), LockMode::IX),
        Err(LockError::WouldBlock)
    );
    assert_eq!(
        lt.try_acquire(ActionId(5), &page(7), LockMode::X),
        Err(LockError::WouldBlock)
    );
    // The move and the S reader end (IX still conflicts with a plain S);
    // with only the IS reader left, the blocked updater's retry succeeds.
    lt.release_all(smo);
    lt.release_all(ActionId(3));
    assert!(!lt.is_move_locked(&page(7)));
    lt.try_acquire(ActionId(4), &page(7), LockMode::IX).unwrap();
}

#[test]
fn no_wait_rule_seeded_schedules_always_drain() {
    // SMO threads run short move-lock episodes over a small page set while
    // updater threads follow the No-Wait discipline: probe, on WouldBlock
    // back off ("release latches and restart"), then retry. Every updater
    // must eventually complete all its operations — no schedule may wedge.
    prop::run_cases("no_wait_schedules_drain", 8, |rng| {
        let lt = LockTable::new(Duration::from_secs(10));
        let completed = AtomicU64::new(0);
        let restarts = AtomicU64::new(0);
        let seeds: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        std::thread::scope(|s| {
            for (t, &seed) in seeds.iter().enumerate() {
                let lt = &lt;
                let completed = &completed;
                let restarts = &restarts;
                s.spawn(move || {
                    let mut rng = SimRng::new(seed);
                    let is_smo = t < 2;
                    for i in 0..150u64 {
                        let owner = ActionId((t as u64 + 1) * 10_000 + i + 1);
                        let pid = rng.below(4);
                        if is_smo {
                            // A structure change: move-lock the page, "move
                            // records" for a moment, then finish.
                            lt.acquire(owner, &page(pid), LockMode::Move).unwrap();
                            assert!(lt.is_move_locked(&page(pid)));
                            if rng.chance(0.3) {
                                std::thread::yield_now();
                            }
                            lt.release_all(owner);
                        } else {
                            // An updater: No-Wait probe for IX + a key X.
                            let keyname = LockName::Key(vec![b'k', rng.byte()]);
                            loop {
                                match lt
                                    .try_acquire(owner, &page(pid), LockMode::IX)
                                    .and_then(|_| lt.try_acquire(owner, &keyname, LockMode::X))
                                {
                                    Ok(()) => break,
                                    Err(LockError::WouldBlock) => {
                                        // The restart path: drop everything
                                        // (we would also release latches
                                        // here) and re-descend.
                                        lt.release_all(owner);
                                        restarts.fetch_add(1, Ordering::Relaxed);
                                        std::thread::yield_now();
                                    }
                                    Err(e) => panic!("thread {t} op {i}: {e}"),
                                }
                            }
                            // "Do the update", then two-phase release.
                            lt.release_all(owner);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            completed.load(Ordering::Relaxed),
            4 * 150,
            "every updater op completed"
        );
        for pid in 0..4 {
            assert!(!lt.is_move_locked(&page(pid)), "no residual move locks");
            assert!(lt.holders(&page(pid)).is_empty(), "no residual grants");
        }
    });
}

#[test]
fn move_lock_via_conversion_is_detected() {
    // §4.2.2: an updater that already holds IX and then moves records (a
    // page-oriented-undo split inside the transaction) converts to X; the
    // page must then read as move-locked to everyone else.
    let lt = LockTable::new(Duration::from_secs(5));
    let txn = ActionId(9);
    lt.acquire(txn, &page(3), LockMode::IX).unwrap();
    assert!(!lt.is_move_locked(&page(3)));
    lt.acquire(txn, &page(3), LockMode::X).unwrap(); // IX ⊔ X = X conversion
    assert!(
        lt.is_move_locked(&page(3)),
        "X-converted page counts as move-locked"
    );
    assert_eq!(
        lt.try_acquire(ActionId(10), &page(3), LockMode::IX),
        Err(LockError::WouldBlock)
    );
    lt.release_all(txn);
    assert!(lt.holders(&page(3)).is_empty());
}
