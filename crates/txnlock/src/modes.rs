//! Lock modes and their compatibility, including the paper's **move lock**.
//!
//! §4.2.2: "For page-oriented undo, a move lock is required that conflicts
//! with non-commutative updates. ... Since reads do not require undo,
//! concurrent reads can be tolerated. Hence, move locks are compatible with
//! share mode locks. ... a move lock must be distinguished from a share
//! lock" (a sibling-traverser that sees one must not schedule an index-term
//! posting).
//!
//! The intention modes let a page-granule move lock conflict with key-granule
//! updaters: updaters take `IX` on the data page before `X` on the key,
//! readers take `IS` on the page before `S` on the key, and the move lock is
//! taken on the page itself.

/// Database lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared (page-level, by key readers).
    IS,
    /// Intention exclusive (page-level, by key updaters).
    IX,
    /// Shared.
    S,
    /// Update: read now, intent to convert to X; compatible with S only.
    U,
    /// Exclusive.
    X,
    /// Move lock (§4.2.2): blocks non-commutative updates while records are
    /// moved by a structure change; compatible with readers.
    Move,
}

impl LockMode {
    /// Whether a holder of `self` and a holder of `other` may coexist.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, IS) | (IS, IX) | (IS, S) | (IS, U) | (IS, Move) => true,
            (IX, IS) | (IX, IX) => true,
            (S, IS) | (S, S) | (S, U) | (S, Move) => true,
            // U admits readers but no other updater (asymmetric in classic
            // treatments; we use the symmetric-safe version: U grants new S,
            // existing S tolerates U).
            (U, IS) | (U, S) => true,
            (Move, IS) | (Move, S) => true,
            _ => false,
        }
    }

    /// Least mode covering both (used for lock conversion). Falls back to
    /// `X` when no proper supremum exists in this lattice (e.g. `S` ∨ `IX`,
    /// which classically would be `SIX`).
    pub fn supremum(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (IS, m) | (m, IS) if m != X => m.supremum_is(),
            (IX, U) | (U, IX) => X,
            (IX, Move) | (Move, IX) => X,
            (S, U) | (U, S) => U,
            (S, Move) | (Move, S) => Move,
            (U, Move) | (Move, U) => X,
            _ => X,
        }
    }

    fn supremum_is(self) -> LockMode {
        // sup(IS, m) = m for every m above IS in the lattice.
        self
    }

    /// Whether this mode is strong enough to cover a request for `req`
    /// (already-held check).
    pub fn covers(self, req: LockMode) -> bool {
        self.supremum(req) == self
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::*;

    #[test]
    fn share_modes_are_compatible() {
        assert!(S.compatible(S));
        assert!(S.compatible(IS));
        assert!(IS.compatible(IX));
        assert!(IX.compatible(IX));
    }

    #[test]
    fn x_conflicts_with_everything() {
        for m in [IS, IX, S, U, X, Move] {
            assert!(!X.compatible(m));
            assert!(!m.compatible(X));
        }
    }

    #[test]
    fn move_lock_matrix() {
        // §4.2.2: compatible with readers...
        assert!(Move.compatible(S));
        assert!(Move.compatible(IS));
        assert!(S.compatible(Move));
        // ...but conflicts with updaters and other movers.
        assert!(!Move.compatible(IX));
        assert!(!Move.compatible(U));
        assert!(!Move.compatible(X));
        assert!(!Move.compatible(Move));
        assert!(!IX.compatible(Move));
    }

    #[test]
    fn u_mode_asymmetry_is_symmetrized() {
        assert!(S.compatible(U));
        assert!(U.compatible(S));
        assert!(!U.compatible(U));
        assert!(!U.compatible(X));
    }

    #[test]
    fn supremum_lattice() {
        assert_eq!(S.supremum(U), U);
        assert_eq!(S.supremum(Move), Move);
        assert_eq!(U.supremum(Move), X);
        assert_eq!(IS.supremum(S), S);
        assert_eq!(IS.supremum(IX), IX);
        assert_eq!(S.supremum(IX), X, "SIX collapses to X in this lattice");
        assert_eq!(X.supremum(IS), X);
        for m in [IS, IX, S, U, X, Move] {
            assert_eq!(m.supremum(m), m);
        }
    }

    #[test]
    fn covers_reflexive_and_ordered() {
        assert!(X.covers(S));
        assert!(U.covers(S));
        assert!(!S.covers(U));
        assert!(Move.covers(S));
        for m in [IS, IX, S, U, X, Move] {
            assert!(m.covers(m));
        }
    }
}
