//! Transactions and tracked atomic actions.
//!
//! [`TxnManager::begin`] starts either a user **database transaction**
//! (identity [`ActionIdentity::Transaction`]: forced commit, database locks
//! released at end — strict 2PL) or an independent **atomic action**
//! (identities of §4.3.2: unforced, relatively durable commit). Both are
//! registered in an active-action table so fuzzy checkpoints can log them.
//!
//! Commit hooks implement the paper's deferred index-term posting: "The
//! posting of the index term for splits cannot occur until and unless T
//! commits" (§4.2.2) — a split performed inside a transaction queues its
//! posting as a commit hook.
//!
//! Commit is split in two for group-commit pipelining: [`Txn::commit_publish`]
//! appends the `Commit` record and releases locks immediately (**early lock
//! release** — the transaction can no longer abort once its commit is in
//! the log), returning a [`PendingCommit`] whose
//! [`wait_durable`](PendingCommit::wait_durable) blocks on the durable
//! watermark before acknowledging and running hooks. [`Txn::commit`] is the
//! two steps back to back.

use crate::modes::LockMode;
use crate::table::{LockError, LockName, LockTable};
use pitree_obs::Counter;
use pitree_pagestore::buffer::{BufferPool, PinnedPage};
use pitree_pagestore::latch::XGuard;
use pitree_pagestore::page::Page;
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{Lsn, PageOp, StoreResult};
use pitree_wal::recovery::LogicalUndoHandler;
use pitree_wal::{take_checkpoint, ActionId, ActionIdentity, AtomicAction, LogManager};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Table of live actions/transactions, feeding fuzzy checkpoints.
#[derive(Default)]
pub struct ActiveRegistry {
    inner: Mutex<HashMap<ActionId, (ActionIdentity, Arc<AtomicU64>)>>,
}

impl std::fmt::Debug for ActiveRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveRegistry").finish_non_exhaustive()
    }
}

impl ActiveRegistry {
    fn register(&self, id: ActionId, identity: ActionIdentity) -> Arc<AtomicU64> {
        let cell = Arc::new(AtomicU64::new(0));
        self.inner.lock().insert(id, (identity, Arc::clone(&cell)));
        cell
    }

    fn deregister(&self, id: ActionId) {
        self.inner.lock().remove(&id);
    }

    /// Snapshot `(id, identity, last LSN)` of every live action.
    pub fn snapshot(&self) -> Vec<(ActionId, ActionIdentity, Lsn)> {
        self.inner
            .lock()
            .iter()
            .map(|(&id, (ident, cell))| (id, *ident, Lsn(cell.load(Ordering::SeqCst))))
            .collect()
    }

    /// Number of live actions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no action is live.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Shared per-store transaction infrastructure: log, buffer pool, lock
/// table, active-action registry.
pub struct TxnManager {
    log: Arc<LogManager>,
    pool: Arc<BufferPool>,
    locks: LockTable,
    registry: ActiveRegistry,
    /// User-transaction commits whose locks were released at log-append,
    /// ahead of the durable watermark (early lock release).
    elr_released: Counter,
    /// Fuzzy-checkpoint trigger: take a checkpoint once this many log bytes
    /// have been appended since the last one. 0 (the default) disables the
    /// trigger — callers opt in with
    /// [`TxnManager::set_checkpoint_every_bytes`], keeping byte-for-byte
    /// log determinism for workloads that don't.
    ckpt_every: AtomicU64,
    /// At most one thread runs the checkpoint; others skip and move on.
    ckpt_busy: AtomicBool,
    /// Checkpoints that failed (e.g. injected log faults); the trigger
    /// re-arms and a later commit retries (`wal.ckpt_failed`).
    ckpt_failed: Counter,
}

impl std::fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnManager").finish_non_exhaustive()
    }
}

impl TxnManager {
    /// Build a manager over the store's log and pool. `lock_timeout` is the
    /// lock table's wait safety net. The lock table records into the pool's
    /// registry, so one [`pitree_obs::Registry::report`] covers all layers.
    pub fn new(log: Arc<LogManager>, pool: Arc<BufferPool>, lock_timeout: Duration) -> TxnManager {
        let rec = pool.recorder().clone();
        let locks = LockTable::with_recorder(lock_timeout, rec.clone());
        TxnManager {
            log,
            pool,
            locks,
            registry: ActiveRegistry::default(),
            elr_released: rec.counter("txn.elr_released"),
            ckpt_every: AtomicU64::new(0),
            ckpt_busy: AtomicBool::new(false),
            ckpt_failed: rec.counter("wal.ckpt_failed"),
        }
    }

    /// The write-ahead log.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The database lock table.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// The active-action registry (for checkpoints and tests).
    pub fn registry(&self) -> &ActiveRegistry {
        &self.registry
    }

    /// Begin a transaction or atomic action with the given recovery
    /// identity.
    pub fn begin(&self, identity: ActionIdentity) -> Txn<'_> {
        let inner = AtomicAction::begin(&self.log, identity);
        let cell = self.registry.register(inner.id(), identity);
        cell.store(inner.last_lsn().0, Ordering::SeqCst);
        Txn {
            mgr: self,
            inner,
            cell,
            hooks: Vec::new(),
        }
    }

    /// Take a fuzzy checkpoint including the live-action table.
    pub fn checkpoint(&self) -> StoreResult<Lsn> {
        take_checkpoint(&self.pool, &self.log, self.registry.snapshot())
    }

    /// Arm (or with 0, disarm) the automatic fuzzy-checkpoint trigger:
    /// after every commit publish, if at least `bytes` of log have been
    /// appended since the last checkpoint, one thread takes a checkpoint
    /// inline. Bounds the redo scan of a future recovery to roughly
    /// `bytes` of log regardless of how long the store has been up.
    pub fn set_checkpoint_every_bytes(&self, bytes: u64) {
        self.ckpt_every.store(bytes, Ordering::SeqCst);
    }

    /// Run the checkpoint trigger: no-op unless armed, due, and no other
    /// thread is mid-checkpoint. A failed checkpoint is counted
    /// (`wal.ckpt_failed`) and the trigger re-arms — the store keeps
    /// running on the old master, it just has more log to replay.
    fn maybe_checkpoint(&self) {
        let every = self.ckpt_every.load(Ordering::SeqCst);
        if every == 0 || self.log.bytes_since_checkpoint() < every {
            return;
        }
        if self
            .ckpt_busy
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        if self.checkpoint().is_err() {
            self.ckpt_failed.inc();
        }
        self.ckpt_busy.store(false, Ordering::SeqCst);
    }
}

/// A live transaction or tracked atomic action.
pub struct Txn<'a> {
    mgr: &'a TxnManager,
    inner: AtomicAction<'a>,
    cell: Arc<AtomicU64>,
    hooks: Vec<Box<dyn FnOnce() + Send + 'a>>,
}

impl std::fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn").finish_non_exhaustive()
    }
}

impl<'a> Txn<'a> {
    /// The action id (also the lock owner id).
    pub fn id(&self) -> ActionId {
        self.inner.id()
    }

    /// The recovery identity this action was begun with.
    pub fn identity(&self) -> ActionIdentity {
        self.inner.identity()
    }

    /// LSN of the most recent record logged by this action.
    pub fn last_lsn(&self) -> Lsn {
        self.inner.last_lsn()
    }

    /// Acquire a database lock, blocking; deadlock makes this fail.
    pub fn lock(&self, name: &LockName, mode: LockMode) -> Result<(), LockError> {
        self.mgr.locks.acquire(self.id(), name, mode)
    }

    /// Acquire a database lock without waiting (No-Wait Rule, §4.1.2).
    pub fn try_lock(&self, name: &LockName, mode: LockMode) -> Result<(), LockError> {
        self.mgr.locks.try_acquire(self.id(), name, mode)
    }

    /// Release one hold on a lock early (used for instant-duration locks;
    /// 2PL-sensitive callers should prefer end-of-action release).
    pub fn unlock(&self, name: &LockName) {
        self.mgr.locks.release(self.id(), name);
    }

    /// Log and apply a page operation with page-oriented undo.
    pub fn apply(
        &mut self,
        page: &PinnedPage<'_>,
        g: &mut XGuard<'_, Page>,
        op: PageOp,
    ) -> StoreResult<Lsn> {
        let lsn = self.inner.apply(page, g, op)?;
        self.cell.store(lsn.0, Ordering::SeqCst);
        Ok(lsn)
    }

    /// Log and apply a page operation with logical undo.
    pub fn apply_logical(
        &mut self,
        page: &PinnedPage<'_>,
        g: &mut XGuard<'_, Page>,
        op: PageOp,
        tag: u8,
        payload: Vec<u8>,
    ) -> StoreResult<Lsn> {
        let lsn = self.inner.apply_logical(page, g, op, tag, payload)?;
        self.cell.store(lsn.0, Ordering::SeqCst);
        Ok(lsn)
    }

    /// Log and apply a redo-only page operation.
    pub fn apply_redo_only(
        &mut self,
        page: &PinnedPage<'_>,
        g: &mut XGuard<'_, Page>,
        op: PageOp,
    ) -> StoreResult<Lsn> {
        let lsn = self.inner.apply_redo_only(page, g, op)?;
        self.cell.store(lsn.0, Ordering::SeqCst);
        Ok(lsn)
    }

    /// Defer `hook` until (and unless) this action commits — the deferred
    /// index-posting mechanism of §4.2.2. Hooks run after locks are
    /// released.
    pub fn on_commit(&mut self, hook: impl FnOnce() + Send + 'a) {
        self.hooks.push(Box::new(hook));
    }

    /// Publish this action's commit without waiting for durability: append
    /// the `Commit` record, release every database lock (early lock
    /// release), and deregister. Past this point the action is *committed
    /// in the log* — it can no longer abort, and successors may acquire the
    /// released locks and build on its writes — but it is **not yet
    /// acknowledged**: externally visible success must wait for
    /// [`PendingCommit::wait_durable`], which blocks until the durable
    /// watermark covers the commit LSN and then runs the deferred commit
    /// hooks. Dependent pipelined commits need no extra bookkeeping: a
    /// successor's commit record lands later in the same log, so any force
    /// covering it covers this one first (prefix forcing).
    pub fn commit_publish(self) -> PendingCommit<'a> {
        let Txn {
            mgr,
            inner,
            cell: _,
            hooks,
        } = self;
        let id = inner.id();
        let forced = matches!(inner.identity(), ActionIdentity::Transaction);
        let lsn = inner.commit_append();
        mgr.locks.release_all(id);
        mgr.registry.deregister(id);
        if forced {
            mgr.elr_released.inc();
        }
        mgr.maybe_checkpoint();
        PendingCommit {
            mgr,
            lsn,
            forced,
            hooks,
        }
    }

    /// Commit and acknowledge. User transactions force the log; atomic
    /// actions rely on relative durability (§4.3.1). Locks are released at
    /// log-append, the ack waits for the durable watermark, then commit
    /// hooks run.
    pub fn commit(self) -> StoreResult<Lsn> {
        self.commit_publish().wait_durable()
    }

    /// Roll back: undo every logged update (page-oriented or via `handler`
    /// for logical undo), release locks, drop commit hooks unrun.
    pub fn abort(self, handler: Option<&dyn LogicalUndoHandler>) -> StoreResult<()> {
        let Txn {
            mgr,
            inner,
            cell: _,
            hooks,
        } = self;
        let id = inner.id();
        inner.rollback(&mgr.pool, handler)?;
        mgr.locks.release_all(id);
        mgr.registry.deregister(id);
        drop(hooks);
        Ok(())
    }
}

/// A transaction past its commit point: the `Commit` record is in the log
/// and its locks are released, but the acknowledgement — and the deferred
/// commit hooks of §4.2.2 — still wait on the durable watermark. Dropping
/// the handle abandons the ack (and the hooks), not the commit: the record
/// is in the log and rides whatever force comes next.
#[must_use = "a published commit is acknowledged only by wait_durable()"]
pub struct PendingCommit<'a> {
    mgr: &'a TxnManager,
    lsn: Lsn,
    forced: bool,
    hooks: Vec<Box<dyn FnOnce() + Send + 'a>>,
}

impl std::fmt::Debug for PendingCommit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingCommit")
            .field("lsn", &self.lsn)
            .field("forced", &self.forced)
            .finish_non_exhaustive()
    }
}

impl PendingCommit<'_> {
    /// LSN of the published `Commit` record.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// Whether the durable watermark already covers the commit record
    /// (batches are frame-aligned, so covering the frame start covers it
    /// whole).
    pub fn is_durable(&self) -> bool {
        self.mgr.log.flushed_lsn() >= self.lsn
    }

    /// Block until the commit is durable — joining (or leading) a
    /// group-commit force — then run the deferred commit hooks and return
    /// the commit LSN. This is the acknowledgement point: only after it
    /// returns may success be reported externally. Atomic actions
    /// (relatively durable, §4.3.1) return immediately. On a force error
    /// the hooks are skipped and the commit stays unacknowledged, but the
    /// record remains in the log and recovery honours it if a later force
    /// lands it.
    pub fn wait_durable(self) -> StoreResult<Lsn> {
        if self.forced {
            self.mgr.log.force_to(self.lsn)?;
        }
        for hook in self.hooks {
            hook();
        }
        Ok(self.lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree_pagestore::page::PageType;
    use pitree_pagestore::{MemDisk, PageId};
    use pitree_wal::{LogStore, MemLogStore};
    use std::sync::atomic::AtomicBool;

    fn mgr() -> TxnManager {
        let disk = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, 32));
        let log =
            Arc::new(LogManager::open(Arc::new(MemLogStore::new()) as Arc<dyn LogStore>).unwrap());
        pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
        TxnManager::new(log, pool, Duration::from_secs(2))
    }

    #[test]
    fn commit_releases_locks_and_runs_hooks() {
        let m = mgr();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let mut t = m.begin(ActionIdentity::Transaction);
        t.lock(&LockName::Key(b"k".to_vec()), LockMode::X).unwrap();
        t.on_commit(move || r2.store(true, Ordering::SeqCst));
        assert_eq!(m.registry().len(), 1);
        t.commit().unwrap();
        assert!(ran.load(Ordering::SeqCst));
        assert!(m.registry().is_empty());
        // Lock is free again.
        let t2 = m.begin(ActionIdentity::Transaction);
        t2.try_lock(&LockName::Key(b"k".to_vec()), LockMode::X)
            .unwrap();
        t2.commit().unwrap();
    }

    #[test]
    fn abort_undoes_and_skips_hooks() {
        let m = mgr();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let page = m.pool().fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut t = m.begin(ActionIdentity::Transaction);
        {
            let mut g = page.x();
            t.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"z".to_vec(),
                },
            )
            .unwrap();
        }
        t.on_commit(move || r2.store(true, Ordering::SeqCst));
        t.abort(None).unwrap();
        assert!(!ran.load(Ordering::SeqCst), "hooks must not run on abort");
        assert_eq!(page.s().slot_count(), 0);
        assert!(m.registry().is_empty());
    }

    #[test]
    fn transaction_commit_forces_log() {
        let m = mgr();
        let page = m.pool().fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut t = m.begin(ActionIdentity::Transaction);
        {
            let mut g = page.x();
            t.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"d".to_vec(),
                },
            )
            .unwrap();
        }
        let lsn = t.commit().unwrap();
        assert!(m.log().flushed_lsn() >= lsn);
    }

    #[test]
    fn system_action_commit_does_not_force() {
        let m = mgr();
        let page = m.pool().fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut t = m.begin(ActionIdentity::SystemTransaction);
        {
            let mut g = page.x();
            t.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"d".to_vec(),
                },
            )
            .unwrap();
        }
        t.commit().unwrap();
        assert_eq!(m.log().flushed_lsn(), Lsn(0));
    }

    #[test]
    fn registry_snapshot_carries_last_lsn() {
        let m = mgr();
        let page = m.pool().fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut t = m.begin(ActionIdentity::Transaction);
        {
            let mut g = page.x();
            t.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"d".to_vec(),
                },
            )
            .unwrap();
        }
        let snap = m.registry().snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, t.id());
        assert_eq!(snap[0].2, t.last_lsn());
        t.commit().unwrap();
    }

    #[test]
    fn checkpoint_includes_active_actions() {
        let m = mgr();
        let t = m.begin(ActionIdentity::Transaction);
        let ckpt = m.checkpoint().unwrap();
        let rec = m.log().read(ckpt).unwrap();
        match rec.kind {
            pitree_wal::RecordKind::Checkpoint { active, .. } => {
                assert_eq!(active.len(), 1);
                assert_eq!(active[0].0, t.id());
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
        t.commit().unwrap();
    }

    #[test]
    fn commit_publish_releases_locks_before_durability() {
        let m = mgr();
        let name = LockName::Key(b"elr".to_vec());
        let page = m.pool().fetch_or_create(PageId(5), PageType::Node).unwrap();
        let mut t = m.begin(ActionIdentity::Transaction);
        t.lock(&name, LockMode::X).unwrap();
        {
            let mut g = page.x();
            t.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: b"v".to_vec(),
                },
            )
            .unwrap();
        }
        let pc = t.commit_publish();
        // Committed in the log, not yet durable, not yet acknowledged…
        assert!(!pc.is_durable(), "publish must not force the log");
        assert!(m.registry().is_empty());
        // …but a successor can already jump the released lock.
        let t2 = m.begin(ActionIdentity::Transaction);
        t2.try_lock(&name, LockMode::X)
            .expect("early lock release: successor must acquire the lock");
        std::mem::forget(t2);
        let lsn = pc.wait_durable().unwrap();
        assert!(m.log().flushed_lsn() >= lsn, "ack implies durable");
        assert_eq!(m.pool().recorder().counter("txn.elr_released").get(), 1);
    }

    #[test]
    fn commit_hooks_run_at_ack_not_at_publish() {
        let m = mgr();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let mut t = m.begin(ActionIdentity::Transaction);
        t.on_commit(move || r2.store(true, Ordering::SeqCst));
        let pc = t.commit_publish();
        assert!(
            !ran.load(Ordering::SeqCst),
            "hooks are externally visible results: they wait for the watermark"
        );
        pc.wait_durable().unwrap();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn no_wait_rule_try_lock_path() {
        let m = mgr();
        let t1 = m.begin(ActionIdentity::Transaction);
        let t2 = m.begin(ActionIdentity::Transaction);
        let name = LockName::Key(b"hot".to_vec());
        t1.lock(&name, LockMode::X).unwrap();
        // t2, notionally holding a latch, must use try_lock and see
        // WouldBlock instead of waiting.
        assert_eq!(t2.try_lock(&name, LockMode::S), Err(LockError::WouldBlock));
        t1.commit().unwrap();
        t2.try_lock(&name, LockMode::S).unwrap();
        t2.commit().unwrap();
    }
}
