//! The lock table: named database locks with FIFO queuing, conversion, and
//! waits-for deadlock detection.
//!
//! Latches (in `pitree-pagestore`) avoid deadlock by ordering; database locks
//! cannot (transactions touch records in arbitrary order), so the table
//! detects cycles in the waits-for graph at block time and denies the
//! requester (§4.1: "We must ensure that interactions between atomic actions
//! do not cause undetected deadlocks"). The **No-Wait Rule** (§4.1.2) is
//! supported through [`LockTable::try_acquire`]: an operation holding a latch
//! that could conflict with a lock holder first tries without waiting, and on
//! [`LockError::WouldBlock`] releases its latches before blocking for real.

use crate::modes::LockMode;
use pitree_obs::{Counter, EventKind, Hist, Recorder, Stopwatch};
use pitree_pagestore::sync::{Condvar, Mutex};
use pitree_pagestore::PageId;
use pitree_wal::ActionId;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

/// Stable numeric code for a lock mode, used as the `b` payload of
/// [`EventKind::LockGrant`] / [`EventKind::LockWait`] events.
pub fn mode_code(mode: LockMode) -> u64 {
    match mode {
        LockMode::IS => 0,
        LockMode::IX => 1,
        LockMode::S => 2,
        LockMode::U => 3,
        LockMode::X => 4,
        LockMode::Move => 5,
    }
}

/// What a database lock protects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockName {
    /// A record, by key bytes (record locks; trees prefix with a tree id).
    Key(Vec<u8>),
    /// A page — the granule we use for move locks (§4.2.2 notes a move lock
    /// "can be realized with ... a page-level lock"; at page granularity
    /// "once granted, no update activity can alter the locking required").
    Page(PageId),
    /// A whole tree / relation.
    Tree(u32),
}

/// Lock acquisition failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// Granting would create a waits-for cycle; the requester is the victim.
    Deadlock,
    /// `try_acquire` could not grant immediately (the No-Wait Rule path).
    WouldBlock,
    /// Waited longer than the configured timeout (safety net; treated like a
    /// deadlock victim).
    Timeout,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock => write!(f, "deadlock detected; requester chosen as victim"),
            LockError::WouldBlock => write!(f, "lock not immediately available"),
            LockError::Timeout => write!(f, "lock wait timed out"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug, Clone)]
struct Grant {
    owner: ActionId,
    mode: LockMode,
    count: u32,
}

#[derive(Debug, Clone)]
struct Waiter {
    owner: ActionId,
    mode: LockMode,
    /// Conversion of an existing grant (queues ahead of fresh requests).
    converting: bool,
}

#[derive(Default)]
struct Entry {
    granted: Vec<Grant>,
    waiters: VecDeque<Waiter>,
}

impl Entry {
    /// Can `owner` be granted `mode` right now, given current grants and the
    /// FIFO discipline? Conversions only check grants; fresh requests also
    /// wait behind earlier waiters.
    fn grantable(&self, owner: ActionId, mode: LockMode, converting: bool) -> bool {
        let compat_with_grants = self
            .granted
            .iter()
            .all(|g| g.owner == owner || g.mode.compatible(mode));
        if !compat_with_grants {
            return false;
        }
        if converting {
            return true;
        }
        // FIFO fairness: block behind earlier waiters we conflict with (or
        // who conflict with us).
        !self
            .waiters
            .iter()
            .take_while(|w| w.owner != owner)
            .any(|w| !w.mode.compatible(mode) || !mode.compatible(w.mode))
    }
}

struct TableInner {
    entries: HashMap<LockName, Entry>,
    /// owner -> (resource, mode) it is currently blocked on.
    waiting_on: HashMap<ActionId, LockName>,
}

/// The lock manager. One per store; shared by all transactions and atomic
/// actions that need database locks.
pub struct LockTable {
    inner: Mutex<TableInner>,
    cv: Condvar,
    timeout: Duration,
    rec: Recorder,
    acquires: Counter,
    waits: Counter,
    deadlocks: Counter,
    timeouts: Counter,
    wait_ns: Hist,
}

impl std::fmt::Debug for LockTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockTable").finish_non_exhaustive()
    }
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new(Duration::from_secs(10))
    }
}

impl LockTable {
    /// A table whose blocking waits give up after `timeout`, recording into
    /// a fresh private registry (see [`LockTable::with_recorder`]).
    pub fn new(timeout: Duration) -> LockTable {
        LockTable::with_recorder(timeout, Recorder::detached())
    }

    /// [`LockTable::new`] recording `lock.*` metrics and lock events into
    /// `rec`'s registry.
    pub fn with_recorder(timeout: Duration, rec: Recorder) -> LockTable {
        LockTable {
            inner: Mutex::new(TableInner {
                entries: HashMap::new(),
                waiting_on: HashMap::new(),
            }),
            cv: Condvar::new(),
            timeout,
            acquires: rec.counter("lock.acquires"),
            waits: rec.counter("lock.waits"),
            deadlocks: rec.counter("lock.deadlocks"),
            timeouts: rec.counter("lock.timeouts"),
            wait_ns: rec.hist("lock.wait_ns"),
            rec,
        }
    }

    /// Acquire `name` in `mode` for `owner`, blocking. Detects deadlocks at
    /// block time and returns [`LockError::Deadlock`] with the requester as
    /// victim.
    pub fn acquire(
        &self,
        owner: ActionId,
        name: &LockName,
        mode: LockMode,
    ) -> Result<(), LockError> {
        self.acquire_inner(owner, name, mode, true)
    }

    /// Acquire without waiting (§4.1.2 No-Wait Rule support).
    pub fn try_acquire(
        &self,
        owner: ActionId,
        name: &LockName,
        mode: LockMode,
    ) -> Result<(), LockError> {
        self.acquire_inner(owner, name, mode, false)
    }

    fn acquire_inner(
        &self,
        owner: ActionId,
        name: &LockName,
        mode: LockMode,
        block: bool,
    ) -> Result<(), LockError> {
        let mut inner = self.inner.lock();

        // Fast path: re-entrant hold, immediate grant, or immediate convert.
        let (target, converting) = {
            let entry = inner.entries.entry(name.clone()).or_default();
            match entry.granted.iter().position(|g| g.owner == owner) {
                Some(pos) if entry.granted[pos].mode.covers(mode) => {
                    entry.granted[pos].count += 1;
                    self.granted_obs(owner, mode);
                    return Ok(());
                }
                Some(pos) => {
                    let target = entry.granted[pos].mode.supremum(mode);
                    if entry.grantable(owner, target, true) {
                        entry.granted[pos].mode = target;
                        entry.granted[pos].count += 1;
                        self.granted_obs(owner, target);
                        return Ok(());
                    }
                    (target, true)
                }
                None => {
                    if entry.grantable(owner, mode, false) {
                        entry.granted.push(Grant {
                            owner,
                            mode,
                            count: 1,
                        });
                        self.granted_obs(owner, mode);
                        return Ok(());
                    }
                    (mode, false)
                }
            }
        };

        if !block {
            return Err(LockError::WouldBlock);
        }
        self.waits.inc();
        self.rec
            .event(EventKind::LockWait, owner.0, mode_code(target));
        let wait_timer = Stopwatch::start();

        // Enqueue (converters at the front, behind other converters).
        {
            let e = inner.entries.get_mut(name).unwrap();
            let w = Waiter {
                owner,
                mode: target,
                converting,
            };
            if converting {
                let pos = e.waiters.iter().take_while(|w| w.converting).count();
                e.waiters.insert(pos, w);
            } else {
                e.waiters.push_back(w);
            }
        }
        inner.waiting_on.insert(owner, name.clone());

        // Deadlock check now that the edge exists.
        if self.find_cycle(&inner, owner) {
            self.remove_waiter(&mut inner, owner, name);
            self.deadlocks.inc();
            self.rec.event(EventKind::LockDeadlock, owner.0, 0);
            return Err(LockError::Deadlock);
        }

        // Wait until grantable.
        loop {
            let (g, res) = self.cv.wait_timeout(inner, self.timeout);
            inner = g;
            let timed_out = res.timed_out();
            let grantable = inner
                .entries
                .get(name)
                .map(|e| e.grantable(owner, target, converting))
                .unwrap_or(true);
            if grantable {
                self.remove_waiter(&mut inner, owner, name);
                let e = inner.entries.entry(name.clone()).or_default();
                if converting {
                    if let Some(g) = e.granted.iter_mut().find(|g| g.owner == owner) {
                        g.mode = target;
                        g.count += 1;
                    } else {
                        e.granted.push(Grant {
                            owner,
                            mode: target,
                            count: 1,
                        });
                    }
                } else {
                    e.granted.push(Grant {
                        owner,
                        mode: target,
                        count: 1,
                    });
                }
                self.wait_ns.record(wait_timer.elapsed_ns());
                self.granted_obs(owner, target);
                return Ok(());
            }
            if timed_out {
                self.remove_waiter(&mut inner, owner, name);
                self.wait_ns.record(wait_timer.elapsed_ns());
                self.timeouts.inc();
                self.rec.event(EventKind::LockTimeout, owner.0, 0);
                return Err(LockError::Timeout);
            }
        }
    }

    fn granted_obs(&self, owner: ActionId, mode: LockMode) {
        self.acquires.inc();
        self.rec
            .event(EventKind::LockGrant, owner.0, mode_code(mode));
    }

    fn remove_waiter(&self, inner: &mut TableInner, owner: ActionId, name: &LockName) {
        if let Some(e) = inner.entries.get_mut(name) {
            e.waiters.retain(|w| w.owner != owner);
        }
        inner.waiting_on.remove(&owner);
    }

    /// DFS over the waits-for graph looking for a cycle through `start`.
    fn find_cycle(&self, inner: &TableInner, start: ActionId) -> bool {
        // Build edges lazily: a waiter waits for every incompatible granted
        // owner of its resource and every earlier incompatible waiter.
        let mut stack = vec![start];
        let mut visited = std::collections::HashSet::new();
        while let Some(cur) = stack.pop() {
            let Some(res) = inner.waiting_on.get(&cur) else {
                continue;
            };
            let Some(entry) = inner.entries.get(res) else {
                continue;
            };
            let my_wait = entry.waiters.iter().find(|w| w.owner == cur);
            let Some(my_wait) = my_wait else { continue };
            let mut blockers: Vec<ActionId> = Vec::new();
            for g in &entry.granted {
                if g.owner != cur && !g.mode.compatible(my_wait.mode) {
                    blockers.push(g.owner);
                }
            }
            if !my_wait.converting {
                for w in entry.waiters.iter().take_while(|w| w.owner != cur) {
                    if !w.mode.compatible(my_wait.mode) || !my_wait.mode.compatible(w.mode) {
                        blockers.push(w.owner);
                    }
                }
            }
            for b in blockers {
                if b == start {
                    return true;
                }
                if visited.insert(b) {
                    stack.push(b);
                }
            }
        }
        false
    }

    /// Release one level of `owner`'s hold on `name` (re-entrant holds need
    /// matching releases).
    pub fn release(&self, owner: ActionId, name: &LockName) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.get_mut(name) {
            if let Some(pos) = e.granted.iter().position(|g| g.owner == owner) {
                let g = &mut e.granted[pos];
                g.count -= 1;
                if g.count == 0 {
                    e.granted.remove(pos);
                }
            }
            if e.granted.is_empty() && e.waiters.is_empty() {
                inner.entries.remove(name);
            }
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Release everything `owner` holds (end of transaction, 2PL).
    pub fn release_all(&self, owner: ActionId) {
        let mut inner = self.inner.lock();
        inner.entries.retain(|_, e| {
            e.granted.retain(|g| g.owner != owner);
            !e.granted.is_empty() || !e.waiters.is_empty()
        });
        drop(inner);
        self.cv.notify_all();
    }

    /// Number of lock acquisitions that had to block (contention metric for
    /// the concurrency experiments; the `lock.waits` counter).
    pub fn wait_count(&self) -> u64 {
        self.waits.get()
    }

    /// Whether any owner holds `name` in `mode` exactly. Used by sibling
    /// traversers to detect a move lock without acquiring anything
    /// ("A transaction encountering a move lock on a sibling traversal does
    /// not schedule an index posting", §4.2.2).
    pub fn is_held(&self, name: &LockName, mode: LockMode) -> bool {
        let inner = self.inner.lock();
        inner
            .entries
            .get(name)
            .map(|e| e.granted.iter().any(|g| g.mode == mode))
            .unwrap_or(false)
    }

    /// Whether `name` is covered by a move lock — granted as `Move`, or as
    /// `X` via conversion (a holder of IX or Move that requests the other
    /// converts to the supremum `X`; in the tree protocol nothing else ever
    /// drives a *page* lock to X, so `X` on a page implies a move).
    pub fn is_move_locked(&self, name: &LockName) -> bool {
        let inner = self.inner.lock();
        inner
            .entries
            .get(name)
            .map(|e| {
                e.granted
                    .iter()
                    .any(|g| matches!(g.mode, LockMode::Move | LockMode::X))
            })
            .unwrap_or(false)
    }

    /// The mode `owner` currently holds on `name`, if any (used by the tree
    /// to decide whether a leaf split must run inside the transaction,
    /// §4.2.1).
    pub fn holds(&self, owner: ActionId, name: &LockName) -> Option<LockMode> {
        let inner = self.inner.lock();
        inner
            .entries
            .get(name)
            .and_then(|e| e.granted.iter().find(|g| g.owner == owner).map(|g| g.mode))
    }

    /// Modes currently granted on `name` (diagnostics).
    pub fn holders(&self, name: &LockName) -> Vec<(ActionId, LockMode)> {
        let inner = self.inner.lock();
        inner
            .entries
            .get(name)
            .map(|e| e.granted.iter().map(|g| (g.owner, g.mode)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::LockMode::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn t(n: u64) -> ActionId {
        ActionId(n)
    }

    fn key(k: &str) -> LockName {
        LockName::Key(k.as_bytes().to_vec())
    }

    #[test]
    fn shared_grants_coexist() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), S).unwrap();
        lt.acquire(t(2), &key("a"), S).unwrap();
        assert_eq!(lt.holders(&key("a")).len(), 2);
    }

    #[test]
    fn exclusive_blocks_and_try_fails() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), X).unwrap();
        assert_eq!(
            lt.try_acquire(t(2), &key("a"), S),
            Err(LockError::WouldBlock)
        );
        lt.release(t(1), &key("a"));
        lt.acquire(t(2), &key("a"), S).unwrap();
    }

    #[test]
    fn reentrant_acquire_and_release() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), S).unwrap();
        lt.acquire(t(1), &key("a"), S).unwrap();
        lt.release(t(1), &key("a"));
        // Still held once.
        assert_eq!(
            lt.try_acquire(t(2), &key("a"), X),
            Err(LockError::WouldBlock)
        );
        lt.release(t(1), &key("a"));
        lt.acquire(t(2), &key("a"), X).unwrap();
    }

    #[test]
    fn conversion_s_to_x_when_alone() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), S).unwrap();
        lt.acquire(t(1), &key("a"), X).unwrap(); // converts
        assert_eq!(lt.holders(&key("a")), vec![(t(1), X)]);
        assert_eq!(
            lt.try_acquire(t(2), &key("a"), S),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn blocking_handoff() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), X).unwrap();
        let got = AtomicU32::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                lt.acquire(t(2), &key("a"), X).unwrap();
                got.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert_eq!(got.load(Ordering::SeqCst), 0);
            lt.release(t(1), &key("a"));
        });
        assert_eq!(got.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deadlock_detected_and_victim_is_requester() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), X).unwrap();
        lt.acquire(t(2), &key("b"), X).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                // T1 blocks on b (held by T2).
                lt.acquire(t(1), &key("b"), X).unwrap();
                lt.release(t(1), &key("b"));
            });
            std::thread::sleep(Duration::from_millis(30));
            // T2 requesting a closes the cycle: T2 must be denied.
            assert_eq!(lt.acquire(t(2), &key("a"), X), Err(LockError::Deadlock));
            lt.release_all(t(2)); // T2 gives up, T1 proceeds
        });
    }

    #[test]
    fn conversion_deadlock_detected() {
        // Two S holders both converting to X: the classic promotion deadlock
        // (§4.1.1) — must be detected, not hung.
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), S).unwrap();
        lt.acquire(t(2), &key("a"), S).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                // T1 converts; blocks behind T2's S.
                let r = lt.acquire(t(1), &key("a"), X);
                if r.is_ok() {
                    lt.release_all(t(1));
                }
            });
            std::thread::sleep(Duration::from_millis(30));
            let r2 = lt.acquire(t(2), &key("a"), X);
            assert_eq!(r2, Err(LockError::Deadlock));
            lt.release_all(t(2));
        });
    }

    #[test]
    fn fifo_prevents_starvation() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), S).unwrap();
        let order = pitree_pagestore::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                lt.acquire(t(2), &key("a"), X).unwrap(); // waits
                order.lock().push(2);
                lt.release(t(2), &key("a"));
            });
            std::thread::sleep(Duration::from_millis(30));
            s.spawn(|| {
                // A later S request must NOT jump the queued X.
                lt.acquire(t(3), &key("a"), S).unwrap();
                order.lock().push(3);
                lt.release(t(3), &key("a"));
            });
            std::thread::sleep(Duration::from_millis(30));
            lt.release(t(1), &key("a"));
        });
        assert_eq!(*order.lock(), vec![2, 3]);
    }

    #[test]
    fn move_lock_visibility() {
        let lt = LockTable::default();
        let page = LockName::Page(pitree_pagestore::PageId(9));
        lt.acquire(t(1), &page, Move).unwrap();
        assert!(lt.is_held(&page, Move));
        assert!(!lt.is_held(&page, X));
        // Readers coexist with the move lock.
        lt.acquire(t(2), &page, IS).unwrap();
        // Updaters do not.
        assert_eq!(lt.try_acquire(t(3), &page, IX), Err(LockError::WouldBlock));
    }

    #[test]
    fn timeout_safety_net() {
        let lt = LockTable::new(Duration::from_millis(50));
        lt.acquire(t(1), &key("a"), X).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(lt.acquire(t(2), &key("a"), X), Err(LockError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn release_all_wakes_waiters() {
        let lt = LockTable::default();
        lt.acquire(t(1), &key("a"), X).unwrap();
        lt.acquire(t(1), &key("b"), X).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                lt.acquire(t(2), &key("a"), S).unwrap();
                lt.acquire(t(2), &key("b"), S).unwrap();
            });
            std::thread::sleep(Duration::from_millis(20));
            lt.release_all(t(1));
        });
        assert_eq!(lt.holders(&key("a")), vec![(t(2), S)]);
    }
}
