#![warn(missing_docs)]
//! Database lock manager and transactions for the Π-tree reproduction.
//!
//! Implements the parts of §4.1–§4.2 of Lomet & Salzberg (SIGMOD 1992) that
//! live *above* latches:
//!
//! * [`modes::LockMode`] — S/U/X plus intention modes and the **move lock**
//!   of §4.2.2 (compatible with readers, conflicting with non-commutative
//!   updates).
//! * [`table::LockTable`] — named locks with FIFO queuing, conversion,
//!   waits-for deadlock detection, and a non-blocking `try_acquire` that
//!   lets tree operations obey the **No-Wait Rule** (§4.1.2).
//! * [`txn::TxnManager`] / [`txn::Txn`] — user transactions (strict 2PL,
//!   forced commits) and independent atomic actions (short 2PL lock scopes,
//!   relatively durable commits) over the same infrastructure, with commit
//!   hooks for deferred index-term postings.

pub mod modes;
pub mod table;
pub mod txn;

pub use modes::LockMode;
pub use table::{LockError, LockName, LockTable};
pub use txn::{ActiveRegistry, PendingCommit, Txn, TxnManager};
