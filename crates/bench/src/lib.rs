//! Benchmark support crate. The Criterion benches live in `benches/paper.rs`
//! — one group per experiment id in `EXPERIMENTS.md`; the corresponding
//! table-producing drivers are the `exp*` binaries in `pitree-harness`.
