//! Benchmark support crate. The benches live in `benches/paper.rs` — one
//! group per experiment id in `EXPERIMENTS.md`; the corresponding
//! table-producing drivers are the `exp*` binaries in `pitree-harness`.
//!
//! The workspace is dependency-free by design (see DESIGN.md), so this crate
//! ships its own miniature timing harness instead of Criterion: each bench
//! auto-calibrates an iteration count to a minimum sample duration, takes
//! the best of three samples (the usual minimum-is-signal argument: noise
//! only ever adds time), and prints one `ns/op` line. The bench target is
//! opt-in behind the non-default `bench-ext` feature:
//!
//! ```text
//! cargo bench -p pitree-bench --features bench-ext
//! ```

use pitree_obs::Stopwatch;
use std::time::Duration;

/// Minimum wall time a sample must cover before we trust it.
const MIN_SAMPLE: Duration = Duration::from_millis(50);
/// Samples taken after calibration; the best (lowest) is reported.
const SAMPLES: u32 = 3;

/// Print one result line, aligned for scanning.
pub fn report(group: &str, name: &str, ns_per_op: f64) {
    println!("{group:<20} {name:<36} {ns_per_op:>14.0} ns/op");
}

/// Time `f` per call: calibrate an iteration count until one sample covers
/// `MIN_SAMPLE` (50 ms), then report the best of `SAMPLES` (3) samples.
pub fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    let mut iters = 1u64;
    let mut elapsed;
    loop {
        let t0 = Stopwatch::start();
        for _ in 0..iters {
            f();
        }
        elapsed = Duration::from_nanos(t0.elapsed_ns());
        if elapsed >= MIN_SAMPLE || iters >= 1 << 22 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut best = elapsed;
    for _ in 1..SAMPLES {
        let t0 = Stopwatch::start();
        for _ in 0..iters {
            f();
        }
        best = best.min(Duration::from_nanos(t0.elapsed_ns()));
    }
    report(group, name, best.as_nanos() as f64 / iters as f64);
}

/// For benches whose setup must not be timed (recovery, consolidation):
/// `f(iters)` runs `iters` repetitions and returns only the time spent in
/// the measured region.
pub fn bench_custom(group: &str, name: &str, iters: u64, mut f: impl FnMut(u64) -> Duration) {
    let mut best = f(iters);
    for _ in 1..SAMPLES {
        best = best.min(f(iters));
    }
    report(group, name, best.as_nanos() as f64 / iters as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_time() {
        // Smoke: a no-op body calibrates and completes quickly.
        bench("test", "noop", || std::hint::black_box(()));
    }

    #[test]
    fn bench_custom_uses_reported_duration() {
        bench_custom("test", "fixed", 10, Duration::from_micros);
    }
}
