//! Timing benches — one group per experiment in `EXPERIMENTS.md`, on the
//! dependency-free mini-harness in `pitree_bench` (the `exp*` binaries in
//! `pitree-harness` print the corresponding deterministic tables).
//!
//! Run with: `cargo bench -p pitree-bench --features bench-ext`

use pitree::{
    ConsolidationPolicy, CrashableStore, DeallocPolicy, PiTree, PiTreeConfig, UndoPolicy,
};
use pitree_baselines::{ConcurrentIndex, LockCouplingTree, SerialSmoTree};
use pitree_bench::{bench, bench_custom};
use pitree_harness::PiTreeIndex;
use pitree_hb::{HbConfig, HbTree};
use pitree_tsb::{TsbConfig, TsbTree};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

/// E1 — per-operation cost of each protocol (single-threaded; the
/// concurrency footprint itself is deterministic and printed by `exp1`).
fn bench_e1_smo_concurrency() {
    let g = "e1_insert_cost";
    {
        let idx = PiTreeIndex::new(4096, PiTreeConfig::small_nodes(24, 24));
        let mut i = 0u64;
        bench(g, "pi-tree", || {
            idx.insert(&key(i), b"value");
            i += 1;
        });
    }
    {
        let idx = LockCouplingTree::new(4096, 24);
        let mut i = 0u64;
        bench(g, "lock-coupling", || {
            idx.insert(&key(i), b"value");
            i += 1;
        });
    }
    {
        let idx = SerialSmoTree::new(4096, 24);
        let mut i = 0u64;
        bench(g, "serial-smo", || {
            idx.insert(&key(i), b"value");
            i += 1;
        });
    }
}

/// E2 — the cost of one decomposed structure change: an insert that
/// triggers a leaf split plus the posting it schedules, vs a plain insert.
fn bench_e2_action_latency() {
    let g = "e2_action_latency";
    {
        let cs = CrashableStore::create(4096, 1 << 20).unwrap();
        let tree = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::default()).unwrap();
        let mut i = 0u64;
        bench(g, "insert_no_split", || {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"v").unwrap();
            t.commit().unwrap();
            i += 1;
        });
    }
    {
        // Fanout 4: roughly every other insert splits and posts.
        let cs = CrashableStore::create(8192, 1 << 20).unwrap();
        let tree =
            PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(4, 4)).unwrap();
        let mut i = 0u64;
        bench(g, "insert_with_split_storm", || {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"v").unwrap();
            t.commit().unwrap();
            i += 1;
        });
    }
}

/// E3 — crash recovery time as a function of the durable log size.
fn bench_e3_recovery() {
    for keys in [500u64, 2_000] {
        let cfg = PiTreeConfig::small_nodes(8, 8);
        let cs = CrashableStore::create(2048, 1 << 20).unwrap();
        let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
        for i in 0..keys {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"v").unwrap();
            t.commit().unwrap();
        }
        drop(tree);
        bench_custom("e3_recovery", &format!("recover/{keys}"), 10, |iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let cs2 = cs.crash().unwrap();
                let t0 = Instant::now();
                let (t, _) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
                total += t0.elapsed();
                drop(t);
            }
            total
        });
    }
}

/// E4 — undo-policy cost: transactional batch insert then abort.
fn bench_e4_undo_policy() {
    for (name, undo) in [
        ("logical", UndoPolicy::Logical),
        ("page_oriented", UndoPolicy::PageOriented),
    ] {
        let mut cfg = PiTreeConfig::small_nodes(16, 16);
        cfg.undo = undo;
        let cs = CrashableStore::create(4096, 1 << 20).unwrap();
        let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
        let mut i = 0u64;
        bench("e4_undo_policy", &format!("batch10_abort/{name}"), || {
            let mut t = tree.begin();
            for j in 0..10 {
                tree.insert(&mut t, &key(i * 10 + j), b"v").unwrap();
            }
            match undo {
                UndoPolicy::Logical => t.abort(Some(&tree.undo_handler())).unwrap(),
                UndoPolicy::PageOriented => t.abort(None).unwrap(),
            }
            i += 1;
        });
    }
}

/// E5 — traversal cost: CNS (one latch) vs CP (latch coupling).
fn bench_e5_traversal() {
    for (name, pol) in [
        ("cns", ConsolidationPolicy::Disabled),
        (
            "cp",
            ConsolidationPolicy::Enabled {
                dealloc: DeallocPolicy::IsAnUpdate,
            },
        ),
    ] {
        let mut cfg = PiTreeConfig::small_nodes(32, 32);
        cfg.consolidation = pol;
        let cs = CrashableStore::create(4096, 1 << 20).unwrap();
        let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
        for i in 0..20_000u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"v").unwrap();
            t.commit().unwrap();
        }
        let mut i = 0u64;
        bench("e5_traversal", &format!("search/{name}"), || {
            let _ = tree.get_unlocked(&key((i * 7919) % 20_000)).unwrap();
            i += 1;
        });
    }
}

/// E6 — posting with a valid saved path vs root re-traversal, via the two
/// CP de-allocation regimes, on a deep tree.
fn bench_e6_saved_path() {
    for (name, pol) in [
        (
            "saved_path",
            ConsolidationPolicy::Enabled {
                dealloc: DeallocPolicy::IsAnUpdate,
            },
        ),
        (
            "root_retraversal",
            ConsolidationPolicy::Enabled {
                dealloc: DeallocPolicy::NotAnUpdate,
            },
        ),
    ] {
        let mut cfg = PiTreeConfig::small_nodes(8, 8);
        cfg.consolidation = pol;
        let cs = CrashableStore::create(8192, 1 << 20).unwrap();
        let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
        for i in 0..10_000u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"v").unwrap();
            t.commit().unwrap();
        }
        let mut i = 10_000u64;
        bench("e6_saved_path", &format!("insert_deep/{name}"), || {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"v").unwrap();
            t.commit().unwrap();
            i += 1;
        });
    }
}

/// E7 — the consolidation action itself: churn a range, then time the
/// completion pass that merges it.
fn bench_e7_consolidate() {
    bench_custom("e7_consolidate", "churn_and_consolidate_1000", 5, |iters| {
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let mut cfg = PiTreeConfig::small_nodes(16, 16);
            cfg.min_utilization = 0.4;
            cfg.auto_complete = false;
            let cs = CrashableStore::create(4096, 1 << 20).unwrap();
            let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
            for i in 0..1_000u64 {
                let mut t = tree.begin();
                tree.insert(&mut t, &key(i), b"v").unwrap();
                t.commit().unwrap();
            }
            tree.run_completions().unwrap();
            for i in 0..1_000u64 {
                if i % 8 != 0 {
                    let mut t = tree.begin();
                    tree.delete(&mut t, &key(i)).unwrap();
                    t.commit().unwrap();
                }
            }
            let t0 = Instant::now();
            for _ in 0..6 {
                tree.run_completions().unwrap();
            }
            total += t0.elapsed();
        }
        total
    });
}

/// F1 — TSB-tree versioned write and as-of read costs.
fn bench_f1_tsb() {
    let g = "f1_tsb";
    {
        let cs = CrashableStore::create(4096, 1 << 20).unwrap();
        let tree =
            TsbTree::create(Arc::clone(&cs.store), 1, TsbConfig::small_nodes(32, 32)).unwrap();
        let mut i = 0u64;
        bench(g, "put_version", || {
            let mut t = tree.begin();
            tree.put(&mut t, &key(i % 64), b"v").unwrap();
            t.commit().unwrap();
            i += 1;
        });
    }
    {
        let cs = CrashableStore::create(4096, 1 << 20).unwrap();
        let tree =
            TsbTree::create(Arc::clone(&cs.store), 1, TsbConfig::small_nodes(16, 16)).unwrap();
        let mut stamps = Vec::new();
        for r in 0..200u64 {
            let mut t = tree.begin();
            stamps.push(tree.put(&mut t, &key(r % 4), b"v").unwrap());
            t.commit().unwrap();
        }
        let mut i = 0usize;
        bench(g, "get_as_of_deep_history", || {
            let ts = stamps[(i * 31) % stamps.len()];
            let _ = tree.get_as_of(&key((i as u64 * 31) % 4), ts).unwrap();
            i += 1;
        });
    }
}

/// F2 — hB-tree point insert and window-query costs.
fn bench_f2_hb() {
    let g = "f2_hb";
    {
        let cs = CrashableStore::create(4096, 1 << 20).unwrap();
        let tree = HbTree::create(Arc::clone(&cs.store), 1, HbConfig::small_nodes(32, 32)).unwrap();
        let mut i = 0u64;
        bench(g, "insert_point", || {
            let mut t = tree.begin();
            tree.insert(
                &mut t,
                &[(i * 7919) % 100_000, (i * 104729) % 100_000],
                b"v",
            )
            .unwrap();
            t.commit().unwrap();
            i += 1;
        });
    }
    {
        let cs = CrashableStore::create(4096, 1 << 20).unwrap();
        let tree = HbTree::create(Arc::clone(&cs.store), 1, HbConfig::small_nodes(16, 24)).unwrap();
        for i in 0..2_000u64 {
            let mut t = tree.begin();
            tree.insert(
                &mut t,
                &[(i * 7919) % 100_000, (i * 104729) % 100_000],
                b"v",
            )
            .unwrap();
            t.commit().unwrap();
        }
        let mut i = 0u64;
        bench(g, "window_query", || {
            let lo = [(i * 13) % 80_000, (i * 17) % 80_000];
            let window = pitree_hb::Rect {
                lo,
                hi: [lo[0] + 20_000, lo[1] + 20_000],
            };
            let _ = tree.window_query(&window).unwrap();
            i += 1;
        });
    }
}

fn main() {
    println!("{:<20} {:<36} {:>14}", "group", "bench", "time");
    bench_e1_smo_concurrency();
    bench_e2_action_latency();
    bench_e3_recovery();
    bench_e4_undo_policy();
    bench_e5_traversal();
    bench_e6_saved_path();
    bench_e7_consolidate();
    bench_f1_tsb();
    bench_f2_hb();
}
