//! Key-space bounds.
//!
//! A Π-tree node *directly contains* a half-open key interval
//! `[low, high)` (§2.1.1). The first node of each level is responsible for
//! the whole space, so bounds must be able to express ±∞.

use pitree_pagestore::{StoreError, StoreResult};
use std::cmp::Ordering;

/// One end of a node's directly-contained interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyBound {
    /// Below every key.
    NegInf,
    /// An actual key value (inclusive as a low bound, exclusive as a high
    /// bound).
    Key(Vec<u8>),
    /// Above every key.
    PosInf,
}

impl KeyBound {
    /// `self ≤ key` when used as a low bound.
    pub fn le_key(&self, key: &[u8]) -> bool {
        match self {
            KeyBound::NegInf => true,
            KeyBound::Key(k) => k.as_slice() <= key,
            KeyBound::PosInf => false,
        }
    }

    /// `key < self` when used as a high bound.
    pub fn gt_key(&self, key: &[u8]) -> bool {
        match self {
            KeyBound::NegInf => false,
            KeyBound::Key(k) => key < k.as_slice(),
            KeyBound::PosInf => true,
        }
    }

    /// Compare two bounds (NegInf < every key < PosInf).
    pub fn cmp_bound(&self, other: &KeyBound) -> Ordering {
        use KeyBound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Key(a), Key(b)) => a.cmp(b),
        }
    }

    /// The byte key used when this bound appears as an *index-term key*:
    /// `NegInf` is the empty key (which sorts before every routing key; the
    /// trees in this workspace never use an empty user key).
    pub fn as_entry_key(&self) -> &[u8] {
        match self {
            KeyBound::NegInf => b"",
            KeyBound::Key(k) => k,
            KeyBound::PosInf => panic!("PosInf is never an index-term key"),
        }
    }

    /// Encode: tag byte + optional length-prefixed key.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            KeyBound::NegInf => out.push(0),
            KeyBound::Key(k) => {
                out.push(1);
                out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                out.extend_from_slice(k);
            }
            KeyBound::PosInf => out.push(2),
        }
    }

    /// Decode from `bytes[*pos..]`, advancing `pos`.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> StoreResult<KeyBound> {
        let tag = *bytes
            .get(*pos)
            .ok_or_else(|| StoreError::Corrupt("truncated bound".into()))?;
        *pos += 1;
        match tag {
            0 => Ok(KeyBound::NegInf),
            2 => Ok(KeyBound::PosInf),
            1 => {
                if *pos + 2 > bytes.len() {
                    return Err(StoreError::Corrupt("truncated bound length".into()));
                }
                let len = u16::from_le_bytes([bytes[*pos], bytes[*pos + 1]]) as usize;
                *pos += 2;
                if *pos + len > bytes.len() {
                    return Err(StoreError::Corrupt("truncated bound key".into()));
                }
                let k = bytes[*pos..*pos + len].to_vec();
                *pos += len;
                Ok(KeyBound::Key(k))
            }
            t => Err(StoreError::Corrupt(format!("bad bound tag {t}"))),
        }
    }
}

impl std::fmt::Display for KeyBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyBound::NegInf => write!(f, "-inf"),
            KeyBound::Key(k) => write!(f, "{k:02x?}"),
            KeyBound::PosInf => write!(f, "+inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_membership() {
        let low = KeyBound::Key(b"b".to_vec());
        let high = KeyBound::Key(b"m".to_vec());
        assert!(low.le_key(b"b") && high.gt_key(b"b"));
        assert!(low.le_key(b"g") && high.gt_key(b"g"));
        assert!(!high.gt_key(b"m"), "high bound is exclusive");
        assert!(!low.le_key(b"a"));
    }

    #[test]
    fn infinities() {
        assert!(KeyBound::NegInf.le_key(b""));
        assert!(KeyBound::PosInf.gt_key(&[0xff; 64]));
        assert!(!KeyBound::PosInf.le_key(b"x"));
        assert!(!KeyBound::NegInf.gt_key(b""));
    }

    #[test]
    fn bound_ordering() {
        use Ordering::*;
        let k = |s: &str| KeyBound::Key(s.as_bytes().to_vec());
        assert_eq!(KeyBound::NegInf.cmp_bound(&k("a")), Less);
        assert_eq!(k("a").cmp_bound(&k("b")), Less);
        assert_eq!(k("b").cmp_bound(&KeyBound::PosInf), Less);
        assert_eq!(k("c").cmp_bound(&k("c")), Equal);
        assert_eq!(KeyBound::PosInf.cmp_bound(&KeyBound::NegInf), Greater);
    }

    #[test]
    fn codec_roundtrip() {
        for b in [
            KeyBound::NegInf,
            KeyBound::PosInf,
            KeyBound::Key(b"hello".to_vec()),
            KeyBound::Key(vec![]),
        ] {
            let mut buf = Vec::new();
            b.encode(&mut buf);
            let mut pos = 0;
            assert_eq!(KeyBound::decode(&buf, &mut pos).unwrap(), b);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut pos = 0;
        assert!(KeyBound::decode(&[], &mut pos).is_err());
        let mut pos = 0;
        assert!(KeyBound::decode(&[9], &mut pos).is_err());
        let mut pos = 0;
        assert!(KeyBound::decode(&[1, 10, 0, 1, 2], &mut pos).is_err());
    }

    #[test]
    fn entry_key_view() {
        assert_eq!(KeyBound::NegInf.as_entry_key(), b"");
        assert_eq!(KeyBound::Key(b"k".to_vec()).as_entry_key(), b"k");
    }
}
