//! B-link node layout over slotted pages.
//!
//! Slot 0 holds the **node header**: level, side pointer, and the bounds of
//! the directly-contained space (§2.1.1). Slots 1.. hold keyed entries:
//!
//! * leaf (level 0): `[klen][key][value]` — data records;
//! * index: `[klen][key][child pid u64][flags u8]` — index terms; the flags
//!   byte carries the multi-parent marker of §3.3 (always clear in B-link
//!   trees, used by the multiattribute instantiations).
//!
//! A **sibling term** is the header's side pointer plus the `high` bound:
//! "a key space for which a sibling node is responsible and ... a side
//! pointer to the sibling" — the sibling is responsible for `[high, …)`.

use crate::bound::KeyBound;
use pitree_pagestore::latch::{SGuard, UGuard, XGuard};
use pitree_pagestore::page::Page;
use pitree_pagestore::{PageId, StoreError, StoreResult};

/// Decoded node header (slot 0 of a node page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHeader {
    /// Level: 0 for data nodes, parents one higher than children (§2.1.2).
    pub level: u8,
    /// Side pointer to the sibling this node delegated space to, or
    /// `PageId::INVALID`.
    pub side: PageId,
    /// Inclusive low bound of the directly-contained space.
    pub low: KeyBound,
    /// Exclusive high bound; when a side pointer exists, the sibling is
    /// responsible for the space at and above this bound.
    pub high: KeyBound,
}

impl NodeHeader {
    /// Header of a fresh root: a data node directly containing everything.
    pub fn new_root_leaf() -> NodeHeader {
        NodeHeader {
            level: 0,
            side: PageId::INVALID,
            low: KeyBound::NegInf,
            high: KeyBound::PosInf,
        }
    }

    /// Whether `key` lies in the directly-contained space.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.low.le_key(key) && self.high.gt_key(key)
    }

    /// Whether this is a data node.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Encode into slot-0 record bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.push(self.level);
        v.extend_from_slice(&self.side.0.to_le_bytes());
        self.low.encode(&mut v);
        self.high.encode(&mut v);
        v
    }

    /// Decode from slot-0 record bytes.
    pub fn decode(bytes: &[u8]) -> StoreResult<NodeHeader> {
        if bytes.len() < 9 {
            return Err(StoreError::Corrupt("node header too short".into()));
        }
        let level = bytes[0];
        let side = PageId(u64::from_le_bytes(bytes[1..9].try_into().unwrap()));
        let mut pos = 9;
        let low = KeyBound::decode(bytes, &mut pos)?;
        let high = KeyBound::decode(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(StoreError::Corrupt("trailing bytes in node header".into()));
        }
        Ok(NodeHeader {
            level,
            side,
            low,
            high,
        })
    }

    /// Read the header of a node page.
    pub fn read(page: &Page) -> StoreResult<NodeHeader> {
        NodeHeader::decode(page.get(0)?)
    }
}

/// One end of a node's interval, borrowed from the encoded slot-0 bytes.
/// The zero-copy twin of [`KeyBound`]: same tags, same comparison
/// semantics, no `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundRef<'a> {
    /// Below every key.
    NegInf,
    /// An actual key value, borrowed from the page frame.
    Key(&'a [u8]),
    /// Above every key.
    PosInf,
}

impl<'a> BoundRef<'a> {
    /// Parse from `bytes[*pos..]`, advancing `pos`. Rejects exactly what
    /// [`KeyBound::decode`] rejects (bad tag, truncated length, truncated
    /// key) so view-path and write-path corruption checks stay in lockstep.
    pub fn parse(bytes: &'a [u8], pos: &mut usize) -> StoreResult<BoundRef<'a>> {
        let tag = *bytes
            .get(*pos)
            .ok_or_else(|| StoreError::Corrupt("truncated bound".into()))?;
        *pos += 1;
        match tag {
            0 => Ok(BoundRef::NegInf),
            2 => Ok(BoundRef::PosInf),
            1 => {
                if *pos + 2 > bytes.len() {
                    return Err(StoreError::Corrupt("truncated bound length".into()));
                }
                let len = u16::from_le_bytes([bytes[*pos], bytes[*pos + 1]]) as usize;
                *pos += 2;
                if *pos + len > bytes.len() {
                    return Err(StoreError::Corrupt("truncated bound key".into()));
                }
                let k = &bytes[*pos..*pos + len];
                *pos += len;
                Ok(BoundRef::Key(k))
            }
            t => Err(StoreError::Corrupt(format!("bad bound tag {t}"))),
        }
    }

    /// `self ≤ key` when used as a low bound.
    #[inline]
    pub fn le_key(&self, key: &[u8]) -> bool {
        match self {
            BoundRef::NegInf => true,
            BoundRef::Key(k) => *k <= key,
            BoundRef::PosInf => false,
        }
    }

    /// `key < self` when used as a high bound.
    #[inline]
    pub fn gt_key(&self, key: &[u8]) -> bool {
        match self {
            BoundRef::NegInf => false,
            BoundRef::Key(k) => key < *k,
            BoundRef::PosInf => true,
        }
    }

    /// `key ≤ self` when used as a high bound — the scan-termination test
    /// (`high > to || high == to`) without re-encoding `to` as a bound.
    #[inline]
    pub fn ge_key(&self, key: &[u8]) -> bool {
        match self {
            BoundRef::NegInf => false,
            BoundRef::Key(k) => key <= *k,
            BoundRef::PosInf => true,
        }
    }

    /// The byte key used when this bound appears as an index-term key
    /// (mirrors [`KeyBound::as_entry_key`]).
    #[inline]
    pub fn as_entry_key(&self) -> &'a [u8] {
        match self {
            BoundRef::NegInf => b"",
            BoundRef::Key(k) => k,
            BoundRef::PosInf => panic!("PosInf is never an index-term key"),
        }
    }

    /// Materialize the owned bound (write paths only).
    pub fn to_bound(self) -> KeyBound {
        match self {
            BoundRef::NegInf => KeyBound::NegInf,
            BoundRef::Key(k) => KeyBound::Key(k.to_vec()),
            BoundRef::PosInf => KeyBound::PosInf,
        }
    }
}

/// Borrowed, zero-copy view of a node header: the scalars are copied out of
/// the slot-0 bytes, the bounds stay as slices into the frame. Containment
/// and routing checks are in-place byte comparisons — no `Vec`, no
/// [`NodeHeader`] clone. Sound because the caller holds a latch guard on the
/// page for the lifetime `'a` (DESIGN.md §11).
///
/// [`NodeHeader::encode`]/[`NodeHeader::decode`] remain the write-path/SMO
/// representation; this view serves the read hot path.
#[derive(Debug, Clone, Copy)]
pub struct HeaderRef<'a> {
    level: u8,
    side: PageId,
    low: BoundRef<'a>,
    high: BoundRef<'a>,
}

impl<'a> HeaderRef<'a> {
    /// Parse slot-0 record bytes. Accepts and rejects byte-for-byte the same
    /// inputs as [`NodeHeader::decode`] (short header, bad bound tag,
    /// truncated bound, trailing bytes) — a property test pins the parity.
    pub fn parse(bytes: &'a [u8]) -> StoreResult<HeaderRef<'a>> {
        if bytes.len() < 9 {
            return Err(StoreError::Corrupt("node header too short".into()));
        }
        let level = bytes[0];
        let side = PageId(u64::from_le_bytes(bytes[1..9].try_into().unwrap()));
        let mut pos = 9;
        let low = BoundRef::parse(bytes, &mut pos)?;
        let high = BoundRef::parse(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(StoreError::Corrupt("trailing bytes in node header".into()));
        }
        Ok(HeaderRef {
            level,
            side,
            low,
            high,
        })
    }

    /// View the header of a node page.
    #[inline]
    pub fn read(page: &'a Page) -> StoreResult<HeaderRef<'a>> {
        HeaderRef::parse(page.get(0)?)
    }

    /// Level: 0 for data nodes.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Side pointer, or `PageId::INVALID`.
    #[inline]
    pub fn side(&self) -> PageId {
        self.side
    }

    /// Whether this is a data node.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Inclusive low bound of the directly-contained space.
    #[inline]
    pub fn low(&self) -> BoundRef<'a> {
        self.low
    }

    /// Exclusive high bound of the directly-contained space.
    #[inline]
    pub fn high(&self) -> BoundRef<'a> {
        self.high
    }

    /// Whether `key` lies in the directly-contained space.
    #[inline]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.low.le_key(key) && self.high.gt_key(key)
    }

    /// `low ≤ key` in place.
    #[inline]
    pub fn low_le(&self, key: &[u8]) -> bool {
        self.low.le_key(key)
    }

    /// `key < high` in place.
    #[inline]
    pub fn high_gt(&self, key: &[u8]) -> bool {
        self.high.gt_key(key)
    }

    /// `key ≤ high` in place (scan termination).
    #[inline]
    pub fn high_ge(&self, key: &[u8]) -> bool {
        self.high.ge_key(key)
    }

    /// The low bound as an index-term key (`NegInf` → empty key).
    #[inline]
    pub fn low_entry_key(&self) -> &'a [u8] {
        self.low.as_entry_key()
    }

    /// Materialize the owned header (write paths / SMO scheduling only).
    pub fn to_header(&self) -> NodeHeader {
        NodeHeader {
            level: self.level,
            side: self.side,
            low: self.low.to_bound(),
            high: self.high.to_bound(),
        }
    }
}

/// A node page plus its parsed header view: one validation, then borrowed
/// access to both the header and the keyed entries.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'a> {
    page: &'a Page,
    hdr: HeaderRef<'a>,
}

impl<'a> NodeRef<'a> {
    /// View a latched node page.
    #[inline]
    pub fn new(page: &'a Page) -> StoreResult<NodeRef<'a>> {
        Ok(NodeRef {
            page,
            hdr: HeaderRef::read(page)?,
        })
    }

    /// The parsed header view.
    #[inline]
    pub fn header(&self) -> HeaderRef<'a> {
        self.hdr
    }

    /// The underlying page.
    #[inline]
    pub fn page(&self) -> &'a Page {
        self.page
    }

    /// Borrow the payload for `key`, if present in this node's entries.
    #[inline]
    pub fn lookup_payload(&self, key: &[u8]) -> Option<&'a [u8]> {
        self.page
            .keyed_lookup(key)
            .map(|(_, entry)| Page::entry_payload(entry))
    }
}

/// A decoded index term (§2.1.2): child pointer plus the key from which the
/// child is responsible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexTerm {
    /// Low key of the child's described subspace.
    pub key: Vec<u8>,
    /// The child node.
    pub child: PageId,
    /// Multi-parent marker (§3.3): set when the term was clipped, meaning
    /// the child may be referenced by more than one parent and must not be
    /// consolidated.
    pub multi_parent: bool,
}

impl IndexTerm {
    /// Encode as a keyed entry.
    pub fn to_entry(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(9);
        payload.extend_from_slice(&self.child.0.to_le_bytes());
        payload.push(self.multi_parent as u8);
        Page::make_entry(&self.key, &payload)
    }

    /// Decode from a keyed entry.
    pub fn from_entry(entry: &[u8]) -> StoreResult<IndexTerm> {
        let key = Page::entry_key(entry).to_vec();
        let payload = Page::entry_payload(entry);
        if payload.len() != 9 {
            return Err(StoreError::Corrupt(format!(
                "index term payload has {} bytes, expected 9",
                payload.len()
            )));
        }
        Ok(IndexTerm {
            key,
            child: PageId(u64::from_le_bytes(payload[0..8].try_into().unwrap())),
            multi_parent: payload[8] != 0,
        })
    }

    /// Decode the index term at `slot` of an index node.
    pub fn read(page: &Page, slot: u16) -> StoreResult<IndexTerm> {
        IndexTerm::from_entry(page.get(slot)?)
    }

    /// Read just the child pointer of the index term at `slot`, in place —
    /// the descent hot path needs nothing else from the term.
    #[inline]
    pub fn child_at(page: &Page, slot: u16) -> StoreResult<PageId> {
        let payload = page.entry_payload_at(slot);
        if payload.len() != 9 {
            return Err(StoreError::Corrupt(format!(
                "index term payload has {} bytes, expected 9",
                payload.len()
            )));
        }
        Ok(PageId(u64::from_le_bytes(
            payload[0..8].try_into().unwrap(),
        )))
    }
}

/// A latch guard in any of the three modes, with uniform read access.
/// Traversal code descends in S or U and promotes U→X only at the node it
/// will write (§4.1.1: "Whenever a node might be written, a U latch is
/// used").
pub enum Guarded<'a> {
    /// Shared.
    S(SGuard<'a, Page>),
    /// Update.
    U(UGuard<'a, Page>),
    /// Exclusive.
    X(XGuard<'a, Page>),
}

impl std::fmt::Debug for Guarded<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Guarded::S(_) => "Guarded::S",
            Guarded::U(_) => "Guarded::U",
            Guarded::X(_) => "Guarded::X",
        })
    }
}

impl<'a> Guarded<'a> {
    /// Read access to the page, whatever the mode.
    pub fn page(&self) -> &Page {
        match self {
            Guarded::S(g) => g,
            Guarded::U(g) => g,
            Guarded::X(g) => g,
        }
    }

    /// Promote to X. S-mode promotion is forbidden (the paper's promotion
    /// deadlock); callers must descend in U when they might write.
    pub fn promote(self) -> Guarded<'a> {
        match self {
            Guarded::U(g) => Guarded::X(g.promote()),
            x @ Guarded::X(_) => x,
            Guarded::S(_) => panic!("promotion from S is forbidden (§4.1.1)"),
        }
    }

    /// The X guard, if in X mode.
    pub fn as_x(&mut self) -> Option<&mut XGuard<'a, Page>> {
        match self {
            Guarded::X(g) => Some(g),
            _ => None,
        }
    }

    /// Unwrap into the X guard (panics otherwise).
    pub fn into_x(self) -> XGuard<'a, Page> {
        match self {
            Guarded::X(g) => g,
            _ => panic!("not an X guard"),
        }
    }
}

/// Whether a node page is "full" for an additional entry of `entry_len`
/// bytes, under an entry-count cap.
pub fn node_full(page: &Page, entry_len: usize, max_entries: usize) -> bool {
    page.entry_count() as usize >= max_entries || page.free_space() < entry_len + 4
}

/// Entry-count-based utilization (consolidation trigger, §3.3).
pub fn utilization(page: &Page, max_entries: usize) -> f64 {
    if max_entries == usize::MAX {
        // Byte-based when no artificial cap is set.
        let cap = pitree_pagestore::PAGE_SIZE - pitree_pagestore::page::HEADER_SIZE;
        page.used_space() as f64 / cap as f64
    } else {
        page.entry_count() as f64 / max_entries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree_pagestore::page::PageType;

    #[test]
    fn header_codec_roundtrip() {
        for h in [
            NodeHeader::new_root_leaf(),
            NodeHeader {
                level: 3,
                side: PageId(42),
                low: KeyBound::Key(b"m".to_vec()),
                high: KeyBound::Key(b"r".to_vec()),
            },
            NodeHeader {
                level: 1,
                side: PageId::INVALID,
                low: KeyBound::Key(b"x".to_vec()),
                high: KeyBound::PosInf,
            },
        ] {
            assert_eq!(NodeHeader::decode(&h.encode()).unwrap(), h);
        }
    }

    #[test]
    fn header_contains() {
        let h = NodeHeader {
            level: 0,
            side: PageId(9),
            low: KeyBound::Key(b"b".to_vec()),
            high: KeyBound::Key(b"m".to_vec()),
        };
        assert!(h.contains(b"b"));
        assert!(h.contains(b"g"));
        assert!(!h.contains(b"m"));
        assert!(!h.contains(b"a"));
        assert!(h.is_leaf());
    }

    #[test]
    fn index_term_codec() {
        let t = IndexTerm {
            key: b"sep".to_vec(),
            child: PageId(77),
            multi_parent: true,
        };
        let e = t.to_entry();
        assert_eq!(IndexTerm::from_entry(&e).unwrap(), t);
        let t2 = IndexTerm {
            key: vec![],
            child: PageId(1),
            multi_parent: false,
        };
        assert_eq!(IndexTerm::from_entry(&t2.to_entry()).unwrap(), t2);
    }

    #[test]
    fn header_roundtrip_through_page() {
        let mut p = Page::new(PageType::Node);
        let h = NodeHeader::new_root_leaf();
        p.insert(0, &h.encode()).unwrap();
        assert_eq!(NodeHeader::read(&p).unwrap(), h);
    }

    #[test]
    fn fullness_by_count_and_bytes() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &NodeHeader::new_root_leaf().encode()).unwrap();
        p.keyed_insert(&Page::make_entry(b"a", b"v")).unwrap();
        p.keyed_insert(&Page::make_entry(b"b", b"v")).unwrap();
        assert!(node_full(&p, 8, 2), "count cap reached");
        assert!(!node_full(&p, 8, 100));
        assert!(node_full(&p, 1 << 13, 100), "byte cap reached");
    }

    #[test]
    fn utilization_by_count() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &NodeHeader::new_root_leaf().encode()).unwrap();
        p.keyed_insert(&Page::make_entry(b"a", b"v")).unwrap();
        assert!((utilization(&p, 4) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn decode_rejects_corrupt_headers() {
        assert!(NodeHeader::decode(&[1, 2, 3]).is_err());
        let mut ok = NodeHeader::new_root_leaf().encode();
        ok.push(0xaa);
        assert!(NodeHeader::decode(&ok).is_err());
        assert!(IndexTerm::from_entry(&Page::make_entry(b"k", b"short")).is_err());
    }

    #[test]
    fn header_ref_agrees_with_decode() {
        for h in [
            NodeHeader::new_root_leaf(),
            NodeHeader {
                level: 3,
                side: PageId(42),
                low: KeyBound::Key(b"m".to_vec()),
                high: KeyBound::Key(b"r".to_vec()),
            },
            NodeHeader {
                level: 1,
                side: PageId::INVALID,
                low: KeyBound::NegInf,
                high: KeyBound::Key(b"x".to_vec()),
            },
        ] {
            let bytes = h.encode();
            let v = HeaderRef::parse(&bytes).unwrap();
            assert_eq!(v.level(), h.level);
            assert_eq!(v.side(), h.side);
            assert_eq!(v.is_leaf(), h.is_leaf());
            assert_eq!(v.to_header(), h);
            for key in [&b""[..], b"a", b"m", b"q", b"r", b"zz"] {
                assert_eq!(v.contains(key), h.contains(key));
                assert_eq!(v.low_le(key), h.low.le_key(key));
                assert_eq!(v.high_gt(key), h.high.gt_key(key));
                assert_eq!(
                    v.high_ge(key),
                    h.high.gt_key(key) || h.high == KeyBound::Key(key.to_vec())
                );
            }
        }
    }

    #[test]
    fn header_ref_rejects_what_decode_rejects() {
        let corpus: Vec<Vec<u8>> = vec![
            vec![],
            vec![1, 2, 3],
            vec![0; 9],                         // level+side, missing bounds
            vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 9], // bad bound tag
            {
                let mut v = NodeHeader::new_root_leaf().encode();
                v.push(0xaa); // trailing byte
                v
            },
            {
                let mut v = vec![0; 9];
                v.extend_from_slice(&[1, 10, 0, 1, 2]); // truncated bound key
                v
            },
        ];
        for bytes in &corpus {
            assert_eq!(
                HeaderRef::parse(bytes).is_err(),
                NodeHeader::decode(bytes).is_err(),
                "parity break on {bytes:02x?}"
            );
            assert!(HeaderRef::parse(bytes).is_err());
        }
    }

    #[test]
    fn index_child_at_matches_full_decode() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &NodeHeader::new_root_leaf().encode()).unwrap();
        let t = IndexTerm {
            key: b"sep".to_vec(),
            child: PageId(77),
            multi_parent: true,
        };
        p.keyed_insert(&t.to_entry()).unwrap();
        assert_eq!(IndexTerm::child_at(&p, 1).unwrap(), PageId(77));
        assert_eq!(IndexTerm::read(&p, 1).unwrap().child, PageId(77));
        // Corrupt payload length is rejected in place too.
        let mut q = Page::new(PageType::Node);
        q.insert(0, &NodeHeader::new_root_leaf().encode()).unwrap();
        q.keyed_insert(&Page::make_entry(b"k", b"short")).unwrap();
        assert!(IndexTerm::child_at(&q, 1).is_err());
    }

    #[test]
    fn node_ref_lookup_payload() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &NodeHeader::new_root_leaf().encode()).unwrap();
        p.keyed_insert(&Page::make_entry(b"k1", b"v1")).unwrap();
        let n = NodeRef::new(&p).unwrap();
        assert!(n.header().is_leaf());
        assert_eq!(n.lookup_payload(b"k1"), Some(&b"v1"[..]));
        assert_eq!(n.lookup_payload(b"k2"), None);
    }
}
