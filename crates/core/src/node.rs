//! B-link node layout over slotted pages.
//!
//! Slot 0 holds the **node header**: level, side pointer, and the bounds of
//! the directly-contained space (§2.1.1). Slots 1.. hold keyed entries:
//!
//! * leaf (level 0): `[klen][key][value]` — data records;
//! * index: `[klen][key][child pid u64][flags u8]` — index terms; the flags
//!   byte carries the multi-parent marker of §3.3 (always clear in B-link
//!   trees, used by the multiattribute instantiations).
//!
//! A **sibling term** is the header's side pointer plus the `high` bound:
//! "a key space for which a sibling node is responsible and ... a side
//! pointer to the sibling" — the sibling is responsible for `[high, …)`.

use crate::bound::KeyBound;
use pitree_pagestore::latch::{SGuard, UGuard, XGuard};
use pitree_pagestore::page::Page;
use pitree_pagestore::{PageId, StoreError, StoreResult};

/// Decoded node header (slot 0 of a node page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHeader {
    /// Level: 0 for data nodes, parents one higher than children (§2.1.2).
    pub level: u8,
    /// Side pointer to the sibling this node delegated space to, or
    /// `PageId::INVALID`.
    pub side: PageId,
    /// Inclusive low bound of the directly-contained space.
    pub low: KeyBound,
    /// Exclusive high bound; when a side pointer exists, the sibling is
    /// responsible for the space at and above this bound.
    pub high: KeyBound,
}

impl NodeHeader {
    /// Header of a fresh root: a data node directly containing everything.
    pub fn new_root_leaf() -> NodeHeader {
        NodeHeader {
            level: 0,
            side: PageId::INVALID,
            low: KeyBound::NegInf,
            high: KeyBound::PosInf,
        }
    }

    /// Whether `key` lies in the directly-contained space.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.low.le_key(key) && self.high.gt_key(key)
    }

    /// Whether this is a data node.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Encode into slot-0 record bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.push(self.level);
        v.extend_from_slice(&self.side.0.to_le_bytes());
        self.low.encode(&mut v);
        self.high.encode(&mut v);
        v
    }

    /// Decode from slot-0 record bytes.
    pub fn decode(bytes: &[u8]) -> StoreResult<NodeHeader> {
        if bytes.len() < 9 {
            return Err(StoreError::Corrupt("node header too short".into()));
        }
        let level = bytes[0];
        let side = PageId(u64::from_le_bytes(bytes[1..9].try_into().unwrap()));
        let mut pos = 9;
        let low = KeyBound::decode(bytes, &mut pos)?;
        let high = KeyBound::decode(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(StoreError::Corrupt("trailing bytes in node header".into()));
        }
        Ok(NodeHeader {
            level,
            side,
            low,
            high,
        })
    }

    /// Read the header of a node page.
    pub fn read(page: &Page) -> StoreResult<NodeHeader> {
        NodeHeader::decode(page.get(0)?)
    }
}

/// A decoded index term (§2.1.2): child pointer plus the key from which the
/// child is responsible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexTerm {
    /// Low key of the child's described subspace.
    pub key: Vec<u8>,
    /// The child node.
    pub child: PageId,
    /// Multi-parent marker (§3.3): set when the term was clipped, meaning
    /// the child may be referenced by more than one parent and must not be
    /// consolidated.
    pub multi_parent: bool,
}

impl IndexTerm {
    /// Encode as a keyed entry.
    pub fn to_entry(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(9);
        payload.extend_from_slice(&self.child.0.to_le_bytes());
        payload.push(self.multi_parent as u8);
        Page::make_entry(&self.key, &payload)
    }

    /// Decode from a keyed entry.
    pub fn from_entry(entry: &[u8]) -> StoreResult<IndexTerm> {
        let key = Page::entry_key(entry).to_vec();
        let payload = Page::entry_payload(entry);
        if payload.len() != 9 {
            return Err(StoreError::Corrupt(format!(
                "index term payload has {} bytes, expected 9",
                payload.len()
            )));
        }
        Ok(IndexTerm {
            key,
            child: PageId(u64::from_le_bytes(payload[0..8].try_into().unwrap())),
            multi_parent: payload[8] != 0,
        })
    }

    /// Decode the index term at `slot` of an index node.
    pub fn read(page: &Page, slot: u16) -> StoreResult<IndexTerm> {
        IndexTerm::from_entry(page.get(slot)?)
    }
}

/// A latch guard in any of the three modes, with uniform read access.
/// Traversal code descends in S or U and promotes U→X only at the node it
/// will write (§4.1.1: "Whenever a node might be written, a U latch is
/// used").
pub enum Guarded<'a> {
    /// Shared.
    S(SGuard<'a, Page>),
    /// Update.
    U(UGuard<'a, Page>),
    /// Exclusive.
    X(XGuard<'a, Page>),
}

impl std::fmt::Debug for Guarded<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Guarded::S(_) => "Guarded::S",
            Guarded::U(_) => "Guarded::U",
            Guarded::X(_) => "Guarded::X",
        })
    }
}

impl<'a> Guarded<'a> {
    /// Read access to the page, whatever the mode.
    pub fn page(&self) -> &Page {
        match self {
            Guarded::S(g) => g,
            Guarded::U(g) => g,
            Guarded::X(g) => g,
        }
    }

    /// Promote to X. S-mode promotion is forbidden (the paper's promotion
    /// deadlock); callers must descend in U when they might write.
    pub fn promote(self) -> Guarded<'a> {
        match self {
            Guarded::U(g) => Guarded::X(g.promote()),
            x @ Guarded::X(_) => x,
            Guarded::S(_) => panic!("promotion from S is forbidden (§4.1.1)"),
        }
    }

    /// The X guard, if in X mode.
    pub fn as_x(&mut self) -> Option<&mut XGuard<'a, Page>> {
        match self {
            Guarded::X(g) => Some(g),
            _ => None,
        }
    }

    /// Unwrap into the X guard (panics otherwise).
    pub fn into_x(self) -> XGuard<'a, Page> {
        match self {
            Guarded::X(g) => g,
            _ => panic!("not an X guard"),
        }
    }
}

/// Whether a node page is "full" for an additional entry of `entry_len`
/// bytes, under an entry-count cap.
pub fn node_full(page: &Page, entry_len: usize, max_entries: usize) -> bool {
    page.entry_count() as usize >= max_entries || page.free_space() < entry_len + 4
}

/// Entry-count-based utilization (consolidation trigger, §3.3).
pub fn utilization(page: &Page, max_entries: usize) -> f64 {
    if max_entries == usize::MAX {
        // Byte-based when no artificial cap is set.
        let cap = pitree_pagestore::PAGE_SIZE - pitree_pagestore::page::HEADER_SIZE;
        page.used_space() as f64 / cap as f64
    } else {
        page.entry_count() as f64 / max_entries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree_pagestore::page::PageType;

    #[test]
    fn header_codec_roundtrip() {
        for h in [
            NodeHeader::new_root_leaf(),
            NodeHeader {
                level: 3,
                side: PageId(42),
                low: KeyBound::Key(b"m".to_vec()),
                high: KeyBound::Key(b"r".to_vec()),
            },
            NodeHeader {
                level: 1,
                side: PageId::INVALID,
                low: KeyBound::Key(b"x".to_vec()),
                high: KeyBound::PosInf,
            },
        ] {
            assert_eq!(NodeHeader::decode(&h.encode()).unwrap(), h);
        }
    }

    #[test]
    fn header_contains() {
        let h = NodeHeader {
            level: 0,
            side: PageId(9),
            low: KeyBound::Key(b"b".to_vec()),
            high: KeyBound::Key(b"m".to_vec()),
        };
        assert!(h.contains(b"b"));
        assert!(h.contains(b"g"));
        assert!(!h.contains(b"m"));
        assert!(!h.contains(b"a"));
        assert!(h.is_leaf());
    }

    #[test]
    fn index_term_codec() {
        let t = IndexTerm {
            key: b"sep".to_vec(),
            child: PageId(77),
            multi_parent: true,
        };
        let e = t.to_entry();
        assert_eq!(IndexTerm::from_entry(&e).unwrap(), t);
        let t2 = IndexTerm {
            key: vec![],
            child: PageId(1),
            multi_parent: false,
        };
        assert_eq!(IndexTerm::from_entry(&t2.to_entry()).unwrap(), t2);
    }

    #[test]
    fn header_roundtrip_through_page() {
        let mut p = Page::new(PageType::Node);
        let h = NodeHeader::new_root_leaf();
        p.insert(0, &h.encode()).unwrap();
        assert_eq!(NodeHeader::read(&p).unwrap(), h);
    }

    #[test]
    fn fullness_by_count_and_bytes() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &NodeHeader::new_root_leaf().encode()).unwrap();
        p.keyed_insert(&Page::make_entry(b"a", b"v")).unwrap();
        p.keyed_insert(&Page::make_entry(b"b", b"v")).unwrap();
        assert!(node_full(&p, 8, 2), "count cap reached");
        assert!(!node_full(&p, 8, 100));
        assert!(node_full(&p, 1 << 13, 100), "byte cap reached");
    }

    #[test]
    fn utilization_by_count() {
        let mut p = Page::new(PageType::Node);
        p.insert(0, &NodeHeader::new_root_leaf().encode()).unwrap();
        p.keyed_insert(&Page::make_entry(b"a", b"v")).unwrap();
        assert!((utilization(&p, 4) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn decode_rejects_corrupt_headers() {
        assert!(NodeHeader::decode(&[1, 2, 3]).is_err());
        let mut ok = NodeHeader::new_root_leaf().encode();
        ok.push(0xaa);
        assert!(NodeHeader::decode(&ok).is_err());
        assert!(IndexTerm::from_entry(&Page::make_entry(b"k", b"short")).is_err());
    }
}
