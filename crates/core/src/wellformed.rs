//! Well-formedness checking — the six invariants of §2.1.3.
//!
//! Every atomic action must leave the tree well-formed; the test suite and
//! the crash-recovery experiments call [`check`] after every interesting
//! event (including right after recovery, and with completions deliberately
//! unrun, to confirm that *intermediate* states are well-formed too).
//!
//! The checker walks each level's side chain from its first node, so it sees
//! exactly what a searcher can reach, and verifies:
//!
//! 1. each node is responsible for a subspace (bounds sane, level correct);
//! 2. each sibling term delegates a subspace of its containing node
//!    (side node's low == delegating node's high);
//! 3. each index term references a node responsible for a space containing
//!    the term's subspace (child low ≤ term key, reachable coverage);
//! 4. index/sibling terms of a node cover its responsibility (first term at
//!    the node's low bound, chain contiguous);
//! 5. the lowest level consists of data nodes (level 0);
//! 6. a root exists responsible for the entire space.

use crate::bound::KeyBound;
use crate::node::{IndexTerm, NodeHeader};
use crate::tree::PiTree;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, StoreResult};

/// The checker's findings.
#[derive(Debug, Default)]
pub struct WellFormedReport {
    /// Number of nodes per level, root level first.
    pub nodes_per_level: Vec<(u8, usize)>,
    /// Total data records found on the leaf chain.
    pub records: usize,
    /// Nodes whose index term has not been posted yet (reachable only via a
    /// side pointer) — the paper's intermediate states.
    pub unposted_nodes: usize,
    /// Invariant violations, empty iff the tree is well-formed.
    pub violations: Vec<String>,
}

impl WellFormedReport {
    /// Whether all invariants hold.
    pub fn is_well_formed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run the checker. Latches one node at a time in S mode; run it on a
/// quiescent tree for exact results.
pub fn check(tree: &PiTree) -> StoreResult<WellFormedReport> {
    let mut report = WellFormedReport::default();
    let pool = &tree.store().pool;
    let mut violations = Vec::new();

    // Invariant 6: the root exists and is responsible for the whole space.
    let root_hdr = {
        let root = pool.fetch(tree.root_pid())?;
        let g = root.s();
        let hdr = NodeHeader::read(&g)?;
        if hdr.low != KeyBound::NegInf || hdr.high != KeyBound::PosInf {
            violations.push(format!(
                "root bounds are [{}, {}), expected (-inf, +inf)",
                hdr.low, hdr.high
            ));
        }
        if hdr.side.is_valid() {
            violations.push("root has a side pointer".into());
        }
        hdr
    };

    // Walk each level left-to-right. The first node of level L is found via
    // the leftmost index term of the first node of level L+1.
    let mut first_of_level = tree.root_pid();
    let mut level = root_hdr.level;
    let node_budget = tree.store().space.allocated_count(pool)? as usize + 8;
    loop {
        let mut count = 0usize;
        let mut posted: Vec<(Vec<u8>, PageId)> = Vec::new(); // index terms of this level's parent
        if level < root_hdr.level {
            // Collect the parent level's index terms (posted children).
            let mut p = first_parent_scan(tree, level + 1, &mut violations)?;
            posted.append(&mut p);
        }

        let mut cur = first_of_level;
        let mut prev_high = KeyBound::NegInf;
        let mut leftmost_child = PageId::INVALID;
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > node_budget {
                violations.push(format!(
                    "side chain at level {level} exceeds node budget (cycle?)"
                ));
                break;
            }
            let pin = pool.fetch(cur)?;
            let g = pin.s();
            if g.page_type()? != PageType::Node || g.is_freed() {
                violations.push(format!(
                    "reachable node {cur} is not an allocated node page"
                ));
                break;
            }
            if !tree.store().space.is_allocated(pool, cur)? {
                violations.push(format!(
                    "node {cur} reachable but not allocated in the space map"
                ));
            }
            let hdr = NodeHeader::read(&g)?;
            if hdr.level != level {
                violations.push(format!(
                    "node {cur} has level {}, expected {level}",
                    hdr.level
                ));
            }
            // Invariant 1/2: bounds form a contiguous partition of the space.
            if hdr.low.cmp_bound(&prev_high) != std::cmp::Ordering::Equal && count > 0 {
                violations.push(format!(
                    "node {cur}: low {} != previous node's high {}",
                    hdr.low, prev_high
                ));
            }
            if count == 0 && hdr.low != KeyBound::NegInf {
                violations.push(format!(
                    "first node {cur} of level {level} has low {}",
                    hdr.low
                ));
            }
            if hdr.low.cmp_bound(&hdr.high) != std::cmp::Ordering::Less {
                violations.push(format!(
                    "node {cur}: empty or inverted bounds [{}, {})",
                    hdr.low, hdr.high
                ));
            }

            // Entries sorted and within bounds.
            let mut prev_key: Option<Vec<u8>> = None;
            for slot in 1..g.slot_count() {
                let e = g.get(slot)?;
                let k = Page::entry_key(e);
                if !hdr.low.le_key(k) || !hdr.high.gt_key(k) {
                    violations.push(format!(
                        "node {cur}: entry key {k:02x?} outside [{}, {})",
                        hdr.low, hdr.high
                    ));
                }
                if let Some(pk) = &prev_key {
                    if pk.as_slice() >= k {
                        violations.push(format!("node {cur}: entries out of order at slot {slot}"));
                    }
                }
                prev_key = Some(k.to_vec());
                if hdr.level == 0 {
                    report.records += 1;
                } else {
                    // Invariant 3: the child is responsible for a space
                    // containing the term's subspace.
                    let term = IndexTerm::read(&g, slot)?;
                    let cp = pool.fetch(term.child)?;
                    let cg = cp.s();
                    if cg.page_type()? != PageType::Node || cg.is_freed() {
                        violations.push(format!(
                            "node {cur}: index term {k:02x?} references de-allocated node {}",
                            term.child
                        ));
                        continue;
                    }
                    let chdr = NodeHeader::read(&cg)?;
                    if chdr.level + 1 != hdr.level {
                        violations.push(format!(
                            "node {cur}: child {} at level {}, parent at {}",
                            term.child, chdr.level, hdr.level
                        ));
                    }
                    if !(chdr.low.le_key(k) || (chdr.low == KeyBound::NegInf && k.is_empty())) {
                        violations.push(format!(
                            "node {cur}: child {} low {} above term key {k:02x?}",
                            term.child, chdr.low
                        ));
                    }
                }
            }
            // Invariant 4: the node's terms cover its directly-contained
            // space — the first index term must sit at the node's low bound.
            if hdr.level > 0 {
                if g.slot_count() <= 1 {
                    violations.push(format!("index node {cur} has no index terms"));
                } else {
                    let first_key = Page::entry_key(g.get(1)?);
                    if first_key != hdr.low.as_entry_key() {
                        violations.push(format!(
                            "index node {cur}: first term key {first_key:02x?} != low bound {}",
                            hdr.low
                        ));
                    }
                    if count == 0 {
                        leftmost_child = IndexTerm::read(&g, 1)?.child;
                    }
                }
            }

            count += 1;
            // Intermediate-state accounting: a non-first node is unposted if
            // the parent level lacks a term for it.
            if level < root_hdr.level && hdr.low != KeyBound::NegInf {
                let key = hdr.low.as_entry_key();
                if !posted.iter().any(|(k, p)| k.as_slice() == key && *p == cur) {
                    report.unposted_nodes += 1;
                }
            }
            prev_high = hdr.high.clone();
            if !hdr.side.is_valid() {
                if hdr.high != KeyBound::PosInf {
                    violations.push(format!(
                        "rightmost node {cur} of level {level} has high {}",
                        hdr.high
                    ));
                }
                break;
            }
            cur = hdr.side;
        }
        report.nodes_per_level.push((level, count));

        if level == 0 {
            break;
        }
        if !leftmost_child.is_valid() {
            violations.push(format!("level {level} has no leftmost child to descend to"));
            break;
        }
        first_of_level = leftmost_child;
        level -= 1;
    }

    report.violations = violations;
    Ok(report)
}

/// Collect all `(term key, child)` pairs of the given level (used to count
/// unposted children one level below).
fn first_parent_scan(
    tree: &PiTree,
    level: u8,
    violations: &mut Vec<String>,
) -> StoreResult<Vec<(Vec<u8>, PageId)>> {
    let pool = &tree.store().pool;
    // Find the first node of `level` by descending leftmost terms from the
    // root.
    let mut cur = tree.root_pid();
    loop {
        let pin = pool.fetch(cur)?;
        let g = pin.s();
        let hdr = NodeHeader::read(&g)?;
        if hdr.level == level {
            break;
        }
        if hdr.level == 0 || g.slot_count() <= 1 {
            violations.push(format!("cannot reach level {level} from the root"));
            return Ok(Vec::new());
        }
        cur = IndexTerm::read(&g, 1)?.child;
    }
    let mut out = Vec::new();
    let mut steps = 0usize;
    let budget = tree.store().space.allocated_count(pool)? as usize + 8;
    loop {
        steps += 1;
        if steps > budget {
            violations.push(format!("parent scan at level {level} exceeded budget"));
            break;
        }
        let pin = pool.fetch(cur)?;
        let g = pin.s();
        let hdr = NodeHeader::read(&g)?;
        for slot in 1..g.slot_count() {
            let term = IndexTerm::read(&g, slot)?;
            out.push((term.key, term.child));
        }
        if !hdr.side.is_valid() {
            break;
        }
        cur = hdr.side;
    }
    Ok(out)
}
