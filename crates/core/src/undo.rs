//! Non-page-oriented (logical) UNDO support (§4.2, §6).
//!
//! When the recovery method supports logical undo, record updates log a
//! `(tag, payload)` and undo compensates through the tree's own operations:
//! the record is re-located by key, wherever structure changes have moved it
//! since. Compensations are **idempotent, testable** operations (delete if
//! present / insert if absent), so a crash between a compensation and its
//! CLR marker is harmless — recovery simply re-runs it.

use crate::config::PiTreeConfig;
use crate::node::node_full;
use crate::store::Store;
use crate::tree::PiTree;
use pitree_pagestore::page::Page;
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{PageOp, StoreError, StoreResult};
use pitree_wal::recovery::LogicalUndoHandler;
use std::sync::Arc;

/// Undo of an insert: payload is the key; compensation deletes it if
/// present.
pub const TAG_UNDO_INSERT: u8 = 1;
/// Undo of a delete: payload is the full entry; compensation re-inserts it
/// if absent.
pub const TAG_UNDO_DELETE: u8 = 2;
/// Undo of an update: payload is the previous entry; compensation restores
/// it if the key is still present.
pub const TAG_UNDO_UPDATE: u8 = 3;

impl PiTree {
    /// A logical-undo handler borrowing this tree, for rolling back live
    /// transactions (`Txn::abort`).
    pub fn undo_handler(&self) -> TreeUndoHandler<'_> {
        TreeUndoHandler(self)
    }

    /// Execute one logical compensation. Runs as an independent system
    /// atomic action per attempt; splits (for a re-insert into a full leaf)
    /// are ordinary independent split actions.
    pub(crate) fn compensate(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        loop {
            let (key, entry): (&[u8], Option<&[u8]>) = match tag {
                TAG_UNDO_INSERT => (payload, None),
                TAG_UNDO_DELETE | TAG_UNDO_UPDATE => (Page::entry_key(payload), Some(payload)),
                t => return Err(StoreError::Corrupt(format!("unknown logical undo tag {t}"))),
            };
            let d = self.descend(key, 0, true, false)?;
            let present = d.guard.page().keyed_find(key)?.is_ok();
            let op = match tag {
                TAG_UNDO_INSERT if present => Some(PageOp::KeyedRemove { key: key.to_vec() }),
                TAG_UNDO_DELETE if !present => {
                    let bytes = require_entry(entry)?.to_vec();
                    if node_full(d.guard.page(), bytes.len(), self.config().max_leaf_entries) {
                        crate::split::independent_split(self, d)?;
                        continue; // re-descend and retry
                    }
                    Some(PageOp::KeyedInsert { bytes })
                }
                TAG_UNDO_UPDATE if present => {
                    let bytes = require_entry(entry)?.to_vec();
                    let Ok(slot) = d.guard.page().keyed_find(key)? else {
                        // `present` came from the same latched page, so the
                        // key cannot have moved; a miss here is corruption.
                        return Err(StoreError::Corrupt(
                            "entry vanished under latch during undo-update".to_string(),
                        ));
                    };
                    let old_len = d.guard.page().get(slot)?.len();
                    if bytes.len() > old_len && bytes.len() - old_len > d.guard.page().free_space()
                    {
                        crate::split::independent_split(self, d)?;
                        continue;
                    }
                    Some(PageOp::KeyedUpdate { bytes })
                }
                _ => None, // testable state: nothing to compensate
            };
            let Some(op) = op else {
                drop(d);
                return Ok(());
            };
            let mut act = self
                .store()
                .txns
                .begin(pitree_wal::ActionIdentity::SystemTransaction);
            let mut g = d.guard.promote().into_x();
            act.apply(&d.page, &mut g, op)?;
            drop(g);
            drop(d.page);
            act.commit()?;
            return Ok(());
        }
    }
}

/// The undo payload an undo-delete / undo-update record must carry.
fn require_entry(entry: Option<&[u8]>) -> StoreResult<&[u8]> {
    entry.ok_or_else(|| {
        StoreError::Corrupt("logical undo record missing its entry payload".to_string())
    })
}

/// [`LogicalUndoHandler`] over a live tree.
pub struct TreeUndoHandler<'a>(&'a PiTree);

impl std::fmt::Debug for TreeUndoHandler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeUndoHandler").finish_non_exhaustive()
    }
}

impl LogicalUndoHandler for TreeUndoHandler<'_> {
    fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        self.0.compensate(tag, payload)
    }
}

/// A handler that opens the tree lazily — needed at restart, where recovery
/// must run redo before the tree (whose meta record may itself need redo)
/// can be opened, yet the undo pass needs a working tree.
pub struct DeferredHandler {
    store: Arc<Store>,
    tree_id: u32,
    cfg: PiTreeConfig,
    tree: Mutex<Option<PiTree>>,
}

impl std::fmt::Debug for DeferredHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferredHandler").finish_non_exhaustive()
    }
}

impl DeferredHandler {
    /// Build a handler for `tree_id` over `store`.
    pub fn new(store: Arc<Store>, tree_id: u32, cfg: PiTreeConfig) -> DeferredHandler {
        DeferredHandler {
            store,
            tree_id,
            cfg,
            tree: Mutex::new(None),
        }
    }
}

impl LogicalUndoHandler for DeferredHandler {
    fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        let mut guard = self.tree.lock();
        let tree = match &mut *guard {
            Some(t) => t,
            slot => slot.insert(PiTree::open(
                Arc::clone(&self.store),
                self.tree_id,
                self.cfg,
            )?),
        };
        tree.compensate(tag, payload)
    }
}
