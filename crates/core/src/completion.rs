//! Scheduling and lazy completion of structure changes (§5.1).
//!
//! Between the atomic action that splits a node and the one that posts its
//! index term, the tree is in a well-formed but *intermediate* state. The
//! paper's key recovery idea is that nobody tracks these states durably:
//! they are **detected** — by a traversal that follows a side pointer — and a
//! completing atomic action is **scheduled**. Completion must therefore be
//! *testable* (the completing action re-verifies that work is still needed)
//! and *idempotent* (several traversals may schedule the same completion).
//!
//! The queue here is deliberately volatile: losing it in a crash is exactly
//! the "we lose track of which structure changes need completion" case the
//! protocol is built to tolerate.

use crate::traverse::SavedPath;
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::PageId;
use std::collections::VecDeque;

/// A pending completing action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// Post the index term for `node` (whose low key is `key`) at `level`
    /// (the parent level of the split node). `path` is the saved traversal
    /// state of §5.2, possibly empty.
    Post {
        /// Parent level to post into.
        level: u8,
        /// The split key: low bound of the new node.
        key: Vec<u8>,
        /// The new node.
        node: PageId,
        /// Saved path from the traversal that scheduled this (boxed: the
        /// inline-array path would otherwise dominate the enum's size).
        path: Box<SavedPath>,
    },
    /// Try to consolidate the under-utilized node whose low key is `key` at
    /// `level` (§3.3).
    Consolidate {
        /// Level of the under-utilized node.
        level: u8,
        /// Its low key.
        key: Vec<u8>,
    },
}

/// FIFO of pending completions with duplicate suppression.
#[derive(Default)]
pub struct CompletionQueue {
    q: Mutex<VecDeque<Completion>>,
}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue").finish_non_exhaustive()
    }
}

impl CompletionQueue {
    /// Schedule `c` unless an equivalent completion is already queued.
    /// (Duplicates would be harmless — completion is testable — but bounding
    /// the queue keeps storms of sibling traversals cheap.)
    pub fn push(&self, c: Completion) -> bool {
        // pitree-lint: allow(no-wait) queue mutex is local and never held across a latch or lock acquisition
        let mut q = self.q.lock();
        let dup = q.iter().any(|e| match (e, &c) {
            (
                Completion::Post {
                    level: l1,
                    node: n1,
                    ..
                },
                Completion::Post {
                    level: l2,
                    node: n2,
                    ..
                },
            ) => l1 == l2 && n1 == n2,
            (
                Completion::Consolidate { level: l1, key: k1 },
                Completion::Consolidate { level: l2, key: k2 },
            ) => l1 == l2 && k1 == k2,
            _ => false,
        });
        if dup {
            return false;
        }
        q.push_back(c);
        true
    }

    /// Take the next pending completion.
    pub fn pop(&self) -> Option<Completion> {
        // pitree-lint: allow(no-wait) queue mutex is local and never held across a latch or lock acquisition
        self.q.lock().pop_front()
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        // pitree-lint: allow(no-wait) queue mutex is local and never held across a latch or lock acquisition
        self.q.lock().len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        // pitree-lint: allow(no-wait) queue mutex is local and never held across a latch or lock acquisition
        self.q.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(level: u8, node: u64) -> Completion {
        Completion::Post {
            level,
            key: vec![node as u8],
            node: PageId(node),
            path: Box::new(SavedPath::default()),
        }
    }

    #[test]
    fn fifo_order() {
        let q = CompletionQueue::default();
        assert!(q.push(post(1, 10)));
        assert!(q.push(post(1, 11)));
        assert!(matches!(
            q.pop(),
            Some(Completion::Post {
                node: PageId(10),
                ..
            })
        ));
        assert!(matches!(
            q.pop(),
            Some(Completion::Post {
                node: PageId(11),
                ..
            })
        ));
        assert!(q.pop().is_none());
    }

    #[test]
    fn duplicate_posts_suppressed() {
        let q = CompletionQueue::default();
        assert!(q.push(post(1, 10)));
        assert!(!q.push(post(1, 10)), "same node+level is a duplicate");
        assert!(q.push(post(2, 10)), "different level is not");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn duplicate_consolidations_suppressed() {
        let q = CompletionQueue::default();
        let c = Completion::Consolidate {
            level: 0,
            key: b"k".to_vec(),
        };
        assert!(q.push(c.clone()));
        assert!(!q.push(c));
        assert!(q.push(Completion::Consolidate {
            level: 0,
            key: b"other".to_vec()
        }));
    }

    #[test]
    fn mixed_kinds_do_not_collide() {
        let q = CompletionQueue::default();
        assert!(q.push(post(0, 5)));
        assert!(q.push(Completion::Consolidate {
            level: 0,
            key: vec![5]
        }));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
