//! Store assembly: disk + buffer pool + log + lock manager + space map.
//!
//! [`Store`] wires the substrate crates together. [`CrashableStore`] adds
//! the crash-simulation loop used by the recovery tests and experiment E3:
//! `crash()` keeps exactly what is durable (the disk image and the forced
//! log prefix — optionally truncated mid-force) and rebuilds everything
//! volatile from it, after which the caller runs recovery.

use pitree_obs::{Recorder, Registry};
use pitree_pagestore::buffer::BufferPool;
use pitree_pagestore::disk::{DiskManager, FileDisk, MemDisk};
use pitree_pagestore::space::SpaceMap;
use pitree_pagestore::StoreResult;
use pitree_txnlock::TxnManager;
use pitree_wal::log::{FileLogStore, LogManager, LogStore, MemLogStore};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// A fully wired store.
pub struct Store {
    /// Buffer pool over the durable disk.
    pub pool: Arc<BufferPool>,
    /// Write-ahead log.
    pub log: Arc<LogManager>,
    /// Transactions + database locks + active-action registry.
    pub txns: TxnManager,
    /// Page allocation state.
    pub space: SpaceMap,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").finish_non_exhaustive()
    }
}

impl Store {
    /// Assemble a store over the given disk and log storage. `fresh` decides
    /// whether the space map is initialized (mkfs) or opened.
    pub fn assemble(
        disk: Arc<dyn DiskManager>,
        log_store: Arc<dyn LogStore>,
        pool_frames: usize,
        max_pages: u64,
        fresh: bool,
    ) -> StoreResult<Arc<Store>> {
        // One observability registry per store: the pool, log, lock table,
        // and tree all record into it, so Registry::report() covers every
        // layer of one workload and parallel tests never share metrics.
        let registry = Registry::new();
        let pool = Arc::new(BufferPool::with_recorder(
            disk,
            pool_frames,
            registry.recorder(),
        ));
        let log = Arc::new(LogManager::open_observed(log_store, registry.recorder())?);
        pool.set_wal_hook(Arc::clone(&log) as Arc<_>);
        let space = if fresh {
            SpaceMap::init(&pool, max_pages)?
        } else {
            SpaceMap::open(&pool)?
        };
        let txns = TxnManager::new(Arc::clone(&log), Arc::clone(&pool), Duration::from_secs(10));
        Ok(Arc::new(Store {
            pool,
            log,
            txns,
            space,
        }))
    }
}

impl Store {
    /// The recorder of this store's observability registry (shared by the
    /// pool, log, lock table, and any tree opened over this store).
    pub fn recorder(&self) -> &Recorder {
        self.pool.recorder()
    }

    /// Open (or create) a file-backed store in `dir`: pages in `store.db`,
    /// the log in `store.log` (+ `store.master`). The store is fresh iff
    /// `store.db` does not exist yet.
    pub fn open_file(dir: &Path, pool_frames: usize, max_pages: u64) -> StoreResult<Arc<Store>> {
        std::fs::create_dir_all(dir)
            .map_err(|e| pitree_pagestore::StoreError::Corrupt(format!("mkdir {dir:?}: {e}")))?;
        let db_path = dir.join("store.db");
        let fresh = !db_path.exists();
        let disk = Arc::new(FileDisk::open(&db_path)?);
        let log_store = Arc::new(FileLogStore::open(&dir.join("store.log"))?);
        Store::assemble(disk, log_store, pool_frames, max_pages, fresh)
    }
}

/// An in-memory store whose volatile/durable boundary can be "crashed".
pub struct CrashableStore {
    disk: Arc<MemDisk>,
    log_store: Arc<MemLogStore>,
    /// The live store built over the durable state.
    pub store: Arc<Store>,
    pool_frames: usize,
}

impl std::fmt::Debug for CrashableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashableStore").finish_non_exhaustive()
    }
}

impl CrashableStore {
    /// A brand-new in-memory store.
    pub fn create(pool_frames: usize, max_pages: u64) -> StoreResult<CrashableStore> {
        let disk = Arc::new(MemDisk::new());
        let log_store = Arc::new(MemLogStore::new());
        let store = Store::assemble(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            Arc::clone(&log_store) as Arc<dyn LogStore>,
            pool_frames,
            max_pages,
            true,
        )?;
        Ok(CrashableStore {
            disk,
            log_store,
            store,
            pool_frames,
        })
    }

    /// A brand-new in-memory store whose durable-write boundaries (page
    /// writes and log forces) consult `injector` — the simulation kit's
    /// crash-point hook. A subsequent [`CrashableStore::crash`] yields an
    /// injector-free survivor on which recovery runs unimpeded.
    pub fn create_with_injector(
        pool_frames: usize,
        max_pages: u64,
        injector: pitree_pagestore::fault::InjectorHandle,
    ) -> StoreResult<CrashableStore> {
        let disk = Arc::new(MemDisk::with_injector(Arc::clone(&injector)));
        let log_store = Arc::new(MemLogStore::with_injector(injector));
        let store = Store::assemble(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            Arc::clone(&log_store) as Arc<dyn LogStore>,
            pool_frames,
            max_pages,
            true,
        )?;
        Ok(CrashableStore {
            disk,
            log_store,
            store,
            pool_frames,
        })
    }

    /// Simulate a crash: drop all volatile state (buffer pool contents,
    /// unforced log tail) and rebuild over the durable image. Recovery has
    /// **not** been run on the result; call `pitree_wal::recover` (or
    /// [`crate::PiTree::recover`]) next.
    pub fn crash(&self) -> StoreResult<CrashableStore> {
        self.crash_with_log_prefix(u64::MAX)
    }

    /// Crash, additionally truncating the durable log to `log_bytes` bytes
    /// (simulating a force cut short mid-record). Used for log-prefix
    /// crash-point sweeps.
    pub fn crash_with_log_prefix(&self, log_bytes: u64) -> StoreResult<CrashableStore> {
        let disk = Arc::new(self.disk.snapshot());
        let log_store = Arc::new(self.log_store.snapshot_truncated(log_bytes));
        let store = Store::assemble(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            Arc::clone(&log_store) as Arc<dyn LogStore>,
            self.pool_frames,
            0,
            false,
        )?;
        Ok(CrashableStore {
            disk,
            log_store,
            store,
            pool_frames: self.pool_frames,
        })
    }

    /// Current durable log length in bytes (crash-point sweep upper bound).
    pub fn durable_log_len(&self) -> u64 {
        self.log_store.durable_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree_pagestore::PageId;

    #[test]
    fn create_initializes_space_map() {
        let cs = CrashableStore::create(64, 10_000).unwrap();
        assert!(cs
            .store
            .space
            .is_allocated(&cs.store.pool, PageId(0))
            .unwrap());
        assert!(!cs
            .store
            .space
            .is_allocated(&cs.store.pool, PageId(5))
            .unwrap());
    }

    #[test]
    fn crash_rebuilds_from_durable_state() {
        let cs = CrashableStore::create(64, 10_000).unwrap();
        // mkfs flushed the meta/bitmap pages, so a crash immediately after
        // creation still opens.
        let cs2 = cs.crash().unwrap();
        assert_eq!(
            cs2.store.space.bitmap_pages(),
            cs.store.space.bitmap_pages()
        );
    }

    #[test]
    fn crash_truncates_log() {
        let cs = CrashableStore::create(64, 10_000).unwrap();
        let t = cs.store.txns.begin(pitree_wal::ActionIdentity::Transaction);
        t.commit().unwrap();
        assert!(cs.durable_log_len() > 0);
        let cs2 = cs.crash_with_log_prefix(0).unwrap();
        assert_eq!(cs2.durable_log_len(), 0);
        assert!(cs2.store.log.scan(None).unwrap().is_empty());
    }
}
