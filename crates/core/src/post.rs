//! The index-term posting atomic action — the worked example of §5.3.
//!
//! Steps, verbatim from the paper: **Search** (reuse the saved PATH when the
//! state identifiers allow, §5.2), **Verify Split** (the testable-state
//! check that makes completion idempotent), **Space Test** (split the parent
//! — or grow the root — inside this action when the term does not fit), and
//! **Update Node**.

use crate::config::{ConsolidationPolicy, DeallocPolicy};
use crate::node::{node_full, Guarded, IndexTerm, NodeHeader};
use crate::split::{split_node, SplitCandidates};
use crate::stats::TreeStats;
use crate::traverse::{DescentTarget, SavedPath};
use crate::tree::PiTree;
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::latch::XGuard;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, PageOp, StoreResult};

/// How a posting action terminated. Every arm is a legitimate outcome —
/// "Before posting the index term, we test that the posting has not already
/// been done and still needs to be done" (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOutcome {
    /// The term was inserted.
    Posted,
    /// Another action already posted it (idempotent no-op).
    AlreadyPosted,
    /// The described node was consolidated away; nothing to post.
    NodeGone,
    /// A move lock covers the delegating node: the splitting transaction is
    /// undecided, so posting must wait (§4.2.2).
    MoveDeferred,
}

/// Locate the parent node at `level` whose directly-contained space includes
/// `key`, U-latched, exploiting saved state per §5.2.
fn locate_parent<'a>(
    tree: &'a PiTree,
    level: u8,
    key: &[u8],
    path: &SavedPath,
) -> StoreResult<DescentTarget<'a>> {
    let stats = tree.stats();
    let d = match tree.config().consolidation {
        // CNS (§5.2.1): nodes are immortal — "re-traversals to find a parent
        // always start with the remembered parent".
        ConsolidationPolicy::Disabled => {
            if let Some(e) = path.at_level(level) {
                TreeStats::bump(&stats.saved_path_hits);
                tree.descend_from(e.pid, key, level, true, false)?
            } else {
                tree.descend(key, level, true, false)?
            }
        }
        // §5.2.2(b): de-allocation bumps the state id, so climb the saved
        // path from the deepest entry whose state id is unchanged.
        ConsolidationPolicy::Enabled {
            dealloc: DeallocPolicy::IsAnUpdate,
        } => {
            let mut start = None;
            for e in path.entries().iter().rev().filter(|e| e.level >= level) {
                // Climbing *up* the path violates the latch order, so only
                // try-latches are permissible here.
                let ok = match tree.store().pool.fetch(e.pid) {
                    Ok(pin) => match pin.try_s() {
                        Some(g) => {
                            g.lsn() == e.lsn
                                && !g.is_freed()
                                && g.page_type().map(|t| t == PageType::Node).unwrap_or(false)
                        }
                        None => false,
                    },
                    Err(_) => false,
                };
                if ok {
                    TreeStats::bump(&stats.saved_path_hits);
                    start = Some(e.pid);
                    break;
                }
                TreeStats::bump(&stats.saved_path_misses);
            }
            match start {
                Some(pid) => tree.descend_from(pid, key, level, true, false)?,
                None => tree.descend(key, level, true, false)?,
            }
        }
        // §5.2.2(a): de-allocation is invisible to state ids, so only
        // root-anchored traversals are safe. The saved path still pays: a
        // node whose state id is unchanged needs no fresh in-node search —
        // we account hits for the experiment's benefit.
        ConsolidationPolicy::Enabled {
            dealloc: DeallocPolicy::NotAnUpdate,
        } => {
            let d = tree.descend(key, level, true, false)?;
            for e in d.path.entries() {
                if path
                    .entries()
                    .iter()
                    .any(|p| p.pid == e.pid && p.lsn == e.lsn)
                {
                    TreeStats::bump(&stats.saved_path_hits);
                } else {
                    TreeStats::bump(&stats.saved_path_misses);
                }
            }
            d
        }
    };
    TreeStats::add(
        &stats.posting_nodes_touched,
        d.path.entries().len() as u64 + 1,
    );
    Ok(d)
}

/// Post the index term describing the split that created `node` (whose low
/// key is `key`) into the parent level `level`. One atomic action.
pub fn post_index_term(
    tree: &PiTree,
    level: u8,
    key: &[u8],
    node: PageId,
    path: &SavedPath,
) -> StoreResult<PostOutcome> {
    let stats = tree.stats();
    let mut act = tree.store().txns.begin(tree.config().smo_identity);

    // ---- Search ---------------------------------------------------------------
    let d = locate_parent(tree, level, key, path)?;
    let parent_pin = d.page;
    let parent_guard = d.guard; // U mode

    // A move lock on the parent itself means its content is part of an
    // undecided transaction's structure change (an in-transaction root
    // growth): updating it now would break that transaction's page-oriented
    // undo. Defer — normal traversals will re-detect the unposted split.
    if tree
        .store()
        .txns
        .locks()
        .is_move_locked(&tree.page_lock(parent_pin.id()))
    {
        TreeStats::bump(&stats.postings_move_deferred);
        tree.recorder()
            .event(pitree_obs::EventKind::SmoPost, node.0, 3);
        act.commit()?;
        return Ok(PostOutcome::MoveDeferred);
    }

    // ---- Verify Split -----------------------------------------------------------
    // "If the index term has already been posted, the action is terminated."
    if parent_guard.page().keyed_probe(key).is_ok() {
        TreeStats::bump(&stats.postings_noop);
        tree.recorder()
            .event(pitree_obs::EventKind::SmoPost, node.0, 1);
        act.commit()?;
        return Ok(PostOutcome::AlreadyPosted);
    }
    // "Otherwise the child node with the largest index term key value
    // smaller than the KEY is S latched," and we walk its side chain to see
    // whether a sibling responsible for KEY's space still exists.
    let verify = {
        let pool = &tree.store().pool;
        let slot = match parent_guard.page().keyed_floor(key)? {
            Some(s) => s,
            None => {
                // No term at or below key: the parent's space was taken over
                // since (transient under CP); treat as not-postable here.
                TreeStats::bump(&stats.postings_node_gone);
                tree.recorder()
                    .event(pitree_obs::EventKind::SmoPost, node.0, 2);
                act.commit()?;
                return Ok(PostOutcome::NodeGone);
            }
        };
        let c_term = IndexTerm::read(parent_guard.page(), slot)?;
        let mut pin = pool.fetch(c_term.child)?;
        let mut g = pin.s();
        let mut hdr = NodeHeader::read(&g)?;
        loop {
            if hdr.contains(key) {
                // The chain reaches key's space without crossing a node whose
                // low bound equals key: posting target is gone — unless this
                // *is* the node (low == key).
                break if hdr.low.as_entry_key() == key {
                    Some((pin.id(), hdr.low.as_entry_key().to_vec()))
                } else {
                    None
                };
            }
            // Crossing this node's side pointer: §4.2.2 — a move lock means
            // the split is by an undecided transaction; do not post.
            if tree
                .store()
                .txns
                .locks()
                .is_move_locked(&tree.page_lock(pin.id()))
            {
                TreeStats::bump(&stats.postings_move_deferred);
                tree.recorder()
                    .event(pitree_obs::EventKind::SmoPost, node.0, 3);
                act.commit()?;
                return Ok(PostOutcome::MoveDeferred);
            }
            if !hdr.side.is_valid() {
                break None;
            }
            let next = pool.fetch(hdr.side)?;
            let ng = next.s(); // latch coupling (CP-safe; harmless under CNS)
            drop(g);
            pin = next;
            g = ng;
            hdr = NodeHeader::read(&g)?;
        }
    };
    let (post_pid, post_key) = match verify {
        Some(v) => v,
        None => {
            TreeStats::bump(&stats.postings_node_gone);
            tree.recorder()
                .event(pitree_obs::EventKind::SmoPost, node.0, 2);
            act.commit()?;
            return Ok(PostOutcome::NodeGone);
        }
    };
    debug_assert_eq!(post_key.as_slice(), key);
    // The verified address may differ from the scheduled one if the node
    // was replaced (the paper's "new ADDRESS" case).
    let _scheduled = node;

    // "The S latches are dropped. The U latch on NODE is promoted to an X
    // latch." (Child latches were dropped when `verify` went out of scope.)
    let pg: XGuard<'_, Page> = match parent_guard {
        Guarded::U(u) => u.promote(),
        Guarded::X(x) => x,
        Guarded::S(_) => unreachable!("posting descends with U at target"),
    };
    TreeStats::bump(&stats.upper_exclusive);

    // ---- Space Test + Update Node ---------------------------------------------
    let term = IndexTerm {
        key: post_key,
        child: post_pid,
        multi_parent: false,
    };
    let entry = term.to_entry();
    let mut cur_pin: PinnedPage<'_> = parent_pin;
    let mut cur_guard = pg;
    loop {
        if !node_full(&cur_guard, entry.len(), tree.config().max_index_entries) {
            act.apply(
                &cur_pin,
                &mut cur_guard,
                PageOp::KeyedInsert {
                    bytes: entry.clone(),
                },
            )?;
            break;
        }
        // Split NODE within this action; "an index posting operation is
        // scheduled for the parent of NODE" (separate action) unless NODE
        // was the root, which grows instead.
        let cur_level = NodeHeader::read(&cur_guard)?.level;
        TreeStats::bump(&stats.upper_exclusive); // the split's new node
        match split_node(tree, &mut act, &cur_pin, &mut cur_guard)? {
            SplitCandidates::Normal {
                new_pin,
                new_guard,
                split_key,
                new_pid,
            } => {
                if tree
                    .completions()
                    .push(crate::completion::Completion::Post {
                        level: cur_level + 1,
                        key: split_key.clone(),
                        node: new_pid,
                        path: Box::new(path.above(cur_level)),
                    })
                {
                    TreeStats::bump(&stats.postings_scheduled);
                }
                // "Then check which resulting node has a directly contained
                // space that includes KEY, and make that NODE."
                if key >= split_key.as_slice() {
                    cur_pin = new_pin;
                    cur_guard = new_guard;
                }
                // else: keep the old node (still latched). The other node's
                // guard drops here, per "release the X latch on the other
                // node, but retain the X latch on NODE".
            }
            SplitCandidates::Grew { n1, n2, split_key } => {
                // "This can require descending one more level ... should
                // NODE have been the root."
                if key >= split_key.as_slice() {
                    cur_pin = n2.0;
                    cur_guard = n2.1;
                } else {
                    cur_pin = n1.0;
                    cur_guard = n1.1;
                }
            }
        }
    }
    drop(cur_guard);
    drop(cur_pin);
    act.commit()?;
    TreeStats::bump(&stats.postings_done);
    tree.recorder()
        .event(pitree_obs::EventKind::SmoPost, node.0, 0);
    Ok(PostOutcome::Posted)
}
