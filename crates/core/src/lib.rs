#![warn(missing_docs)]
//! # pitree — Access Method Concurrency with Recovery
//!
//! A from-scratch reproduction of **Lomet & Salzberg, "Access Method
//! Concurrency with Recovery" (SIGMOD 1992)**: the **Π-tree**, a
//! generalization of the B-link tree whose structure changes are decomposed
//! into short, independent **atomic actions**, each leaving the tree
//! well-formed, so that
//!
//! * searchers can run through intermediate states and lazily complete them
//!   (§5.1),
//! * structure changes above the leaf never execute inside user
//!   transactions (§5),
//! * crash recovery needs no tree-specific machinery (§1 point 4), and
//! * the protocol works with a family of recovery methods — page-oriented
//!   UNDO with move locks, or logical UNDO (§4.2) — and of search
//!   structures (B-link here; TSB-tree and hB-tree in sibling crates).
//!
//! ## Quick start
//!
//! ```
//! use pitree::{CrashableStore, PiTree, PiTreeConfig};
//!
//! let store = CrashableStore::create(256, 100_000).unwrap();
//! let tree = PiTree::create(store.store.clone(), 1, PiTreeConfig::default()).unwrap();
//! let mut txn = tree.begin();
//! tree.insert(&mut txn, b"hello", b"world").unwrap();
//! txn.commit().unwrap();
//! assert_eq!(tree.get_unlocked(b"hello").unwrap(), Some(b"world".to_vec()));
//! assert!(tree.validate().unwrap().is_well_formed());
//! ```

pub mod bound;
pub mod completion;
pub mod config;
pub mod consolidate;
pub mod node;
pub mod post;
pub mod split;
pub mod stats;
pub mod store;
pub mod traverse;
pub mod tree;
pub mod undo;
pub mod wellformed;

pub use bound::KeyBound;
pub use completion::{Completion, CompletionQueue};
pub use config::{ConsolidationPolicy, DeallocPolicy, MoveGranule, PiTreeConfig, UndoPolicy};
pub use consolidate::{consolidate, ConsolidateOutcome};
pub use node::{BoundRef, HeaderRef, IndexTerm, NodeHeader, NodeRef};
pub use post::{post_index_term, PostOutcome};
pub use stats::TreeStats;
pub use store::{CrashableStore, Store};
pub use traverse::{PathEntry, SavedPath};
pub use tree::PiTree;
pub use wellformed::{check, WellFormedReport};
