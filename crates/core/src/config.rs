//! Π-tree configuration: the policy axes the paper leaves open.
//!
//! The paper's protocol is parametric in three dimensions, all of which are
//! first-class here so the experiments can compare them:
//!
//! * **Consolidation** (§5.2): disabled (the CNS invariant — nodes are
//!   immortal, one latch suffices during traversal) or enabled (the CP
//!   invariant — latch coupling, verified postings), with the two
//!   de-allocation treatments of §5.2.2.
//! * **UNDO policy** (§4.2): page-oriented (undo happens on the same page,
//!   requiring move locks and sometimes in-transaction leaf splits) or
//!   logical (undo re-traverses; every SMO is an independent action).
//! * **Atomic-action identity** (§4.3.2): separate transaction, system
//!   transaction, or nested top action.

use pitree_wal::ActionIdentity;

/// How node de-allocation is treated (§5.2.2). Only meaningful when
/// consolidation is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeallocPolicy {
    /// §5.2.2(a): a node's state identifier is unchanged by de-allocation.
    /// Saved paths cannot be trusted, so re-traversals start at the root
    /// (which never moves and is never de-allocated).
    NotAnUpdate,
    /// §5.2.2(b): de-allocation bumps the node's state identifier and leaves
    /// a freed tombstone, at the cost of a log record; re-traversals climb
    /// the saved path from the deepest unchanged node.
    IsAnUpdate,
}

/// Whether under-utilized nodes are consolidated (§3.3, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsolidationPolicy {
    /// The CNS invariant: "a node, once responsible for a key subspace, is
    /// always responsible for the subspace." One latch at a time during
    /// traversal; postings never verify child existence.
    Disabled,
    /// The CP invariant: nodes may be de-allocated. Latch coupling during
    /// traversal; postings re-verify that the described node still exists.
    Enabled {
        /// How de-allocation interacts with state identifiers.
        dealloc: DeallocPolicy,
    },
}

impl ConsolidationPolicy {
    /// Whether latch coupling is required during traversal (CP invariant).
    pub fn couples_latches(self) -> bool {
        matches!(self, ConsolidationPolicy::Enabled { .. })
    }
}

/// Granule at which move locks are taken (§4.2.2: "a move lock can be
/// realized with a set of individual record locks, a page-level lock, a
/// key-range lock, or even a lock on the whole relation. ... If the move
/// lock is implemented using a lock whose granule is a node size or larger,
/// once granted, no update activity can alter the locking required.").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveGranule {
    /// One lock per node page (the default: maximal concurrency for a
    /// "node size or larger" granule).
    Page,
    /// One lock on the whole relation/tree: simplest, least concurrent.
    Relation,
}

/// Which UNDO discipline the recovery method uses (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UndoPolicy {
    /// Undo of a record update must happen on the page that was updated.
    /// Record moves need **move locks**, and a leaf split triggered by a
    /// transaction that already updated a to-be-moved record must run
    /// *inside* that transaction (§4.2.1).
    PageOriented,
    /// Undo re-locates the record through the tree (non-page-oriented).
    /// Every structure change, including data-node splits, runs as an
    /// independent atomic action (§6).
    Logical,
}

/// Full tree configuration.
#[derive(Debug, Clone, Copy)]
pub struct PiTreeConfig {
    /// Consolidation policy (CNS vs CP).
    pub consolidation: ConsolidationPolicy,
    /// UNDO policy of the surrounding recovery method.
    pub undo: UndoPolicy,
    /// How SMO atomic actions identify themselves to recovery.
    pub smo_identity: ActionIdentity,
    /// Move-lock granularity under page-oriented UNDO (§4.2.2).
    pub move_granule: MoveGranule,
    /// Cap on keyed entries per leaf node (on top of the byte-space limit);
    /// small values force deep trees in tests.
    pub max_leaf_entries: usize,
    /// Cap on index terms per index node.
    pub max_index_entries: usize,
    /// Consolidation trigger: schedule when a node's entry count falls
    /// below this fraction of the applicable cap.
    pub min_utilization: f64,
    /// Run scheduled completion actions inline at operation end (simplest
    /// for tests); when false the caller drives [`crate::PiTree::run_completions`].
    pub auto_complete: bool,
}

impl Default for PiTreeConfig {
    fn default() -> Self {
        PiTreeConfig {
            consolidation: ConsolidationPolicy::Enabled {
                dealloc: DeallocPolicy::IsAnUpdate,
            },
            undo: UndoPolicy::Logical,
            smo_identity: ActionIdentity::SystemTransaction,
            move_granule: MoveGranule::Page,
            max_leaf_entries: usize::MAX,
            max_index_entries: usize::MAX,
            min_utilization: 0.2,
            auto_complete: true,
        }
    }
}

impl PiTreeConfig {
    /// A configuration with small nodes, for tests that want deep trees
    /// from few keys.
    pub fn small_nodes(leaf: usize, index: usize) -> PiTreeConfig {
        PiTreeConfig {
            max_leaf_entries: leaf,
            max_index_entries: index,
            ..Default::default()
        }
    }

    /// The classic B-link configuration: no consolidation (CNS).
    pub fn cns() -> PiTreeConfig {
        PiTreeConfig {
            consolidation: ConsolidationPolicy::Disabled,
            ..Default::default()
        }
    }

    /// Page-oriented UNDO (move locks, possible in-transaction splits).
    pub fn page_oriented(mut self) -> PiTreeConfig {
        self.undo = UndoPolicy::PageOriented;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_cp_logical() {
        let c = PiTreeConfig::default();
        assert!(c.consolidation.couples_latches());
        assert_eq!(c.undo, UndoPolicy::Logical);
        assert!(c.auto_complete);
    }

    #[test]
    fn cns_does_not_couple() {
        assert!(!PiTreeConfig::cns().consolidation.couples_latches());
    }

    #[test]
    fn builders() {
        let c = PiTreeConfig::small_nodes(4, 5).page_oriented();
        assert_eq!(c.max_leaf_entries, 4);
        assert_eq!(c.max_index_entries, 5);
        assert_eq!(c.undo, UndoPolicy::PageOriented);
    }
}
