//! The Π-tree public API: a B-link-tree instantiation of the paper's
//! protocol.
//!
//! All structure changes are decomposed into atomic actions (§5): record
//! updates happen in the caller's transaction; node splits happen in an
//! independent atomic action (or inside the transaction when page-oriented
//! UNDO forces it, §4.2.1); index-term postings and node consolidations are
//! always independent actions scheduled through the completion queue (§5.1).
//!
//! Database locking follows §4.1.2/§4.2.2: record updates take an IX page
//! lock plus an X key lock, readers take an S key lock only (readers are
//! compatible with move locks), and all lock acquisition under a latch uses
//! `try_lock` — on conflict the latch is released before blocking, then the
//! operation restarts (the **No-Wait Rule**).

use crate::completion::{Completion, CompletionQueue};
use crate::config::{ConsolidationPolicy, PiTreeConfig, UndoPolicy};
use crate::node::{node_full, utilization, Guarded, HeaderRef, NodeHeader};
use crate::stats::TreeStats;
use crate::store::Store;
use crate::undo::{TAG_UNDO_DELETE, TAG_UNDO_INSERT, TAG_UNDO_UPDATE};
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, PageOp, StoreError, StoreResult};
use pitree_txnlock::{LockError, LockMode, LockName, Txn};
use pitree_wal::ActionIdentity;
use std::sync::Arc;

/// Magic marking tree-registry records on the meta page.
const TREE_META_MAGIC: u32 = 0x5049_5452; // "PITR"

/// A Π-tree (B-link instantiation) over a [`Store`].
pub struct PiTree {
    store: Arc<Store>,
    cfg: PiTreeConfig,
    tree_id: u32,
    root: PageId,
    completions: Arc<CompletionQueue>,
    stats: Arc<TreeStats>,
}

impl std::fmt::Debug for PiTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiTree").finish_non_exhaustive()
    }
}

impl PiTree {
    // ---- construction --------------------------------------------------------

    /// Create a new tree with id `tree_id`: allocate its (fixed, immortal)
    /// root page and register it on the meta page. Forces the log so the
    /// tree's existence survives any crash.
    pub fn create(store: Arc<Store>, tree_id: u32, cfg: PiTreeConfig) -> StoreResult<PiTree> {
        let mut act = store.txns.begin(ActionIdentity::Transaction);
        let root = {
            let mut alloc = store.space.lock_alloc();
            let (root, bm_pid, bit) = alloc.find_free(&store.pool)?;
            let bm = store.pool.fetch(bm_pid)?;
            let mut bmg = bm.x();
            act.apply(&bm, &mut bmg, PageOp::SetBit { bit })?;
            root
        };
        {
            let page = store.pool.fetch_or_create(root, PageType::Free)?;
            let mut g = page.x();
            act.apply(&page, &mut g, PageOp::Format { ty: PageType::Node })?;
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: NodeHeader::new_root_leaf().encode(),
                },
            )?;
        }
        {
            let meta = store.pool.fetch(PageId(0))?;
            let mut g = meta.x();
            let slot = g.slot_count();
            let mut rec = Vec::with_capacity(16);
            rec.extend_from_slice(&TREE_META_MAGIC.to_le_bytes());
            rec.extend_from_slice(&tree_id.to_le_bytes());
            rec.extend_from_slice(&root.0.to_le_bytes());
            act.apply(&meta, &mut g, PageOp::InsertSlot { slot, bytes: rec })?;
        }
        act.commit()?;
        let stats = Arc::new(TreeStats::new(store.recorder()));
        Ok(PiTree {
            store,
            cfg,
            tree_id,
            root,
            completions: Arc::new(CompletionQueue::default()),
            stats,
        })
    }

    /// Open an existing tree by id, reading its root from the meta page.
    pub fn open(store: Arc<Store>, tree_id: u32, cfg: PiTreeConfig) -> StoreResult<PiTree> {
        let root = {
            let meta = store.pool.fetch(PageId(0))?;
            let g = meta.s();
            let mut found = None;
            for slot in 1..g.slot_count() {
                let rec = g.get(slot)?;
                if rec.len() == 16
                    && u32::from_le_bytes(rec[0..4].try_into().unwrap()) == TREE_META_MAGIC
                    && u32::from_le_bytes(rec[4..8].try_into().unwrap()) == tree_id
                {
                    found = Some(PageId(u64::from_le_bytes(rec[8..16].try_into().unwrap())));
                    break;
                }
            }
            found.ok_or_else(|| StoreError::Corrupt(format!("tree {tree_id} not registered")))?
        };
        let stats = Arc::new(TreeStats::new(store.recorder()));
        Ok(PiTree {
            store,
            cfg,
            tree_id,
            root,
            completions: Arc::new(CompletionQueue::default()),
            stats,
        })
    }

    /// Open the tree and run full crash recovery (redo + undo, with this
    /// tree's logical-undo handler registered). The usual restart sequence.
    pub fn recover(
        store: Arc<Store>,
        tree_id: u32,
        cfg: PiTreeConfig,
    ) -> StoreResult<(PiTree, pitree_wal::RecoveryStats)> {
        // Redo must repeat history before the tree is readable; the meta
        // page itself may need redo, so run a redo-only pass first by
        // deferring `open` until after recovery. Logical undo needs an open
        // tree, which needs the meta page — recover in two steps: physical
        // redo happens inside `recover` before any undo, and the handler
        // opens lazily.
        let handler = crate::undo::DeferredHandler::new(Arc::clone(&store), tree_id, cfg);
        let stats = pitree_wal::recover(&store.pool, &store.log, Some(&handler))?;
        let tree = PiTree::open(store, tree_id, cfg)?;
        Ok((tree, stats))
    }

    /// Open the tree with **instant restart**: analysis + undo only, then
    /// serve traffic immediately, with redo running per page at first pin.
    /// Returns the tree plus the [`pitree_wal::InstantRecovery`] plan —
    /// call [`pitree_wal::InstantRecovery::drive`] on background threads to
    /// finish redo while the tree serves (or let traffic drain it).
    ///
    /// Sound for the Π-tree by §4.3.2: an interrupted structure change
    /// leaves the tree well-formed but intermediate, and normal traffic
    /// detects and completes it lazily — so serving against a partially
    /// redone store is just serving an older well-formed state of each
    /// not-yet-touched page. See `RECOVERY.md` for the full argument.
    pub fn recover_instant(
        store: Arc<Store>,
        tree_id: u32,
        cfg: PiTreeConfig,
    ) -> StoreResult<(
        PiTree,
        Arc<pitree_wal::InstantRecovery>,
        pitree_wal::RecoveryStats,
    )> {
        let handler = crate::undo::DeferredHandler::new(Arc::clone(&store), tree_id, cfg);
        let (plan, stats) = pitree_wal::start_instant(&store.pool, &store.log, Some(&handler))?;
        // `open` reads the meta page, which redoes it on demand if needed.
        let tree = PiTree::open(store, tree_id, cfg)?;
        Ok((tree, plan, stats))
    }

    // ---- accessors ------------------------------------------------------------

    /// The underlying store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The tree's configuration.
    pub fn config(&self) -> &PiTreeConfig {
        &self.cfg
    }

    /// This tree's id (namespaces its lock names).
    pub fn tree_id(&self) -> u32 {
        self.tree_id
    }

    /// The fixed root page ("we ensure that the root does not move and is
    /// never de-allocated", §5.2.2).
    pub fn root_pid(&self) -> PageId {
        self.root
    }

    /// Operation counters.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// The store's observability recorder (for `op.*` latency histograms,
    /// SMO events, and `Registry::report`).
    pub fn recorder(&self) -> &pitree_obs::Recorder {
        self.store.recorder()
    }

    /// Shared handle to the counters (for commit hooks).
    pub(crate) fn stats_arc(&self) -> Arc<TreeStats> {
        Arc::clone(&self.stats)
    }

    /// Shared handle to the completion queue (for commit hooks).
    pub(crate) fn completions_arc(&self) -> Arc<CompletionQueue> {
        Arc::clone(&self.completions)
    }

    /// The completion queue (§5.1).
    pub fn completions(&self) -> &CompletionQueue {
        &self.completions
    }

    /// Tree height (levels), read from the root.
    pub fn height(&self) -> StoreResult<u8> {
        let page = self.store.pool.fetch(self.root)?;
        let g = page.s();
        Ok(HeaderRef::read(&g)?.level() + 1)
    }

    /// Begin a user database transaction on this tree's store.
    pub fn begin(&self) -> Txn<'_> {
        self.store.txns.begin(ActionIdentity::Transaction)
    }

    /// The lock name used for page-scope locking (updater intent and move
    /// locks): per-page, or the whole relation, per
    /// [`crate::config::MoveGranule`].
    pub fn page_lock(&self, pid: PageId) -> LockName {
        match self.cfg.move_granule {
            crate::config::MoveGranule::Page => LockName::Page(pid),
            crate::config::MoveGranule::Relation => LockName::Tree(self.tree_id),
        }
    }

    /// The lock name of a record key.
    pub fn key_lock(&self, key: &[u8]) -> LockName {
        let mut name = Vec::with_capacity(4 + key.len());
        name.extend_from_slice(&self.tree_id.to_le_bytes());
        name.extend_from_slice(key);
        LockName::Key(name)
    }

    // ---- reads ----------------------------------------------------------------

    /// Transactional point read: S record lock (held to end of transaction)
    /// plus latches. Readers take no page lock — share-mode access is
    /// compatible with move locks (§4.2.2).
    pub fn get(&self, txn: &Txn<'_>, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let name = self.key_lock(key);
        loop {
            let d = self.descend(key, 0, false, true)?;
            match txn.try_lock(&name, LockMode::S) {
                Ok(()) => {
                    // Single in-place probe; the only allocation is the
                    // returned value.
                    let out = d
                        .guard
                        .page()
                        .keyed_lookup(key)
                        .map(|(_, e)| Page::entry_payload(e).to_vec());
                    drop(d);
                    self.maybe_autocomplete()?;
                    return Ok(out);
                }
                Err(LockError::WouldBlock) => {
                    drop(d); // No-Wait Rule: release the latch, then wait.
                    TreeStats::bump(&self.stats.no_wait_restarts);
                    txn.lock(&name, LockMode::S).map_err(lock_err)?;
                    continue;
                }
                Err(e) => return Err(lock_err(e)),
            }
        }
    }

    /// Latch-only point read (no database locks). Used by benchmarks and
    /// internal verification.
    pub fn get_unlocked(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let d = self.descend(key, 0, false, true)?;
        let out = d
            .guard
            .page()
            .keyed_lookup(key)
            .map(|(_, e)| Page::entry_payload(e).to_vec());
        drop(d);
        self.maybe_autocomplete()?;
        Ok(out)
    }

    /// Latch-only range scan of `[from, to)`, walking the leaf side chain.
    /// Allocation amortizes to the emitted pairs: the output is pre-reserved
    /// from each node's entry count, keys are compared in place, and the
    /// high-bound test never re-encodes `to`.
    pub fn scan(&self, from: &[u8], to: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let coupling = self.cfg.consolidation.couples_latches();
        let pool = &self.store.pool;
        let d = self.descend(from, 0, false, true)?;
        let mut cur = d.page;
        let mut g = d.guard;
        loop {
            // Emit this node's entries and read the continuation decision
            // under one scoped borrow of the guard.
            let next = {
                let page = g.page();
                out.reserve(page.entry_count() as usize);
                for slot in 1..page.slot_count() {
                    let k = page.entry_key_at(slot);
                    if k >= from && k < to {
                        out.push((k.to_vec(), page.entry_payload_at(slot).to_vec()));
                    }
                }
                let h = HeaderRef::read(page)?;
                // Continue while the next node's space can still intersect
                // [from, to): i.e. while high < to.
                if h.high_ge(to) || !h.side().is_valid() {
                    None
                } else {
                    Some(h.side())
                }
            };
            let Some(side) = next else { break };
            let sib = pool.fetch(side)?;
            let sg = if coupling {
                let t = Guarded::S(sib.s());
                drop(g);
                t
            } else {
                drop(g);
                Guarded::S(sib.s())
            };
            cur = sib;
            g = sg;
        }
        drop(g);
        drop(cur);
        Ok(out)
    }

    /// Transactional range scan of `[from, to)`: S record locks on every
    /// returned key (held to end of transaction — repeatable reads of the
    /// result set; phantom protection would need key-range locks, which the
    /// paper only mentions in passing).
    pub fn scan_locked(
        &self,
        txn: &Txn<'_>,
        from: &[u8],
        to: &[u8],
    ) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        loop {
            let out = self.scan(from, to)?;
            // Lock the result set with the No-Wait discipline: the latch-free
            // scan above re-runs if any lock needs a blocking wait (the set
            // may have changed while waiting).
            let mut must_retry = false;
            for (k, _) in &out {
                match txn.try_lock(&self.key_lock(k), LockMode::S) {
                    Ok(()) => {}
                    Err(LockError::WouldBlock) => {
                        TreeStats::bump(&self.stats.no_wait_restarts);
                        txn.lock(&self.key_lock(k), LockMode::S).map_err(lock_err)?;
                        must_retry = true;
                        break;
                    }
                    Err(e) => return Err(lock_err(e)),
                }
            }
            if !must_retry {
                // Re-validate under the locks: values cannot have changed
                // (X requires our S to drain), but keys may have appeared.
                return Ok(out);
            }
        }
    }

    // ---- writes ---------------------------------------------------------------

    /// Transactional upsert. Returns `true` if the key was new, `false` if
    /// an existing record was replaced.
    ///
    /// Locking: IX on the leaf page (so move locks conflict, §4.2.2) + X on
    /// the key, both to end of transaction. Splitting follows §4.2.1: under
    /// logical UNDO (and under page-oriented UNDO when this transaction has
    /// not updated this leaf) the split is an independent atomic action;
    /// otherwise it runs inside the transaction under a move lock, with the
    /// index-term posting deferred to commit.
    pub fn insert(&self, txn: &mut Txn<'_>, key: &[u8], value: &[u8]) -> StoreResult<bool> {
        let entry = Page::make_entry(key, value);
        let key_name = self.key_lock(key);
        loop {
            let d = self.descend(key, 0, true, true)?;
            let leaf_pid = d.page.id();
            let page_name = self.page_lock(leaf_pid);

            // Split first if needed, before taking record locks, so an
            // independent split's move lock cannot collide with our own page
            // lock (§4.2.1: the split happens "independent of and before T").
            let exists = d.guard.page().keyed_probe(key).is_ok();
            if !exists && node_full(d.guard.page(), entry.len(), self.cfg.max_leaf_entries) {
                self.split_for_insert(txn, d, key)?;
                continue;
            }

            // No-Wait record locking.
            let locked = txn
                .try_lock(&page_name, LockMode::IX)
                .and_then(|_| txn.try_lock(&key_name, LockMode::X));
            match locked {
                Ok(()) => {}
                Err(LockError::WouldBlock) => {
                    drop(d);
                    TreeStats::bump(&self.stats.no_wait_restarts);
                    txn.lock(&page_name, LockMode::IX).map_err(lock_err)?;
                    txn.lock(&key_name, LockMode::X).map_err(lock_err)?;
                    continue;
                }
                Err(e) => return Err(lock_err(e)),
            }

            // Re-check under the locks we now hold (state can only have
            // changed if we just latched a different incarnation — the
            // guard was held across the checks above, so `exists` and the
            // space check are still valid).
            let mut g = d.guard.promote().into_x();
            let created = if exists {
                let old = g.keyed_lookup(key).unwrap().1.to_vec();
                match self.cfg.undo {
                    UndoPolicy::PageOriented => txn.apply(
                        &d.page,
                        &mut g,
                        PageOp::KeyedUpdate {
                            bytes: entry.clone(),
                        },
                    )?,
                    UndoPolicy::Logical => txn.apply_logical(
                        &d.page,
                        &mut g,
                        PageOp::KeyedUpdate {
                            bytes: entry.clone(),
                        },
                        TAG_UNDO_UPDATE,
                        old,
                    )?,
                };
                false
            } else {
                match self.cfg.undo {
                    UndoPolicy::PageOriented => txn.apply(
                        &d.page,
                        &mut g,
                        PageOp::KeyedInsert {
                            bytes: entry.clone(),
                        },
                    )?,
                    UndoPolicy::Logical => txn.apply_logical(
                        &d.page,
                        &mut g,
                        PageOp::KeyedInsert {
                            bytes: entry.clone(),
                        },
                        TAG_UNDO_INSERT,
                        key.to_vec(),
                    )?,
                };
                true
            };
            drop(g);
            drop(d.page);
            self.maybe_autocomplete()?;
            return Ok(created);
        }
    }

    /// Transactional delete. Returns `true` if the key existed.
    pub fn delete(&self, txn: &mut Txn<'_>, key: &[u8]) -> StoreResult<bool> {
        let key_name = self.key_lock(key);
        loop {
            let d = self.descend(key, 0, true, true)?;
            let leaf_pid = d.page.id();
            let page_name = self.page_lock(leaf_pid);
            let locked = txn
                .try_lock(&page_name, LockMode::IX)
                .and_then(|_| txn.try_lock(&key_name, LockMode::X));
            match locked {
                Ok(()) => {}
                Err(LockError::WouldBlock) => {
                    drop(d);
                    TreeStats::bump(&self.stats.no_wait_restarts);
                    txn.lock(&page_name, LockMode::IX).map_err(lock_err)?;
                    txn.lock(&key_name, LockMode::X).map_err(lock_err)?;
                    continue;
                }
                Err(e) => return Err(lock_err(e)),
            }

            if d.guard.page().keyed_probe(key).is_err() {
                drop(d);
                self.maybe_autocomplete()?;
                return Ok(false);
            }
            let mut g = d.guard.promote().into_x();
            let old = g.keyed_lookup(key).unwrap().1.to_vec();
            match self.cfg.undo {
                UndoPolicy::PageOriented => {
                    txn.apply(&d.page, &mut g, PageOp::KeyedRemove { key: key.to_vec() })?
                }
                UndoPolicy::Logical => txn.apply_logical(
                    &d.page,
                    &mut g,
                    PageOp::KeyedRemove { key: key.to_vec() },
                    TAG_UNDO_DELETE,
                    old,
                )?,
            };
            // Consolidation trigger (§3.3): schedule when under-utilized.
            let low_key = HeaderRef::read(&g)?.low_entry_key().to_vec();
            let underutilized =
                utilization(&g, self.cfg.max_leaf_entries) < self.cfg.min_utilization;
            drop(g);
            drop(d.page);
            if underutilized
                && matches!(self.cfg.consolidation, ConsolidationPolicy::Enabled { .. })
            {
                self.completions.push(Completion::Consolidate {
                    level: 0,
                    key: low_key,
                });
            }
            self.maybe_autocomplete()?;
            return Ok(true);
        }
    }

    /// Split the leaf in `d` on behalf of `txn`'s blocked insert; see
    /// [`crate::split`] for the policy split (independent action vs inside
    /// the transaction).
    fn split_for_insert(
        &self,
        txn: &mut Txn<'_>,
        d: crate::traverse::DescentTarget<'_>,
        key: &[u8],
    ) -> StoreResult<()> {
        crate::split::split_leaf_for_insert(self, txn, d, key)
    }

    // ---- maintenance ------------------------------------------------------------

    /// Drain the completion queue, executing each completing atomic action
    /// (index-term postings, consolidations). Returns how many completions
    /// were executed. New completions scheduled by the executed ones are
    /// processed too, up to a budget.
    pub fn run_completions(&self) -> StoreResult<usize> {
        let mut done = 0;
        // Drain only what was queued at entry: completions that defer (e.g.
        // on a move lock) re-queue themselves and must not spin within this
        // call — they run on a later pass, after the blocker resolves.
        let batch = self.completions.len();
        for _ in 0..batch {
            let Some(c) = self.completions.pop() else {
                break;
            };
            match c {
                Completion::Post {
                    level,
                    key,
                    node,
                    path,
                } => {
                    crate::post::post_index_term(self, level, &key, node, &path)?;
                }
                Completion::Consolidate { level, key } => {
                    crate::consolidate::consolidate(self, level, &key)?;
                }
            }
            done += 1;
        }
        Ok(done)
    }

    fn maybe_autocomplete(&self) -> StoreResult<()> {
        if self.cfg.auto_complete && !self.completions.is_empty() {
            self.run_completions()?;
        }
        Ok(())
    }

    /// Check the well-formedness invariants of §2.1.3. See
    /// [`crate::wellformed`].
    pub fn validate(&self) -> StoreResult<crate::wellformed::WellFormedReport> {
        crate::wellformed::check(self)
    }
}

/// Convert a lock failure into a store error at the API boundary. The
/// requester is the deadlock victim; callers abort the transaction and
/// retry.
pub(crate) fn lock_err(e: LockError) -> StoreError {
    match e {
        LockError::Deadlock => StoreError::LockFailed { deadlock: true },
        LockError::Timeout => StoreError::LockFailed { deadlock: false },
        LockError::WouldBlock => {
            StoreError::Corrupt("WouldBlock escaped the No-Wait retry loop".into())
        }
    }
}
