//! Node splitting (§3.2) and root growth (§5.3 Space Test), as atomic
//! actions.
//!
//! A split follows the §3.2.1 steps exactly: allocate, partition the
//! directly-contained space, move the delegated entries, install the sibling
//! term, and *schedule* (never perform) the index-term posting for the next
//! level — posting is a separate atomic action (§5).
//!
//! Leaf splits triggered by an insert follow §4.2.1:
//! * logical UNDO — always an independent atomic action;
//! * page-oriented UNDO, transaction has not updated this leaf — an
//!   independent action run "independent of and before T", under a move
//!   lock held for the action's duration;
//! * page-oriented UNDO, transaction already updated this leaf — the split
//!   runs *inside* the transaction, the move lock is held to end of
//!   transaction, and the posting is deferred to commit (§4.2.2).

use crate::bound::KeyBound;
use crate::completion::Completion;
use crate::node::{IndexTerm, NodeHeader};
use crate::stats::TreeStats;
use crate::traverse::DescentTarget;
use crate::tree::{lock_err, PiTree};
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::latch::XGuard;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, PageOp, StoreError, StoreResult};
use pitree_txnlock::{LockError, LockMode, Txn};

/// What a split produced. For a non-root split the caller receives the new
/// sibling (still X-latched); for a root split ("Grew") both new children —
/// their index terms were already posted into the root within the same
/// action, so nothing is left to schedule.
pub(crate) enum SplitCandidates<'a> {
    /// Ordinary split: `new` is the sibling that received the delegated
    /// upper subspace.
    Normal {
        /// Pin on the new node.
        new_pin: PinnedPage<'a>,
        /// X guard on the new node.
        new_guard: XGuard<'a, Page>,
        /// The partition key: the new node's low bound.
        split_key: Vec<u8>,
        /// The new node's id.
        new_pid: PageId,
    },
    /// The node was the root: its contents moved to `n1`, which was then
    /// split into `n1`/`n2`, and both index terms were posted to the root
    /// inline (§5.3's "pair of index terms").
    Grew {
        /// The left child (old contents, lower subspace).
        n1: (PinnedPage<'a>, XGuard<'a, Page>),
        /// The right child (delegated upper subspace).
        n2: (PinnedPage<'a>, XGuard<'a, Page>),
        /// The partition key between them.
        split_key: Vec<u8>,
    },
}

/// Allocate a fresh page through `chain`, logging the space-map bit. The
/// allocation latch is ordered last (§4.1.1) and is held only across the
/// find + logged set.
pub(crate) fn alloc_page<'a>(tree: &'a PiTree, chain: &mut Txn<'_>) -> StoreResult<PinnedPage<'a>> {
    let store = tree.store();
    let pid = {
        // pitree-lint: allow(no-wait) allocation latch ranks last in the §4.1.1 order (the flow graph proves no inverse alloc->page edge), so blocking here cannot deadlock a completion path
        let mut alloc = store.space.lock_alloc();
        let (pid, bm_pid, bit) = alloc.find_free(&store.pool)?;
        let bm = store.pool.fetch(bm_pid)?;
        let mut bmg = bm.x();
        chain.apply(&bm, &mut bmg, PageOp::SetBit { bit })?;
        pid
    };
    store.pool.fetch_or_create(pid, PageType::Free)
}

/// The raw §3.2.1 split of a non-root node: partition at the middle entry,
/// move the upper half to a freshly allocated sibling, install the sibling
/// term. Returns the new node (X-latched) and the partition key.
fn raw_split<'a>(
    tree: &'a PiTree,
    chain: &mut Txn<'_>,
    page: &PinnedPage<'a>,
    g: &mut XGuard<'a, Page>,
) -> StoreResult<(PinnedPage<'a>, XGuard<'a, Page>, Vec<u8>, PageId)> {
    let hdr = NodeHeader::read(g)?;
    let n = g.entry_count();
    if n < 2 {
        return Err(StoreError::Corrupt(format!(
            "cannot split node {} with {n} entries",
            page.id()
        )));
    }
    // Step 2: partition the directly-contained subspace at the middle entry.
    let mid_slot = 1 + n / 2;
    let split_key = Page::entry_key(g.get(mid_slot)?).to_vec();

    // Step 1: allocate space for the new node.
    let new_pin = alloc_page(tree, chain)?;
    let new_pid = new_pin.id();
    let mut ng = new_pin.x();
    chain.apply(&new_pin, &mut ng, PageOp::Format { ty: PageType::Node })?;
    let new_hdr = NodeHeader {
        level: hdr.level,
        side: hdr.side, // the new node inherits the old sibling term (§3.2.1 step 3)
        low: KeyBound::Key(split_key.clone()),
        high: hdr.high.clone(),
    };
    chain.apply(
        &new_pin,
        &mut ng,
        PageOp::InsertSlot {
            slot: 0,
            bytes: new_hdr.encode(),
        },
    )?;

    // Steps 3/4: move the delegated entries (records or index terms alike).
    let moved: Vec<Vec<u8>> = (mid_slot..=n)
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &moved {
        chain.apply(&new_pin, &mut ng, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    for e in &moved {
        chain.apply(
            page,
            g,
            PageOp::KeyedRemove {
                key: Page::entry_key(e).to_vec(),
            },
        )?;
    }

    // Step 5: the sibling term — side pointer plus delegation boundary.
    let old_hdr = NodeHeader {
        level: hdr.level,
        side: new_pid,
        low: hdr.low,
        high: KeyBound::Key(split_key.clone()),
    };
    chain.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: old_hdr.encode(),
        },
    )?;
    TreeStats::bump(&tree.stats().splits);
    tree.recorder()
        .event(pitree_obs::EventKind::SmoSplit, page.id().0, new_pid.0);
    Ok((new_pin, ng, split_key, new_pid))
}

/// Split `page` within `chain`. Handles the root case by growing the tree
/// ("the root does not move", §5.2.2): root contents move to a new node n1,
/// n1 is split into n1/n2, and both index terms are posted to the root in
/// the same atomic action (§5.3).
pub(crate) fn split_node<'a>(
    tree: &'a PiTree,
    chain: &mut Txn<'_>,
    page: &PinnedPage<'a>,
    g: &mut XGuard<'a, Page>,
) -> StoreResult<SplitCandidates<'a>> {
    if page.id() != tree.root_pid() {
        let (new_pin, new_guard, split_key, new_pid) = raw_split(tree, chain, page, g)?;
        return Ok(SplitCandidates::Normal {
            new_pin,
            new_guard,
            split_key,
            new_pid,
        });
    }

    // ---- root growth ---------------------------------------------------------
    let hdr = NodeHeader::read(g)?;
    debug_assert!(!hdr.side.is_valid(), "the root never has a side pointer");
    let n1_pin = alloc_page(tree, chain)?;
    let n1_pid = n1_pin.id();
    let mut n1g = n1_pin.x();
    chain.apply(&n1_pin, &mut n1g, PageOp::Format { ty: PageType::Node })?;
    let n1_hdr = NodeHeader {
        level: hdr.level,
        side: PageId::INVALID,
        low: KeyBound::NegInf,
        high: KeyBound::PosInf,
    };
    chain.apply(
        &n1_pin,
        &mut n1g,
        PageOp::InsertSlot {
            slot: 0,
            bytes: n1_hdr.encode(),
        },
    )?;

    // Move the root's contents wholesale into n1.
    let all: Vec<Vec<u8>> = (1..g.slot_count())
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &all {
        chain.apply(&n1_pin, &mut n1g, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    for e in &all {
        chain.apply(
            page,
            g,
            PageOp::KeyedRemove {
                key: Page::entry_key(e).to_vec(),
            },
        )?;
    }
    // The root rises one level and indexes n1 for the whole space.
    let root_hdr = NodeHeader {
        level: hdr.level + 1,
        side: PageId::INVALID,
        low: KeyBound::NegInf,
        high: KeyBound::PosInf,
    };
    chain.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: root_hdr.encode(),
        },
    )?;
    let n1_term = IndexTerm {
        key: Vec::new(),
        child: n1_pid,
        multi_parent: false,
    };
    chain.apply(
        page,
        g,
        PageOp::KeyedInsert {
            bytes: n1_term.to_entry(),
        },
    )?;

    // n1 is as full as the root was: split it now and post the pair.
    let (n2_pin, n2g, split_key, n2_pid) = raw_split(tree, chain, &n1_pin, &mut n1g)?;
    let n2_term = IndexTerm {
        key: split_key.clone(),
        child: n2_pid,
        multi_parent: false,
    };
    chain.apply(
        page,
        g,
        PageOp::KeyedInsert {
            bytes: n2_term.to_entry(),
        },
    )?;
    TreeStats::bump(&tree.stats().root_grows);
    tree.recorder()
        .event(pitree_obs::EventKind::SmoRootGrow, page.id().0, 0);
    Ok(SplitCandidates::Grew {
        n1: (n1_pin, n1g),
        n2: (n2_pin, n2g),
        split_key,
    })
}

/// Split the leaf a blocked insert needs room in, under the policy matrix of
/// §4.2.1 (see the module docs). Consumes the descent; the caller re-descends
/// afterwards.
pub(crate) fn split_leaf_for_insert<'t>(
    tree: &'t PiTree,
    txn: &mut Txn<'_>,
    d: DescentTarget<'t>,
    _key: &[u8],
) -> StoreResult<()> {
    use crate::config::UndoPolicy;
    let leaf_pid = d.page.id();
    let page_name = tree.page_lock(leaf_pid);
    let leaf_level = d.level;
    let path = d.path.clone();

    let in_txn = match tree.config().undo {
        UndoPolicy::Logical => false,
        UndoPolicy::PageOriented => {
            // §4.2.1: if T "has not yet updated any record to be moved by
            // the split, the split can be performed in an action independent
            // of and before T". T's updates to this leaf are visible as an
            // IX (or stronger) page lock; a Move lock means T's own earlier
            // in-transaction split moved uncommitted records *into* this
            // leaf, which equally forces the in-transaction path. This test
            // is sound because records never migrate to a page their
            // updating transaction holds no lock on: independent moves wait
            // out all updaters (the move lock drains IX holders), and
            // in-transaction moves move-lock the receiving page.
            matches!(
                tree.store().txns.locks().holds(txn.id(), &page_name),
                Some(LockMode::IX) | Some(LockMode::X) | Some(LockMode::Move)
            )
        }
    };

    // Page-oriented UNDO needs the move lock; acquire it under the
    // triggering transaction's id so waits-for cycles stay detectable. For
    // the independent case it is released as soon as the split action
    // commits (action-duration); for the in-transaction case it is held to
    // end of transaction (§4.2.2).
    let mut took_move = false;
    if tree.config().undo == UndoPolicy::PageOriented
        && !matches!(
            tree.store().txns.locks().holds(txn.id(), &page_name),
            Some(LockMode::Move) | Some(LockMode::X)
        )
    {
        match txn.try_lock(&page_name, LockMode::Move) {
            Ok(()) => took_move = true,
            Err(LockError::WouldBlock) => {
                // No-Wait Rule: drop the latch, wait for in-flight updaters
                // of the to-be-moved records to finish, then retry the whole
                // insert (the caller loops).
                drop(d);
                TreeStats::bump(&tree.stats().no_wait_restarts);
                txn.lock(&page_name, LockMode::Move).map_err(lock_err)?;
                if !in_txn {
                    // Action-duration only; the retry will re-take it.
                    txn.unlock(&page_name);
                }
                return Ok(());
            }
            Err(e) => return Err(lock_err(e)),
        }
    }

    if !in_txn {
        let r = independent_split(tree, d);
        if took_move {
            txn.unlock(&page_name); // action-duration move lock
        }
        return r;
    }

    let mut g = d.guard.promote().into_x();
    {
        // ---- split inside the transaction (§4.2.1 second case) --------------
        let cands = split_node(tree, txn, &d.page, &mut g)?;
        TreeStats::bump(&tree.stats().splits_in_txn);
        // Move-lock every page that received moved (uncommitted) records,
        // held to end of transaction: undo of the move must stay possible,
        // so non-commuting updates to those pages are blocked (§4.2.2), and
        // index-term postings into a move-locked node defer until T ends.
        // The pages are freshly allocated, so the locks cannot conflict.
        let lock_new = |pid: PageId| {
            // Under the relation granule the single lock already covers the
            // new pages (re-entrant no-op); per-page granule locks each.
            let r = txn.try_lock(&tree.page_lock(pid), LockMode::Move);
            debug_assert!(r.is_ok(), "fresh page cannot have conflicting holders");
        };
        match &cands {
            SplitCandidates::Normal { new_pid, .. } => lock_new(*new_pid),
            SplitCandidates::Grew { n1, n2, .. } => {
                lock_new(n1.0.id());
                lock_new(n2.0.id());
            }
        }
        if let SplitCandidates::Normal {
            split_key, new_pid, ..
        } = cands
        {
            // "The posting of the index term for splits cannot occur until
            // and unless T commits" (§4.2.2) — defer via commit hook.
            let q = tree.completions_arc();
            let stats = tree.stats_arc();
            let path = Box::new(path.above(leaf_level));
            txn.on_commit(move || {
                if q.push(Completion::Post {
                    level: leaf_level + 1,
                    key: split_key,
                    node: new_pid,
                    path,
                }) {
                    TreeStats::bump(&stats.postings_scheduled);
                }
            });
        }
        // Move lock stays with the transaction until it ends.
        Ok(())
    }
}

/// Split the node in `d` as an independent atomic action: the common case
/// for every index node, for logical UNDO, and for §4.2.1's "independent of
/// and before T" leaf splits. Consumes the descent.
pub(crate) fn independent_split(tree: &PiTree, d: DescentTarget<'_>) -> StoreResult<()> {
    let level = d.level;
    let path = d.path.clone();
    let mut g = d.guard.promote().into_x();
    let mut act = tree.store().txns.begin(tree.config().smo_identity);
    let cands = match split_node(tree, &mut act, &d.page, &mut g) {
        Ok(c) => c,
        Err(e) => {
            act.abort(None)?;
            return Err(e);
        }
    };
    TreeStats::bump(&tree.stats().splits_independent);
    let schedule = match &cands {
        SplitCandidates::Normal {
            split_key, new_pid, ..
        } => Some((split_key.clone(), *new_pid)),
        SplitCandidates::Grew { .. } => None,
    };
    drop(cands);
    drop(g);
    drop(d.page);
    act.commit()?;
    if let Some((split_key, new_pid)) = schedule {
        if tree.completions().push(Completion::Post {
            level: level + 1,
            key: split_key,
            node: new_pid,
            path: Box::new(path.above(level)),
        }) {
            TreeStats::bump(&tree.stats().postings_scheduled);
        }
    }
    Ok(())
}
