//! Node consolidation (§3.3, §5) as a single atomic action.
//!
//! "We always move the node contents from contained node to containing
//! node. Then the index term for the contained node is deleted and the
//! contained node is de-allocated." Both the container and the contained
//! node must be referenced by index terms in the same parent, and the
//! contained node must not be multi-parent — conditions that keep the
//! change a two-level, single-parent affair.
//!
//! Consolidation is always an *independent* atomic action; with
//! page-oriented UNDO its record moves at the leaf level need move locks,
//! "two phased but only persist\[ing\] for the duration of this action"
//! (§4.2.1). The action is testable: every precondition is re-verified under
//! latches, and a stale schedule simply terminates.

use crate::config::{ConsolidationPolicy, DeallocPolicy, UndoPolicy};
use crate::node::{utilization, Guarded, IndexTerm, NodeHeader};
use crate::stats::TreeStats;
use crate::tree::PiTree;
use pitree_pagestore::page::{PageType, FLAG_FREED};
use pitree_pagestore::{PageOp, StoreResult};
use pitree_txnlock::{LockError, LockMode};

/// How a consolidation attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsolidateOutcome {
    /// Contents moved, index term deleted, node de-allocated.
    Done,
    /// The testable-state checks found nothing to do (already consolidated,
    /// node refilled, or would overflow the container).
    NotNeeded,
    /// Structural preconditions fail (first child of its parent, chain
    /// mismatch, or a multi-parent contained node).
    CannotMerge,
    /// Move locks were unavailable without waiting; the action was requeued
    /// (No-Wait Rule — completions never block while holding latches).
    MoveDeferred,
}

/// Try to consolidate the node at `level` whose low key is `key` into its
/// containing node.
pub fn consolidate(tree: &PiTree, level: u8, key: &[u8]) -> StoreResult<ConsolidateOutcome> {
    let ConsolidationPolicy::Enabled { dealloc } = tree.config().consolidation else {
        return Ok(ConsolidateOutcome::NotNeeded);
    };
    let stats = tree.stats();
    let pool = &tree.store().pool;
    let mut act = tree.store().txns.begin(tree.config().smo_identity);

    // The root has no parent and is never consolidated away.
    let root_level = {
        let r = pool.fetch(tree.root_pid())?;
        let g = r.s();
        NodeHeader::read(&g)?.level
    };
    if level >= root_level {
        act.commit()?;
        return Ok(ConsolidateOutcome::NotNeeded);
    }

    // Locate the (single) parent of the contained node.
    let d = tree.descend(key, level + 1, true, false)?;
    let parent_pin = d.page;
    let parent_guard = d.guard;

    // Testable state: the contained node's term must still be present.
    let slot = match parent_guard.page().keyed_find(key)? {
        Ok(s) => s,
        Err(_) => {
            TreeStats::bump(&stats.consolidations_noop);
            tree.recorder()
                .event(pitree_obs::EventKind::SmoConsolidate, 0, 1);
            act.commit()?;
            return Ok(ConsolidateOutcome::NotNeeded);
        }
    };
    let n_term = IndexTerm::read(parent_guard.page(), slot)?;
    if n_term.multi_parent {
        // "the contained node must only be referenced by this parent" —
        // clipped terms mark multi-parent nodes, which we refuse (§3.3).
        act.commit()?;
        return Ok(ConsolidateOutcome::CannotMerge);
    }
    if slot == 1 {
        // First term: the container lives under a different parent; both
        // must be children of the same parent node (§3.3).
        act.commit()?;
        return Ok(ConsolidateOutcome::CannotMerge);
    }
    let c_term = IndexTerm::read(parent_guard.page(), slot - 1)?;

    // Promote the parent before touching children: promotion must not be
    // requested while holding latches on later-ordered resources (§4.1.1).
    let mut pg = match parent_guard {
        Guarded::U(u) => u.promote(),
        Guarded::X(x) => x,
        Guarded::S(_) => unreachable!("consolidate descends with U at target"),
    };
    TreeStats::bump(&stats.upper_exclusive);
    if level > 0 {
        TreeStats::add(&stats.upper_exclusive, 2); // container + contained
    }

    // Latch container then contained ("containing nodes prior to the
    // contained nodes", §4.1.1).
    let c_pin = pool.fetch(c_term.child)?;
    let mut cg = c_pin.x();
    let c_hdr = NodeHeader::read(&cg)?;
    if c_hdr.side != n_term.child {
        // An unposted sibling sits between container and contained; merging
        // across it would strand the chain.
        act.commit()?;
        return Ok(ConsolidateOutcome::CannotMerge);
    }
    let n_pin = pool.fetch(n_term.child)?;
    let mut ng = n_pin.x();
    let n_hdr = NodeHeader::read(&ng)?;

    // Testable state: still under-utilized, and the move must fit.
    let max = if level == 0 {
        tree.config().max_leaf_entries
    } else {
        tree.config().max_index_entries
    };
    let still_sparse = utilization(&ng, max) < tree.config().min_utilization
        || utilization(&cg, max) < tree.config().min_utilization;
    let move_bytes: usize = (1..ng.slot_count())
        .map(|s| ng.get(s).map(|e| e.len() + 4))
        .sum::<StoreResult<usize>>()?;
    let fits =
        move_bytes <= cg.free_space() && (cg.entry_count() + ng.entry_count()) as usize <= max;
    if !still_sparse || !fits {
        TreeStats::bump(&stats.consolidations_noop);
        tree.recorder()
            .event(pitree_obs::EventKind::SmoConsolidate, c_pin.id().0, 1);
        act.commit()?;
        return Ok(ConsolidateOutcome::NotNeeded);
    }

    // Move locks for data-node consolidation under page-oriented UNDO
    // (§4.2.1) — try-only: a completing action never waits for database
    // locks while latched; on conflict it is requeued.
    if level == 0 && tree.config().undo == UndoPolicy::PageOriented {
        let c_name = tree.page_lock(c_pin.id());
        let n_name = tree.page_lock(n_pin.id());
        let got = act
            .try_lock(&c_name, LockMode::Move)
            .and_then(|_| act.try_lock(&n_name, LockMode::Move));
        match got {
            Ok(()) => {}
            Err(LockError::WouldBlock) => {
                drop(ng);
                drop(cg);
                drop(pg);
                act.commit()?; // empty action; locks released
                tree.completions()
                    .push(crate::completion::Completion::Consolidate {
                        level,
                        key: key.to_vec(),
                    });
                return Ok(ConsolidateOutcome::MoveDeferred);
            }
            Err(e) => return Err(crate::tree::lock_err(e)),
        }
    }

    // ---- perform the merge (one atomic action, two levels: §5) ---------------
    let entries: Vec<Vec<u8>> = (1..ng.slot_count())
        .map(|s| ng.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &entries {
        act.apply(&c_pin, &mut cg, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    let merged_hdr = NodeHeader {
        level: c_hdr.level,
        side: n_hdr.side,
        low: c_hdr.low.clone(),
        high: n_hdr.high.clone(),
    };
    act.apply(
        &c_pin,
        &mut cg,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: merged_hdr.encode(),
        },
    )?;
    // Delete the contained node's index term.
    act.apply(
        &parent_pin,
        &mut pg,
        PageOp::KeyedRemove { key: key.to_vec() },
    )?;
    // De-allocate the contained node, per the configured policy (§5.2.2).
    match dealloc {
        DeallocPolicy::IsAnUpdate => {
            // The freed page's state identifier changes and a tombstone is
            // left, at the cost of a log record.
            act.apply(&n_pin, &mut ng, PageOp::Format { ty: PageType::Free })?;
            act.apply(&n_pin, &mut ng, PageOp::SetFlags { flags: FLAG_FREED })?;
        }
        DeallocPolicy::NotAnUpdate => {
            // The node's content and state identifier stay untouched; only
            // the space map learns of the de-allocation.
        }
    }
    {
        // pitree-lint: allow(no-wait) space-map allocator mutex ranks above all page latches and has no inverse order
        let mut alloc = tree.store().space.lock_alloc();
        let (bm_pid, bit) = tree.store().space.locate(n_pin.id());
        let bm = pool.fetch(bm_pid)?;
        let mut bmg = bm.x();
        act.apply(&bm, &mut bmg, PageOp::ClearBit { bit })?;
        alloc.note_freed(n_pin.id());
    }

    // Escalation check before releasing the parent: consolidating index
    // terms can make the parent itself sparse (§5: "Consolidation of index
    // terms can lead to further node consolidation").
    let parent_sparse =
        utilization(&pg, tree.config().max_index_entries) < tree.config().min_utilization;
    let parent_low = NodeHeader::read(&pg)?.low.as_entry_key().to_vec();
    let parent_level = level + 1;

    let container = c_pin.id().0;
    drop(ng);
    drop(n_pin);
    drop(cg);
    drop(c_pin);
    drop(pg);
    drop(parent_pin);
    act.commit()?;
    TreeStats::bump(&stats.consolidations);
    tree.recorder()
        .event(pitree_obs::EventKind::SmoConsolidate, container, 0);
    if parent_sparse && parent_level < root_level {
        tree.completions()
            .push(crate::completion::Completion::Consolidate {
                level: parent_level,
                key: parent_low,
            });
    }
    Ok(ConsolidateOutcome::Done)
}
