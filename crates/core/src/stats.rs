//! Operation counters feeding the experiments in `EXPERIMENTS.md`.
//!
//! Since the observability layer (`pitree-obs`) landed, these are thin
//! façades over [`Counter`] handles registered as `tree.*` names in the
//! store's [`pitree_obs::Registry`] — the same numbers appear in
//! `Registry::report()` and in the `obstop` tool. The field-per-counter
//! struct is kept so experiment code reads `stats.splits.get()` instead of
//! going through the registry's name map.

use pitree_obs::{Counter, Recorder};

/// Lock-free counters; one instance per tree, shared by all threads.
///
/// Constructed with [`TreeStats::new`] onto the store's recorder (the tree
/// does this in `PiTree::create`/`open`); `Default` attaches to a fresh
/// private registry for tests that only read the struct directly.
#[derive(Debug, Clone)]
pub struct TreeStats {
    /// Node splits performed (leaf + index), excluding root growth.
    pub splits: Counter,
    /// Root-growth events (tree height increase).
    pub root_grows: Counter,
    /// Index-term postings scheduled (by splits or by traversals that
    /// followed a side pointer).
    pub postings_scheduled: Counter,
    /// Postings that inserted a term.
    pub postings_done: Counter,
    /// Postings that found the term already present (idempotent no-op).
    pub postings_noop: Counter,
    /// Postings abandoned because the described node was consolidated away.
    pub postings_node_gone: Counter,
    /// Postings deferred because a move lock was seen (§4.2.2).
    pub postings_move_deferred: Counter,
    /// Consolidations performed.
    pub consolidations: Counter,
    /// Consolidations abandoned by the testable-state check.
    pub consolidations_noop: Counter,
    /// Side pointers followed during traversals ("intermediate state seen").
    pub side_traversals: Counter,
    /// Operation restarts forced by the No-Wait Rule (latch released to wait
    /// for a database lock).
    pub no_wait_restarts: Counter,
    /// Leaf splits executed inside a user transaction (page-oriented UNDO
    /// with updated-and-moved records, §4.2.1).
    pub splits_in_txn: Counter,
    /// Leaf splits executed as independent atomic actions.
    pub splits_independent: Counter,
    /// Nodes latched during posting re-traversals (saved-path effectiveness,
    /// experiment E6).
    pub posting_nodes_touched: Counter,
    /// Saved-path entries reused without a fresh in-node search.
    pub saved_path_hits: Counter,
    /// Saved-path entries invalidated by a changed state identifier.
    pub saved_path_misses: Counter,
    /// Exclusive (X) latch acquisitions on nodes *above* the data level —
    /// the paper's §1(3) footprint: in the Π-tree these happen only inside
    /// short independent atomic actions (postings, index splits,
    /// consolidations), never inside user transactions.
    pub upper_exclusive: Counter,
}

impl TreeStats {
    /// Counters registered as `tree.*` in `rec`'s registry.
    pub fn new(rec: &Recorder) -> TreeStats {
        TreeStats {
            splits: rec.counter("tree.splits"),
            root_grows: rec.counter("tree.root_grows"),
            postings_scheduled: rec.counter("tree.postings_scheduled"),
            postings_done: rec.counter("tree.postings_done"),
            postings_noop: rec.counter("tree.postings_noop"),
            postings_node_gone: rec.counter("tree.postings_node_gone"),
            postings_move_deferred: rec.counter("tree.postings_move_deferred"),
            consolidations: rec.counter("tree.consolidations"),
            consolidations_noop: rec.counter("tree.consolidations_noop"),
            side_traversals: rec.counter("tree.side_traversals"),
            no_wait_restarts: rec.counter("tree.no_wait_restarts"),
            splits_in_txn: rec.counter("tree.splits_in_txn"),
            splits_independent: rec.counter("tree.splits_independent"),
            posting_nodes_touched: rec.counter("tree.posting_nodes_touched"),
            saved_path_hits: rec.counter("tree.saved_path_hits"),
            saved_path_misses: rec.counter("tree.saved_path_misses"),
            upper_exclusive: rec.counter("tree.upper_exclusive"),
        }
    }

    /// Increment helper.
    #[inline]
    pub fn bump(counter: &Counter) {
        counter.inc();
    }

    /// Add helper.
    #[inline]
    pub fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Snapshot all counters as (name, value) pairs, for table printing.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("splits", self.splits.get()),
            ("root_grows", self.root_grows.get()),
            ("postings_scheduled", self.postings_scheduled.get()),
            ("postings_done", self.postings_done.get()),
            ("postings_noop", self.postings_noop.get()),
            ("postings_node_gone", self.postings_node_gone.get()),
            ("postings_move_deferred", self.postings_move_deferred.get()),
            ("consolidations", self.consolidations.get()),
            ("consolidations_noop", self.consolidations_noop.get()),
            ("side_traversals", self.side_traversals.get()),
            ("no_wait_restarts", self.no_wait_restarts.get()),
            ("splits_in_txn", self.splits_in_txn.get()),
            ("splits_independent", self.splits_independent.get()),
            ("posting_nodes_touched", self.posting_nodes_touched.get()),
            ("saved_path_hits", self.saved_path_hits.get()),
            ("saved_path_misses", self.saved_path_misses.get()),
            ("upper_exclusive", self.upper_exclusive.get()),
        ]
    }
}

impl Default for TreeStats {
    fn default() -> Self {
        TreeStats::new(&Recorder::detached())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TreeStats::default();
        TreeStats::bump(&s.splits);
        TreeStats::add(&s.splits, 2);
        assert_eq!(s.splits.get(), 3);
    }

    #[test]
    fn snapshot_names_are_unique() {
        let s = TreeStats::default();
        let snap = s.snapshot();
        let mut names: Vec<_> = snap.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), snap.len());
    }

    #[test]
    fn registered_counters_show_in_registry_report() {
        let reg = pitree_obs::Registry::new();
        let s = TreeStats::new(&reg.recorder());
        TreeStats::bump(&s.side_traversals);
        assert!(reg.report().contains("tree.side_traversals"));
    }
}
