//! Operation counters feeding the experiments in `EXPERIMENTS.md`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters; one instance per tree, shared by all threads.
#[derive(Debug, Default)]
pub struct TreeStats {
    /// Node splits performed (leaf + index), excluding root growth.
    pub splits: AtomicU64,
    /// Root-growth events (tree height increase).
    pub root_grows: AtomicU64,
    /// Index-term postings scheduled (by splits or by traversals that
    /// followed a side pointer).
    pub postings_scheduled: AtomicU64,
    /// Postings that inserted a term.
    pub postings_done: AtomicU64,
    /// Postings that found the term already present (idempotent no-op).
    pub postings_noop: AtomicU64,
    /// Postings abandoned because the described node was consolidated away.
    pub postings_node_gone: AtomicU64,
    /// Postings deferred because a move lock was seen (§4.2.2).
    pub postings_move_deferred: AtomicU64,
    /// Consolidations performed.
    pub consolidations: AtomicU64,
    /// Consolidations abandoned by the testable-state check.
    pub consolidations_noop: AtomicU64,
    /// Side pointers followed during traversals ("intermediate state seen").
    pub side_traversals: AtomicU64,
    /// Operation restarts forced by the No-Wait Rule (latch released to wait
    /// for a database lock).
    pub no_wait_restarts: AtomicU64,
    /// Leaf splits executed inside a user transaction (page-oriented UNDO
    /// with updated-and-moved records, §4.2.1).
    pub splits_in_txn: AtomicU64,
    /// Leaf splits executed as independent atomic actions.
    pub splits_independent: AtomicU64,
    /// Nodes latched during posting re-traversals (saved-path effectiveness,
    /// experiment E6).
    pub posting_nodes_touched: AtomicU64,
    /// Saved-path entries reused without a fresh in-node search.
    pub saved_path_hits: AtomicU64,
    /// Saved-path entries invalidated by a changed state identifier.
    pub saved_path_misses: AtomicU64,
    /// Exclusive (X) latch acquisitions on nodes *above* the data level —
    /// the paper's §1(3) footprint: in the Π-tree these happen only inside
    /// short independent atomic actions (postings, index splits,
    /// consolidations), never inside user transactions.
    pub upper_exclusive: AtomicU64,
}

impl TreeStats {
    /// Increment helper.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add helper.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot all counters as (name, value) pairs, for table printing.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("splits", g(&self.splits)),
            ("root_grows", g(&self.root_grows)),
            ("postings_scheduled", g(&self.postings_scheduled)),
            ("postings_done", g(&self.postings_done)),
            ("postings_noop", g(&self.postings_noop)),
            ("postings_node_gone", g(&self.postings_node_gone)),
            ("postings_move_deferred", g(&self.postings_move_deferred)),
            ("consolidations", g(&self.consolidations)),
            ("consolidations_noop", g(&self.consolidations_noop)),
            ("side_traversals", g(&self.side_traversals)),
            ("no_wait_restarts", g(&self.no_wait_restarts)),
            ("splits_in_txn", g(&self.splits_in_txn)),
            ("splits_independent", g(&self.splits_independent)),
            ("posting_nodes_touched", g(&self.posting_nodes_touched)),
            ("saved_path_hits", g(&self.saved_path_hits)),
            ("saved_path_misses", g(&self.saved_path_misses)),
            ("upper_exclusive", g(&self.upper_exclusive)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TreeStats::default();
        TreeStats::bump(&s.splits);
        TreeStats::add(&s.splits, 2);
        assert_eq!(s.splits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn snapshot_names_are_unique() {
        let s = TreeStats::default();
        let snap = s.snapshot();
        let mut names: Vec<_> = snap.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), snap.len());
    }
}
