//! Tree traversal (§3.1) with the latching discipline of §4.1/§5.2, and the
//! saved-path machinery of §5.2.
//!
//! The traversal descends from the root following index terms; when a node's
//! directly-contained space does not include the search key, it follows side
//! pointers (§3.1). Following a side pointer is how intermediate states are
//! *detected* (§5.1): descents schedule an index-term posting whenever they
//! traverse one — unless the delegating node is move-locked (§4.2.2).
//!
//! Latching depends on the consolidation policy:
//! * **CNS** (no consolidation): nodes are immortal; one latch at a time.
//! * **CP**: latch coupling — the latch on the referenced node is acquired
//!   before the latch on the referencing node is released.
//!
//! The descent itself is allocation-free (DESIGN.md §11): every per-hop
//! containment/routing decision is made through a borrowed [`HeaderRef`]
//! view under a scoped latch borrow, the child pointer is read in place via
//! [`IndexTerm::child_at`], and the saved path is an inline array.

use crate::completion::Completion;
use crate::node::{Guarded, HeaderRef, IndexTerm};
use crate::stats::TreeStats;
use crate::tree::PiTree;
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::{Lsn, PageId, StoreError, StoreResult};

/// One remembered step of a traversal: node, its state identifier at visit
/// time, and its level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEntry {
    /// The visited node.
    pub pid: PageId,
    /// Its state identifier (page LSN) when visited.
    pub lsn: Lsn,
    /// Its level.
    pub level: u8,
}

impl PathEntry {
    const EMPTY: PathEntry = PathEntry {
        pid: PageId::INVALID,
        lsn: Lsn(0),
        level: 0,
    };
}

/// Maximum depth a [`SavedPath`] remembers. Sixteen levels covers any tree
/// this workspace can build (fanout ≥ 4 → 4^16 nodes); deeper entries are
/// silently dropped, which only costs a root re-traversal if a completing
/// action later asks for a level that was not saved (§5.2 fallback).
pub const SAVED_PATH_MAX: usize = 16;

/// The saved information of §5.2: "search key, nodes traversed on the path
/// from root to data node, and the location of the relevant index terms."
/// (We re-find in-node locations by binary search; saving slots buys little
/// at our node sizes.) Stored inline — pushing path entries during a descent
/// never touches the heap.
#[derive(Clone)]
pub struct SavedPath {
    entries: [PathEntry; SAVED_PATH_MAX],
    len: u8,
}

impl Default for SavedPath {
    fn default() -> SavedPath {
        SavedPath {
            entries: [PathEntry::EMPTY; SAVED_PATH_MAX],
            len: 0,
        }
    }
}

impl PartialEq for SavedPath {
    fn eq(&self, other: &SavedPath) -> bool {
        self.entries() == other.entries()
    }
}

impl Eq for SavedPath {}

impl std::fmt::Debug for SavedPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SavedPath")
            .field("entries", &self.entries())
            .finish()
    }
}

impl SavedPath {
    /// Append an entry (root-first order). Entries past [`SAVED_PATH_MAX`]
    /// are dropped: the path is an optimization, and a missing level just
    /// means the consumer re-traverses from the root.
    pub fn push(&mut self, e: PathEntry) {
        if (self.len as usize) < SAVED_PATH_MAX {
            self.entries[self.len as usize] = e;
            self.len += 1;
        }
    }

    /// The remembered entries, ordered root-first.
    pub fn entries(&self) -> &[PathEntry] {
        &self.entries[..self.len as usize]
    }

    /// Whether nothing was remembered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The saved entry at `level`, if any.
    pub fn at_level(&self, level: u8) -> Option<&PathEntry> {
        self.entries().iter().find(|e| e.level == level)
    }

    /// Entries strictly above `level` (for scheduling postings one level up).
    pub fn above(&self, level: u8) -> SavedPath {
        let mut out = SavedPath::default();
        for e in self.entries() {
            if e.level > level {
                out.push(*e);
            }
        }
        out
    }
}

/// Result of a descent: the target node pinned and latched, its level, and
/// the saved path of the levels above it.
///
/// The target's header is *not* materialized here — readers derive a
/// [`HeaderRef`] view from the guard when they need bounds, and write paths
/// decode the owned header themselves.
pub struct DescentTarget<'a> {
    /// Pin on the target node.
    pub page: PinnedPage<'a>,
    /// Latch guard (S, or U when `update_at_target` was requested).
    pub guard: Guarded<'a>,
    /// Level of the target node.
    pub level: u8,
    /// Saved path (levels above the target).
    pub path: SavedPath,
}

impl std::fmt::Debug for DescentTarget<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DescentTarget").finish_non_exhaustive()
    }
}

/// Latch `page` in S or U mode.
fn latch<'a>(page: &PinnedPage<'a>, update: bool) -> Guarded<'a> {
    if update {
        Guarded::U(page.u())
    } else {
        Guarded::S(page.s())
    }
}

/// What a scoped header view told us to do at the current node.
enum Step {
    /// The node directly contains the key at the target level: done.
    Arrived,
    /// The node directly contains the key but is above the target level:
    /// descend to the child, noting our LSN for the saved path.
    Child { child: PageId, lsn: Lsn },
    /// Delegated to the sibling (key ≥ high).
    Side(PageId),
    /// key < low: routing raced far ahead; restart from the root.
    /// (Possible only transiently under CP consolidation.)
    Restart,
}

impl PiTree {
    /// Descend from the root to the node at `target_level` whose directly
    /// contained space includes `key`, following side pointers as needed.
    ///
    /// With `update_at_target`, the target node is U-latched (§5.3: "When
    /// the LEVEL is reached, U-latches are used, possibly traversing side
    /// pointers until the correct NODE is U-latched"); otherwise S.
    ///
    /// `schedule` controls whether side-pointer traversals enqueue
    /// completing postings (§5.1); completing actions themselves pass
    /// `false`.
    pub(crate) fn descend(
        &self,
        key: &[u8],
        target_level: u8,
        update_at_target: bool,
        schedule: bool,
    ) -> StoreResult<DescentTarget<'_>> {
        self.descend_from(
            self.root_pid(),
            key,
            target_level,
            update_at_target,
            schedule,
        )
    }

    /// [`PiTree::descend`] starting from `start` instead of the root — the
    /// §5.2 saved-path re-traversal. The caller asserts that `start` was on
    /// a path for `key` (so `start.low ≤ key`; low bounds never change) and,
    /// under the CP invariant, that it has verified `start` is still
    /// allocated. A start node that nonetheless turns out freed or re-used
    /// falls back to a root traversal.
    pub(crate) fn descend_from(
        &self,
        start: PageId,
        key: &[u8],
        target_level: u8,
        update_at_target: bool,
        schedule: bool,
    ) -> StoreResult<DescentTarget<'_>> {
        let coupling = self.config().consolidation.couples_latches();
        let pool = &self.store().pool;

        let mut path = SavedPath::default();
        let mut cur = pool.fetch(start)?;
        let mut g = latch(&cur, false);
        if g.page().page_type()? != pitree_pagestore::PageType::Node || g.page().is_freed() {
            // The remembered node was de-allocated after verification; only
            // the root is immortal (§5.2.2).
            drop(g);
            return self.descend_from(
                self.root_pid(),
                key,
                target_level,
                update_at_target,
                schedule,
            );
        }
        let mut level = HeaderRef::read(g.page())?.level();
        if level < target_level {
            return Err(StoreError::Corrupt(format!(
                "descend target level {target_level} above start level {level}"
            )));
        }
        // Re-latch the root in U mode if the root itself is the target of an
        // update descent. (Promotion from S is forbidden.)
        if level == target_level && update_at_target {
            drop(g);
            g = latch(&cur, true);
        }

        loop {
            // One borrowed header view per node arrival decides the next
            // step; the view's borrow of the guard ends before any latch
            // movement below.
            let step = {
                let h = HeaderRef::read(g.page())?;
                level = h.level();
                if !h.contains(key) {
                    if !h.high_gt(key) {
                        // key ≥ high: delegated to the sibling.
                        let side = h.side();
                        if !side.is_valid() {
                            return Err(StoreError::Corrupt(format!(
                                "node {} lacks side pointer but does not contain key",
                                cur.id()
                            )));
                        }
                        Step::Side(side)
                    } else {
                        Step::Restart
                    }
                } else if level == target_level {
                    Step::Arrived
                } else {
                    let slot = g.page().keyed_floor(key)?.ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "index node {} contains {key:02x?} but has no routable term",
                            cur.id()
                        ))
                    })?;
                    Step::Child {
                        child: IndexTerm::child_at(g.page(), slot)?,
                        lsn: g.page().lsn(),
                    }
                }
            };

            match step {
                Step::Arrived => {
                    return Ok(DescentTarget {
                        page: cur,
                        guard: g,
                        level,
                        path,
                    });
                }
                Step::Restart => {
                    drop(g);
                    return self.descend(key, target_level, update_at_target, schedule);
                }
                Step::Side(side) => {
                    let from = cur.id();
                    let want_u = update_at_target && level == target_level;
                    let sib = pool.fetch(side)?;
                    let sg = if coupling {
                        let t = latch(&sib, want_u);
                        drop(g);
                        t
                    } else {
                        drop(g);
                        latch(&sib, want_u)
                    };
                    TreeStats::bump(&self.stats().side_traversals);
                    if schedule {
                        let sh = HeaderRef::read(sg.page())?;
                        self.schedule_posting_for(
                            from,
                            side,
                            sh.level(),
                            sh.low_entry_key(),
                            &path,
                        );
                    }
                    cur = sib;
                    g = sg;
                }
                Step::Child { child, lsn } => {
                    path.push(PathEntry {
                        pid: cur.id(),
                        lsn,
                        level,
                    });
                    let want_u = update_at_target && level - 1 == target_level;
                    let cp = pool.fetch(child)?;
                    let cg = if coupling {
                        let t = latch(&cp, want_u);
                        drop(g);
                        t
                    } else {
                        drop(g);
                        latch(&cp, want_u)
                    };
                    cur = cp;
                    g = cg;
                }
            }
        }
    }

    /// Schedule the completing index-term posting for a side traversal from
    /// `from` to the sibling `node` (at `node_level`, with low bound
    /// `node_low_key`) — unless the delegating node is move locked, in which
    /// case the split's transaction is still in doubt and "a transaction
    /// encountering a move lock on a sibling traversal does not schedule an
    /// index posting" (§4.2.2).
    pub(crate) fn schedule_posting_for(
        &self,
        from: PageId,
        node: PageId,
        node_level: u8,
        node_low_key: &[u8],
        path: &SavedPath,
    ) {
        if self
            .store()
            .txns
            .locks()
            .is_move_locked(&self.page_lock(from))
        {
            TreeStats::bump(&self.stats().postings_move_deferred);
            return;
        }
        let key = node_low_key.to_vec();
        let level = node_level + 1;
        if self.completions().push(Completion::Post {
            level,
            key,
            node,
            path: Box::new(path.above(node_level)),
        }) {
            TreeStats::bump(&self.stats().postings_scheduled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pid: u64, level: u8) -> PathEntry {
        PathEntry {
            pid: PageId(pid),
            lsn: Lsn(pid * 10),
            level,
        }
    }

    #[test]
    fn saved_path_push_and_query() {
        let mut p = SavedPath::default();
        assert!(p.is_empty());
        p.push(entry(3, 2));
        p.push(entry(7, 1));
        assert_eq!(p.entries().len(), 2);
        assert_eq!(p.at_level(1).unwrap().pid, PageId(7));
        assert!(p.at_level(0).is_none());
        let above = p.above(1);
        assert_eq!(above.entries(), &[entry(3, 2)]);
    }

    #[test]
    fn saved_path_overflow_drops_silently() {
        let mut p = SavedPath::default();
        for i in 0..(SAVED_PATH_MAX as u64 + 4) {
            p.push(entry(i + 1, i as u8));
        }
        assert_eq!(p.entries().len(), SAVED_PATH_MAX);
        assert_eq!(p.entries()[0], entry(1, 0));
    }

    #[test]
    fn saved_path_eq_ignores_spare_capacity() {
        let mut a = SavedPath::default();
        let mut b = SavedPath::default();
        a.push(entry(1, 1));
        b.push(entry(1, 1));
        assert_eq!(a, b);
        b.push(entry(2, 2));
        assert_ne!(a, b);
        assert_eq!(SavedPath::default(), SavedPath::default());
    }
}
