//! Tree traversal (§3.1) with the latching discipline of §4.1/§5.2, and the
//! saved-path machinery of §5.2.
//!
//! The traversal descends from the root following index terms; when a node's
//! directly-contained space does not include the search key, it follows side
//! pointers (§3.1). Following a side pointer is how intermediate states are
//! *detected* (§5.1): descents schedule an index-term posting whenever they
//! traverse one — unless the delegating node is move-locked (§4.2.2).
//!
//! Latching depends on the consolidation policy:
//! * **CNS** (no consolidation): nodes are immortal; one latch at a time.
//! * **CP**: latch coupling — the latch on the referenced node is acquired
//!   before the latch on the referencing node is released.

use crate::completion::Completion;
use crate::node::{Guarded, IndexTerm, NodeHeader};
use crate::stats::TreeStats;
use crate::tree::PiTree;
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::{Lsn, PageId, StoreError, StoreResult};

/// One remembered step of a traversal: node, its state identifier at visit
/// time, and its level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEntry {
    /// The visited node.
    pub pid: PageId,
    /// Its state identifier (page LSN) when visited.
    pub lsn: Lsn,
    /// Its level.
    pub level: u8,
}

/// The saved information of §5.2: "search key, nodes traversed on the path
/// from root to data node, and the location of the relevant index terms."
/// (We re-find in-node locations by binary search; saving slots buys little
/// at our node sizes.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SavedPath {
    /// Entries ordered root-first.
    pub entries: Vec<PathEntry>,
}

impl SavedPath {
    /// The saved entry at `level`, if any.
    pub fn at_level(&self, level: u8) -> Option<&PathEntry> {
        self.entries.iter().find(|e| e.level == level)
    }

    /// Entries strictly above `level` (for scheduling postings one level up).
    pub fn above(&self, level: u8) -> SavedPath {
        SavedPath {
            entries: self
                .entries
                .iter()
                .filter(|e| e.level > level)
                .cloned()
                .collect(),
        }
    }
}

/// Result of a descent: the target node pinned and latched, its header, and
/// the saved path of the levels above it.
pub struct DescentTarget<'a> {
    /// Pin on the target node.
    pub page: PinnedPage<'a>,
    /// Latch guard (S, or U when `update_at_target` was requested).
    pub guard: Guarded<'a>,
    /// Decoded header of the target node.
    pub hdr: NodeHeader,
    /// Saved path (levels above the target).
    pub path: SavedPath,
}

impl std::fmt::Debug for DescentTarget<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DescentTarget").finish_non_exhaustive()
    }
}

/// Latch `page` in S or U mode.
fn latch<'a>(page: &PinnedPage<'a>, update: bool) -> Guarded<'a> {
    if update {
        Guarded::U(page.u())
    } else {
        Guarded::S(page.s())
    }
}

impl PiTree {
    /// Descend from the root to the node at `target_level` whose directly
    /// contained space includes `key`, following side pointers as needed.
    ///
    /// With `update_at_target`, the target node is U-latched (§5.3: "When
    /// the LEVEL is reached, U-latches are used, possibly traversing side
    /// pointers until the correct NODE is U-latched"); otherwise S.
    ///
    /// `schedule` controls whether side-pointer traversals enqueue
    /// completing postings (§5.1); completing actions themselves pass
    /// `false`.
    pub(crate) fn descend(
        &self,
        key: &[u8],
        target_level: u8,
        update_at_target: bool,
        schedule: bool,
    ) -> StoreResult<DescentTarget<'_>> {
        self.descend_from(
            self.root_pid(),
            key,
            target_level,
            update_at_target,
            schedule,
        )
    }

    /// [`PiTree::descend`] starting from `start` instead of the root — the
    /// §5.2 saved-path re-traversal. The caller asserts that `start` was on
    /// a path for `key` (so `start.low ≤ key`; low bounds never change) and,
    /// under the CP invariant, that it has verified `start` is still
    /// allocated. A start node that nonetheless turns out freed or re-used
    /// falls back to a root traversal.
    pub(crate) fn descend_from(
        &self,
        start: PageId,
        key: &[u8],
        target_level: u8,
        update_at_target: bool,
        schedule: bool,
    ) -> StoreResult<DescentTarget<'_>> {
        let coupling = self.config().consolidation.couples_latches();
        let pool = &self.store().pool;

        let mut path = SavedPath::default();
        let mut cur = pool.fetch(start)?;
        let mut g = latch(&cur, false);
        if g.page().page_type()? != pitree_pagestore::PageType::Node || g.page().is_freed() {
            // The remembered node was de-allocated after verification; only
            // the root is immortal (§5.2.2).
            drop(g);
            return self.descend_from(
                self.root_pid(),
                key,
                target_level,
                update_at_target,
                schedule,
            );
        }
        let mut hdr = NodeHeader::read(g.page())?;
        if hdr.level < target_level {
            return Err(StoreError::Corrupt(format!(
                "descend target level {target_level} above start level {}",
                hdr.level
            )));
        }
        // Re-latch the root in U mode if the root itself is the target of an
        // update descent. (Promotion from S is forbidden.)
        if hdr.level == target_level && update_at_target {
            drop(g);
            g = latch(&cur, true);
            hdr = NodeHeader::read(g.page())?;
        }

        loop {
            // ---- side traversals at the current level -----------------------
            while !hdr.contains(key) {
                if !hdr.high.gt_key(key) {
                    // key ≥ high: delegated to the sibling.
                    let from = cur.id();
                    let side = hdr.side;
                    if !side.is_valid() {
                        return Err(StoreError::Corrupt(format!(
                            "node {from} lacks side pointer but does not contain key"
                        )));
                    }
                    let want_u = update_at_target && hdr.level == target_level;
                    let sib = pool.fetch(side)?;
                    let sg = if coupling {
                        let t = latch(&sib, want_u);
                        drop(g);
                        t
                    } else {
                        drop(g);
                        latch(&sib, want_u)
                    };
                    let sib_hdr = NodeHeader::read(sg.page())?;
                    TreeStats::bump(&self.stats().side_traversals);
                    if schedule {
                        self.schedule_posting_for(from, side, &sib_hdr, &path);
                    }
                    cur = sib;
                    g = sg;
                    hdr = sib_hdr;
                } else {
                    // key < low: routing raced far ahead; restart from root.
                    // (Possible only transiently under CP consolidation.)
                    drop(g);
                    return self.descend(key, target_level, update_at_target, schedule);
                }
            }

            if hdr.level == target_level {
                return Ok(DescentTarget {
                    page: cur,
                    guard: g,
                    hdr,
                    path,
                });
            }

            // ---- descend one level ------------------------------------------
            let slot = g.page().keyed_floor(key)?.ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "index node {} contains {key:02x?} but has no routable term",
                    cur.id()
                ))
            })?;
            let term = IndexTerm::read(g.page(), slot)?;
            path.entries.push(PathEntry {
                pid: cur.id(),
                lsn: g.page().lsn(),
                level: hdr.level,
            });

            let want_u = update_at_target && hdr.level - 1 == target_level;
            let child = pool.fetch(term.child)?;
            let cg = if coupling {
                let t = latch(&child, want_u);
                drop(g);
                t
            } else {
                drop(g);
                latch(&child, want_u)
            };
            let child_hdr = NodeHeader::read(cg.page())?;
            cur = child;
            g = cg;
            hdr = child_hdr;
        }
    }

    /// Schedule the completing index-term posting for a side traversal from
    /// `from` to the sibling `node` — unless the delegating node is move
    /// locked, in which case the split's transaction is still in doubt and
    /// "a transaction encountering a move lock on a sibling traversal does
    /// not schedule an index posting" (§4.2.2).
    pub(crate) fn schedule_posting_for(
        &self,
        from: PageId,
        node: PageId,
        node_hdr: &NodeHeader,
        path: &SavedPath,
    ) {
        if self
            .store()
            .txns
            .locks()
            .is_move_locked(&self.page_lock(from))
        {
            TreeStats::bump(&self.stats().postings_move_deferred);
            return;
        }
        let key = node_hdr.low.as_entry_key().to_vec();
        let level = node_hdr.level + 1;
        if self.completions().push(Completion::Post {
            level,
            key,
            node,
            path: path.above(node_hdr.level),
        }) {
            TreeStats::bump(&self.stats().postings_scheduled);
        }
    }
}
