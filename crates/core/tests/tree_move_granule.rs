//! The §4.2.2 move-lock granule options: page-level (default) vs a lock on
//! the whole relation. Both must be correct; the relation granule trades
//! concurrency for simplicity ("once granted, no update activity can alter
//! the locking required").

use pitree::{CrashableStore, MoveGranule, PiTree, PiTreeConfig};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn run_batches(granule: MoveGranule) -> (CrashableStore, PiTree) {
    let mut cfg = PiTreeConfig::small_nodes(6, 6).page_oriented();
    cfg.move_granule = granule;
    let cs = CrashableStore::create(1024, 200_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    for batch in 0..8u64 {
        let mut t = tree.begin();
        for j in 0..10 {
            tree.insert(&mut t, &key(batch * 10 + j), b"v").unwrap();
        }
        t.commit().unwrap();
    }
    (cs, tree)
}

#[test]
fn relation_granule_is_correct() {
    let (_cs, tree) = run_batches(MoveGranule::Relation);
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 80);
    for i in 0..80u64 {
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(b"v".to_vec()));
    }
    // In-transaction splits happened under the single relation lock too.
    assert!(tree.stats().splits_in_txn.get() > 0);
}

#[test]
fn relation_granule_defers_more_postings_than_page_granule() {
    // Coarser move locks defer MORE postings: while any transaction holds
    // the relation move lock, no posting anywhere in the tree may proceed.
    let (_cs, page_tree) = run_batches(MoveGranule::Page);
    let (_cs2, rel_tree) = run_batches(MoveGranule::Relation);
    let page_deferred = page_tree.stats().postings_move_deferred.get();
    let rel_deferred = rel_tree.stats().postings_move_deferred.get();
    assert!(
        rel_deferred >= page_deferred,
        "relation granule must defer at least as many postings: page={page_deferred} \
         relation={rel_deferred}"
    );
}

#[test]
fn relation_granule_rollback_and_recovery() {
    let mut cfg = PiTreeConfig::small_nodes(6, 6).page_oriented();
    cfg.move_granule = MoveGranule::Relation;
    let cs = CrashableStore::create(1024, 200_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    for i in 0..20u64 {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), b"keep").unwrap();
        t.commit().unwrap();
    }
    // In-transaction splits under the relation lock, then abort.
    let mut t = tree.begin();
    for i in 100..140u64 {
        tree.insert(&mut t, &key(i), b"doomed").unwrap();
    }
    t.abort(None).unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 20);
    // And across a crash.
    drop(tree);
    let cs2 = cs.crash().unwrap();
    let (tree2, _) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
    assert_eq!(tree2.validate().unwrap().records, 20);
}
