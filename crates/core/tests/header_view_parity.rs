//! Property: the borrowed [`HeaderRef`] view and the materializing
//! [`NodeHeader::decode`] agree byte-for-byte — on every well-formed header
//! the view reports the same fields, and on every corrupted byte string the
//! two reject or accept identically. The zero-copy read path rides on this
//! equivalence: a descent that consults `HeaderRef` must route exactly like
//! one that decoded the full header.

use pitree::node::{HeaderRef, NodeHeader};
use pitree::KeyBound;
use pitree_pagestore::PageId;
use pitree_sim::prop::run;
use pitree_sim::rng::SimRng;

fn arb_bound(rng: &mut SimRng) -> KeyBound {
    match rng.below(4) {
        0 => KeyBound::NegInf,
        1 => KeyBound::PosInf,
        // Bias toward short keys (the tree's own keys are 8-32 bytes) but
        // include empty and long ones.
        _ => {
            let len = rng.range_usize(0..48);
            KeyBound::Key(rng.bytes(len))
        }
    }
}

fn arb_header(rng: &mut SimRng) -> NodeHeader {
    NodeHeader {
        level: rng.below(8) as u8,
        side: if rng.chance(0.5) {
            PageId::INVALID
        } else {
            PageId(rng.next_u64())
        },
        low: arb_bound(rng),
        high: arb_bound(rng),
    }
}

/// The two parsers must agree on this byte string: both reject, or both
/// accept with identical fields.
fn assert_parity(bytes: &[u8]) {
    let full = NodeHeader::decode(bytes);
    let view = HeaderRef::parse(bytes);
    match (full, view) {
        (Ok(h), Ok(v)) => {
            assert_eq!(h, v.to_header(), "parsers disagree on {bytes:02x?}");
            assert_eq!(h.level, v.level());
            assert_eq!(h.side, v.side());
            assert_eq!(h.is_leaf(), v.is_leaf());
        }
        (Err(_), Err(_)) => {}
        (full, view) => panic!(
            "rejection mismatch on {bytes:02x?}: decode={:?} view={:?}",
            full.map(|h| h.level),
            view.map(|v| v.level()),
        ),
    }
}

#[test]
fn header_view_parity_on_valid_encodings() {
    run("header-view-parity-valid", |rng| {
        for _ in 0..64 {
            let h = arb_header(rng);
            let bytes = h.encode();
            let v = HeaderRef::parse(&bytes).expect("view must accept a valid encoding");
            assert_eq!(h, v.to_header());
            // Routing predicates agree with the materialized header.
            for _ in 0..8 {
                let plen = rng.range_usize(0..40);
                let probe = rng.bytes(plen);
                assert_eq!(h.contains(&probe), v.contains(&probe));
                assert_eq!(h.low.le_key(&probe), v.low_le(&probe));
                assert_eq!(h.high.gt_key(&probe), v.high_gt(&probe));
            }
        }
    });
}

#[test]
fn header_view_parity_on_corrupted_encodings() {
    run("header-view-parity-corrupt", |rng| {
        for _ in 0..64 {
            let mut bytes = arb_header(rng).encode();
            match rng.below(4) {
                // Truncate anywhere, including mid-bound.
                0 => {
                    let at = rng.range_usize(0..bytes.len());
                    bytes.truncate(at);
                }
                // Append trailing garbage (both parsers must reject).
                1 => {
                    let extra = rng.range_usize(1..8);
                    bytes.extend(rng.bytes(extra));
                }
                // Flip a byte — may hit a bound tag, a length, or key data.
                2 => {
                    let i = rng.range_usize(0..bytes.len());
                    bytes[i] ^= rng.byte() | 1;
                }
                // Pure noise.
                _ => {
                    let len = rng.range_usize(0..24);
                    bytes = rng.bytes(len);
                }
            }
            assert_parity(&bytes);
        }
    });
}

#[test]
fn header_view_rejects_known_corruptions() {
    // Deterministic spot checks for each rejection class, so a regression
    // names the class instead of a seed.
    let valid = NodeHeader::new_root_leaf().encode();
    assert!(HeaderRef::parse(&valid).is_ok());
    // Too short for level + side.
    assert!(HeaderRef::parse(&valid[..8]).is_err());
    // Bad bound tag.
    let mut bad_tag = valid.clone();
    bad_tag[9] = 7;
    assert!(HeaderRef::parse(&bad_tag).is_err());
    // Trailing bytes after the high bound.
    let mut trailing = valid.clone();
    trailing.push(0);
    assert!(HeaderRef::parse(&trailing).is_err());
    // Truncated Key bound payload.
    let keyed = NodeHeader {
        low: KeyBound::Key(b"abcdef".to_vec()),
        ..NodeHeader::new_root_leaf()
    }
    .encode();
    assert!(HeaderRef::parse(&keyed[..keyed.len() - 1]).is_err());
    assert!(NodeHeader::decode(&keyed[..keyed.len() - 1]).is_err());
}
