//! Functional tests of the Π-tree public API: CRUD, splits, lazy completion,
//! consolidation, and well-formedness through every intermediate state.

use pitree::{ConsolidationPolicy, CrashableStore, DeallocPolicy, PiTree, PiTreeConfig};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn val(i: u64) -> Vec<u8> {
    format!("value-{i}").into_bytes()
}

fn tree_with(cfg: PiTreeConfig) -> (CrashableStore, PiTree) {
    let cs = CrashableStore::create(512, 100_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    (cs, tree)
}

fn small_tree() -> (CrashableStore, PiTree) {
    tree_with(PiTreeConfig::small_nodes(6, 6))
}

fn insert_all(tree: &PiTree, keys: impl IntoIterator<Item = u64>) {
    for i in keys {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), &val(i)).unwrap();
        t.commit().unwrap();
    }
}

#[test]
fn empty_tree_is_well_formed() {
    let (_cs, tree) = small_tree();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 0);
    assert_eq!(tree.height().unwrap(), 1);
}

#[test]
fn single_insert_and_get() {
    let (_cs, tree) = small_tree();
    let mut t = tree.begin();
    assert!(tree.insert(&mut t, b"k", b"v").unwrap());
    assert_eq!(tree.get(&t, b"k").unwrap(), Some(b"v".to_vec()));
    assert_eq!(tree.get(&t, b"absent").unwrap(), None);
    t.commit().unwrap();
    assert_eq!(tree.get_unlocked(b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn upsert_replaces_value() {
    let (_cs, tree) = small_tree();
    let mut t = tree.begin();
    assert!(tree.insert(&mut t, b"k", b"v1").unwrap());
    assert!(
        !tree.insert(&mut t, b"k", b"v2").unwrap(),
        "second insert replaces"
    );
    t.commit().unwrap();
    assert_eq!(tree.get_unlocked(b"k").unwrap(), Some(b"v2".to_vec()));
    let report = tree.validate().unwrap();
    assert_eq!(report.records, 1);
}

#[test]
fn inserts_split_and_grow_the_tree() {
    let (_cs, tree) = small_tree();
    insert_all(&tree, 0..200);
    assert!(
        tree.height().unwrap() >= 3,
        "200 keys across 6-entry nodes must stack levels"
    );
    assert!(tree.stats().splits.get() > 10);
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 200);
    for i in 0..200 {
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(val(i)), "key {i}");
    }
}

#[test]
fn descending_inserts_work_too() {
    let (_cs, tree) = small_tree();
    insert_all(&tree, (0..200).rev());
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 200);
    for i in 0..200 {
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(val(i)));
    }
}

#[test]
fn random_order_inserts() {
    let (_cs, tree) = small_tree();
    let mut keys: Vec<u64> = (0..500).collect();
    pitree_sim::SimRng::new(0x5EED).shuffle(&mut keys);
    insert_all(&tree, keys.iter().copied());
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 500);
}

#[test]
fn intermediate_states_are_well_formed_and_searchable() {
    // Disable auto-completion: splits leave unposted siblings behind.
    let mut cfg = PiTreeConfig::small_nodes(6, 6);
    cfg.auto_complete = false;
    let (_cs, tree) = tree_with(cfg);
    insert_all(&tree, 0..120);
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert!(
        report.unposted_nodes > 0,
        "without completion there must be intermediate states"
    );
    // Searches still find everything via side pointers (§3.1).
    for i in 0..120 {
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(val(i)));
    }
    assert!(
        tree.stats().side_traversals.get() > 0,
        "searches must have crossed side pointers"
    );
    // Now run the scheduled completions and verify the states resolve.
    tree.run_completions().unwrap();
    let report2 = tree.validate().unwrap();
    assert!(report2.is_well_formed(), "{:?}", report2.violations);
    assert!(report2.unposted_nodes < report.unposted_nodes);
}

#[test]
fn completion_is_idempotent() {
    let mut cfg = PiTreeConfig::small_nodes(6, 6);
    cfg.auto_complete = false;
    let (_cs, tree) = tree_with(cfg);
    insert_all(&tree, 0..60);
    // Drain once, then traverse again (which may re-schedule) and drain again.
    tree.run_completions().unwrap();
    for i in 0..60 {
        tree.get_unlocked(&key(i)).unwrap();
    }
    tree.run_completions().unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 60);
}

#[test]
fn delete_and_reinsert() {
    let (_cs, tree) = small_tree();
    insert_all(&tree, 0..50);
    let mut t = tree.begin();
    assert!(tree.delete(&mut t, &key(25)).unwrap());
    assert!(
        !tree.delete(&mut t, &key(25)).unwrap(),
        "double delete is false"
    );
    assert!(
        !tree.delete(&mut t, &key(999)).unwrap(),
        "absent delete is false"
    );
    t.commit().unwrap();
    assert_eq!(tree.get_unlocked(&key(25)).unwrap(), None);
    insert_all(&tree, [25]);
    assert_eq!(tree.get_unlocked(&key(25)).unwrap(), Some(val(25)));
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn consolidation_shrinks_node_count() {
    let mut cfg = PiTreeConfig::small_nodes(8, 8);
    cfg.min_utilization = 0.4;
    let (_cs, tree) = tree_with(cfg);
    insert_all(&tree, 0..300);
    let before = tree.validate().unwrap();
    let leaves_before = before
        .nodes_per_level
        .iter()
        .find(|(l, _)| *l == 0)
        .unwrap()
        .1;
    // Delete most keys; consolidations are scheduled and auto-run.
    for i in 0..300 {
        if i % 10 != 0 {
            let mut t = tree.begin();
            tree.delete(&mut t, &key(i)).unwrap();
            t.commit().unwrap();
        }
    }
    // A few extra passes to drain escalations.
    for _ in 0..5 {
        tree.run_completions().unwrap();
    }
    let after = tree.validate().unwrap();
    assert!(after.is_well_formed(), "{:?}", after.violations);
    assert_eq!(after.records, 30);
    let leaves_after = after
        .nodes_per_level
        .iter()
        .find(|(l, _)| *l == 0)
        .unwrap()
        .1;
    assert!(
        leaves_after < leaves_before / 2,
        "consolidation must reclaim nodes: {leaves_before} -> {leaves_after}"
    );
    assert!(tree.stats().consolidations.get() > 0);
    // All remaining keys still reachable.
    for i in (0..300).step_by(10) {
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(val(i)));
    }
}

#[test]
fn cns_policy_never_consolidates() {
    let mut cfg = PiTreeConfig::small_nodes(8, 8);
    cfg.consolidation = ConsolidationPolicy::Disabled;
    let (_cs, tree) = tree_with(cfg);
    insert_all(&tree, 0..100);
    for i in 0..100 {
        let mut t = tree.begin();
        tree.delete(&mut t, &key(i)).unwrap();
        t.commit().unwrap();
    }
    tree.run_completions().unwrap();
    assert_eq!(tree.stats().consolidations.get(), 0);
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 0);
}

#[test]
fn scan_returns_sorted_range() {
    let (_cs, tree) = small_tree();
    insert_all(&tree, (0..100).map(|i| i * 2)); // even keys
    let out = tree.scan(&key(10), &key(50)).unwrap();
    let keys: Vec<u64> = out
        .iter()
        .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
        .collect();
    let expected: Vec<u64> = (10..50).filter(|i| i % 2 == 0).collect();
    assert_eq!(keys, expected);
    for (k, v) in &out {
        let i = u64::from_be_bytes(k.as_slice().try_into().unwrap());
        assert_eq!(v, &val(i));
    }
}

#[test]
fn scan_empty_and_full_ranges() {
    let (_cs, tree) = small_tree();
    insert_all(&tree, 10..20);
    assert!(tree.scan(&key(0), &key(5)).unwrap().is_empty());
    assert!(tree.scan(&key(50), &key(60)).unwrap().is_empty());
    assert_eq!(tree.scan(&key(0), &key(100)).unwrap().len(), 10);
    assert_eq!(tree.scan(&key(12), &key(12)).unwrap().len(), 0);
}

#[test]
fn abort_undoes_inserts_logical() {
    let (_cs, tree) = small_tree();
    insert_all(&tree, 0..20);
    let mut t = tree.begin();
    tree.insert(&mut t, &key(100), &val(100)).unwrap();
    tree.insert(&mut t, &key(101), &val(101)).unwrap();
    tree.delete(&mut t, &key(5)).unwrap();
    tree.insert(&mut t, &key(6), b"changed").unwrap();
    t.abort(Some(&tree.undo_handler())).unwrap();
    assert_eq!(tree.get_unlocked(&key(100)).unwrap(), None);
    assert_eq!(tree.get_unlocked(&key(101)).unwrap(), None);
    assert_eq!(
        tree.get_unlocked(&key(5)).unwrap(),
        Some(val(5)),
        "delete undone"
    );
    assert_eq!(
        tree.get_unlocked(&key(6)).unwrap(),
        Some(val(6)),
        "update undone"
    );
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 20);
}

#[test]
fn abort_undoes_inserts_page_oriented() {
    let (_cs, tree) = tree_with(PiTreeConfig::small_nodes(6, 6).page_oriented());
    insert_all(&tree, 0..20);
    let mut t = tree.begin();
    tree.insert(&mut t, &key(100), &val(100)).unwrap();
    tree.delete(&mut t, &key(5)).unwrap();
    t.abort(None).unwrap(); // page-oriented undo needs no handler
    assert_eq!(tree.get_unlocked(&key(100)).unwrap(), None);
    assert_eq!(tree.get_unlocked(&key(5)).unwrap(), Some(val(5)));
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn abort_after_structure_change_keeps_split_logical() {
    // Under logical UNDO the split is independent: aborting the transaction
    // undoes the records but not the structure change (§4.2.1).
    let (_cs, tree) = small_tree();
    let mut t = tree.begin();
    for i in 0..40 {
        tree.insert(&mut t, &key(i), &val(i)).unwrap();
    }
    let splits_before = tree.stats().splits.get();
    assert!(
        splits_before > 0,
        "40 inserts into 6-entry leaves must split"
    );
    t.abort(Some(&tree.undo_handler())).unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 0, "all records rolled back");
    // The structure (empty nodes, index terms) survives.
    assert!(tree.height().unwrap() > 1);
}

#[test]
fn page_oriented_inserts_with_splits_roll_back() {
    let (_cs, tree) = tree_with(PiTreeConfig::small_nodes(6, 6).page_oriented());
    let mut t = tree.begin();
    for i in 0..40 {
        tree.insert(&mut t, &key(i), &val(i)).unwrap();
    }
    t.abort(None).unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 0);
    // And the tree still works afterwards.
    insert_all(&tree, 0..40);
    assert_eq!(tree.validate().unwrap().records, 40);
}

#[test]
fn in_txn_split_counting_page_oriented() {
    // A transaction that updates a leaf and then forces it to split must use
    // the in-transaction split path (§4.2.1 second case).
    let (_cs, tree) = tree_with(PiTreeConfig::small_nodes(6, 6).page_oriented());
    let mut t = tree.begin();
    for i in 0..30 {
        tree.insert(&mut t, &key(i), &val(i)).unwrap();
    }
    t.commit().unwrap();
    let in_txn = tree.stats().splits_in_txn.get();
    assert!(
        in_txn > 0,
        "same-transaction fill must trigger in-txn splits"
    );
    // Deferred postings ran at commit; tree is complete and well-formed.
    tree.run_completions().unwrap();
    assert!(tree.validate().unwrap().is_well_formed());
    for i in 0..30 {
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(val(i)));
    }
}

#[test]
fn dealloc_not_an_update_policy_works() {
    let mut cfg = PiTreeConfig::small_nodes(8, 8);
    cfg.consolidation = ConsolidationPolicy::Enabled {
        dealloc: DeallocPolicy::NotAnUpdate,
    };
    cfg.min_utilization = 0.4;
    let (_cs, tree) = tree_with(cfg);
    insert_all(&tree, 0..200);
    for i in 0..200 {
        if i % 8 != 0 {
            let mut t = tree.begin();
            tree.delete(&mut t, &key(i)).unwrap();
            t.commit().unwrap();
        }
    }
    for _ in 0..5 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 25);
}

#[test]
fn freed_pages_are_reused() {
    let mut cfg = PiTreeConfig::small_nodes(8, 8);
    cfg.min_utilization = 0.5;
    let (cs, tree) = tree_with(cfg);
    insert_all(&tree, 0..400);
    for i in 0..400 {
        let mut t = tree.begin();
        tree.delete(&mut t, &key(i)).unwrap();
        t.commit().unwrap();
    }
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let allocated_small = cs.store.space.allocated_count(&cs.store.pool).unwrap();
    // Grow again: freed pages must be found and reused, not leaked.
    insert_all(&tree, 0..400);
    let allocated_regrown = cs.store.space.allocated_count(&cs.store.pool).unwrap();
    insert_all(&tree, 400..420);
    assert!(tree.validate().unwrap().is_well_formed());
    assert!(
        allocated_regrown < allocated_small + 160,
        "regrowth should reuse freed pages: {allocated_small} -> {allocated_regrown}"
    );
}

#[test]
fn values_of_varying_sizes() {
    let (_cs, tree) = tree_with(PiTreeConfig::default()); // byte-limited nodes
    let mut t = tree.begin();
    for i in 0u64..200 {
        let v = vec![b'x'; (i as usize * 7) % 300 + 1];
        tree.insert(&mut t, &key(i), &v).unwrap();
    }
    t.commit().unwrap();
    for i in 0u64..200 {
        let v = vec![b'x'; (i as usize * 7) % 300 + 1];
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(v));
    }
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn two_trees_share_a_store() {
    let cs = CrashableStore::create(512, 100_000).unwrap();
    let t1 = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(6, 6)).unwrap();
    let t2 = PiTree::create(Arc::clone(&cs.store), 2, PiTreeConfig::small_nodes(6, 6)).unwrap();
    insert_all(&t1, 0..50);
    for i in 0..50u64 {
        let mut t = t2.begin();
        t2.insert(&mut t, &key(i), b"tree2").unwrap();
        t.commit().unwrap();
    }
    assert_eq!(t1.get_unlocked(&key(7)).unwrap(), Some(val(7)));
    assert_eq!(t2.get_unlocked(&key(7)).unwrap(), Some(b"tree2".to_vec()));
    assert!(t1.validate().unwrap().is_well_formed());
    assert!(t2.validate().unwrap().is_well_formed());
    // Re-open by id.
    let t1b = PiTree::open(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(6, 6)).unwrap();
    assert_eq!(t1b.get_unlocked(&key(7)).unwrap(), Some(val(7)));
}

#[test]
fn scan_locked_holds_result_set_stable() {
    let (_cs, tree) = small_tree();
    insert_all(&tree, 0..40);
    let txn = tree.begin();
    let out = tree.scan_locked(&txn, &key(10), &key(20)).unwrap();
    assert_eq!(out.len(), 10);
    // A concurrent writer must not be able to update a locked key without
    // waiting for the scanner's transaction.
    let writer = tree.begin();
    let name = tree.key_lock(&key(15));
    assert!(
        writer.try_lock(&name, pitree_txnlock::LockMode::X).is_err(),
        "scan's S lock must block X until the scanner commits"
    );
    writer.commit().unwrap();
    txn.commit().unwrap();
    // Now the lock is free.
    let writer2 = tree.begin();
    writer2
        .try_lock(&name, pitree_txnlock::LockMode::X)
        .unwrap();
    writer2.commit().unwrap();
}
