//! Concurrency tests: many threads over one tree, exercising latch
//! coupling, U→X promotion, the No-Wait Rule, move locks, deadlock
//! detection, and concurrent structure changes ("our techniques permit
//! multiple concurrent structure changes", §6).

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn val(i: u64) -> Vec<u8> {
    format!("value-{i}").into_bytes()
}

fn setup(cfg: PiTreeConfig) -> (CrashableStore, Arc<PiTree>) {
    let cs = CrashableStore::create(2048, 500_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    (cs, Arc::new(tree))
}

#[test]
fn concurrent_disjoint_inserts() {
    let (_cs, tree) = setup(PiTreeConfig::small_nodes(8, 8));
    let threads = 8;
    let per = 200u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..per {
                    let k = t * 10_000 + i;
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &key(k), &val(k)).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, (threads * per) as usize);
    for t in 0..threads {
        for i in 0..per {
            let k = t * 10_000 + i;
            assert_eq!(tree.get_unlocked(&key(k)).unwrap(), Some(val(k)), "key {k}");
        }
    }
}

#[test]
fn concurrent_interleaved_inserts() {
    // All threads hammer the same key range (distinct keys, shared nodes):
    // maximal split contention.
    let (_cs, tree) = setup(PiTreeConfig::small_nodes(6, 6));
    let threads = 8u64;
    let per = 150u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..per {
                    let k = i * threads + t; // interleaved
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &key(k), &val(k)).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, (threads * per) as usize);
}

#[test]
fn readers_run_against_writers() {
    let (_cs, tree) = setup(PiTreeConfig::small_nodes(8, 8));
    // Preload.
    for i in 0..500u64 {
        let mut txn = tree.begin();
        tree.insert(&mut txn, &key(i), &val(i)).unwrap();
        txn.commit().unwrap();
    }
    let found = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Writers extend the key space.
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..150 {
                    let k = 1000 + t * 1000 + i;
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &key(k), &val(k)).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
        // Readers: preloaded keys must always be visible.
        for _ in 0..4 {
            let tree = Arc::clone(&tree);
            let found = &found;
            s.spawn(move || {
                for round in 0..5 {
                    for i in 0..500u64 {
                        let got = tree.get_unlocked(&key(i)).unwrap();
                        assert_eq!(got, Some(val(i)), "round {round}, key {i}");
                        found.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(found.load(Ordering::Relaxed), 4 * 5 * 500);
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn concurrent_mixed_with_deletes_and_consolidation() {
    let mut cfg = PiTreeConfig::small_nodes(8, 8);
    cfg.min_utilization = 0.3;
    let (_cs, tree) = setup(cfg);
    for i in 0..800u64 {
        let mut txn = tree.begin();
        tree.insert(&mut txn, &key(i), &val(i)).unwrap();
        txn.commit().unwrap();
    }
    std::thread::scope(|s| {
        // Deleters clear the lower half.
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in (t..400).step_by(4) {
                    let mut txn = tree.begin();
                    tree.delete(&mut txn, &key(i)).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
        // Inserters extend the upper half.
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..100 {
                    let k = 2000 + t * 100 + i;
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &key(k), &val(k)).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    for _ in 0..6 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 400 + 400);
}

#[test]
fn concurrent_page_oriented_with_move_locks() {
    let (_cs, tree) = setup(PiTreeConfig::small_nodes(6, 6).page_oriented());
    let threads = 6u64;
    let per = 100u64;
    let deadlocks = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = Arc::clone(&tree);
            let deadlocks = &deadlocks;
            s.spawn(move || {
                // Multi-insert transactions force in-transaction splits under
                // move locks while other threads traverse and split too.
                // Move locks can deadlock with record updaters; victims are
                // detected (§4.1: no *undetected* deadlocks), abort, and
                // retry — exactly what a real client does.
                for batch in 0..(per / 10) {
                    'retry: loop {
                        let mut txn = tree.begin();
                        for j in 0..10 {
                            let k = (batch * 10 + j) * threads + t;
                            match tree.insert(&mut txn, &key(k), &val(k)) {
                                Ok(_) => {}
                                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                                    deadlocks.fetch_add(1, Ordering::Relaxed);
                                    txn.abort(None).unwrap();
                                    continue 'retry;
                                }
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                        txn.commit().unwrap();
                        break;
                    }
                }
            });
        }
    });
    for _ in 0..6 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, (threads * per) as usize);
}

#[test]
fn record_deadlock_is_detected_and_recoverable() {
    let (_cs, tree) = setup(PiTreeConfig::small_nodes(16, 16));
    {
        let mut txn = tree.begin();
        tree.insert(&mut txn, b"a", b"1").unwrap();
        tree.insert(&mut txn, b"b", b"2").unwrap();
        txn.commit().unwrap();
    }
    let barrier = std::sync::Barrier::new(2);
    let deadlocks = AtomicU64::new(0);
    std::thread::scope(|s| {
        for order in [true, false] {
            let tree = Arc::clone(&tree);
            let barrier = &barrier;
            let deadlocks = &deadlocks;
            s.spawn(move || {
                let (first, second): (&[u8], &[u8]) =
                    if order { (b"a", b"b") } else { (b"b", b"a") };
                let mut txn = tree.begin();
                tree.insert(&mut txn, first, b"x").unwrap();
                barrier.wait(); // both hold their first lock
                match tree.insert(&mut txn, second, b"y") {
                    Ok(_) => {
                        txn.commit().unwrap();
                    }
                    Err(e) => {
                        // Deadlock victim: abort and count.
                        assert!(
                            matches!(
                                e,
                                pitree_pagestore::StoreError::LockFailed { deadlock: true }
                            ),
                            "{e}"
                        );
                        deadlocks.fetch_add(1, Ordering::Relaxed);
                        txn.abort(Some(&tree.undo_handler())).unwrap();
                    }
                }
            });
        }
    });
    assert!(
        deadlocks.load(Ordering::Relaxed) >= 1,
        "opposite-order lockers must produce a detected deadlock victim"
    );
    // The survivor's writes (or the original values) are intact and the tree
    // is consistent.
    assert!(tree.validate().unwrap().is_well_formed());
    assert!(tree.get_unlocked(b"a").unwrap().is_some());
    assert!(tree.get_unlocked(b"b").unwrap().is_some());
}

#[test]
fn completions_run_from_many_threads() {
    let mut cfg = PiTreeConfig::small_nodes(6, 6);
    cfg.auto_complete = false; // pile up completions, drain concurrently
    let (_cs, tree) = setup(cfg);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..150 {
                    let k = i * 6 + t;
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &key(k), &val(k)).unwrap();
                    txn.commit().unwrap();
                    if i % 10 == 0 {
                        tree.run_completions().unwrap();
                    }
                }
            });
        }
    });
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 900);
}
