//! Tests of the remaining §4.3.2 recovery identities and the file-backed
//! store path.

use pitree::{CrashableStore, PiTree, PiTreeConfig, Store};
use pitree_wal::{ActionIdentity, RecordKind};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[test]
fn smo_identity_variants_all_work() {
    // §4.3.2: an atomic action can be identified as a separate transaction,
    // a system transaction, or a nested top action — "our approach works
    // with any of these techniques".
    for identity in [
        ActionIdentity::SeparateTransaction,
        ActionIdentity::SystemTransaction,
        ActionIdentity::NestedTopAction {
            parent: pitree_wal::ActionId(0),
        },
    ] {
        let mut cfg = PiTreeConfig::small_nodes(6, 6);
        cfg.smo_identity = identity;
        let cs = CrashableStore::create(512, 100_000).unwrap();
        let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
        for i in 0..60u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"v").unwrap();
            t.commit().unwrap();
        }
        tree.run_completions().unwrap();
        let report = tree.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "{identity:?}: {:?}",
            report.violations
        );
        assert_eq!(report.records, 60);
        // The Begin records carry the configured identity.
        let smo_begins = cs
            .store
            .log
            .scan(None)
            .expect("scan")
            .into_iter()
            .filter(|r| matches!(r.kind, RecordKind::Begin { identity: id } if id == identity))
            .count();
        assert!(
            smo_begins > 5,
            "{identity:?}: SMO actions must carry the identity"
        );
        // And crash recovery treats them all the same.
        drop(tree);
        let cs2 = cs.crash().unwrap();
        let (tree2, _) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
        assert_eq!(tree2.validate().unwrap().records, 60, "{identity:?}");
    }
}

#[test]
fn file_backed_store_persists_across_reopen() {
    let dir = std::env::temp_dir().join(format!("pitree-filestore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = PiTreeConfig::small_nodes(8, 8);
    {
        let store = Store::open_file(&dir, 512, 100_000).unwrap();
        let tree = PiTree::create(Arc::clone(&store), 1, cfg).unwrap();
        for i in 0..100u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), &key(i * 2)).unwrap();
            t.commit().unwrap();
        }
        tree.run_completions().unwrap();
        assert!(tree.validate().unwrap().is_well_formed());
        store.pool.flush_all().unwrap();
    }
    // Reopen from the files (clean shutdown path).
    {
        let store = Store::open_file(&dir, 512, 100_000).unwrap();
        let (tree, _stats) = PiTree::recover(Arc::clone(&store), 1, cfg).unwrap();
        let report = tree.validate().unwrap();
        assert!(report.is_well_formed(), "{:?}", report.violations);
        assert_eq!(report.records, 100);
        for i in 0..100u64 {
            assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(key(i * 2)));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backed_store_recovers_without_page_flush() {
    // Dirty pages never flushed: everything must come back from the file log
    // alone (redo from scratch).
    let dir = std::env::temp_dir().join(format!("pitree-filestore-dirty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = PiTreeConfig::small_nodes(8, 8);
    {
        let store = Store::open_file(&dir, 512, 100_000).unwrap();
        let tree = PiTree::create(Arc::clone(&store), 1, cfg).unwrap();
        for i in 0..40u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"dirty").unwrap();
            t.commit().unwrap();
        }
        // No flush_all: simulate a hard kill with only the log on disk.
    }
    {
        let store = Store::open_file(&dir, 512, 100_000).unwrap();
        let (tree, stats) = PiTree::recover(Arc::clone(&store), 1, cfg).unwrap();
        assert!(stats.redone > 40, "recovery must replay the workload");
        let report = tree.validate().unwrap();
        assert!(report.is_well_formed(), "{:?}", report.violations);
        assert_eq!(report.records, 40);
    }
    std::fs::remove_dir_all(&dir).ok();
}
