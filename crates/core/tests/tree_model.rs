//! Property-based testing: arbitrary operation sequences against a
//! `BTreeMap` reference model, across every policy combination, with
//! crash/recover and completion-draining steps mixed in. After every
//! sequence the tree must be well-formed and agree exactly with the model.

use pitree::{
    ConsolidationPolicy, CrashableStore, DeallocPolicy, PiTree, PiTreeConfig, UndoPolicy,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
    /// Insert a batch in one transaction, then abort it.
    AbortedBatch(Vec<(u16, u8)>),
    RunCompletions,
    CrashRecover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        3 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        2 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a % 512, b % 512)),
        1 => proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
            .prop_map(|v| Op::AbortedBatch(v.into_iter().map(|(k, x)| (k % 512, x)).collect())),
        1 => Just(Op::RunCompletions),
        1 => Just(Op::CrashRecover),
    ]
}

fn key(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn val(v: u8) -> Vec<u8> {
    vec![v; (v as usize % 13) + 1]
}

fn run_model(cfg: PiTreeConfig, ops: Vec<Op>) {
    let mut cs = CrashableStore::create(512, 200_000).unwrap();
    let mut tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model: BTreeMap<u16, u8> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let mut t = tree.begin();
                tree.insert(&mut t, &key(k), &val(v)).unwrap();
                t.commit().unwrap();
                model.insert(k, v);
            }
            Op::Delete(k) => {
                let mut t = tree.begin();
                let existed = tree.delete(&mut t, &key(k)).unwrap();
                t.commit().unwrap();
                assert_eq!(existed, model.remove(&k).is_some(), "delete {k}");
            }
            Op::Get(k) => {
                let got = tree.get_unlocked(&key(k)).unwrap();
                assert_eq!(got, model.get(&k).map(|&v| val(v)), "get {k}");
            }
            Op::Scan(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got = tree.scan(&key(lo), &key(hi)).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(lo..hi)
                    .map(|(&k, &v)| (key(k), val(v)))
                    .collect();
                assert_eq!(got, expected, "scan [{lo}, {hi})");
            }
            Op::AbortedBatch(batch) => {
                let mut t = tree.begin();
                for &(k, v) in &batch {
                    tree.insert(&mut t, &key(k), &val(v)).unwrap();
                }
                match cfg.undo {
                    UndoPolicy::Logical => t.abort(Some(&tree.undo_handler())).unwrap(),
                    UndoPolicy::PageOriented => t.abort(None).unwrap(),
                }
                // Model unchanged.
            }
            Op::RunCompletions => {
                tree.run_completions().unwrap();
            }
            Op::CrashRecover => {
                drop(tree);
                let cs2 = cs.crash().unwrap();
                let (t2, _) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
                cs = cs2;
                tree = t2;
            }
        }
    }

    let report = tree.validate().unwrap();
    prop_assert_eq_hack(report.is_well_formed(), &report.violations);
    assert_eq!(report.records, model.len());
    for (&k, &v) in &model {
        assert_eq!(tree.get_unlocked(&key(k)).unwrap(), Some(val(v)), "final get {k}");
    }
}

fn prop_assert_eq_hack(ok: bool, violations: &[String]) {
    assert!(ok, "violations: {violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn model_cp_logical(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.min_utilization = 0.4;
        run_model(cfg, ops);
    }

    #[test]
    fn model_cns_logical(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.consolidation = ConsolidationPolicy::Disabled;
        run_model(cfg, ops);
    }

    #[test]
    fn model_cp_page_oriented(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut cfg = PiTreeConfig::small_nodes(5, 5).page_oriented();
        cfg.min_utilization = 0.4;
        run_model(cfg, ops);
    }

    #[test]
    fn model_dealloc_not_update(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.consolidation = ConsolidationPolicy::Enabled { dealloc: DeallocPolicy::NotAnUpdate };
        cfg.min_utilization = 0.4;
        run_model(cfg, ops);
    }

    #[test]
    fn model_manual_completion(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.auto_complete = false;
        run_model(cfg, ops);
    }
}
