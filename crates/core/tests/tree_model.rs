//! Property-based testing: arbitrary operation sequences against a
//! `BTreeMap` reference model, across every policy combination, with
//! crash/recover and completion-draining steps mixed in. After every
//! sequence the tree must be well-formed and agree exactly with the model.
//!
//! Runs on the pitree-sim property runner: fixed seed corpus, replayable
//! with `PITREE_SIM_SEED=<seed>`.

use pitree::{
    ConsolidationPolicy, CrashableStore, DeallocPolicy, PiTree, PiTreeConfig, UndoPolicy,
};
use pitree_sim::{prop, SimRng};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
    /// Insert a batch in one transaction, then abort it.
    AbortedBatch(Vec<(u16, u8)>),
    RunCompletions,
    CrashRecover,
}

fn gen_op(rng: &mut SimRng) -> Op {
    match rng.below(14) {
        0..=4 => Op::Insert(rng.below(512) as u16, rng.byte()),
        5..=7 => Op::Delete(rng.below(512) as u16),
        8..=9 => Op::Get(rng.below(512) as u16),
        10 => Op::Scan(rng.below(512) as u16, rng.below(512) as u16),
        11 => {
            let n = rng.range_usize(1..8);
            Op::AbortedBatch(
                (0..n)
                    .map(|_| (rng.below(512) as u16, rng.byte()))
                    .collect(),
            )
        }
        12 => Op::RunCompletions,
        _ => Op::CrashRecover,
    }
}

fn key(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn val(v: u8) -> Vec<u8> {
    vec![v; (v as usize % 13) + 1]
}

fn run_model(cfg: PiTreeConfig, rng: &mut SimRng) {
    let n_ops = rng.range_usize(1..120);
    let ops: Vec<Op> = (0..n_ops).map(|_| gen_op(rng)).collect();
    let mut cs = CrashableStore::create(512, 200_000).unwrap();
    let mut tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model: BTreeMap<u16, u8> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let mut t = tree.begin();
                tree.insert(&mut t, &key(k), &val(v)).unwrap();
                t.commit().unwrap();
                model.insert(k, v);
            }
            Op::Delete(k) => {
                let mut t = tree.begin();
                let existed = tree.delete(&mut t, &key(k)).unwrap();
                t.commit().unwrap();
                assert_eq!(existed, model.remove(&k).is_some(), "delete {k}");
            }
            Op::Get(k) => {
                let got = tree.get_unlocked(&key(k)).unwrap();
                assert_eq!(got, model.get(&k).map(|&v| val(v)), "get {k}");
            }
            Op::Scan(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got = tree.scan(&key(lo), &key(hi)).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(lo..hi)
                    .map(|(&k, &v)| (key(k), val(v)))
                    .collect();
                assert_eq!(got, expected, "scan [{lo}, {hi})");
            }
            Op::AbortedBatch(batch) => {
                let mut t = tree.begin();
                for &(k, v) in &batch {
                    tree.insert(&mut t, &key(k), &val(v)).unwrap();
                }
                match cfg.undo {
                    UndoPolicy::Logical => t.abort(Some(&tree.undo_handler())).unwrap(),
                    UndoPolicy::PageOriented => t.abort(None).unwrap(),
                }
                // Model unchanged.
            }
            Op::RunCompletions => {
                tree.run_completions().unwrap();
            }
            Op::CrashRecover => {
                drop(tree);
                let cs2 = cs.crash().unwrap();
                let (t2, _) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
                cs = cs2;
                tree = t2;
            }
        }
    }

    let report = tree.validate().unwrap();
    assert!(
        report.is_well_formed(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(report.records, model.len());
    for (&k, &v) in &model {
        assert_eq!(
            tree.get_unlocked(&key(k)).unwrap(),
            Some(val(v)),
            "final get {k}"
        );
    }
}

#[test]
fn model_cp_logical() {
    prop::run_cases("model_cp_logical", 24, |rng| {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.min_utilization = 0.4;
        run_model(cfg, rng);
    });
}

#[test]
fn model_cns_logical() {
    prop::run_cases("model_cns_logical", 24, |rng| {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.consolidation = ConsolidationPolicy::Disabled;
        run_model(cfg, rng);
    });
}

#[test]
fn model_cp_page_oriented() {
    prop::run_cases("model_cp_page_oriented", 24, |rng| {
        let mut cfg = PiTreeConfig::small_nodes(5, 5).page_oriented();
        cfg.min_utilization = 0.4;
        run_model(cfg, rng);
    });
}

#[test]
fn model_dealloc_not_update() {
    prop::run_cases("model_dealloc_not_update", 24, |rng| {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.consolidation = ConsolidationPolicy::Enabled {
            dealloc: DeallocPolicy::NotAnUpdate,
        };
        cfg.min_utilization = 0.4;
        run_model(cfg, rng);
    });
}

#[test]
fn model_manual_completion() {
    prop::run_cases("model_manual_completion", 24, |rng| {
        let mut cfg = PiTreeConfig::small_nodes(5, 5);
        cfg.auto_complete = false;
        run_model(cfg, rng);
    });
}
