//! Crash-recovery tests: the paper's central claim is that a crash at *any*
//! point during a decomposed structure change leaves a recoverable,
//! well-formed tree with no special recovery measures (§1 point 4, §4.3).
//!
//! The harness snapshots the durable state (disk image + forced log prefix)
//! at arbitrary points — including truncating the log at every record
//! boundary during a split storm — and recovers each snapshot.

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn val(i: u64) -> Vec<u8> {
    format!("value-{i}").into_bytes()
}

fn setup(cfg: PiTreeConfig) -> (CrashableStore, PiTree) {
    let cs = CrashableStore::create(512, 100_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    (cs, tree)
}

fn commit_insert(tree: &PiTree, i: u64) {
    let mut t = tree.begin();
    tree.insert(&mut t, &key(i), &val(i)).unwrap();
    t.commit().unwrap();
}

/// Crash, recover, and return the reopened tree.
fn crash_recover(cs: &CrashableStore, cfg: PiTreeConfig) -> (CrashableStore, PiTree) {
    let cs2 = cs.crash().unwrap();
    let (tree, _stats) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
    (cs2, tree)
}

#[test]
fn committed_data_survives_crash() {
    let cfg = PiTreeConfig::small_nodes(6, 6);
    let (cs, tree) = setup(cfg);
    for i in 0..100 {
        commit_insert(&tree, i);
    }
    drop(tree);
    let (_cs2, tree2) = crash_recover(&cs, cfg);
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 100);
    for i in 0..100 {
        assert_eq!(
            tree2.get_unlocked(&key(i)).unwrap(),
            Some(val(i)),
            "key {i}"
        );
    }
}

#[test]
fn uncommitted_transaction_rolled_back_logical() {
    let cfg = PiTreeConfig::small_nodes(6, 6);
    let (cs, tree) = setup(cfg);
    for i in 0..30 {
        commit_insert(&tree, i);
    }
    // A transaction with forced-durable updates but an unforced commit: its
    // records must disappear at recovery (relative durability cuts both
    // ways — if the commit record is lost, so is everything after it).
    let mut t = tree.begin();
    for i in 100..110 {
        tree.insert(&mut t, &key(i), &val(i)).unwrap();
    }
    tree.delete(&mut t, &key(5)).unwrap();
    cs.store.log.force_all().unwrap(); // updates durable, commit not written
    cs.store.pool.flush_all().unwrap(); // dirty pages reach disk — the hard case
    std::mem::forget(t);
    let (_cs2, tree2) = crash_recover(&cs, cfg);
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(
        report.records, 30,
        "uncommitted inserts undone, delete undone"
    );
    for i in 100..110 {
        assert_eq!(tree2.get_unlocked(&key(i)).unwrap(), None);
    }
    assert_eq!(tree2.get_unlocked(&key(5)).unwrap(), Some(val(5)));
}

#[test]
fn uncommitted_transaction_rolled_back_page_oriented() {
    let cfg = PiTreeConfig::small_nodes(6, 6).page_oriented();
    let (cs, tree) = setup(cfg);
    for i in 0..30 {
        commit_insert(&tree, i);
    }
    let mut t = tree.begin();
    for i in 100..140 {
        tree.insert(&mut t, &key(i), &val(i)).unwrap(); // forces in-txn splits
    }
    cs.store.log.force_all().unwrap();
    cs.store.pool.flush_all().unwrap();
    std::mem::forget(t);
    let (_cs2, tree2) = crash_recover(&cs, cfg);
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 30);
}

#[test]
fn crash_between_split_and_posting_completes_lazily() {
    // Force an intermediate state: split done, posting still queued (not
    // run), then crash. Recovery must keep the split (its action committed)
    // and normal traversal must detect and complete the posting.
    let mut cfg = PiTreeConfig::small_nodes(6, 6);
    cfg.auto_complete = false;
    let (cs, tree) = setup(cfg);
    for i in 0..40 {
        commit_insert(&tree, i);
    }
    assert!(!tree.completions().is_empty(), "postings must be pending");
    let scheduled_before = tree.stats().postings_scheduled.get();
    assert!(scheduled_before > 0);
    drop(tree);
    // The completion queue is volatile — the crash loses it (§5.1: "we lose
    // track of which structure changes need completion").
    let (_cs2, tree2) = crash_recover(&cs, cfg);
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert!(
        report.unposted_nodes > 0,
        "the intermediate state persisted across the crash"
    );
    assert_eq!(report.records, 40);
    // Normal processing detects the side pointers and schedules completion.
    for i in 0..40 {
        assert_eq!(tree2.get_unlocked(&key(i)).unwrap(), Some(val(i)));
    }
    tree2.run_completions().unwrap();
    tree2.run_completions().unwrap();
    let report2 = tree2.validate().unwrap();
    assert!(report2.is_well_formed(), "{:?}", report2.violations);
    assert!(
        report2.unposted_nodes < report.unposted_nodes,
        "lazy completion must resolve intermediate states: {} -> {}",
        report.unposted_nodes,
        report2.unposted_nodes
    );
}

#[test]
fn log_prefix_sweep_during_split_storm() {
    // The exhaustive version of the paper's claim: crash with the durable
    // log truncated at EVERY record boundary during a workload full of
    // splits, postings, and root growth. Every prefix must recover to a
    // well-formed tree containing exactly the committed keys.
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let (cs, tree) = setup(cfg);
    for i in 0..48 {
        commit_insert(&tree, i);
    }
    drop(tree);
    cs.store.log.force_all().unwrap();
    let full = cs.durable_log_len();

    // Collect record boundaries from the durable log.
    let records = cs.store.log.scan(None).expect("scan");
    let mut cuts: Vec<u64> = records.iter().map(|r| r.lsn.0 - 1).collect();
    cuts.push(full);
    // Also a few torn (mid-record) positions.
    cuts.extend([full.saturating_sub(3), 17, 1]);

    for &cut in &cuts {
        let cs2 = cs.crash_with_log_prefix(cut).unwrap();
        // Cuts before the tree-creation commit legitimately recover to a
        // store with no tree.
        let Ok((tree2, _stats)) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg) else {
            continue;
        };
        let report = tree2.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "cut={cut}: violations {:?}",
            report.violations
        );
        // Every commit is forced, so the set of surviving keys must be a
        // prefix 0..k of the inserted keys.
        let present: Vec<bool> = (0..48)
            .map(|i| tree2.get_unlocked(&key(i)).unwrap().is_some())
            .collect();
        let k = present.iter().take_while(|&&p| p).count();
        assert!(
            present[k..].iter().all(|&p| !p),
            "cut={cut}: non-prefix survivor set {present:?}"
        );
        assert_eq!(report.records, k, "cut={cut}");
        // And the recovered tree remains fully usable.
        tree2.run_completions().unwrap();
        assert!(tree2.validate().unwrap().is_well_formed(), "cut={cut}");
    }
}

#[test]
fn log_prefix_sweep_with_consolidation() {
    let mut cfg = PiTreeConfig::small_nodes(4, 4);
    cfg.min_utilization = 0.5;
    let (cs, tree) = setup(cfg);
    for i in 0..32 {
        commit_insert(&tree, i);
    }
    for i in 0..24 {
        let mut t = tree.begin();
        tree.delete(&mut t, &key(i)).unwrap();
        t.commit().unwrap();
    }
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    drop(tree);
    cs.store.log.force_all().unwrap();
    let records = cs.store.log.scan(None).expect("scan");
    // Sweep every 3rd record boundary (consolidation logs are long).
    for (idx, rec) in records.iter().enumerate() {
        if idx % 3 != 0 {
            continue;
        }
        let cut = rec.lsn.0 - 1;
        let cs2 = cs.crash_with_log_prefix(cut).unwrap();
        let Ok((tree2, _stats)) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg) else {
            continue;
        };
        let report = tree2.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "cut={cut}: {:?}",
            report.violations
        );
    }
}

#[test]
fn recovery_is_idempotent_for_trees() {
    let cfg = PiTreeConfig::small_nodes(6, 6);
    let (cs, tree) = setup(cfg);
    for i in 0..60 {
        commit_insert(&tree, i);
    }
    drop(tree);
    let (cs2, tree2) = crash_recover(&cs, cfg);
    let r1 = tree2.validate().unwrap();
    drop(tree2);
    // Crash again immediately after recovery and recover once more.
    let (_cs3, tree3) = crash_recover(&cs2, cfg);
    let r2 = tree3.validate().unwrap();
    assert!(r2.is_well_formed(), "{:?}", r2.violations);
    assert_eq!(r1.records, r2.records);
}

#[test]
fn checkpoint_shortens_recovery() {
    let cfg = PiTreeConfig::small_nodes(6, 6);
    let (cs, tree) = setup(cfg);
    for i in 0..50 {
        commit_insert(&tree, i);
    }
    cs.store.pool.flush_all().unwrap();
    cs.store.txns.checkpoint().unwrap();
    for i in 50..60 {
        commit_insert(&tree, i);
    }
    drop(tree);
    let cs2 = cs.crash().unwrap();
    let (tree2, stats) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
    assert!(
        stats.analysis_start.0 > 1,
        "analysis must start at the checkpoint"
    );
    assert!(
        stats.scanned < 200,
        "checkpoint must bound the analysis scan, scanned {}",
        stats.scanned
    );
    assert_eq!(tree2.validate().unwrap().records, 60);
}

#[test]
fn crash_with_nothing_forced_loses_everything_cleanly() {
    let cfg = PiTreeConfig::small_nodes(6, 6);
    let (cs, tree) = setup(cfg);
    // Unforced system-level activity only (no user commits → no forces).
    let mut t = tree.begin();
    for i in 0..10 {
        tree.insert(&mut t, &key(i), &val(i)).unwrap();
    }
    std::mem::forget(t); // never commits
    drop(tree);
    let (_cs2, tree2) = crash_recover(&cs, cfg);
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 0);
}

#[test]
fn page_oriented_log_prefix_sweep() {
    // The same storm under page-oriented UNDO with in-transaction splits:
    // multi-insert transactions, some committed, the last one not.
    let cfg = PiTreeConfig::small_nodes(4, 4).page_oriented();
    let (cs, tree) = setup(cfg);
    for batch in 0..6 {
        let mut t = tree.begin();
        for j in 0..8 {
            let i = batch * 8 + j;
            tree.insert(&mut t, &key(i), &val(i)).unwrap();
        }
        t.commit().unwrap();
    }
    drop(tree);
    cs.store.log.force_all().unwrap();
    let records = cs.store.log.scan(None).expect("scan");
    for (idx, rec) in records.iter().enumerate() {
        if idx % 3 != 0 {
            continue;
        }
        let cut = rec.lsn.0 - 1;
        let cs2 = cs.crash_with_log_prefix(cut).unwrap();
        let Ok((tree2, _stats)) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg) else {
            continue;
        };
        let report = tree2.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "cut={cut}: {:?}",
            report.violations
        );
        // Transactions are atomic: records present in multiples of 8.
        assert_eq!(
            report.records % 8,
            0,
            "cut={cut}: partial transaction visible"
        );
    }
}

#[test]
fn log_prefix_sweep_with_page_flushes_and_checkpoint() {
    // The harder variant: dirty pages reach disk mid-workload and a fuzzy
    // checkpoint is taken. Legal crash points are then bounded below by the
    // flush (WAL protocol: the log covering flushed pages survived), and
    // recovery must use the checkpoint.
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let (cs, tree) = setup(cfg);
    for i in 0..24 {
        commit_insert(&tree, i);
    }
    cs.store.pool.flush_all().unwrap();
    cs.store.txns.checkpoint().unwrap();
    let min_cut = cs.durable_log_len();
    for i in 24..48 {
        commit_insert(&tree, i);
    }
    drop(tree);
    cs.store.log.force_all().unwrap();

    let records = cs.store.log.scan(None).expect("scan");
    let cuts: Vec<u64> = records
        .iter()
        .map(|r| r.lsn.0 - 1)
        .filter(|&c| c >= min_cut)
        .collect();
    assert!(cuts.len() > 20, "enough post-flush crash points");
    for &cut in &cuts {
        let cs2 = cs.crash_with_log_prefix(cut).unwrap();
        let (tree2, stats) = PiTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
        assert!(
            stats.analysis_start.0 > 1,
            "cut={cut}: analysis must start at the checkpoint"
        );
        let report = tree2.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "cut={cut}: {:?}",
            report.violations
        );
        // Prefix property still holds.
        let present: Vec<bool> = (0..48)
            .map(|i| tree2.get_unlocked(&key(i)).unwrap().is_some())
            .collect();
        let k = present.iter().take_while(|&&p| p).count();
        assert!(present[k..].iter().all(|&p| !p), "cut={cut}");
        assert!(k >= 24, "cut={cut}: flushed data cannot be lost");
    }
}
