//! Edge-case tests: variable-length string keys, byte-limited (full-page)
//! nodes, space exhaustion, buffer-pressure operation, and codec fuzzing at
//! the tree level.

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use std::sync::Arc;

#[test]
fn variable_length_string_keys_sort_correctly() {
    let (_cs, tree) = {
        let cs = CrashableStore::create(512, 100_000).unwrap();
        let tree =
            PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(6, 6)).unwrap();
        (cs, tree)
    };
    // Keys with prefix relationships and mixed lengths.
    let words = [
        "a",
        "aa",
        "aaa",
        "ab",
        "abc",
        "b",
        "ba",
        "banana",
        "band",
        "bandit",
        "z",
        "zz",
        "apple",
        "applesauce",
        "app",
        "ap",
        "zebra",
        "zeb",
        "",
    ];
    let mut txn = tree.begin();
    for (i, w) in words.iter().enumerate() {
        // Skip the empty key: it is reserved as the -inf index-term key.
        if w.is_empty() {
            continue;
        }
        tree.insert(&mut txn, w.as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    txn.commit().unwrap();
    for (i, w) in words.iter().enumerate() {
        if w.is_empty() {
            continue;
        }
        assert_eq!(
            tree.get_unlocked(w.as_bytes()).unwrap(),
            Some(format!("{i}").into_bytes()),
            "word {w:?}"
        );
    }
    // Scans respect byte order (prefixes first).
    let out = tree.scan(b"a", b"b").unwrap();
    let keys: Vec<String> = out
        .iter()
        .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
        .collect();
    let mut expected: Vec<String> = words
        .iter()
        .filter(|w| !w.is_empty() && w.starts_with('a'))
        .map(|w| w.to_string())
        .collect();
    expected.sort();
    assert_eq!(keys, expected);
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn byte_limited_nodes_split_on_page_space() {
    // No artificial entry cap: splits trigger on actual 4 KiB page space.
    let cs = CrashableStore::create(2048, 200_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::default()).unwrap();
    let value = vec![0xabu8; 512]; // ~7 records per 4 KiB leaf
    let mut txn = tree.begin();
    for i in 0..200u64 {
        tree.insert(&mut txn, &i.to_be_bytes(), &value).unwrap();
    }
    txn.commit().unwrap();
    tree.run_completions().unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 200);
    assert!(
        tree.height().unwrap() >= 2,
        "512-byte values must split 4 KiB leaves"
    );
    for i in 0..200u64 {
        assert_eq!(
            tree.get_unlocked(&i.to_be_bytes()).unwrap().unwrap().len(),
            512
        );
    }
}

#[test]
fn tiny_buffer_pool_still_works() {
    // A pool of 24 frames over a tree of hundreds of pages: constant
    // eviction with WAL-protocol write-backs.
    let cs = CrashableStore::create(24, 200_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(8, 8)).unwrap();
    for i in 0..600u64 {
        let mut txn = tree.begin();
        tree.insert(&mut txn, &i.to_be_bytes(), b"evict-me")
            .unwrap();
        txn.commit().unwrap();
    }
    tree.run_completions().unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 600);
    assert!(
        cs.store.pool.stats().dirty_evictions.get() > 50,
        "the workload must actually evict dirty pages"
    );
    // And it all survives a crash (pages partially on disk from evictions).
    drop(tree);
    let cs2 = cs.crash().unwrap();
    let (tree2, _) =
        PiTree::recover(Arc::clone(&cs2.store), 1, PiTreeConfig::small_nodes(8, 8)).unwrap();
    assert_eq!(tree2.validate().unwrap().records, 600);
}

#[test]
fn space_exhaustion_is_a_clean_error() {
    // A store with room for very few pages: growth must fail with
    // OutOfSpace, not corrupt anything.
    let cs = CrashableStore::create(64, 16).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(4, 4)).unwrap();
    let mut txn = tree.begin();
    let mut hit_oos = false;
    for i in 0..10_000u64 {
        match tree.insert(&mut txn, &i.to_be_bytes(), &[0u8; 64]) {
            Ok(_) => {}
            Err(pitree_pagestore::StoreError::OutOfSpace) => {
                hit_oos = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(hit_oos, "a 16-page store must run out of space");
}

#[test]
fn oversized_records_split_until_they_fit() {
    let cs = CrashableStore::create(1024, 200_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::default()).unwrap();
    // ~1.3 KiB values: 2-3 per page.
    let value = vec![7u8; 1300];
    let mut txn = tree.begin();
    for i in 0..30u64 {
        tree.insert(&mut txn, &i.to_be_bytes(), &value).unwrap();
    }
    txn.commit().unwrap();
    tree.run_completions().unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 30);
}

#[test]
fn empty_tree_scan_and_delete() {
    let cs = CrashableStore::create(64, 10_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, PiTreeConfig::small_nodes(4, 4)).unwrap();
    assert!(tree.scan(b"", b"\xff").unwrap().is_empty());
    let mut txn = tree.begin();
    assert!(!tree.delete(&mut txn, b"nothing").unwrap());
    txn.commit().unwrap();
    assert!(tree.validate().unwrap().is_well_formed());
}
