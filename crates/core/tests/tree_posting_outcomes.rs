//! Targeted tests of every §5.3 Verify-Split outcome: posted, already
//! posted, and "the node whose index term is being posted has already been
//! deleted" (consolidated away) — plus posting deferral on move locks.

use pitree::{
    post_index_term, Completion, CrashableStore, PiTree, PiTreeConfig, PostOutcome, SavedPath,
};
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn setup(cfg: PiTreeConfig) -> (CrashableStore, PiTree) {
    let cs = CrashableStore::create(512, 100_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    (cs, tree)
}

#[test]
fn stale_posting_for_posted_node_is_already_posted() {
    let mut cfg = PiTreeConfig::small_nodes(6, 6);
    cfg.auto_complete = false;
    let (_cs, tree) = setup(cfg);
    for i in 0..30 {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), b"v").unwrap();
        t.commit().unwrap();
    }
    // Drain all legitimate postings.
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    // Re-post each queued item again by reconstructing from the tree: every
    // leaf's low key is either the -inf node or has a posted term.
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed());
    assert_eq!(report.unposted_nodes, 0);
    // Fabricate a duplicate posting for an existing second-leaf boundary.
    // Find it by scanning: any key whose leaf low == that key.
    let d_outcome = post_index_term(
        &tree,
        1,
        &key(15), // routing keys came from splits around the middle
        pitree_pagestore::PageId(999),
        &SavedPath::default(),
    )
    .unwrap();
    // Whatever boundary key(15) is, the outcome must be a clean noop-class
    // result, never a double insert.
    assert!(
        matches!(
            d_outcome,
            PostOutcome::AlreadyPosted | PostOutcome::NodeGone
        ),
        "{d_outcome:?}"
    );
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn posting_for_consolidated_node_terminates_node_gone() {
    // §5.3 Verify Split: "If not, then the node whose index term is being
    // posted has already been deleted and the action is terminated."
    let mut cfg = PiTreeConfig::small_nodes(6, 6);
    cfg.auto_complete = false;
    cfg.min_utilization = 0.6;
    let (_cs, tree) = setup(cfg);
    for i in 0..30 {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), b"v").unwrap();
        t.commit().unwrap();
    }
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    // Record a real (node, low key) pair from the current structure by
    // probing leaf boundaries through the validator.
    let before = tree.validate().unwrap();
    assert!(before
        .nodes_per_level
        .iter()
        .any(|(l, n)| *l == 0 && *n > 2));

    // Delete most records so consolidations absorb leaves.
    for i in 0..30 {
        if i % 6 != 0 {
            let mut t = tree.begin();
            tree.delete(&mut t, &key(i)).unwrap();
            t.commit().unwrap();
        }
    }
    // Capture the pending consolidations and run them.
    for _ in 0..6 {
        tree.run_completions().unwrap();
    }
    let after = tree.validate().unwrap();
    assert!(after.is_well_formed(), "{:?}", after.violations);
    let consolidations = tree.stats().consolidations.get();
    assert!(
        consolidations > 0,
        "the churn must have consolidated something"
    );

    // Now fire stale postings for every historical boundary key: boundaries
    // whose nodes were absorbed must terminate as NodeGone/AlreadyPosted —
    // and never corrupt the tree.
    let mut gone = 0;
    for i in 0..30u64 {
        let out = post_index_term(
            &tree,
            1,
            &key(i),
            pitree_pagestore::PageId(999),
            &SavedPath::default(),
        )
        .unwrap();
        if out == PostOutcome::NodeGone {
            gone += 1;
        }
        assert!(
            matches!(out, PostOutcome::AlreadyPosted | PostOutcome::NodeGone),
            "key {i}: {out:?}"
        );
    }
    assert!(gone > 0, "some boundaries must have been consolidated away");
    assert!(tree.validate().unwrap().is_well_formed());
}

#[test]
fn queued_completions_survive_being_stale_en_masse() {
    let mut cfg = PiTreeConfig::small_nodes(6, 6);
    cfg.auto_complete = false;
    cfg.min_utilization = 0.5;
    let (_cs, tree) = setup(cfg);
    for i in 0..60 {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), b"v").unwrap();
        t.commit().unwrap();
    }
    // Queue a blanket of redundant consolidations and postings.
    for i in 0..60u64 {
        tree.completions().push(Completion::Consolidate {
            level: 0,
            key: key(i),
        });
        tree.completions().push(Completion::Post {
            level: 1,
            key: key(i),
            node: pitree_pagestore::PageId(2 + i),
            path: Box::new(SavedPath::default()),
        });
    }
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 60);
}

#[test]
fn page_oriented_consolidation_under_concurrency() {
    let mut cfg = PiTreeConfig::small_nodes(8, 8).page_oriented();
    cfg.min_utilization = 0.4;
    let cs = CrashableStore::create(2048, 300_000).unwrap();
    let tree = Arc::new(PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap());
    for i in 0..400u64 {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), b"v").unwrap();
        t.commit().unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in (t..300).step_by(4) {
                    let mut txn = tree.begin();
                    match tree.delete(&mut txn, &key(i)) {
                        Ok(_) => {
                            txn.commit().unwrap();
                        }
                        Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                            txn.abort(None).unwrap();
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            });
        }
    });
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    // Consolidation under PageOriented takes move locks; it must still have
    // made progress (possibly with some deferred-and-retried attempts).
    assert!(tree.stats().consolidations.get() > 0);
}
