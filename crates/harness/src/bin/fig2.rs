//! **Figure 2 reproduction** — "An hB-tree index showing the use of k-d
//! trees for sibling terms. External markers (showing what spaces have been
//! removed in creating 'holes') have been replaced with sibling pointers."
//!
//! This binary grows an hB-tree until index nodes split, then renders an
//! index node's kd-tree fragment — child pointers and sibling pointers as
//! leaves — and machine-checks the figure's structural claims, including the
//! hyperplane-split rule ("one child of the root points to the new
//! sibling").
//!
//! Run with: `cargo run -p pitree-harness --bin fig2`

use pitree::store::CrashableStore;
use pitree_hb::{Frag, HbConfig, HbHeader, HbTree, PtrKind, Rect};
use std::sync::Arc;

fn render(frag: &Frag, rect: &Rect, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match frag {
        Frag::Split { dim, val, lo, hi } => {
            out.push_str(&format!(
                "{pad}kd-split {}={val}\n",
                if *dim == 0 { "x" } else { "y" }
            ));
            render(lo, &rect.half(*dim as usize, *val, false), indent + 1, out);
            render(hi, &rect.half(*dim as usize, *val, true), indent + 1, out);
        }
        Frag::Local => out.push_str(&format!("{pad}(local space)\n")),
        Frag::Ptr {
            kind,
            pid,
            multi_parent,
        } => {
            let k = match kind {
                PtrKind::Child => "child",
                PtrKind::Sibling => "SIBLING",
            };
            out.push_str(&format!(
                "{pad}{k} -> {pid}{}\n",
                if *multi_parent {
                    "  [multi-parent]"
                } else {
                    ""
                }
            ));
        }
    }
}

fn main() {
    println!("Figure 2: hB-tree index node with kd-tree fragment\n");
    let cs = CrashableStore::create(2048, 200_000).unwrap();
    let tree = HbTree::create(Arc::clone(&cs.store), 1, HbConfig::small_nodes(4, 8)).unwrap();
    // A grid plus jitter forces data splits, postings, and eventually index
    // splits (whose hyperplane cut produces the figure's structure).
    for x in 0..14u64 {
        for y in 0..14u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &[x * 64 + 10, y * 64 + 10], b"f2")
                .unwrap();
            t.commit().unwrap();
        }
    }
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);

    // Find an index node whose fragment holds a sibling pointer — the
    // figure's subject.
    let pool = &cs.store.pool;
    let mut stack = vec![tree.root_pid()];
    let mut seen = std::collections::HashSet::new();
    let mut subject: Option<(pitree_pagestore::PageId, HbHeader)> = None;
    let mut any_index_sibling = false;
    while let Some(pid) = stack.pop() {
        if !seen.insert(pid) {
            continue;
        }
        let pin = pool.fetch(pid).unwrap();
        let g = pin.s();
        let hdr = HbHeader::read(&g).unwrap();
        let mut leaves = Vec::new();
        hdr.frag.leaves(&hdr.rect, &mut leaves);
        let has_sibling = leaves.iter().any(|(l, _)| {
            matches!(
                l,
                Frag::Ptr {
                    kind: PtrKind::Sibling,
                    ..
                }
            )
        });
        if hdr.level > 0 && has_sibling {
            any_index_sibling = true;
            if subject.is_none() || hdr.frag.size() > subject.as_ref().unwrap().1.frag.size() {
                subject = Some((pid, hdr.clone()));
            }
        }
        for (l, _) in &leaves {
            if let Frag::Ptr { pid, .. } = l {
                stack.push(*pid);
            }
        }
    }
    let (pid, hdr) = subject.expect("an index node with a sibling term must exist");
    println!("index node {pid} (level {}), kd fragment:\n", hdr.level);
    let mut out = String::new();
    render(&hdr.frag, &hdr.rect, 1, &mut out);
    println!("{out}");

    // Figure claims.
    println!("figure claims:");
    println!(
        "  [ok] index node holds a kd-tree fragment ({} kd nodes)",
        hdr.frag.size()
    );
    println!(
        "  [{}] external markers replaced by sibling pointers (sibling leaf present)",
        if any_index_sibling { "ok" } else { "FAIL" }
    );
    // Hyperplane split shape: the fragment root is a Split whose high side
    // subtree contains the sibling leaf ("one child of the root points to
    // the new sibling").
    let root_is_split = matches!(hdr.frag, Frag::Split { .. });
    println!(
        "  [{}] hyperplane split keeps the local tree root, one child pointing sideways",
        if root_is_split { "ok" } else { "FAIL" }
    );
    println!(
        "\nwell-formed: {}  nodes per level {:?}  multi-parent nodes: {}",
        report.is_well_formed(),
        report.nodes_per_level,
        report.multi_parent_nodes
    );
    assert!(any_index_sibling && root_is_split);
    println!("\nFigure 2 reproduced: all structural claims hold.");
}
