//! The million-key scenario harness (EXPERIMENTS.md S7): every scenario
//! in [`pitree_harness::scenario::matrix`] run at full scale — ≥ 1M
//! preloaded keys over a **file-backed** store with the buffer pool
//! capped at ~1% of the data — against the engines it compares
//! (Π-tree, lock-coupling baseline, TSB-tree, hB-tree), with a
//! deterministic scaled-down twin of the same workload shape gated by
//! pitree-check's differential and durability oracles under 8 seeds.
//!
//! Per scenario the bin emits a versioned `BENCH_scenario_<name>.json`
//! with one record per engine — durable ops/s, p50/p95/p99 op latency
//! (from `pitree-obs`), pool pressure (`buf.evictions` /
//! `buf.writebacks` / hit ratio / `buf.shard_conflicts`), WAL behavior
//! (`wal.forces`, `wal.group_size` p50), and SMO counts — plus an
//! `oracle_twin` block recording the seeds and crash points the twin
//! sweeps covered. A twin failure fails the whole run (exit 1) *after*
//! writing the JSON, so CI sees both the numbers and the verdict.
//!
//! Methodology:
//!
//! - The Π-tree/TSB/hB images are built **once** per tree shape (big
//!   load pool, pipelined commits, `flush_all` + fuzzy checkpoint fence)
//!   and copied per scenario, so scenarios are independent and the
//!   measured phase always starts from the same durable image — the
//!   `mttr` bench's image discipline.
//! - Measured pools are `max(64, data_pages / 128)` frames ≈ 0.78% of
//!   the data (the JSON records the exact `pool_pct`), so eviction,
//!   write-back, and I/O scheduling are live in every measured op.
//! - The in-memory baselines run over the **same** `BufferPool`
//!   machinery (MemDisk-backed) at the same frame count: pool pressure
//!   applies to them too, only durability is off — which biases ops/s
//!   *for* the baselines and makes the Π-tree's showing conservative.
//!   Baselines have no range scan; a scan op is modeled as `scan_len`
//!   point gets (recorded in the JSON as `baseline_scan_model`).
//! - Writes on the Π-tree use the pipelined publish/ack protocol of the
//!   `throughput` bench (depth 8); every published commit is acked
//!   before the clock stops, so ops/s is durable throughput.
//!
//! `--smoke` shrinks the population and deadlines so CI can gate the
//! matrix (JSON shape + twin verdicts) in seconds; `--only NAME` runs a
//! single scenario; `--out-dir DIR` redirects the JSON files.
//!
//! Run with: `cargo run --release -p pitree-harness --bin scenarios`

use pitree::{PiTree, PiTreeConfig, Store};
use pitree_baselines::{ConcurrentIndex, LockCouplingTree};
use pitree_check::{differential_twin, durability_twin, DurConfig};
use pitree_harness::scenario::{hb_twin, matrix, tsb_twin, twin_ops};
use pitree_harness::{EngineSet, KeyStream, Population, ScenarioSpec};
use pitree_hb::{point_key, HbConfig, HbTree, Point, Rect};
use pitree_obs::{Recorder, Stopwatch};
use pitree_sim::SimRng;
use pitree_tsb::{Time, TsbConfig, TsbTree};
use pitree_txnlock::PendingCommit;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// JSON schema version of `BENCH_scenario_*.json`.
const VERSION: u32 = 1;

/// Published-but-unacked commits a writer holds before waiting on the
/// oldest (the `throughput` bench's pipelining protocol).
const PIPELINE_DEPTH: usize = 8;

/// Pool frames while *building* images only; measured phases use the
/// ~1% pool computed from the image size.
const LOAD_POOL_FRAMES: usize = 8192;

/// Baseline node fanout (entries per node) — roughly a 4 KB page of
/// small records, so baseline tree depth matches the Π-tree's.
const BASELINE_FANOUT: usize = 64;

struct Config {
    smoke: bool,
    load_keys: u64,
    value_len: usize,
    ops_target: u64,
    deadline_ns: u64,
    twin_seeds: u64,
    twin_ops: usize,
    twin_domain: u64,
    /// Attribute-space side for the 2-attribute scenario.
    hb_side: u64,
}

impl Config {
    fn full() -> Config {
        Config {
            smoke: false,
            load_keys: 1_000_000,
            value_len: 16,
            ops_target: 40_000,
            deadline_ns: 25_000_000_000,
            twin_seeds: 8,
            twin_ops: 120,
            twin_domain: 96,
            hb_side: 4_096,
        }
    }

    fn smoke() -> Config {
        Config {
            smoke: true,
            load_keys: 3_000,
            value_len: 16,
            ops_target: 1_000,
            deadline_ns: 3_000_000_000,
            twin_seeds: 8,
            twin_ops: 100,
            twin_domain: 64,
            hb_side: 64,
        }
    }
}

fn key_bytes(k: u64) -> [u8; 8] {
    k.to_be_bytes()
}

fn value_bytes(k: u64, len: usize) -> Vec<u8> {
    let mut v = vec![b'v'; len.max(8)];
    v[..8].copy_from_slice(&k.to_be_bytes());
    v
}

/// The i-th point of the deterministic 2-attribute population — the hB
/// image and its Π-tree composite-key strawman hold the same point set.
fn point_for(i: u64, side: u64) -> Point {
    let mut s = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2a77;
    let x = pitree_sim::rng::splitmix64(&mut s) % side;
    let y = pitree_sim::rng::splitmix64(&mut s) % side;
    [x, y]
}

/// Pipelined upsert (publish now, ack later) with deadlock retry.
fn upsert<'t>(tree: &'t PiTree, key: &[u8], value: &[u8]) -> PendingCommit<'t> {
    loop {
        let mut t = tree.begin();
        match tree.insert(&mut t, key, value) {
            Ok(_) => return t.commit_publish(),
            Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                let _ = t.abort(Some(&tree.undo_handler()));
            }
            Err(e) => panic!("upsert failed: {e}"),
        }
    }
}

fn remove<'t>(tree: &'t PiTree, key: &[u8]) -> PendingCommit<'t> {
    loop {
        let mut t = tree.begin();
        match tree.delete(&mut t, key) {
            Ok(_) => return t.commit_publish(),
            Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                let _ = t.abort(Some(&tree.undo_handler()));
            }
            Err(e) => panic!("delete failed: {e}"),
        }
    }
}

fn drain(pending: &mut VecDeque<PendingCommit<'_>>, down_to: usize) {
    while pending.len() > down_to {
        pending
            .pop_front()
            .expect("non-empty pipeline")
            .wait_durable()
            .expect("ack");
    }
}

/// Copy the durable image (`store.db`/`store.log`/`store.master`) so each
/// scenario mutates its own copy of the same fenced image.
fn copy_image(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir image copy");
    for f in ["store.db", "store.log", "store.master"] {
        let s = src.join(f);
        if s.exists() {
            std::fs::copy(&s, dst.join(f)).expect("copy durable file");
        }
    }
}

fn data_pages(dir: &Path) -> u64 {
    std::fs::metadata(dir.join("store.db"))
        .expect("image store.db")
        .len()
        / pitree_pagestore::PAGE_SIZE as u64
}

/// The ≤ 1% pool: `data_pages / 128` (≈ 0.78%), floored at 64 frames so
/// tiny smoke images stay runnable (smoke pools exceed 1%; the JSON's
/// `pool_pct` records the truth either way).
fn scaled_pool(pages: u64) -> usize {
    ((pages / 128).max(64)) as usize
}

// ---- image builders --------------------------------------------------------

fn build_pi_image(dir: &Path, cfg: &Config, composite: bool) -> u64 {
    let store = Store::open_file(dir, LOAD_POOL_FRAMES, 1 << 22).expect("load store");
    let tree = PiTree::create(Arc::clone(&store), 1, PiTreeConfig::default()).expect("tree");
    let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
    for k in 0..cfg.load_keys {
        let key: Vec<u8> = if composite {
            point_key(&point_for(k, cfg.hb_side))
        } else {
            key_bytes(k).to_vec()
        };
        pending.push_back(upsert(&tree, &key, &value_bytes(k, cfg.value_len)));
        if pending.len() >= PIPELINE_DEPTH {
            drain(&mut pending, PIPELINE_DEPTH - 1);
        }
    }
    drain(&mut pending, 0);
    drop(pending);
    store.pool.flush_all().expect("flush image");
    store.txns.checkpoint().expect("checkpoint image");
    drop(tree);
    drop(store);
    data_pages(dir)
}

/// Build the TSB image: version 0 of every key, a time fence `t_past`,
/// then a 10% update wave — so as-of reads at `t_past` traverse history.
fn build_tsb_image(dir: &Path, cfg: &Config) -> (u64, Time) {
    let store = Store::open_file(dir, LOAD_POOL_FRAMES, 1 << 22).expect("load store");
    let tree = TsbTree::create(Arc::clone(&store), 1, TsbConfig::default()).expect("tsb tree");
    let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
    for k in 0..cfg.load_keys {
        let mut t = tree.begin();
        tree.put(&mut t, &key_bytes(k), &value_bytes(k, cfg.value_len))
            .expect("tsb put");
        pending.push_back(t.commit_publish());
        if pending.len() >= PIPELINE_DEPTH {
            drain(&mut pending, PIPELINE_DEPTH - 1);
        }
    }
    drain(&mut pending, 0);
    let t_past = tree.now();
    for k in (0..cfg.load_keys).step_by(10) {
        let mut t = tree.begin();
        tree.put(&mut t, &key_bytes(k), &value_bytes(k + 1, cfg.value_len))
            .expect("tsb update");
        pending.push_back(t.commit_publish());
        if pending.len() >= PIPELINE_DEPTH {
            drain(&mut pending, PIPELINE_DEPTH - 1);
        }
    }
    drain(&mut pending, 0);
    drop(pending);
    store.pool.flush_all().expect("flush image");
    store.txns.checkpoint().expect("checkpoint image");
    drop(tree);
    drop(store);
    (data_pages(dir), t_past)
}

fn build_hb_image(dir: &Path, cfg: &Config) -> u64 {
    let store = Store::open_file(dir, LOAD_POOL_FRAMES, 1 << 22).expect("load store");
    let tree = HbTree::create(Arc::clone(&store), 1, HbConfig::default()).expect("hb tree");
    let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
    for k in 0..cfg.load_keys {
        let p = point_for(k, cfg.hb_side);
        let mut t = tree.begin();
        tree.insert(&mut t, &p, &value_bytes(k, cfg.value_len))
            .expect("hb insert");
        pending.push_back(t.commit_publish());
        if pending.len() >= PIPELINE_DEPTH {
            drain(&mut pending, PIPELINE_DEPTH - 1);
        }
    }
    drain(&mut pending, 0);
    drop(pending);
    store.pool.flush_all().expect("flush image");
    store.txns.checkpoint().expect("checkpoint image");
    drop(tree);
    drop(store);
    data_pages(dir)
}

// ---- measured phases -------------------------------------------------------

#[derive(Default)]
struct EngineResult {
    name: &'static str,
    ops: u64,
    elapsed_ns: u64,
    p50: u64,
    p95: u64,
    p99: u64,
    pool_hits: u64,
    pool_misses: u64,
    evictions: u64,
    writebacks: u64,
    shard_conflicts: u64,
    forces: u64,
    group_size_p50: u64,
    splits: u64,
    consolidations: u64,
}

impl EngineResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }
}

struct PoolBase {
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
    shard_conflicts: u64,
}

fn pool_base(rec: &Recorder) -> PoolBase {
    PoolBase {
        hits: rec.counter("buf.hits").get(),
        misses: rec.counter("buf.misses").get(),
        evictions: rec.counter("buf.evictions").get(),
        writebacks: rec.counter("buf.writebacks").get(),
        shard_conflicts: rec.counter("buf.shard_conflicts").get(),
    }
}

fn fill_pool_delta(r: &mut EngineResult, rec: &Recorder, base: &PoolBase) {
    r.pool_hits = rec.counter("buf.hits").get() - base.hits;
    r.pool_misses = rec.counter("buf.misses").get() - base.misses;
    r.evictions = rec.counter("buf.evictions").get() - base.evictions;
    r.writebacks = rec.counter("buf.writebacks").get() - base.writebacks;
    r.shard_conflicts = rec.counter("buf.shard_conflicts").get() - base.shard_conflicts;
}

/// Where a disk-backed phase runs: the prebuilt image it copies, the
/// scratch dir it copies into, and the (≤ 1%) pool it reopens at.
struct PhaseIo<'a> {
    image: &'a Path,
    dir: &'a Path,
    pool_frames: usize,
}

/// Π-tree phase over a copied image: the standard point/scan mix with
/// pipelined write commits, every published commit acked before the
/// clock stops.
fn run_pi_phase(
    spec: &ScenarioSpec,
    io: &PhaseIo<'_>,
    cfg: &Config,
    pop: Population,
    seed: u64,
) -> EngineResult {
    let (image, dir, pool_frames) = (io.image, io.dir, io.pool_frames);
    copy_image(image, dir);
    let store = Store::open_file(dir, pool_frames, 1 << 22).expect("reopen");
    let (tree, _stats) =
        PiTree::recover(Arc::clone(&store), 1, PiTreeConfig::default()).expect("recover");
    let rec = store.recorder().clone();
    let hist = rec.hist("scen.op_ns");
    let base = pool_base(&rec);
    let forces0 = rec.counter("wal.forces").get();
    let splits0 = tree.stats().splits.get();
    let cons0 = tree.stats().consolidations.get();

    let mut rng = SimRng::new(seed);
    let mut stream = KeyStream::new(spec.access, pop.key_space, pop.load_keys);
    let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
    let mut ops = 0u64;
    let wall = Stopwatch::start();
    while ops < cfg.ops_target && wall.elapsed_ns() < cfg.deadline_ns {
        let roll = rng.below(100) as u32;
        let m = &spec.mix;
        let t0 = Stopwatch::start();
        if roll < m.get {
            let k = stream.next_existing(&mut rng);
            let _ = tree.get_unlocked(&key_bytes(k)).expect("get");
        } else if roll < m.get + m.insert {
            let k = stream.next(&mut rng);
            pending.push_back(upsert(&tree, &key_bytes(k), &value_bytes(k, cfg.value_len)));
        } else if roll < m.get + m.insert + m.delete {
            let k = stream.next(&mut rng);
            pending.push_back(remove(&tree, &key_bytes(k)));
        } else {
            let lo = stream.next_existing(&mut rng);
            let _ = tree
                .scan(&key_bytes(lo), &key_bytes(lo + m.scan_len))
                .expect("scan");
        }
        if pending.len() >= PIPELINE_DEPTH {
            drain(&mut pending, PIPELINE_DEPTH - 1);
        }
        hist.record(t0.elapsed_ns());
        ops += 1;
    }
    drain(&mut pending, 0);
    drop(pending);
    let elapsed_ns = wall.elapsed_ns();

    let (p50, p95, p99, _) = hist.percentiles();
    let (gs50, _, _, _) = rec.hist("wal.group_size").percentiles();
    let mut r = EngineResult {
        name: "pi-tree",
        ops,
        elapsed_ns,
        p50,
        p95,
        p99,
        forces: rec.counter("wal.forces").get() - forces0,
        group_size_p50: gs50,
        splits: tree.stats().splits.get() - splits0,
        consolidations: tree.stats().consolidations.get() - cons0,
        ..EngineResult::default()
    };
    fill_pool_delta(&mut r, &rec, &base);
    drop(tree);
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
    r
}

/// Lock-coupling baseline phase: same pool frames, same mix; scans are
/// modeled as `scan_len` point gets (the baselines expose no range
/// scan), counted as one op.
fn run_lc_phase(
    spec: &ScenarioSpec,
    pool_frames: usize,
    cfg: &Config,
    pop: Population,
    seed: u64,
) -> EngineResult {
    let lc = LockCouplingTree::new(pool_frames, BASELINE_FANOUT);
    for k in 0..pop.load_keys {
        lc.insert(&key_bytes(k), &value_bytes(k, cfg.value_len));
    }
    let rec = lc.pool().recorder().clone();
    let hist = rec.hist("scen.op_ns");
    let base = pool_base(&rec);

    let mut rng = SimRng::new(seed);
    let mut stream = KeyStream::new(spec.access, pop.key_space, pop.load_keys);
    let mut ops = 0u64;
    let wall = Stopwatch::start();
    while ops < cfg.ops_target && wall.elapsed_ns() < cfg.deadline_ns {
        let roll = rng.below(100) as u32;
        let m = &spec.mix;
        let t0 = Stopwatch::start();
        if roll < m.get {
            let k = stream.next_existing(&mut rng);
            let _ = lc.get(&key_bytes(k));
        } else if roll < m.get + m.insert {
            let k = stream.next(&mut rng);
            lc.insert(&key_bytes(k), &value_bytes(k, cfg.value_len));
        } else if roll < m.get + m.insert + m.delete {
            let k = stream.next(&mut rng);
            let _ = lc.delete(&key_bytes(k));
        } else {
            let lo = stream.next_existing(&mut rng);
            for k in lo..lo + m.scan_len {
                let _ = lc.get(&key_bytes(k));
            }
        }
        hist.record(t0.elapsed_ns());
        ops += 1;
    }
    let elapsed_ns = wall.elapsed_ns();
    let (p50, p95, p99, _) = hist.percentiles();
    let mut r = EngineResult {
        name: "lock-coupling",
        ops,
        elapsed_ns,
        p50,
        p95,
        p99,
        ..EngineResult::default()
    };
    fill_pool_delta(&mut r, &rec, &base);
    r
}

/// TSB-tree phase: as-of reads/scans split between the historical fence
/// and now, forced-commit puts.
fn run_tsb_phase(
    spec: &ScenarioSpec,
    io: &PhaseIo<'_>,
    cfg: &Config,
    pop: Population,
    seed: u64,
    t_past: Time,
) -> EngineResult {
    let (image, dir, pool_frames) = (io.image, io.dir, io.pool_frames);
    copy_image(image, dir);
    let store = Store::open_file(dir, pool_frames, 1 << 22).expect("reopen tsb");
    let (tree, _stats) =
        TsbTree::recover(Arc::clone(&store), 1, TsbConfig::default()).expect("tsb recover");
    let rec = store.recorder().clone();
    let hist = rec.hist("scen.op_ns");
    let base = pool_base(&rec);
    let forces0 = rec.counter("wal.forces").get();

    let mut rng = SimRng::new(seed);
    let mut stream = KeyStream::new(spec.access, pop.key_space, pop.load_keys);
    let mut ops = 0u64;
    let wall = Stopwatch::start();
    while ops < cfg.ops_target && wall.elapsed_ns() < cfg.deadline_ns {
        let roll = rng.below(100) as u32;
        let m = &spec.mix;
        let as_of = if rng.chance(0.5) { t_past } else { tree.now() };
        let t0 = Stopwatch::start();
        if roll < m.get {
            let k = stream.next_existing(&mut rng);
            let _ = tree.get_as_of(&key_bytes(k), as_of).expect("as-of get");
        } else if roll < m.get + m.insert {
            let k = stream.next(&mut rng);
            let mut t = tree.begin();
            tree.put(&mut t, &key_bytes(k), &value_bytes(k, cfg.value_len))
                .expect("put");
            t.commit().expect("commit");
        } else {
            let lo = stream.next_existing(&mut rng);
            let _ = tree
                .scan_as_of(&key_bytes(lo), &key_bytes(lo + m.scan_len), as_of)
                .expect("as-of scan");
        }
        hist.record(t0.elapsed_ns());
        ops += 1;
    }
    let elapsed_ns = wall.elapsed_ns();
    let (p50, p95, p99, _) = hist.percentiles();
    let mut r = EngineResult {
        name: "tsb-tree",
        ops,
        elapsed_ns,
        p50,
        p95,
        p99,
        forces: rec.counter("wal.forces").get() - forces0,
        splits: tree.stats().splits.get(),
        ..EngineResult::default()
    };
    fill_pool_delta(&mut r, &rec, &base);
    drop(tree);
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
    r
}

/// hB-tree phase: true 2-attribute window queries plus point inserts.
fn run_hb_phase(io: &PhaseIo<'_>, cfg: &Config, spec: &ScenarioSpec, seed: u64) -> EngineResult {
    let (image, dir, pool_frames) = (io.image, io.dir, io.pool_frames);
    copy_image(image, dir);
    let store = Store::open_file(dir, pool_frames, 1 << 22).expect("reopen hb");
    let (tree, _stats) =
        HbTree::recover(Arc::clone(&store), 1, HbConfig::default()).expect("hb recover");
    let rec = store.recorder().clone();
    let hist = rec.hist("scen.op_ns");
    let base = pool_base(&rec);
    let forces0 = rec.counter("wal.forces").get();

    let mut rng = SimRng::new(seed);
    let edge = spec.mix.scan_len.max(1);
    let mut ops = 0u64;
    let mut next_new = cfg.load_keys;
    let wall = Stopwatch::start();
    while ops < cfg.ops_target && wall.elapsed_ns() < cfg.deadline_ns {
        let roll = rng.below(100) as u32;
        let t0 = Stopwatch::start();
        if roll < spec.mix.insert {
            let p = point_for(next_new, cfg.hb_side);
            next_new += 1;
            let mut t = tree.begin();
            tree.insert(&mut t, &p, &value_bytes(next_new, cfg.value_len))
                .expect("hb insert");
            t.commit().expect("commit");
        } else {
            let lo = [
                rng.below(cfg.hb_side.saturating_sub(edge).max(1)),
                rng.below(cfg.hb_side.saturating_sub(edge).max(1)),
            ];
            let w = Rect {
                lo,
                hi: [lo[0] + edge, lo[1] + edge],
            };
            let _ = tree.window_query(&w).expect("window query");
        }
        hist.record(t0.elapsed_ns());
        ops += 1;
    }
    let elapsed_ns = wall.elapsed_ns();
    let (p50, p95, p99, _) = hist.percentiles();
    let mut r = EngineResult {
        name: "hb-tree",
        ops,
        elapsed_ns,
        p50,
        p95,
        p99,
        forces: rec.counter("wal.forces").get() - forces0,
        splits: tree.stats().splits.get(),
        ..EngineResult::default()
    };
    fill_pool_delta(&mut r, &rec, &base);
    drop(tree);
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
    r
}

/// The multi-attribute strawman: a Π-tree over the concatenated `(x, y)`
/// key answers a window query by scanning the whole x-slab and filtering
/// y — exactly the composite-index weakness the hB-tree removes.
fn run_pi_xy_phase(io: &PhaseIo<'_>, cfg: &Config, spec: &ScenarioSpec, seed: u64) -> EngineResult {
    let (image, dir, pool_frames) = (io.image, io.dir, io.pool_frames);
    copy_image(image, dir);
    let store = Store::open_file(dir, pool_frames, 1 << 22).expect("reopen pi-xy");
    let (tree, _stats) =
        PiTree::recover(Arc::clone(&store), 1, PiTreeConfig::default()).expect("recover");
    let rec = store.recorder().clone();
    let hist = rec.hist("scen.op_ns");
    let base = pool_base(&rec);
    let forces0 = rec.counter("wal.forces").get();

    let mut rng = SimRng::new(seed);
    let edge = spec.mix.scan_len.max(1);
    let mut ops = 0u64;
    let mut next_new = cfg.load_keys;
    let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
    let wall = Stopwatch::start();
    while ops < cfg.ops_target && wall.elapsed_ns() < cfg.deadline_ns {
        let roll = rng.below(100) as u32;
        let t0 = Stopwatch::start();
        if roll < spec.mix.insert {
            let p = point_for(next_new, cfg.hb_side);
            next_new += 1;
            pending.push_back(upsert(
                &tree,
                &point_key(&p),
                &value_bytes(next_new, cfg.value_len),
            ));
            if pending.len() >= PIPELINE_DEPTH {
                drain(&mut pending, PIPELINE_DEPTH - 1);
            }
        } else {
            let lo = [
                rng.below(cfg.hb_side.saturating_sub(edge).max(1)),
                rng.below(cfg.hb_side.saturating_sub(edge).max(1)),
            ];
            // Scan the full x-slab [x_lo, x_lo+edge) × all y, filter y.
            let slab = tree
                .scan(&point_key(&[lo[0], 0]), &point_key(&[lo[0] + edge, 0]))
                .expect("slab scan");
            let _hits = slab
                .iter()
                .filter(|(k, _)| {
                    let y = u64::from_be_bytes(k[8..16].try_into().expect("16-byte key"));
                    y >= lo[1] && y < lo[1] + edge
                })
                .count();
        }
        hist.record(t0.elapsed_ns());
        ops += 1;
    }
    drain(&mut pending, 0);
    drop(pending);
    let elapsed_ns = wall.elapsed_ns();
    let (p50, p95, p99, _) = hist.percentiles();
    let mut r = EngineResult {
        name: "pi-tree-xy",
        ops,
        elapsed_ns,
        p50,
        p95,
        p99,
        forces: rec.counter("wal.forces").get() - forces0,
        splits: tree.stats().splits.get(),
        ..EngineResult::default()
    };
    fill_pool_delta(&mut r, &rec, &base);
    drop(tree);
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
    r
}

// ---- oracle twins ----------------------------------------------------------

struct TwinSummary {
    seeds: u64,
    diff_ops: usize,
    dur_fault_points: u64,
    dur_crash_points: usize,
    engine_twin: &'static str,
}

/// Run every oracle twin for a scenario across the seed battery. The
/// first failure aborts with a replayable description.
fn run_twins(spec: &ScenarioSpec, base_seed: u64, cfg: &Config) -> Result<TwinSummary, String> {
    let dur_cfg = DurConfig {
        max_crash_points: 6,
        ..DurConfig::default()
    };
    let mut summary = TwinSummary {
        seeds: cfg.twin_seeds,
        diff_ops: 0,
        dur_fault_points: 0,
        dur_crash_points: 0,
        engine_twin: "none",
    };
    for s in 0..cfg.twin_seeds {
        let seed = base_seed ^ (s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let ops = twin_ops(spec, seed, cfg.twin_ops, cfg.twin_domain);
        let d = differential_twin(&ops, seed).map_err(|v| v.to_string())?;
        summary.diff_ops += d.ops;
        let r = durability_twin(&ops, seed, &dur_cfg).map_err(|v| v.to_string())?;
        summary.dur_fault_points += r.fault_points;
        summary.dur_crash_points += r.crash_points_tested;
        match spec.engines {
            EngineSet::Temporal => {
                tsb_twin(seed)?;
                summary.engine_twin = "tsb";
            }
            EngineSet::MultiAttr => {
                hb_twin(seed)?;
                summary.engine_twin = "hb";
            }
            EngineSet::PointVsBaselines => {}
        }
    }
    Ok(summary)
}

// ---- orchestration ---------------------------------------------------------

struct Images {
    pi: Option<(PathBuf, u64)>,
    pi_xy: Option<(PathBuf, u64)>,
    tsb: Option<(PathBuf, u64, Time)>,
    hb: Option<(PathBuf, u64)>,
}

fn json_engine(r: &EngineResult) -> String {
    format!(
        "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.0}, \
         \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"pool_hits\": {}, \
         \"pool_misses\": {}, \"evictions\": {}, \"writebacks\": {}, \
         \"shard_conflicts\": {}, \"forces\": {}, \"group_size_p50\": {}, \"splits\": {}, \
         \"consolidations\": {}}}",
        r.name,
        r.ops,
        r.elapsed_ns,
        r.ops_per_sec(),
        r.p50,
        r.p95,
        r.p99,
        r.pool_hits,
        r.pool_misses,
        r.evictions,
        r.writebacks,
        r.shard_conflicts,
        r.forces,
        r.group_size_p50,
        r.splits,
        r.consolidations,
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    out_dir: &Path,
    spec: &ScenarioSpec,
    cfg: &Config,
    pop: Population,
    pool_frames: usize,
    pages: u64,
    engines: &[EngineResult],
    twin: &Result<TwinSummary, String>,
) -> PathBuf {
    let pool_pct = pool_frames as f64 * 100.0 / pages.max(1) as f64;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"scenario\",\n  \"scenario\": \"{}\",\n  \"version\": {},\n  \
         \"mode\": \"{}\",\n  \"what\": \"{}\",\n",
        spec.name,
        VERSION,
        if cfg.smoke { "smoke" } else { "full" },
        spec.what.replace('"', "'"),
    ));
    json.push_str(&format!(
        "  \"config\": {{\"load_keys\": {}, \"key_space\": {}, \"value_len\": {}, \
         \"pool_frames\": {}, \"data_pages\": {}, \"pool_pct\": {:.2}, \
         \"ops_target\": {}, \"deadline_ns\": {}, \"mix\": \"{}\", \"access\": \"{}\", \
         \"pipeline_depth\": {}, \"baseline_fanout\": {}, \
         \"baseline_scan_model\": \"scan_len point gets\"}},\n",
        pop.load_keys,
        pop.key_space,
        cfg.value_len,
        pool_frames,
        pages,
        pool_pct,
        cfg.ops_target,
        cfg.deadline_ns,
        spec.mix.describe(),
        spec.access.describe(),
        PIPELINE_DEPTH,
        BASELINE_FANOUT,
    ));
    json.push_str("  \"engines\": [\n");
    for (i, r) in engines.iter().enumerate() {
        json.push_str(&json_engine(r));
        json.push_str(if i + 1 == engines.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    match twin {
        Ok(t) => json.push_str(&format!(
            "  \"oracle_twin\": {{\"status\": \"pass\", \"seeds\": {}, \
             \"differential_ops\": {}, \"durability_fault_points\": {}, \
             \"durability_crash_points\": {}, \"engine_twin\": \"{}\"}}\n",
            t.seeds, t.diff_ops, t.dur_fault_points, t.dur_crash_points, t.engine_twin,
        )),
        Err(e) => json.push_str(&format!(
            "  \"oracle_twin\": {{\"status\": \"fail\", \"detail\": \"{}\"}}\n",
            e.replace('"', "'"),
        )),
    }
    json.push_str("}\n");
    let path = out_dir.join(format!(
        "BENCH_scenario_{}.json",
        spec.name.replace('-', "_")
    ));
    std::fs::write(&path, &json).expect("write scenario json");
    path
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from(".");
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => out_dir = PathBuf::from(args.next().expect("--out-dir needs a path")),
            "--only" => only = Some(args.next().expect("--only needs a scenario name")),
            other => panic!(
                "unknown arg {other} (usage: scenarios [--smoke] [--out-dir DIR] [--only NAME])"
            ),
        }
    }
    let cfg = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let scratch = std::env::temp_dir().join(format!("pitree-scenarios-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch");

    let specs: Vec<_> = matrix()
        .into_iter()
        .filter(|s| only.as_deref().is_none_or(|n| n == s.name))
        .collect();
    assert!(!specs.is_empty(), "no scenario matches --only filter");

    // Build each tree shape's image once, only if some scenario needs it.
    let mut images = Images {
        pi: None,
        pi_xy: None,
        tsb: None,
        hb: None,
    };
    for spec in &specs {
        match spec.engines {
            EngineSet::PointVsBaselines | EngineSet::Temporal => {
                if images.pi.is_none() {
                    let dir = scratch.join("img-pi");
                    let t = Stopwatch::start();
                    let pages = build_pi_image(&dir, &cfg, false);
                    eprintln!(
                        "image pi: {} keys, {} pages ({} MB), {} ms",
                        cfg.load_keys,
                        pages,
                        pages * 4096 / (1 << 20),
                        t.elapsed_ns() / 1_000_000
                    );
                    images.pi = Some((dir, pages));
                }
                if spec.engines == EngineSet::Temporal && images.tsb.is_none() {
                    let dir = scratch.join("img-tsb");
                    let t = Stopwatch::start();
                    let (pages, t_past) = build_tsb_image(&dir, &cfg);
                    eprintln!(
                        "image tsb: {} keys (+10% updates), {} pages, {} ms",
                        cfg.load_keys,
                        pages,
                        t.elapsed_ns() / 1_000_000
                    );
                    images.tsb = Some((dir, pages, t_past));
                }
            }
            EngineSet::MultiAttr => {
                if images.hb.is_none() {
                    let dir = scratch.join("img-hb");
                    let t = Stopwatch::start();
                    let pages = build_hb_image(&dir, &cfg);
                    eprintln!(
                        "image hb: {} points, {} pages, {} ms",
                        cfg.load_keys,
                        pages,
                        t.elapsed_ns() / 1_000_000
                    );
                    images.hb = Some((dir, pages));
                }
                if images.pi_xy.is_none() {
                    let dir = scratch.join("img-pi-xy");
                    let t = Stopwatch::start();
                    let pages = build_pi_image(&dir, &cfg, true);
                    eprintln!(
                        "image pi-xy: {} points, {} pages, {} ms",
                        cfg.load_keys,
                        pages,
                        t.elapsed_ns() / 1_000_000
                    );
                    images.pi_xy = Some((dir, pages));
                }
            }
        }
    }

    let pop = Population::dense(cfg.load_keys);
    let mut failures = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let seed = 0x5c3a_0000 ^ (i as u64) << 8;
        let run_dir = scratch.join(format!("run-{}", spec.name));
        let mut engines = Vec::new();
        let (pages, pool_frames) = match spec.engines {
            EngineSet::PointVsBaselines => {
                let (image, pages) = images.pi.as_ref().expect("pi image built");
                let pool = scaled_pool(*pages);
                let io = PhaseIo {
                    image,
                    dir: &run_dir,
                    pool_frames: pool,
                };
                engines.push(run_pi_phase(spec, &io, &cfg, pop, seed));
                engines.push(run_lc_phase(spec, pool, &cfg, pop, seed));
                (*pages, pool)
            }
            EngineSet::Temporal => {
                let (tsb_image, tsb_pages, t_past) = images.tsb.as_ref().expect("tsb image");
                let pool = scaled_pool(*tsb_pages);
                let tsb_io = PhaseIo {
                    image: tsb_image,
                    dir: &run_dir,
                    pool_frames: pool,
                };
                engines.push(run_tsb_phase(spec, &tsb_io, &cfg, pop, seed, *t_past));
                let (pi_image, pi_pages) = images.pi.as_ref().expect("pi image");
                let pi_io = PhaseIo {
                    image: pi_image,
                    dir: &run_dir,
                    pool_frames: scaled_pool(*pi_pages),
                };
                engines.push(run_pi_phase(spec, &pi_io, &cfg, pop, seed));
                engines.push(run_lc_phase(spec, pool, &cfg, pop, seed));
                (*tsb_pages, pool)
            }
            EngineSet::MultiAttr => {
                let (hb_image, hb_pages) = images.hb.as_ref().expect("hb image");
                let pool = scaled_pool(*hb_pages);
                let hb_io = PhaseIo {
                    image: hb_image,
                    dir: &run_dir,
                    pool_frames: pool,
                };
                engines.push(run_hb_phase(&hb_io, &cfg, spec, seed));
                let (xy_image, xy_pages) = images.pi_xy.as_ref().expect("pi-xy image");
                let xy_io = PhaseIo {
                    image: xy_image,
                    dir: &run_dir,
                    pool_frames: scaled_pool(*xy_pages),
                };
                engines.push(run_pi_xy_phase(&xy_io, &cfg, spec, seed));
                (*hb_pages, pool)
            }
        };

        let twin = run_twins(spec, seed, &cfg);
        let path = emit_json(
            &out_dir,
            spec,
            &cfg,
            pop,
            pool_frames,
            pages,
            &engines,
            &twin,
        );
        let lead = &engines[0];
        eprintln!(
            "{:<12} {:>9.0} ops/s ({}) p50 {:>7}ns p99 {:>9}ns evict {:>7} twin {}  -> {}",
            spec.name,
            lead.ops_per_sec(),
            lead.name,
            lead.p50,
            lead.p99,
            lead.evictions,
            if twin.is_ok() { "pass" } else { "FAIL" },
            path.display(),
        );
        if let Err(e) = twin {
            failures.push(format!("{}: {e}", spec.name));
        }
    }

    let _ = std::fs::remove_dir_all(&scratch);
    if !failures.is_empty() {
        eprintln!("oracle twin failures:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
