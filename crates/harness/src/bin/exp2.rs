//! **Experiment E2** — §1 point 3 / §6: "all update activity and structure
//! change activity above the data level executes in short independent
//! atomic actions which do not impede normal database activity."
//!
//! The write-ahead log is the ground truth for action decomposition: every
//! atomic action's updates form a chain. This experiment runs a split-heavy
//! workload, then *scans the log* and reports, per action class, how many
//! actions ran, how many page updates each contained, and how many distinct
//! pages each touched — versus the monolithic alternative (one subtree-wide
//! action per complete structure change), computed from the same log by
//! fusing each split with its posting.
//!
//! Run with: `cargo run --release -p pitree-harness --bin exp2`

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_harness::Table;
use pitree_wal::{ActionId, ActionIdentity, RecordKind};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

fn main() {
    println!("E2: atomic-action decomposition, measured from the write-ahead log\n");
    let cfg = PiTreeConfig::small_nodes(8, 8);
    let cs = CrashableStore::create(4096, 1 << 20).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    const KEYS: u64 = 5_000;
    for i in 0..KEYS {
        let mut t = tree.begin();
        tree.insert(&mut t, &i.to_be_bytes(), b"v").unwrap();
        t.commit().unwrap();
    }
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    assert!(tree.validate().unwrap().is_well_formed());

    // Scan the log, grouping updates by action.
    struct Acc {
        identity: ActionIdentity,
        updates: usize,
        pages: HashSet<pitree_pagestore::PageId>,
    }
    let mut actions: HashMap<ActionId, Acc> = HashMap::new();
    for rec in cs.store.log.scan(None).expect("scan") {
        match rec.kind {
            RecordKind::Begin { identity } => {
                actions.insert(
                    rec.action,
                    Acc {
                        identity,
                        updates: 0,
                        pages: HashSet::new(),
                    },
                );
            }
            RecordKind::Update { pid, .. } => {
                if let Some(a) = actions.get_mut(&rec.action) {
                    a.updates += 1;
                    a.pages.insert(pid);
                }
            }
            _ => {}
        }
    }

    let mut table = Table::new(&[
        "action class",
        "actions",
        "avg updates",
        "max updates",
        "avg pages",
        "max pages",
    ]);
    for (label, want_txn) in [("user transaction", true), ("SMO atomic action", false)] {
        let group: Vec<&Acc> = actions
            .values()
            .filter(|a| (a.identity == ActionIdentity::Transaction) == want_txn)
            .filter(|a| a.updates > 0)
            .collect();
        let n = group.len().max(1);
        let tot_u: usize = group.iter().map(|a| a.updates).sum();
        let max_u = group.iter().map(|a| a.updates).max().unwrap_or(0);
        let tot_p: usize = group.iter().map(|a| a.pages.len()).sum();
        let max_p = group.iter().map(|a| a.pages.len()).max().unwrap_or(0);
        table.row(&[
            label.into(),
            group.len().to_string(),
            format!("{:.1}", tot_u as f64 / n as f64),
            max_u.to_string(),
            format!("{:.1}", tot_p as f64 / n as f64),
            max_p.to_string(),
        ]);
    }
    table.print();

    // The monolithic alternative: a complete structure change = the split
    // action plus the posting action(s) it triggers, executed as ONE unit
    // that holds everything it touches until the end (and, ARIES/IM-style,
    // serialized against every other SMO). Estimate its footprint by fusing
    // consecutive SMO actions that share a page.
    let mut smo: Vec<&Acc> = actions
        .values()
        .filter(|a| a.identity != ActionIdentity::Transaction && a.updates > 0)
        .collect();
    smo.sort_by_key(|a| std::cmp::Reverse(a.updates));
    let splits = tree.stats().splits.get();
    let posts = tree.stats().postings_done.get();
    let avg_smo_pages: f64 =
        smo.iter().map(|a| a.pages.len()).sum::<usize>() as f64 / smo.len().max(1) as f64;

    println!("\nstructure changes observed: {splits} splits, {posts} postings");
    println!(
        "decomposed: each SMO action exclusively holds {avg_smo_pages:.1} pages on average, \
         committing immediately;"
    );
    println!(
        "monolithic equivalent: a split + its posting chain held together would hold \
         ~{:.1} pages,",
        avg_smo_pages * 2.0
    );
    println!(
        "and (per ARIES/IM [14]) complete structure changes would be *serial* — one at \
         a time tree-wide,\nwhile this run executed {} independent SMO actions freely \
         interleaved with user transactions.",
        smo.len()
    );
    println!(
        "\nexpected shape: SMO actions are small (a handful of pages) and bounded —\n\
         never escalating with tree size — and user transactions never contain\n\
         interior-node updates (compare max pages across the two classes)."
    );
}
