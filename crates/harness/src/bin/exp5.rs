//! **Experiment E5** — §5.2: the consolidation invariants' traversal cost.
//! CNS holds one latch at a time; CP requires latch coupling (two latches
//! held at every step). The two de-allocation treatments of §5.2.2 then
//! determine how much saved path state re-traversals can trust.
//!
//! Measures search throughput (single- and multi-threaded) over identical
//! trees under each policy, plus the posting re-traversal footprint.
//!
//! Run with: `cargo run --release -p pitree-harness --bin exp5`

use pitree::{ConsolidationPolicy, CrashableStore, DeallocPolicy, PiTree, PiTreeConfig};
use pitree_harness::{KeyDist, Table, Workload};
use pitree_obs::Stopwatch;
use std::sync::Arc;

const KEYS: u64 = 30_000;
const SEARCHES: u64 = 200_000;

fn build(cfg: PiTreeConfig) -> (CrashableStore, Arc<PiTree>) {
    let cs = CrashableStore::create(8192, 1 << 20).unwrap();
    let tree = Arc::new(PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap());
    for i in 0..KEYS {
        let mut t = tree.begin();
        tree.insert(&mut t, &i.to_be_bytes(), b"v").unwrap();
        t.commit().unwrap();
    }
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    (cs, tree)
}

fn searches(tree: &Arc<PiTree>, threads: u64) -> f64 {
    let per = SEARCHES / threads;
    let start = Stopwatch::start();
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = Arc::clone(tree);
            s.spawn(move || {
                let mut w = Workload::new(KeyDist::Uniform, KEYS, 5000 + t);
                for _ in 0..per {
                    let _ = tree.get_unlocked(&w.next_key()).unwrap();
                }
            });
        }
    });
    SEARCHES as f64 / (start.elapsed_ns() as f64 / 1e9)
}

fn main() {
    println!("E5: consolidation invariant (CNS vs CP) traversal cost, {KEYS} keys\n");
    let mut table = Table::new(&[
        "policy",
        "search/s 1thr",
        "search/s 8thr",
        "nodes/posting",
        "saved-path hits",
        "saved-path misses",
    ]);
    for (name, consolidation) in [
        ("CNS (no consolidation)", ConsolidationPolicy::Disabled),
        (
            "CP, dealloc=update",
            ConsolidationPolicy::Enabled {
                dealloc: DeallocPolicy::IsAnUpdate,
            },
        ),
        (
            "CP, dealloc=not-update",
            ConsolidationPolicy::Enabled {
                dealloc: DeallocPolicy::NotAnUpdate,
            },
        ),
    ] {
        let mut cfg = PiTreeConfig::small_nodes(32, 32);
        cfg.consolidation = consolidation;
        let (_cs, tree) = build(cfg);
        let s1 = searches(&tree, 1);
        let s8 = searches(&tree, 8);
        let stats = tree.stats();
        let posts = stats.postings_done.get().max(1);
        let touched = stats.posting_nodes_touched.get();
        table.row(&[
            name.into(),
            format!("{s1:.0}"),
            format!("{s8:.0}"),
            format!("{:.2}", touched as f64 / posts as f64),
            stats.saved_path_hits.get().to_string(),
            stats.saved_path_misses.get().to_string(),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: CNS searches run fastest (one latch per step; §5.2.1);\n\
         CP pays for latch coupling. For postings, CNS and dealloc=update start at\n\
         the remembered parent (~1-2 nodes touched), while dealloc=not-update must\n\
         re-descend from the root (nodes/posting ≈ tree height; §5.2.2)."
    );
}
