//! **Experiment E3** — §1 point 4: "When a system crash occurs during the
//! sequence of atomic actions that constitutes a complete Π-tree structure
//! change, crash recovery takes no special measures."
//!
//! Runs a split-heavy workload, then crashes at every k-th durable-log
//! record boundary (plus torn mid-record positions). For each crash point:
//! recover, validate well-formedness, count surviving intermediate states,
//! and verify lazy completion resolves them. Reports aggregate statistics.
//!
//! Run with: `cargo run --release -p pitree-harness --bin exp3`

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_harness::Table;
use pitree_obs::Stopwatch;
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn main() {
    println!("E3: crash-point sweep during structure changes\n");
    let mut table = Table::new(&[
        "config",
        "crash points",
        "well-formed",
        "avg recover ms",
        "max intermediate",
        "completed after",
    ]);

    for (name, cfg, stride) in [
        ("CP + logical undo", PiTreeConfig::small_nodes(4, 4), 1usize),
        (
            "CNS + logical undo",
            {
                let mut c = PiTreeConfig::small_nodes(4, 4);
                c.consolidation = pitree::ConsolidationPolicy::Disabled;
                c
            },
            2,
        ),
        (
            "CP + page-oriented",
            PiTreeConfig::small_nodes(4, 4).page_oriented(),
            2,
        ),
    ] {
        // Build the workload: enough inserts for several levels of splits,
        // with manual completion so intermediate states persist.
        let mut build_cfg = cfg;
        build_cfg.auto_complete = false;
        let cs = CrashableStore::create(512, 100_000).unwrap();
        let tree = PiTree::create(Arc::clone(&cs.store), 1, build_cfg).unwrap();
        for i in 0..64u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(i), b"value").unwrap();
            t.commit().unwrap();
            if i % 16 == 0 {
                tree.run_completions().unwrap();
            }
        }
        drop(tree);
        cs.store.log.force_all().unwrap();

        let records = cs.store.log.scan(None).expect("scan");
        let mut cuts: Vec<u64> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, r)| r.lsn.0 - 1)
            .collect();
        cuts.push(cs.durable_log_len());
        cuts.push(cs.durable_log_len().saturating_sub(3)); // torn tail

        let mut tested = 0usize;
        let mut all_wf = true;
        let mut total_ms = 0.0;
        let mut max_intermediate = 0usize;
        let mut all_completed = true;
        for &cut in &cuts {
            let cs2 = cs.crash_with_log_prefix(cut).unwrap();
            let t0 = Stopwatch::start();
            let Ok((tree2, _stats)) = PiTree::recover(Arc::clone(&cs2.store), 1, build_cfg) else {
                continue; // pre-creation prefix
            };
            total_ms += t0.elapsed_ns() as f64 / 1e6;
            tested += 1;
            let report = tree2.validate().unwrap();
            all_wf &= report.is_well_formed();
            max_intermediate = max_intermediate.max(report.unposted_nodes);
            // Normal processing + completion must resolve intermediate states.
            for i in 0..64u64 {
                let _ = tree2.get_unlocked(&key(i)).unwrap();
            }
            for _ in 0..4 {
                tree2.run_completions().unwrap();
            }
            let after = tree2.validate().unwrap();
            all_completed &= after.is_well_formed() && after.unposted_nodes == 0;
        }
        table.row(&[
            name.into(),
            tested.to_string(),
            if all_wf {
                "all".into()
            } else {
                "VIOLATIONS".to_string()
            },
            format!("{:.2}", total_ms / tested as f64),
            max_intermediate.to_string(),
            if all_completed {
                "all".into()
            } else {
                "INCOMPLETE".to_string()
            },
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: every crash point recovers to a well-formed tree with zero\n\
         special-case recovery code; intermediate states (split done, term unposted)\n\
         survive crashes and are finished lazily by ordinary traversals."
    );
}
