//! **Experiment E6** — §5.2/§5.3: the value of *exploiting saved state*.
//! A posting action that can start from the remembered parent touches O(1)
//! nodes; one that must re-traverse from the root touches O(height).
//!
//! Compares the posting footprint (nodes latched per posting action) across
//! tree heights for the three saved-path regimes. The key signature: the
//! root-re-traversal regime's footprint grows with tree height, the
//! saved-path regimes' stays flat.
//!
//! Run with: `cargo run --release -p pitree-harness --bin exp6`

use pitree::{ConsolidationPolicy, CrashableStore, DeallocPolicy, PiTree, PiTreeConfig};
use pitree_harness::Table;
use pitree_obs::Stopwatch;
use std::sync::Arc;

fn run(keys: u64, consolidation: ConsolidationPolicy) -> (u8, f64, f64, u64, u64) {
    let mut cfg = PiTreeConfig::small_nodes(8, 8);
    cfg.consolidation = consolidation;
    let cs = CrashableStore::create(8192, 1 << 20).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let t0 = Stopwatch::start();
    for i in 0..keys {
        let mut t = tree.begin();
        tree.insert(&mut t, &i.to_be_bytes(), b"v").unwrap();
        t.commit().unwrap();
    }
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    let elapsed = t0.elapsed_ns() as f64 / 1e9;
    let stats = tree.stats();
    let posts =
        stats.postings_done.get() + stats.postings_noop.get() + stats.postings_node_gone.get();
    let touched = stats.posting_nodes_touched.get();
    assert!(tree.validate().unwrap().is_well_formed());
    (
        tree.height().unwrap(),
        touched as f64 / posts.max(1) as f64,
        elapsed * 1e6 / keys as f64,
        stats.saved_path_hits.get(),
        stats.saved_path_misses.get(),
    )
}

fn main() {
    println!("E6: saved-path effectiveness for index-term posting (fanout 8)\n");
    let mut table = Table::new(&[
        "keys",
        "regime",
        "height",
        "nodes/posting",
        "us/insert",
        "path hits",
        "path misses",
    ]);
    for keys in [2_000u64, 10_000, 40_000] {
        for (name, pol) in [
            ("remembered parent (CNS)", ConsolidationPolicy::Disabled),
            (
                "climb saved path (CP/upd)",
                ConsolidationPolicy::Enabled {
                    dealloc: DeallocPolicy::IsAnUpdate,
                },
            ),
            (
                "root re-traversal (CP/not)",
                ConsolidationPolicy::Enabled {
                    dealloc: DeallocPolicy::NotAnUpdate,
                },
            ),
        ] {
            let (height, nodes, us, hits, misses) = run(keys, pol);
            table.row(&[
                keys.to_string(),
                name.into(),
                height.to_string(),
                format!("{nodes:.2}"),
                format!("{us:.1}"),
                hits.to_string(),
                misses.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nexpected shape: remembered-parent and climb regimes keep nodes/posting\n\
         flat (~1-2) as the tree deepens; root re-traversal grows with tree height —\n\
         the cost §5.2 saves. (\"Typically, a path re-traversal is limited to\n\
         re-latching path nodes and comparing state ids.\")"
    );
}
