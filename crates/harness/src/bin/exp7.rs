//! **Experiment E7** — §3.3/§5.1: node consolidation and the testable-state
//! discipline. Consolidation reclaims under-utilized nodes after churn, and
//! completing actions are idempotent: re-scheduling work that is already
//! done (or no longer needed) terminates as a no-op.
//!
//! Run with: `cargo run --release -p pitree-harness --bin exp7`

use pitree::{Completion, CrashableStore, PiTree, PiTreeConfig};
use pitree_harness::Table;
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn leaves(tree: &PiTree) -> usize {
    tree.validate()
        .unwrap()
        .nodes_per_level
        .iter()
        .find(|(l, _)| *l == 0)
        .map(|(_, n)| *n)
        .unwrap_or(0)
}

fn main() {
    println!("E7: consolidation under churn + completion idempotence\n");
    const KEYS: u64 = 4_000;
    let mut cfg = PiTreeConfig::small_nodes(16, 16);
    cfg.min_utilization = 0.4;
    let cs = CrashableStore::create(4096, 1 << 20).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    for i in 0..KEYS {
        let mut t = tree.begin();
        tree.insert(&mut t, &key(i), b"v").unwrap();
        t.commit().unwrap();
    }
    for _ in 0..4 {
        tree.run_completions().unwrap();
    }
    let full = leaves(&tree);
    let pages_full = cs.store.space.allocated_count(&cs.store.pool).unwrap();

    // Churn: delete 90% of keys.
    for i in 0..KEYS {
        if i % 10 != 0 {
            let mut t = tree.begin();
            tree.delete(&mut t, &key(i)).unwrap();
            t.commit().unwrap();
        }
    }
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let after = leaves(&tree);
    let pages_after = cs.store.space.allocated_count(&cs.store.pool).unwrap();
    let consolidations = tree.stats().consolidations.get();

    let mut table = Table::new(&["phase", "leaf nodes", "allocated pages", "records"]);
    table.row(&[
        "after load".into(),
        full.to_string(),
        pages_full.to_string(),
        KEYS.to_string(),
    ]);
    table.row(&[
        "after 90% churn + consolidation".into(),
        after.to_string(),
        pages_after.to_string(),
        (KEYS / 10).to_string(),
    ]);
    table.print();
    println!("\nconsolidations performed: {consolidations}");
    assert!(tree.validate().unwrap().is_well_formed());
    assert!(after < full / 2, "consolidation must reclaim most leaves");

    // Idempotence of completing actions (§5.1): re-schedule every leaf's
    // consolidation twice over — all must terminate as testable no-ops or
    // legitimate merges, never corrupting the tree.
    println!("\nidempotence check: double-scheduling completions for every leaf...");
    let report = tree.validate().unwrap();
    let noop_before = tree.stats().consolidations_noop.get();
    for _ in 0..2 {
        for i in 0..KEYS {
            tree.completions().push(Completion::Consolidate {
                level: 0,
                key: key(i),
            });
        }
        for _ in 0..8 {
            tree.run_completions().unwrap();
        }
    }
    let report2 = tree.validate().unwrap();
    let noop_after = tree.stats().consolidations_noop.get();
    println!(
        "  re-scheduled {} stale completions; {} rejected by the testable-state check",
        2 * KEYS,
        noop_after - noop_before
    );
    assert!(report2.is_well_formed(), "{:?}", report2.violations);
    assert_eq!(report.records, report2.records, "no record was harmed");
    // Surviving keys still readable.
    for i in (0..KEYS).step_by(10) {
        assert_eq!(tree.get_unlocked(&key(i)).unwrap(), Some(b"v".to_vec()));
    }
    println!("  tree unchanged and well-formed — completion is idempotent and testable.\n");
    println!(
        "expected shape: leaf count and allocated pages drop by roughly the churn\n\
         factor; double-scheduled completions all hit the §5.1 state test."
    );
}
