//! **Experiment E1** — the paper's headline concurrency claim (§1, §6,
//! citing Srinivasan & Carey \[18\]): B-link-style decomposed structure
//! changes admit more concurrency than lock coupling and serial SMOs.
//!
//! Metric: the **exclusive-latch footprint above the data level** per 1000
//! operations — how often a protocol excludes other operations from
//! *shared* parts of the tree (interior nodes, or the whole tree). Blocking
//! other operations at interior nodes is precisely what limits index
//! concurrency; unlike wall-clock throughput, the footprint is a
//! deterministic property of the protocol (this harness host has a single
//! CPU core, making parallel-throughput comparisons meaningless).
//!
//! * Π-tree: interior nodes are X-latched only inside short, independent
//!   atomic actions (index-term postings, index splits, consolidations) —
//!   §1 point 3.
//! * Lock coupling (pessimistic Bayer–Schkolnick): every write X-latches its
//!   entire root-to-leaf path while descending.
//! * Serial SMOs (ARIES/IM-flavored): every split takes a tree-wide
//!   exclusive latch, quiescing everything.
//!
//! Run with: `cargo run --release -p pitree-harness --bin exp1`

use pitree::PiTreeConfig;
use pitree_baselines::{ConcurrentIndex, LockCouplingTree, OptimisticCouplingTree, SerialSmoTree};
use pitree_harness::{KeyDist, PiTreeIndex, Table, Workload};
use pitree_obs::Stopwatch;

const OPS: u64 = 20_000;

fn drive(idx: &dyn ConcurrentIndex, dist: KeyDist, read_frac: f64) -> f64 {
    let mut w = Workload::new(dist, 1 << 20, 7);
    for _ in 0..1_000 {
        idx.insert(&w.next_key(), b"preload");
    }
    let start = Stopwatch::start();
    let mut w = Workload::new(dist, 1 << 20, 1001);
    for _ in 0..OPS {
        if w.is_read(read_frac) {
            let _ = idx.get(&w.next_key());
        } else {
            idx.insert(&w.next_key(), b"value-xxxxxxxx");
        }
    }
    OPS as f64 / (start.elapsed_ns() as f64 / 1e9)
}

fn main() {
    println!(
        "E1: exclusive-latch footprint above the data level, per 1000 operations\n\
         (lower = more admissible concurrency; single-core host, so ops/s is context only)\n"
    );
    for (mix_name, read_frac, dist, fanout) in [
        ("insert-only / uniform", 0.0, KeyDist::Uniform, 24usize),
        ("50% read / uniform", 0.5, KeyDist::Uniform, 24),
        (
            "insert-only / sequential (append storm)",
            0.0,
            KeyDist::Sequential,
            24,
        ),
        (
            "insert-only / uniform, small fanout (split storm)",
            0.0,
            KeyDist::Uniform,
            8,
        ),
    ] {
        println!("workload: {mix_name}");
        let mut table = Table::new(&[
            "protocol",
            "interior X/1k ops",
            "tree-wide X/1k ops",
            "ops/s (context)",
        ]);

        let pi = PiTreeIndex::new(8192, PiTreeConfig::small_nodes(fanout, fanout));
        let tput = drive(&pi, dist, read_frac);
        let upper = pi.tree().stats().upper_exclusive.get();
        table.row(&[
            "pi-tree".into(),
            format!("{:.1}", upper as f64 * 1000.0 / OPS as f64),
            "0.0".into(),
            format!("{tput:.0}"),
        ]);

        let lc = LockCouplingTree::new(8192, fanout);
        let tput = drive(&lc, dist, read_frac);
        table.row(&[
            "lock-coupling".into(),
            format!("{:.1}", lc.upper_exclusive() as f64 * 1000.0 / OPS as f64),
            "0.0".into(),
            format!("{tput:.0}"),
        ]);

        let oc = OptimisticCouplingTree::new(8192, fanout);
        let tput = drive(&oc, dist, read_frac);
        table.row(&[
            "optimistic-coupling".into(),
            format!("{:.1}", oc.upper_exclusive() as f64 * 1000.0 / OPS as f64),
            "0.0".into(),
            format!("{tput:.0}"),
        ]);

        let ss = SerialSmoTree::new(8192, fanout);
        let tput = drive(&ss, dist, read_frac);
        table.row(&[
            "serial-smo".into(),
            "0.0".into(),
            format!("{:.1}", ss.tree_exclusive() as f64 * 1000.0 / OPS as f64),
            format!("{tput:.0}"),
        ]);
        table.print();
        println!();
    }
    println!(
        "expected shape (paper §1/§6): pessimistic lock coupling X-latches ~height\n\
         interior nodes on EVERY write (thousands per 1k ops); the optimistic variant\n\
         avoids that except on splitting descents but still X-couples whole paths for\n\
         them; serial SMOs quiesce the whole tree once per split; the pi-tree touches\n\
         interior nodes exclusively only for the occasional short posting action —\n\
         and never tree-wide. Each tree-wide X excludes ALL concurrent work, so\n\
         serial-smo's column understates its cost."
    );
}
