//! **Experiment E4** — §4.2: page-oriented UNDO (move locks, sometimes
//! in-transaction leaf splits, deferred postings) vs logical UNDO (every
//! SMO independent).
//!
//! Multi-insert transactions under both policies: throughput, split
//! placement (in-transaction vs independent), move-lock deferrals, and
//! No-Wait restarts.
//!
//! Run with: `cargo run --release -p pitree-harness --bin exp4`

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_harness::Table;
use pitree_obs::Stopwatch;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const THREADS: u64 = 8;
const TXNS_PER_THREAD: u64 = 300;
const INSERTS_PER_TXN: u64 = 10;

fn run(cfg: PiTreeConfig) -> (f64, Vec<(&'static str, u64)>, u64) {
    let cs = CrashableStore::create(8192, 1 << 20).unwrap();
    let tree = Arc::new(PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap());
    let deadlocks = std::sync::atomic::AtomicU64::new(0);
    let start = Stopwatch::start();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tree = Arc::clone(&tree);
            let deadlocks = &deadlocks;
            s.spawn(move || {
                for b in 0..TXNS_PER_THREAD {
                    'retry: loop {
                        let mut txn = tree.begin();
                        for j in 0..INSERTS_PER_TXN {
                            let k = ((b * INSERTS_PER_TXN + j) * THREADS + t).to_be_bytes();
                            match tree.insert(&mut txn, &k, b"balance-update") {
                                Ok(_) => {}
                                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                                    deadlocks.fetch_add(1, Ordering::Relaxed);
                                    txn.abort(Some(&tree.undo_handler())).unwrap();
                                    continue 'retry;
                                }
                                Err(e) => panic!("{e}"),
                            }
                        }
                        txn.commit().unwrap();
                        break;
                    }
                }
            });
        }
    });
    let wall = start.elapsed_ns() as f64 / 1e9;
    for _ in 0..6 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(
        report.records as u64,
        THREADS * TXNS_PER_THREAD * INSERTS_PER_TXN
    );
    (
        (THREADS * TXNS_PER_THREAD * INSERTS_PER_TXN) as f64 / wall,
        tree.stats().snapshot(),
        deadlocks.load(Ordering::Relaxed),
    )
}

fn main() {
    println!(
        "E4: UNDO-policy comparison ({THREADS} threads x {TXNS_PER_THREAD} txns x \
         {INSERTS_PER_TXN} inserts)\n"
    );
    let mut table = Table::new(&[
        "policy",
        "inserts/s",
        "splits in-txn",
        "splits indep",
        "move-deferred posts",
        "no-wait restarts",
        "deadlock aborts",
    ]);
    for (name, cfg) in [
        ("logical undo", PiTreeConfig::small_nodes(16, 16)),
        (
            "page-oriented",
            PiTreeConfig::small_nodes(16, 16).page_oriented(),
        ),
    ] {
        let (tput, stats, deadlocks) = run(cfg);
        let get = |k: &str| stats.iter().find(|(n, _)| *n == k).unwrap().1;
        table.row(&[
            name.into(),
            format!("{tput:.0}"),
            get("splits_in_txn").to_string(),
            get("splits_independent").to_string(),
            get("postings_move_deferred").to_string(),
            get("no_wait_restarts").to_string(),
            deadlocks.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: logical undo keeps every split independent (zero in-txn\n\
         splits, zero move-lock deferrals) and sustains higher throughput; the\n\
         page-oriented policy pays for move locks with in-transaction splits,\n\
         deferred postings, restarts, and occasional deadlock aborts (§4.2, §6)."
    );
}
