//! MTTR (mean time to repair) benchmark: crash the **file-backed** store
//! with ~K MB of log written since the last fuzzy checkpoint, then
//! measure how long a restart takes to answer its first query two ways:
//!
//! - **Stop-the-world** (`PiTree::recover`): analysis + full REDO of
//!   every update since the checkpoint + undo, then the first get.
//!   Time-to-first-op is O(log since checkpoint) *page fetches*: the
//!   updates are spread over far more leaves than the restart pool has
//!   frames, so replay pays a cold random read (and an eviction
//!   write-back) per touched page.
//! - **Instant restart** (`PiTree::recover_instant`): analysis + undo
//!   only, then the first get — pages replay on demand at first pin, so
//!   time-to-first-op is O(analysis) — one *sequential* read of the
//!   post-checkpoint log — plus per-page redo along a single
//!   root-to-leaf path. Background REDO
//!   ([`pitree_wal::InstantRecovery::drive`]) then drains the plan on
//!   worker threads while the foreground serves reads;
//!   time-to-full-recovery is when the plan empties.
//!
//! Methodology notes, in the spirit of full disclosure (`RECOVERY.md`
//! documents the model):
//!
//! - The preload that builds the tree runs through a large pool, is
//!   flushed, and is fenced off by a checkpoint; the measured crash
//!   image carries exactly K bytes of replayable log. The checkpoint
//!   interval *is* the K axis.
//! - Both restarts recover **the same crash image**: the durable files
//!   (`store.db`/`store.log`/`store.master`) are copied to two
//!   directories after the crash, so the comparison is replay strategy
//!   and nothing else. Every committed key (preloads and updates) is
//!   verified after each recovery — the bench doubles as an end-to-end
//!   durability check.
//! - Before each timed restart the OS page cache is dropped
//!   (best-effort; needs root). A restart is cold by definition — warm
//!   caches would let stop-the-world replay fetch pages at memcpy speed,
//!   which is exactly the fiction an MTTR number must not rest on. The
//!   JSON records whether the drop worked (`cold_cache`).
//!
//! Results land in `BENCH_mttr.json` (or `--out PATH`): per K,
//! `full_replay_ns` (stop-the-world time-to-first-op), `first_op_ns`
//! (instant time-to-first-op, also recorded as the
//! `recovery.first_op_ns` histogram), `ttfo_speedup` (their ratio),
//! `full_recovery_ns` (instant restart until background REDO drains),
//! `redo_pages` / `on_demand_redos` counters, and `ops_during_redo`
//! (gets served while REDO was still running). `--smoke` runs one tiny K
//! so CI can assert the bench runs, the JSON is well-formed, and instant
//! first-op beats full replay.
//!
//! Run with: `cargo run --release -p pitree-harness --bin mttr`

use pitree::{PiTree, PiTreeConfig, Store};
use pitree_obs::Stopwatch;
use pitree_sim::SimRng;
use pitree_txnlock::PendingCommit;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Commits held published-but-unacked before the loader waits on the
/// oldest (same protocol as the throughput bench, so the log the crash
/// cuts is a realistic pipelined-commit log).
const PIPELINE_DEPTH: usize = 8;

/// Pool frames for the *load* store only. Generous, so building the tree
/// is fast; the measured restarts use the small `Config::pool_frames`.
const LOAD_POOL_FRAMES: usize = 8192;

struct Config {
    smoke: bool,
    /// Target post-checkpoint log sizes in bytes (one run per entry).
    k_bytes: Vec<u64>,
    /// Restart pool: far fewer frames than the tree has leaves, the
    /// normal state of a buffer pool right after a crash.
    pool_frames: usize,
    preload_keys: u64,
    value_len: usize,
    redo_workers: usize,
}

impl Config {
    fn full() -> Config {
        Config {
            smoke: false,
            k_bytes: vec![1 << 20, 4 << 20, 8 << 20],
            pool_frames: 256,
            preload_keys: 100_000,
            value_len: 256,
            redo_workers: 4,
        }
    }

    fn smoke() -> Config {
        Config {
            smoke: true,
            k_bytes: vec![128 << 10],
            pool_frames: 64,
            preload_keys: 3_000,
            value_len: 256,
            redo_workers: 2,
        }
    }
}

fn key_bytes(k: u64) -> [u8; 8] {
    k.to_be_bytes()
}

/// Deterministic value for key `k` at version `ver` — the post-crash
/// expectation is a pure function of the committed (key, version) map.
fn value_bytes(k: u64, ver: u64, len: usize) -> Vec<u8> {
    let mut v = vec![b'v'; len];
    v[..8].copy_from_slice(&k.to_be_bytes());
    v[8..16].copy_from_slice(&ver.to_be_bytes());
    v
}

/// Pipelined upsert: publish the commit (locks released at log append),
/// hand the pending ack to the caller's window.
fn upsert<'t>(tree: &'t PiTree, k: u64, ver: u64, len: usize) -> PendingCommit<'t> {
    loop {
        let mut t = tree.begin();
        match tree.insert(&mut t, &key_bytes(k), &value_bytes(k, ver, len)) {
            Ok(_) => return t.commit_publish(),
            Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                let _ = t.abort(Some(&tree.undo_handler()));
            }
            Err(e) => panic!("upsert failed: {e}"),
        }
    }
}

fn drain(pending: &mut VecDeque<PendingCommit<'_>>, down_to: usize) {
    while pending.len() > down_to {
        pending
            .pop_front()
            .expect("non-empty pipeline")
            .wait_durable()
            .expect("ack");
    }
}

/// Best-effort cold-cache fence: flush dirty OS caches, then drop the
/// clean ones, so the next timed restart pays real page reads. Needs
/// root for the drop; returns whether it worked.
fn drop_os_caches() -> bool {
    let _ = std::process::Command::new("sync").status();
    std::fs::write("/proc/sys/vm/drop_caches", "3\n").is_ok()
}

/// Copy the durable image (`store.db`, `store.log`, `store.master`) into
/// a fresh directory: one crash, two independent recoveries.
fn copy_image(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir image copy");
    for f in ["store.db", "store.log", "store.master"] {
        let s = src.join(f);
        if s.exists() {
            std::fs::copy(&s, dst.join(f)).expect("copy durable file");
        }
    }
}

fn verify(tree: &PiTree, versions: &HashMap<u64, u64>, value_len: usize, ctx: &str) {
    for (&k, &ver) in versions {
        let got = tree
            .get_unlocked(&key_bytes(k))
            .unwrap_or_else(|e| panic!("{ctx}: get {k}: {e}"));
        assert_eq!(
            got.as_deref(),
            Some(value_bytes(k, ver, value_len).as_slice()),
            "{ctx}: committed key {k} wrong after recovery"
        );
    }
}

struct RunResult {
    k_bytes: u64,
    log_bytes: u64,
    post_ckpt_bytes: u64,
    updates: u64,
    full_replay_ns: u64,
    redone_full: usize,
    first_op_ns: u64,
    full_recovery_ns: u64,
    redo_pages: u64,
    on_demand_redos: u64,
    ops_during_redo: u64,
    workers: usize,
    cold_cache: bool,
}

fn run_one(cfg: &Config, k_bytes: u64, scratch: &Path) -> RunResult {
    // ---- build the tree, checkpoint, write K bytes of updates, crash ------
    let load_dir = scratch.join(format!("k{k_bytes}-load"));
    let (mut versions, updates, post_ckpt_bytes) = {
        let store = Store::open_file(&load_dir, LOAD_POOL_FRAMES, 1 << 20).expect("store");
        let tree = PiTree::create(Arc::clone(&store), 1, PiTreeConfig::default()).expect("tree");
        let mut versions: HashMap<u64, u64> = HashMap::new();
        let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
        for k in 0..cfg.preload_keys {
            pending.push_back(upsert(&tree, k, 0, cfg.value_len));
            versions.insert(k, 0);
            if pending.len() >= PIPELINE_DEPTH {
                drain(&mut pending, PIPELINE_DEPTH - 1);
            }
        }
        drain(&mut pending, 0);

        // Fence the preload off: flush every dirty page, then checkpoint.
        // Analysis of the coming crash starts here, so the image carries
        // exactly `k_bytes` of replayable log — the checkpoint interval
        // is the K axis of this bench.
        store.pool.flush_all().expect("flush before checkpoint");
        store.txns.checkpoint().expect("checkpoint");
        let base = store.log.flushed_lsn().0;

        let mut rng = SimRng::new(0x9177 ^ k_bytes);
        let mut updates = 0u64;
        while store.log.flushed_lsn().0 - base < k_bytes {
            let k = rng.below(cfg.preload_keys);
            let ver = versions.get(&k).copied().unwrap_or(0) + 1;
            pending.push_back(upsert(&tree, k, ver, cfg.value_len));
            versions.insert(k, ver);
            updates += 1;
            if pending.len() >= PIPELINE_DEPTH {
                drain(&mut pending, PIPELINE_DEPTH - 1);
            }
        }
        drain(&mut pending, 0);
        let post = store.log.flushed_lsn().0 - base;
        // Crash: tree and store drop here. Dirty pool pages and the
        // unforced log tail vanish; only the durable files survive.
        (versions, updates, post)
    };

    let dir_full = scratch.join(format!("k{k_bytes}-full"));
    let dir_instant = scratch.join(format!("k{k_bytes}-instant"));
    copy_image(&load_dir, &dir_full);
    copy_image(&load_dir, &dir_instant);
    let log_bytes = std::fs::metadata(load_dir.join("store.log"))
        .expect("crashed log")
        .len();
    let _ = std::fs::remove_dir_all(&load_dir);

    let probe = 0u64; // preload key — always present
    assert!(versions.contains_key(&probe));

    // ---- B: stop-the-world recovery, then the first get --------------------
    let cold_cache = drop_os_caches();
    let (full_replay_ns, redone_full) = {
        let t0 = Stopwatch::start();
        let store = Store::open_file(&dir_full, cfg.pool_frames, 1 << 20).expect("reopen full");
        let (tree, stats) =
            PiTree::recover(Arc::clone(&store), 1, PiTreeConfig::default()).expect("full recover");
        let got = tree.get_unlocked(&key_bytes(probe)).expect("first get");
        let ns = t0.elapsed_ns();
        assert!(got.is_some(), "probe key vanished under full recovery");
        verify(&tree, &versions, cfg.value_len, "full-replay");
        (ns, stats.redone)
    };

    // ---- C: instant restart — first op, then background REDO ---------------
    let cold_cache = drop_os_caches() && cold_cache;
    let t0 = Stopwatch::start();
    let store = Store::open_file(&dir_instant, cfg.pool_frames, 1 << 20).expect("reopen instant");
    let (tree, plan, _stats) =
        PiTree::recover_instant(Arc::clone(&store), 1, PiTreeConfig::default())
            .expect("instant recover");
    let got = tree
        .get_unlocked(&key_bytes(probe))
        .expect("instant first get");
    let first_op_ns = t0.elapsed_ns();
    assert!(got.is_some(), "probe key vanished under instant recovery");
    let rec = store.recorder().clone();
    rec.hist("recovery.first_op_ns").record(first_op_ns);

    // Background REDO drains the plan while this thread serves reads —
    // the traffic the restart reopened for.
    let done = AtomicBool::new(false);
    let mut ops_during_redo = 0u64;
    let mut rng = SimRng::new(0x3a11 ^ k_bytes);
    std::thread::scope(|s| {
        let driver = s.spawn(|| {
            let r = plan.drive(&store.pool, cfg.redo_workers);
            done.store(true, Ordering::Release);
            r
        });
        while !done.load(Ordering::Acquire) {
            let k = rng.below(cfg.preload_keys);
            let _ = tree
                .get_unlocked(&key_bytes(k))
                .expect("get during background redo");
            ops_during_redo += 1;
        }
        driver.join().expect("drive thread").expect("drive");
    });
    let full_recovery_ns = t0.elapsed_ns();
    assert!(plan.is_complete(), "drive returned with pages pending");
    verify(&tree, &versions, cfg.value_len, "instant");
    versions.clear();

    RunResult {
        k_bytes,
        log_bytes,
        post_ckpt_bytes,
        updates,
        full_replay_ns,
        redone_full,
        first_op_ns,
        full_recovery_ns,
        redo_pages: rec.counter("recovery.redo_pages").get(),
        on_demand_redos: rec.counter("recovery.on_demand_redos").get(),
        ops_during_redo,
        workers: cfg.redo_workers,
        cold_cache,
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_mttr.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other} (usage: mttr [--smoke] [--out PATH])"),
        }
    }
    let cfg = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };

    let scratch = std::env::temp_dir().join(format!("pitree-mttr-{}", std::process::id()));
    let mut runs = Vec::new();
    for &k in &cfg.k_bytes {
        let r = run_one(&cfg, k, &scratch);
        eprintln!(
            "k={:>5.2}MB (post-ckpt {}B, {} updates, log {}B{}) full-replay {:>9}us \
             (redone {})  first-op {:>7}us  speedup {:>5.1}x  full-recovery {:>9}us  \
             redo-pages {}  on-demand {}  ops-during-redo {}",
            r.k_bytes as f64 / (1 << 20) as f64,
            r.post_ckpt_bytes,
            r.updates,
            r.log_bytes,
            if r.cold_cache { ", cold" } else { ", WARM" },
            r.full_replay_ns / 1_000,
            r.redone_full,
            r.first_op_ns / 1_000,
            r.full_replay_ns as f64 / r.first_op_ns.max(1) as f64,
            r.full_recovery_ns / 1_000,
            r.redo_pages,
            r.on_demand_redos,
            r.ops_during_redo,
        );
        runs.push(r);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"mttr\",\n  \"mode\": \"{}\",\n",
        if cfg.smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"config\": {{\"pool_frames\": {}, \"preload_keys\": {}, \"value_len\": {}, \
         \"pipeline_depth\": {}, \"redo_workers\": {}, \"cold_cache\": {}}},\n",
        cfg.pool_frames,
        cfg.preload_keys,
        cfg.value_len,
        PIPELINE_DEPTH,
        cfg.redo_workers,
        runs.iter().all(|r| r.cold_cache),
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"k_mb\": {:.2}, \"log_bytes\": {}, \"post_checkpoint_bytes\": {}, \
             \"updates\": {}, \"full_replay_ns\": {}, \"full_replay_redone\": {}, \
             \"first_op_ns\": {}, \"ttfo_speedup\": {:.1}, \"full_recovery_ns\": {}, \
             \"redo_pages\": {}, \"on_demand_redos\": {}, \"ops_during_redo\": {}, \
             \"workers\": {}, \"cold_cache\": {}}}{}\n",
            r.k_bytes as f64 / (1 << 20) as f64,
            r.log_bytes,
            r.post_ckpt_bytes,
            r.updates,
            r.full_replay_ns,
            r.redone_full,
            r.first_op_ns,
            r.full_replay_ns as f64 / r.first_op_ns.max(1) as f64,
            r.full_recovery_ns,
            r.redo_pages,
            r.on_demand_redos,
            r.ops_during_redo,
            r.workers,
            r.cold_cache,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("wrote {out}");
}
