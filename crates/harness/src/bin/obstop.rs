//! `obstop` — run the deterministic observability demo and print the
//! unified metric report from `pitree-obs`.
//!
//! Phases: seeded load + churn workload (splits, postings,
//! consolidations, evictions, WAL traffic, locks), fuzzy checkpoint,
//! report, then a simulated crash + full recovery whose pass timings
//! land in the survivor's registry.
//!
//! ```text
//! cargo run --release --bin obstop [-- --jsonl events.jsonl]
//! PITREE_SIM_SEED=42 cargo run --release --bin obstop
//! ```
//!
//! `OBSERVABILITY.md` documents every line of the output.

use pitree::{PiTree, PiTreeConfig};
use pitree_harness::obsdemo;
use std::sync::Arc;

fn main() {
    let mut jsonl_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jsonl" => {
                jsonl_path = Some(args.next().expect("--jsonl needs a path"));
            }
            other => {
                eprintln!("usage: obstop [--jsonl PATH]   (unknown arg: {other})");
                std::process::exit(2);
            }
        }
    }

    let seed = obsdemo::seed_from_env();
    println!(
        "obstop: seed={seed:#x} (replay with PITREE_SIM_SEED={seed}), \
         pool={} frames, load={} keys, churn={} ops",
        obsdemo::POOL_FRAMES,
        obsdemo::LOAD_KEYS,
        obsdemo::CHURN_OPS
    );
    let run = obsdemo::run(seed);
    println!(
        "workload done: {} records survive validation\n",
        run.records
    );

    let registry = run.tree.recorder().registry();
    println!("---- workload registry ----");
    print!("{}", registry.report());

    if let Some(path) = &jsonl_path {
        let dump = registry.events_jsonl();
        std::fs::write(path, &dump).expect("write jsonl");
        println!(
            "\nevent dump: {} events -> {path} (newest-first ring survivors, clock order)",
            dump.lines().count()
        );
    }

    // ---- crash + recover: the survivor registry shows the restart cost ----
    println!("\n---- crash + recover ----");
    let survivor = run.store.crash().expect("crash");
    let (tree2, rstats) = PiTree::recover(
        Arc::clone(&survivor.store),
        1,
        PiTreeConfig::small_nodes(8, 8),
    )
    .expect("recover");
    println!(
        "recovery: {} log records scanned, {} redone, {} loser actions undone ({} CLRs)",
        rstats.scanned,
        rstats.redone,
        rstats.losers.len(),
        rstats.clrs_written
    );
    let report = tree2.validate().expect("validate");
    assert!(report.is_well_formed(), "{:?}", report.violations);
    println!("survivor: {} records, well-formed\n", report.records);
    println!("---- survivor registry ----");
    print!("{}", tree2.recorder().report());
}
