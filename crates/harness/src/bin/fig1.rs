//! **Figure 1 reproduction** — "In the Time-Split B-tree, new current nodes
//! contain copies of old history node pointers and old key pointers. New
//! historic nodes contain copies of old history pointers. Current nodes are
//! responsible for all previous time through their historical pointers and
//! all higher key ranges through their key (side) pointers."
//!
//! This binary drives one node through the figure's split sequence —
//! time split, key split, time split — then renders the resulting topology
//! and machine-checks each caption claim.
//!
//! Run with: `cargo run -p pitree-harness --bin fig1`

use pitree::store::CrashableStore;
use pitree_pagestore::PageId;
use pitree_tsb::{TsbConfig, TsbHeader, TsbKind, TsbTree};
use std::collections::BTreeMap;
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn main() {
    println!("Figure 1: Time-Split B-tree split topology\n");
    let cs = CrashableStore::create(512, 100_000).unwrap();
    let tree = TsbTree::create(Arc::clone(&cs.store), 1, TsbConfig::small_nodes(6, 8)).unwrap();

    // Phase 1: version churn on two keys → TIME split.
    for round in 0..3u64 {
        for k in [1u64, 2] {
            let mut t = tree.begin();
            tree.put(&mut t, &key(k), format!("r{round}").as_bytes())
                .unwrap();
            t.commit().unwrap();
        }
    }
    // Phase 2: key spread → KEY split of the (time-split) current node.
    for k in 3..12u64 {
        let mut t = tree.begin();
        tree.put(&mut t, &key(k), b"spread").unwrap();
        t.commit().unwrap();
    }
    // Phase 3: more churn → another TIME split.
    for round in 3..6u64 {
        for k in [1u64, 2] {
            let mut t = tree.begin();
            tree.put(&mut t, &key(k), format!("r{round}").as_bytes())
                .unwrap();
            t.commit().unwrap();
        }
    }
    tree.run_completions().unwrap();

    // Render: walk the current chain; for each current node, its history
    // chain.
    let pool = &cs.store.pool;
    let mut cur = {
        let mut pid = tree.root_pid();
        loop {
            let pin = pool.fetch(pid).unwrap();
            let g = pin.s();
            let h = TsbHeader::read(&g).unwrap();
            if h.level == 0 {
                break pid;
            }
            pid = pitree::node::IndexTerm::read(&g, 1).unwrap().child;
        }
    };
    let mut nodes: BTreeMap<PageId, TsbHeader> = BTreeMap::new();
    let mut chain = Vec::new();
    loop {
        let pin = pool.fetch(cur).unwrap();
        let g = pin.s();
        let h = TsbHeader::read(&g).unwrap();
        chain.push(cur);
        let next = h.key_side;
        nodes.insert(cur, h);
        if !next.is_valid() {
            break;
        }
        cur = next;
    }

    let mut claims_ok = true;
    println!("current-node chain (key order), each with its history chain (time order):\n");
    for &pid in &chain {
        let h = &nodes[&pid];
        println!(
            "  CURRENT {pid}  keys [{}, {})  time [{}, now)  --key-side--> {}",
            h.key_low,
            h.key_high,
            h.t_lo,
            if h.key_side.is_valid() {
                h.key_side.to_string()
            } else {
                "(none)".into()
            }
        );
        let mut hist = h.hist_side;
        let mut depth = 1;
        while hist.is_valid() {
            let hp = pool.fetch(hist).unwrap();
            let hg = hp.s();
            let hh = TsbHeader::read(&hg).unwrap();
            println!(
                "  {:indent$}HISTORY {hist}  keys [{}, {})  time [{}, {})",
                "",
                hh.key_low,
                hh.key_high,
                hh.t_lo,
                hh.t_hi,
                indent = depth * 4
            );
            if hh.kind != TsbKind::History {
                claims_ok = false;
            }
            hist = hh.hist_side;
            depth += 1;
        }
    }

    // Caption claims, machine-checked.
    println!("\ncaption claims:");
    let currents_with_history = chain
        .iter()
        .filter(|p| nodes[p].hist_side.is_valid())
        .count();
    let ok1 = currents_with_history >= 2;
    println!(
        "  [{}] new current nodes contain copies of old history node pointers \
         ({currents_with_history}/{} current nodes reach history)",
        if ok1 { "ok" } else { "FAIL" },
        chain.len()
    );
    let ok2 = chain.len() >= 2;
    println!(
        "  [{}] new current nodes contain copies of old key pointers \
         (chain of {} current nodes)",
        if ok2 { "ok" } else { "FAIL" },
        chain.len()
    );
    // History nodes copying history pointers: some history node's hist_side
    // is valid (a second-generation time split).
    let mut hist_with_hist = 0;
    for &pid in &chain {
        let mut hist = nodes[&pid].hist_side;
        while hist.is_valid() {
            let hp = pool.fetch(hist).unwrap();
            let hg = hp.s();
            let hh = TsbHeader::read(&hg).unwrap();
            if hh.hist_side.is_valid() {
                hist_with_hist += 1;
            }
            hist = hh.hist_side;
        }
    }
    let ok3 = hist_with_hist >= 1;
    println!(
        "  [{}] new historic nodes contain copies of old history pointers \
         ({hist_with_hist} history node(s) chain further back)",
        if ok3 { "ok" } else { "FAIL" }
    );
    // Responsibility: every old version of key 1 reachable from the current
    // node for key 1.
    let hist_versions = tree.history(&key(1)).unwrap();
    let ok4 = hist_versions.len() >= 6;
    println!(
        "  [{}] current nodes are responsible for all previous time \
         ({} versions of key 1 reachable)",
        if ok4 { "ok" } else { "FAIL" },
        hist_versions.len()
    );

    let report = tree.validate().unwrap();
    println!(
        "\nwell-formed: {}  ({} current, {} history, {} versions)",
        report.is_well_formed(),
        report.current_nodes,
        report.history_nodes,
        report.versions
    );
    assert!(claims_ok && ok1 && ok2 && ok3 && ok4 && report.is_well_formed());
    println!("\nFigure 1 reproduced: all caption claims hold.");
}
