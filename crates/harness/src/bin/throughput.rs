//! Multi-threaded throughput benchmark over the **file-backed** store —
//! the configuration where log-force latency is real (`FileLogStore`
//! issues `sync_data` per force), so group commit's batching shows up as
//! wall-clock throughput rather than as a synthetic counter.
//!
//! For each thread count (1/4/8) the bench builds a fresh store in a
//! scratch directory, preloads a key range, then runs a mixed workload
//! (50% point reads, 40% upserts, 10% deletes) from per-thread seeded RNG
//! forks. Writes are **pipelined** user transactions: each commit is
//! *published* (record locks released at log append — the commit is
//! visible to successors) and the ack (`wait_durable`, the durable
//! watermark covering the commit LSN) is deferred behind a small
//! per-thread window, the way a connection handler overlaps the next
//! request with the previous commit's force. Publish latency is the
//! client-visible op latency (`insert_p95_ns`); the deferred ack wait is
//! reported separately (`ack_p95_ns`). Results — ops/s, per-op p95/p99
//! latency, and the WAL/pool concurrency metrics (`wal.group_size` p50,
//! `wal.linger_ns` p50, `txn.elr_released`, `wal.force_waiters`,
//! `buf.shard_conflicts`) — are written as JSON to
//! `BENCH_throughput.json` (or `--out PATH`).
//!
//! `--smoke` runs a tiny fixed config (1/4 threads, few ops) so CI can
//! assert the bench runs, emits well-formed JSON, and actually forms
//! commit groups at 4 threads. EXPERIMENTS.md S4/S5 record the full-mode
//! numbers.
//!
//! Run with: `cargo run --release -p pitree-harness --bin throughput`

use pitree::{PiTree, PiTreeConfig, Store};
use pitree_harness::Population;
use pitree_obs::{Hist, Recorder, Stopwatch};
use pitree_sim::SimRng;
use pitree_txnlock::PendingCommit;
use std::collections::VecDeque;
use std::sync::Arc;

/// Commits a worker may hold published-but-unacked before it must wait
/// for the oldest one's durability.
const PIPELINE_DEPTH: usize = 8;

struct Config {
    smoke: bool,
    threads: Vec<usize>,
    /// Preload size and workload key range as one coupled pair — the
    /// half-dense population (50% hit rate) is part of the bench's
    /// definition, not two knobs that can drift apart.
    population: Population,
    ops_per_thread: u64,
    pool_frames: usize,
}

impl Config {
    fn full() -> Config {
        Config {
            smoke: false,
            threads: vec![1, 4, 8],
            population: Population::sparse(2_000, 4_000),
            ops_per_thread: 2_000,
            pool_frames: 256,
        }
    }

    fn smoke() -> Config {
        Config {
            smoke: true,
            threads: vec![1, 4],
            population: Population::sparse(100, 200),
            ops_per_thread: 150,
            pool_frames: 64,
        }
    }
}

fn key_bytes(k: u64) -> [u8; 8] {
    k.to_be_bytes()
}

/// Autocommitting driver (the same retry-on-deadlock loop as
/// [`pitree_harness::PiTreeIndex`]), publishing each write's commit and
/// handing the pending ack back to the caller's pipeline window.
struct Driver {
    tree: PiTree,
    op_get_ns: Hist,
    op_insert_ns: Hist,
    op_delete_ns: Hist,
    op_ack_ns: Hist,
}

impl Driver {
    fn insert_publish(&self, key: &[u8], value: &[u8]) -> PendingCommit<'_> {
        let t = Stopwatch::start();
        loop {
            let mut txn = self.tree.begin();
            match self.tree.insert(&mut txn, key, value) {
                Ok(_) => {
                    let pc = txn.commit_publish();
                    self.op_insert_ns.record(t.elapsed_ns());
                    return pc;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let t = Stopwatch::start();
        let got = self.tree.get_unlocked(key).expect("get");
        self.op_get_ns.record(t.elapsed_ns());
        got
    }

    fn delete_publish(&self, key: &[u8]) -> PendingCommit<'_> {
        let t = Stopwatch::start();
        loop {
            let mut txn = self.tree.begin();
            match self.tree.delete(&mut txn, key) {
                Ok(_) => {
                    let pc = txn.commit_publish();
                    self.op_delete_ns.record(t.elapsed_ns());
                    return pc;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("delete failed: {e}"),
            }
        }
    }

    /// Ack the oldest pending commit: wait until the durable watermark
    /// covers its LSN, recording the wait as ack latency.
    fn ack(&self, pc: PendingCommit<'_>) {
        let t = Stopwatch::start();
        pc.wait_durable().expect("ack");
        self.op_ack_ns.record(t.elapsed_ns());
    }
}

struct RunResult {
    threads: usize,
    total_ops: u64,
    elapsed_ns: u64,
    get_p95: u64,
    get_p99: u64,
    insert_p95: u64,
    insert_p99: u64,
    ack_p95: u64,
    ack_p99: u64,
    group_size_p50: u64,
    linger_p50: u64,
    elr_released: u64,
    forces: u64,
    force_waiters: u64,
    shard_conflicts: u64,
}

fn run_one(cfg: &Config, threads: usize, dir: &std::path::Path) -> RunResult {
    let store = Store::open_file(dir, cfg.pool_frames, 1 << 20).expect("store");
    let tree = PiTree::create(Arc::clone(&store), 1, PiTreeConfig::default()).expect("tree");
    let rec: Recorder = tree.recorder().clone();
    let driver = Driver {
        tree,
        op_get_ns: rec.hist("op.get_ns"),
        op_insert_ns: rec.hist("op.insert_ns"),
        op_delete_ns: rec.hist("op.delete_ns"),
        op_ack_ns: rec.hist("op.ack_ns"),
    };

    let mut rng = SimRng::new(0xbe9c);
    {
        // Preload through the same pipeline window the workload uses, so
        // the group-size histogram reflects the protocol, not the loader.
        let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
        for k in 0..cfg.population.load_keys {
            pending.push_back(driver.insert_publish(&key_bytes(k), b"preload-value"));
            if pending.len() >= PIPELINE_DEPTH {
                driver.ack(pending.pop_front().expect("non-empty pipeline"));
            }
        }
        for pc in pending {
            driver.ack(pc);
        }
    }

    let forks: Vec<SimRng> = (0..threads).map(|_| rng.fork()).collect();
    let wall = Stopwatch::start();
    std::thread::scope(|s| {
        for mut fork in forks {
            let driver = &driver;
            s.spawn(move || {
                let mut pending: VecDeque<PendingCommit<'_>> = VecDeque::new();
                for _ in 0..cfg.ops_per_thread {
                    let k = fork.below(cfg.population.key_space);
                    match fork.below(100) {
                        0..=49 => {
                            let _ = driver.get(&key_bytes(k));
                        }
                        50..=89 => pending
                            .push_back(driver.insert_publish(&key_bytes(k), b"updated-value")),
                        _ => pending.push_back(driver.delete_publish(&key_bytes(k))),
                    }
                    if pending.len() >= PIPELINE_DEPTH {
                        driver.ack(pending.pop_front().expect("non-empty pipeline"));
                    }
                }
                // Every published commit is acked before the clock stops:
                // the measured ops/s is durable throughput, not a tail of
                // un-forced commits.
                for pc in pending {
                    driver.ack(pc);
                }
            });
        }
    });
    let elapsed_ns = wall.elapsed_ns().max(1);

    let (_, g95, g99, _) = driver.op_get_ns.percentiles();
    let (_, i95, i99, _) = driver.op_insert_ns.percentiles();
    let (_, a95, a99, _) = driver.op_ack_ns.percentiles();
    let (gs50, _, _, _) = rec.hist("wal.group_size").percentiles();
    let (ln50, _, _, _) = rec.hist("wal.linger_ns").percentiles();
    RunResult {
        threads,
        total_ops: cfg.ops_per_thread * threads as u64,
        elapsed_ns,
        get_p95: g95,
        get_p99: g99,
        insert_p95: i95,
        insert_p99: i99,
        ack_p95: a95,
        ack_p99: a99,
        group_size_p50: gs50,
        linger_p50: ln50,
        elr_released: rec.counter("txn.elr_released").get(),
        forces: rec.counter("wal.forces").get(),
        force_waiters: rec.counter("wal.force_waiters").get(),
        shard_conflicts: rec.counter("buf.shard_conflicts").get(),
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other} (usage: throughput [--smoke] [--out PATH])"),
        }
    }
    let cfg = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };

    let scratch = std::env::temp_dir().join(format!("pitree-throughput-{}", std::process::id()));
    let mut runs = Vec::new();
    for &threads in &cfg.threads {
        let dir = scratch.join(format!("t{threads}"));
        let r = run_one(&cfg, threads, &dir);
        let ops_per_sec = r.total_ops as f64 / (r.elapsed_ns as f64 / 1e9);
        eprintln!(
            "threads={:<2} ops={:<6} {:>9.0} ops/s  get p99 {:>7}ns  insert p99 {:>8}ns  \
             ack p99 {:>8}ns  group p50 {}  linger p50 {}ns  elr {}  forces {}  waiters {}  \
             shard-conflicts {}",
            r.threads,
            r.total_ops,
            ops_per_sec,
            r.get_p99,
            r.insert_p99,
            r.ack_p99,
            r.group_size_p50,
            r.linger_p50,
            r.elr_released,
            r.forces,
            r.force_waiters,
            r.shard_conflicts,
        );
        runs.push(r);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"throughput\",\n  \"mode\": \"{}\",\n",
        if cfg.smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"config\": {{\"pool_frames\": {}, \"load_keys\": {}, \"ops_per_thread\": {}, \
         \"key_space\": {}, \"hit_fraction\": {:.2}, \"pipeline_depth\": {}, \
         \"mix\": \"50% get / 40% insert / 10% delete\"}},\n",
        cfg.pool_frames,
        cfg.population.load_keys,
        cfg.ops_per_thread,
        cfg.population.key_space,
        cfg.population.hit_fraction(),
        PIPELINE_DEPTH
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let ops_per_sec = r.total_ops as f64 / (r.elapsed_ns as f64 / 1e9);
        json.push_str(&format!(
            "    {{\"threads\": {}, \"total_ops\": {}, \"elapsed_ns\": {}, \
             \"ops_per_sec\": {:.0}, \"get_p95_ns\": {}, \"get_p99_ns\": {}, \
             \"insert_p95_ns\": {}, \"insert_p99_ns\": {}, \"ack_p95_ns\": {}, \
             \"ack_p99_ns\": {}, \"wal_group_size_p50\": {}, \"wal_linger_p50_ns\": {}, \
             \"txn_elr_released\": {}, \"wal_forces\": {}, \"wal_force_waiters\": {}, \
             \"buf_shard_conflicts\": {}}}{}\n",
            r.threads,
            r.total_ops,
            r.elapsed_ns,
            ops_per_sec,
            r.get_p95,
            r.get_p99,
            r.insert_p95,
            r.insert_p99,
            r.ack_p95,
            r.ack_p99,
            r.group_size_p50,
            r.linger_p50,
            r.elr_released,
            r.forces,
            r.force_waiters,
            r.shard_conflicts,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("wrote {out}");
}
