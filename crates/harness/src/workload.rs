//! Synthetic keyed workloads — the stand-in for the multi-user OLTP drivers
//! of Srinivasan & Carey \[18\] that motivate the paper's concurrency claims
//! (substitution documented in DESIGN.md §2.7).

use pitree_sim::SimRng;

/// Key distribution shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform over the key domain.
    Uniform,
    /// Skewed: ~80% of accesses hit ~20% of the domain (approximate Zipf via
    /// nested uniform ranges).
    Skewed,
    /// Monotonically increasing (append-heavy; maximizes rightmost-node
    /// contention).
    Sequential,
}

/// A reproducible stream of keys.
pub struct Workload {
    dist: KeyDist,
    domain: u64,
    rng: SimRng,
    next_seq: u64,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").finish_non_exhaustive()
    }
}

impl Workload {
    /// A workload over keys `0..domain` with a fixed seed.
    pub fn new(dist: KeyDist, domain: u64, seed: u64) -> Workload {
        Workload {
            dist,
            domain,
            rng: SimRng::new(seed),
            next_seq: 0,
        }
    }

    /// The next key, as a u64.
    pub fn next_key_u64(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.below(self.domain),
            KeyDist::Skewed => {
                let mut span = self.domain;
                // 80/20 nesting, three levels deep.
                for _ in 0..3 {
                    if self.rng.chance(0.8) {
                        span = (span / 5).max(1);
                    } else {
                        break;
                    }
                }
                self.rng.below(span.max(1))
            }
            KeyDist::Sequential => {
                let k = self.next_seq;
                self.next_seq += 1;
                k
            }
        }
    }

    /// The next key, encoded big-endian (the byte order the trees sort by).
    pub fn next_key(&mut self) -> Vec<u8> {
        self.next_key_u64().to_be_bytes().to_vec()
    }

    /// Whether the next operation is a read, for a given read fraction.
    pub fn is_read(&mut self, read_fraction: f64) -> bool {
        self.rng.chance(read_fraction)
    }
}

/// Encode a u64 key the way the harness does everywhere.
pub fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        let mut a = Workload::new(KeyDist::Uniform, 1000, 42);
        let mut b = Workload::new(KeyDist::Uniform, 1000, 42);
        for _ in 0..50 {
            assert_eq!(a.next_key_u64(), b.next_key_u64());
        }
    }

    #[test]
    fn sequential_is_monotonic() {
        let mut w = Workload::new(KeyDist::Sequential, u64::MAX, 0);
        let ks: Vec<u64> = (0..10).map(|_| w.next_key_u64()).collect();
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn skew_concentrates_mass() {
        let mut w = Workload::new(KeyDist::Skewed, 100_000, 7);
        let hits = (0..10_000).filter(|_| w.next_key_u64() < 20_000).count();
        assert!(hits > 6_000, "skewed hits in the hot fifth: {hits}/10000");
    }

    #[test]
    fn keys_are_in_domain() {
        for dist in [KeyDist::Uniform, KeyDist::Skewed] {
            let mut w = Workload::new(dist, 500, 3);
            for _ in 0..1000 {
                assert!(w.next_key_u64() < 500);
            }
        }
    }
}
