//! Synthetic keyed workloads — the stand-in for the multi-user OLTP drivers
//! of Srinivasan & Carey \[18\] that motivate the paper's concurrency claims
//! (substitution documented in DESIGN.md §2.7).
//!
//! The scenario harness (EXPERIMENTS.md S7) draws from the bounded-[`Zipf`]
//! generator here: the Gray et al. incremental-CDF method ("Quickly
//! Generating Billion-Record Synthetic Databases", SIGMOD '94), the same
//! construction YCSB uses. All transcendental math ([`det_ln`]/[`det_exp`]/
//! [`det_pow`]) is implemented with pure `+ - * /` arithmetic so the sampled
//! stream is byte-identical across platforms and rust versions — libm's
//! `powf` makes no such promise, and replayable seeds are the workspace's
//! whole testing story.

use pitree_sim::SimRng;

// ---- deterministic transcendentals ----------------------------------------
//
// IEEE-754 requires correctly rounded + - * / and sqrt, so any function
// composed only of those is bit-identical everywhere. `ln`/`exp` below are
// classic argument-reduction + series implementations; accuracy (~1e-15
// relative) is far beyond what a workload sampler needs, and every step is
// reproducible.

/// Natural log via exponent extraction + atanh series on the mantissa.
/// Deterministic: only uses `+ - * /` and integer bit manipulation.
/// Domain: finite `x > 0`.
pub fn det_ln(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "det_ln domain: {x}");
    const LN2: f64 = std::f64::consts::LN_2;
    // x = m * 2^e with m in [1, 2).
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if e == -1023 {
        // Subnormal: renormalize (keys/domains never get here, but be total).
        let norm = x * f64::from_bits((1023u64 + 60) << 52); // x * 2^60
        return det_ln(norm) - 60.0 * LN2;
    }
    // Pull m toward 1 so the series converges fast: use sqrt(2) midpoint.
    if m > std::f64::consts::SQRT_2 {
        m /= 2.0;
        e += 1;
    }
    // ln(m) = 2 atanh(z), z = (m-1)/(m+1), |z| <= 0.1716 -> z^2 <= 0.0295.
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    let mut term = z;
    let mut sum = 0.0;
    let mut k = 0u32;
    // 18 odd terms: z^37 * 0.0295^18 ~ 1e-29, below f64 ulp of the sum.
    while k < 18 {
        sum += term / (2 * k + 1) as f64;
        term *= z2;
        k += 1;
    }
    e as f64 * LN2 + 2.0 * sum
}

/// `e^x` via range reduction to `x = k ln2 + r`, Taylor series on `r`, and
/// an exact power-of-two scale. Deterministic (`+ - * /` only).
pub fn det_exp(x: f64) -> f64 {
    assert!(x.is_finite(), "det_exp domain: {x}");
    const LN2: f64 = std::f64::consts::LN_2;
    if x > 700.0 {
        return f64::INFINITY;
    }
    if x < -700.0 {
        return 0.0;
    }
    // Round x/ln2 to the nearest integer deterministically.
    let kf = x / LN2;
    let k = if kf >= 0.0 {
        (kf + 0.5) as i64
    } else {
        (kf - 0.5) as i64
    };
    let r = x - k as f64 * LN2; // |r| <= ln2/2
                                // Taylor: sum r^n / n!, 20 terms -> error ~ (0.35)^20/20! ~ 1e-28.
    let mut term = 1.0;
    let mut sum = 1.0;
    for n in 1..20 {
        term *= r / n as f64;
        sum += term;
    }
    // sum * 2^k with exact exponent arithmetic.
    let e = k + 1023;
    assert!((1..2047).contains(&e), "det_exp scale out of range: k={k}");
    sum * f64::from_bits((e as u64) << 52)
}

/// `base^exp` for `base > 0`, deterministic.
pub fn det_pow(base: f64, exp: f64) -> f64 {
    det_exp(exp * det_ln(base))
}

// ---- bounded Zipf ----------------------------------------------------------

/// A bounded Zipf(θ) sampler over ranks `0..n` (rank 0 is the hottest):
/// P(rank = k) ∝ 1/(k+1)^θ. Uses the Gray et al. closed-form inverse-CDF
/// approximation (exact for ranks 1 and 2, asymptotic for the tail — the
/// YCSB `ZipfianGenerator` construction), so sampling is O(1) after an
/// O(n) zeta precomputation at build time.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Zipf over `0..n` with skew `theta` in `(0, 1)`. YCSB's default skew
    /// is `0.99`; `theta -> 0` approaches uniform.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - det_pow(2.0 / n as f64, 1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// `zeta(m, θ) = Σ_{k=1..m} k^-θ` (the generalized harmonic number).
    pub fn zeta(m: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for k in 1..=m {
            sum += det_pow(k as f64, -theta);
        }
        sum
    }

    /// The domain size `n`.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Analytic CDF: probability that a sample's rank is `< m` (i.e. lands
    /// in the hottest `m` ranks). Used by the property tests to hold the
    /// empirical stream to the distribution it claims to implement.
    pub fn cdf(&self, m: u64) -> f64 {
        Self::zeta(m.min(self.n), self.theta) / self.zetan
    }

    /// Draw one rank in `0..n` (0 = hottest).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        // 53 high bits -> uniform double in [0, 1), same as SimRng::chance.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + det_pow(0.5, self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * det_pow(self.eta * u - self.eta + 1.0, self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Deterministic key scramble (Fibonacci multiply, then reduce): maps the
/// Zipf *rank* space onto the key space so hot keys are spread across the
/// tree instead of packed into the leftmost leaves — YCSB's scrambled-
/// zipfian, with a multiplicative hash instead of FNV.
pub fn scramble(rank: u64, domain: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % domain.max(1)
}

// ---- workload streams ------------------------------------------------------

/// Key distribution shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the key domain.
    Uniform,
    /// Skewed: ~80% of accesses hit ~20% of the domain (approximate Zipf via
    /// nested uniform ranges). Kept for the legacy `exp*` drivers; new code
    /// should use [`KeyDist::Zipfian`].
    Skewed,
    /// Real bounded Zipf over the domain with the given skew, hot ranks
    /// scrambled across the key space ([`scramble`]).
    Zipfian {
        /// Skew θ in (0,1); YCSB uses 0.99.
        theta: f64,
    },
    /// Monotonically increasing (append-heavy; maximizes rightmost-node
    /// contention).
    Sequential,
}

/// A reproducible stream of keys.
pub struct Workload {
    dist: KeyDist,
    domain: u64,
    rng: SimRng,
    next_seq: u64,
    zipf: Option<Zipf>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").finish_non_exhaustive()
    }
}

impl Workload {
    /// A workload over keys `0..domain` with a fixed seed.
    pub fn new(dist: KeyDist, domain: u64, seed: u64) -> Workload {
        let zipf = match dist {
            KeyDist::Zipfian { theta } => Some(Zipf::new(domain, theta)),
            _ => None,
        };
        Workload {
            dist,
            domain,
            rng: SimRng::new(seed),
            next_seq: 0,
            zipf,
        }
    }

    /// The next key, as a u64.
    pub fn next_key_u64(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.below(self.domain),
            KeyDist::Skewed => {
                let mut span = self.domain;
                // 80/20 nesting, three levels deep.
                for _ in 0..3 {
                    if self.rng.chance(0.8) {
                        span = (span / 5).max(1);
                    } else {
                        break;
                    }
                }
                self.rng.below(span.max(1))
            }
            KeyDist::Zipfian { .. } => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("Zipfian workload has a sampler")
                    .sample(&mut self.rng);
                scramble(rank, self.domain)
            }
            KeyDist::Sequential => {
                let k = self.next_seq;
                self.next_seq += 1;
                k
            }
        }
    }

    /// The next key, encoded big-endian (the byte order the trees sort by).
    pub fn next_key(&mut self) -> Vec<u8> {
        self.next_key_u64().to_be_bytes().to_vec()
    }

    /// Whether the next operation is a read, for a given read fraction.
    pub fn is_read(&mut self, read_fraction: f64) -> bool {
        self.rng.chance(read_fraction)
    }
}

/// Encode a u64 key the way the harness does everywhere.
pub fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree_sim::prop;

    #[test]
    fn workloads_are_reproducible() {
        let mut a = Workload::new(KeyDist::Uniform, 1000, 42);
        let mut b = Workload::new(KeyDist::Uniform, 1000, 42);
        for _ in 0..50 {
            assert_eq!(a.next_key_u64(), b.next_key_u64());
        }
    }

    #[test]
    fn sequential_is_monotonic() {
        let mut w = Workload::new(KeyDist::Sequential, u64::MAX, 0);
        let ks: Vec<u64> = (0..10).map(|_| w.next_key_u64()).collect();
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn skew_concentrates_mass() {
        let mut w = Workload::new(KeyDist::Skewed, 100_000, 7);
        let hits = (0..10_000).filter(|_| w.next_key_u64() < 20_000).count();
        assert!(hits > 6_000, "skewed hits in the hot fifth: {hits}/10000");
    }

    #[test]
    fn keys_are_in_domain() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Skewed,
            KeyDist::Zipfian { theta: 0.99 },
        ] {
            let mut w = Workload::new(dist, 500, 3);
            for _ in 0..1000 {
                assert!(w.next_key_u64() < 500);
            }
        }
    }

    // ---- deterministic transcendentals ------------------------------------

    #[test]
    fn det_ln_and_exp_match_std_closely() {
        // Not bit-identical to libm (that's the point — ours is pinned),
        // but must agree to ~1e-12 relative everywhere we use them.
        for &x in &[1e-6, 0.1, 0.5, 1.0, 1.5, 2.0, 10.0, 1e6, 123456.789] {
            let rel = (det_ln(x) - x.ln()).abs() / x.ln().abs().max(1e-300);
            assert!(rel < 1e-12, "det_ln({x}) off by {rel}");
        }
        for &x in &[-50.0, -1.0, -1e-9, 0.0, 1e-9, 0.5, 1.0, 30.0, 600.0] {
            let rel = (det_exp(x) - x.exp()).abs() / x.exp();
            assert!(rel < 1e-12, "det_exp({x}) off by {rel}");
        }
        let p = det_pow(7.3, -0.99);
        let rel = (p - 7.3f64.powf(-0.99)).abs() / p;
        assert!(rel < 1e-12, "det_pow off by {rel}");
    }

    // ---- Zipf property tests (sim-runner, replayable seeds) ----------------

    #[test]
    fn zipf_domain_containment() {
        prop::run_cases("zipf_domain_containment", 16, |rng| {
            let n = rng.range(1..5_000);
            let theta = 0.2 + 0.79 * (rng.below(100) as f64 / 100.0);
            let z = Zipf::new(n, theta);
            for _ in 0..2_000 {
                assert!(z.sample(rng) < n, "sample escaped [0, {n})");
            }
        });
    }

    #[test]
    fn zipf_mass_concentration_tracks_analytic_cdf() {
        prop::run_cases("zipf_mass_concentration", 8, |rng| {
            let n = 10_000u64;
            let theta = 0.99;
            let z = Zipf::new(n, theta);
            let samples = 40_000usize;
            // Empirical CDF at several prefixes must sit within ±2.5
            // percentage points of zeta(m)/zeta(n) — generous vs. the
            // ~0.5pp sampling noise at 40k draws, tight vs. the old 80/20
            // approximation (off by tens of points at the head).
            for &m in &[1u64, 10, 100, 1_000, 5_000] {
                let want = z.cdf(m);
                let hits = (0..samples).filter(|_| z.sample(rng) < m).count();
                let got = hits as f64 / samples as f64;
                assert!(
                    (got - want).abs() < 0.025,
                    "cdf({m}) empirical {got:.4} vs analytic {want:.4} (n={n}, theta={theta})"
                );
            }
        });
    }

    #[test]
    fn zipf_hottest_rank_dominates() {
        // At theta=0.99 over 10k ranks, rank 0 alone must carry ~10% of
        // the mass (1/zeta(10k, .99) ≈ 0.103) — the "hot key" the
        // scenario harness leans on.
        let z = Zipf::new(10_000, 0.99);
        let mut rng = SimRng::new(0x21bf);
        let hits = (0..20_000).filter(|_| z.sample(&mut rng) == 0).count();
        let frac = hits as f64 / 20_000.0;
        assert!(
            (frac - z.cdf(1)).abs() < 0.02,
            "rank-0 mass {frac:.3} vs analytic {:.3}",
            z.cdf(1)
        );
        assert!(frac > 0.05, "rank 0 is not hot: {frac:.3}");
    }

    #[test]
    fn zipf_streams_are_byte_identical_for_equal_seeds() {
        prop::run_cases("zipf_equal_seed_streams", 8, |rng| {
            let seed = rng.next_u64();
            let n = rng.range(10..100_000);
            let a = Zipf::new(n, 0.99);
            let b = Zipf::new(n, 0.99);
            let mut ra = SimRng::new(seed);
            let mut rb = SimRng::new(seed);
            let xs: Vec<u64> = (0..512).map(|_| a.sample(&mut ra)).collect();
            let ys: Vec<u64> = (0..512).map(|_| b.sample(&mut rb)).collect();
            assert_eq!(xs, ys, "equal seeds must give identical streams");
            // And the big-endian byte encoding the trees sort by is
            // identical too (the replayable-workload contract).
            let ab: Vec<u8> = xs.iter().flat_map(|k| k.to_be_bytes()).collect();
            let bb: Vec<u8> = ys.iter().flat_map(|k| k.to_be_bytes()).collect();
            assert_eq!(ab, bb);
        });
    }

    #[test]
    fn zipfian_workload_stream_is_reproducible() {
        let mut a = Workload::new(KeyDist::Zipfian { theta: 0.99 }, 100_000, 0x5eed);
        let mut b = Workload::new(KeyDist::Zipfian { theta: 0.99 }, 100_000, 0x5eed);
        let xs: Vec<Vec<u8>> = (0..256).map(|_| a.next_key()).collect();
        let ys: Vec<Vec<u8>> = (0..256).map(|_| b.next_key()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn scramble_stays_in_domain_and_spreads() {
        let d = 1_000u64;
        let mapped: Vec<u64> = (0..100).map(|r| scramble(r, d)).collect();
        assert!(mapped.iter().all(|&k| k < d));
        // The 100 hottest ranks must not collapse into one corner of the
        // key space (that would re-create the packed-leftmost-leaf bias).
        let in_first_tenth = mapped.iter().filter(|&&k| k < d / 10).count();
        assert!(
            in_first_tenth < 30,
            "scramble clusters: {in_first_tenth}/100"
        );
    }
}
