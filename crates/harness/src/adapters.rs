//! Adapters exposing the Π-tree through the baseline [`ConcurrentIndex`]
//! surface, so experiment E1 drives all three protocols identically.

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_baselines::ConcurrentIndex;
use pitree_obs::{Hist, Stopwatch};
use std::sync::Arc;

/// A Π-tree with its store, autocommitting one transaction per operation
/// (the same per-operation cost model the baselines have — minus their
/// missing WAL, which biases *against* the Π-tree; see DESIGN.md).
///
/// Whole-operation latencies (including deadlock retries) land in the
/// store's registry as the `op.insert_ns` / `op.get_ns` / `op.delete_ns`
/// histograms — the top of the metric stack described in
/// `OBSERVABILITY.md`.
pub struct PiTreeIndex {
    _store: CrashableStore,
    tree: PiTree,
    op_insert_ns: Hist,
    op_get_ns: Hist,
    op_delete_ns: Hist,
}

impl std::fmt::Debug for PiTreeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiTreeIndex").finish_non_exhaustive()
    }
}

impl PiTreeIndex {
    /// Build over a fresh in-memory store.
    pub fn new(pool_frames: usize, cfg: PiTreeConfig) -> PiTreeIndex {
        let store = CrashableStore::create(pool_frames, 1 << 20).expect("store");
        let tree = PiTree::create(Arc::clone(&store.store), 1, cfg).expect("tree");
        let rec = tree.recorder().clone();
        PiTreeIndex {
            _store: store,
            tree,
            op_insert_ns: rec.hist("op.insert_ns"),
            op_get_ns: rec.hist("op.get_ns"),
            op_delete_ns: rec.hist("op.delete_ns"),
        }
    }

    /// The wrapped tree (for stats and validation).
    pub fn tree(&self) -> &PiTree {
        &self.tree
    }
}

impl ConcurrentIndex for PiTreeIndex {
    fn insert(&self, key: &[u8], value: &[u8]) {
        let t = Stopwatch::start();
        loop {
            let mut txn = self.tree.begin();
            match self.tree.insert(&mut txn, key, value) {
                Ok(_) => {
                    txn.commit().expect("commit");
                    self.op_insert_ns.record(t.elapsed_ns());
                    return;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    // Deadlock victim: abort and retry, like any client.
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let t = Stopwatch::start();
        let got = self.tree.get_unlocked(key).expect("get");
        self.op_get_ns.record(t.elapsed_ns());
        got
    }

    fn delete(&self, key: &[u8]) -> bool {
        let t = Stopwatch::start();
        loop {
            let mut txn = self.tree.begin();
            match self.tree.delete(&mut txn, key) {
                Ok(hit) => {
                    txn.commit().expect("commit");
                    self.op_delete_ns.record(t.elapsed_ns());
                    return hit;
                }
                Err(pitree_pagestore::StoreError::LockFailed { .. }) => {
                    let _ = txn.abort(Some(&self.tree.undo_handler()));
                }
                Err(e) => panic!("delete failed: {e}"),
            }
        }
    }

    fn name(&self) -> &'static str {
        "pi-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_roundtrip() {
        let idx = PiTreeIndex::new(256, PiTreeConfig::small_nodes(8, 8));
        idx.insert(b"k", b"v");
        assert_eq!(idx.get(b"k"), Some(b"v".to_vec()));
        assert!(idx.delete(b"k"));
        assert!(!idx.delete(b"k"));
        assert_eq!(idx.name(), "pi-tree");
    }
}
