//! The million-key scenario matrix: workload shapes, population/pool
//! sizing, and the deterministic oracle twins that gate each scenario.
//!
//! The paper's §1 claim is *comparative* — the Π-tree's latch/lock/log
//! discipline wins under real contention — and contention only exists
//! when the buffer pool is a small fraction of the data (EXPERIMENTS.md
//! S7 caps it at ≤ 1%). This module is the spec side of that experiment:
//! the `scenarios` bin consumes [`ScenarioSpec`]s from [`matrix`], drives
//! each engine with [`KeyStream`] samples, and gates every scenario with
//! [`twin_ops`] streams through `pitree-check`'s
//! [`differential_twin`](pitree_check::differential_twin) /
//! [`durability_twin`](pitree_check::durability_twin) plus the
//! engine-specific [`tsb_twin`] / [`hb_twin`] model checks here.
//!
//! Every sampler runs on [`SimRng`] + the deterministic
//! [`Zipf`] generator, so a scenario is a pure
//! function of its seed: the bench stream at 1M keys and the twin stream
//! at domain ~100 are the *same shape* drawn from the same code.

use crate::workload::{scramble, Zipf};
use pitree_check::ScenOp;
use pitree_sim::SimRng;

/// Key population of a scenario store: how many keys are preloaded and
/// how wide the key space the workload draws from is. Keeping the two in
/// one struct (instead of loose `load_keys` / `key_space` knobs) makes
/// the miss ratio explicit — `key_space > load_keys` means a known
/// fraction of point reads miss — and gives BENCH JSON one self-
/// describing config block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Population {
    /// Keys preloaded before the measured phase.
    pub load_keys: u64,
    /// Workload keys are drawn from `0..key_space`.
    pub key_space: u64,
}

impl Population {
    /// Every drawn key was preloaded: reads hit unless deleted.
    pub fn dense(n: u64) -> Population {
        Population {
            load_keys: n,
            key_space: n,
        }
    }

    /// A sparse population: `key_space > load_keys`, so point reads miss
    /// at a known rate and inserts grow the tree.
    pub fn sparse(load_keys: u64, key_space: u64) -> Population {
        assert!(key_space >= load_keys);
        Population {
            load_keys,
            key_space,
        }
    }

    /// Expected fraction of uniform point reads that find a key.
    pub fn hit_fraction(&self) -> f64 {
        self.load_keys as f64 / self.key_space as f64
    }
}

/// Operation mix in percent (must sum to 100). Scans carry their length.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Point reads.
    pub get: u32,
    /// Upserts.
    pub insert: u32,
    /// Deletes.
    pub delete: u32,
    /// Range scans.
    pub scan: u32,
    /// Keys per scan window.
    pub scan_len: u64,
}

impl Mix {
    fn check(&self) {
        assert_eq!(
            self.get + self.insert + self.delete + self.scan,
            100,
            "mix must sum to 100"
        );
    }

    /// Human-readable form for the JSON config block.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for (pct, what) in [
            (self.get, "get".to_string()),
            (self.insert, "insert".to_string()),
            (self.delete, "delete".to_string()),
            (self.scan, format!("scan({})", self.scan_len)),
        ] {
            if pct > 0 {
                parts.push(format!("{pct}% {what}"));
            }
        }
        parts.join(" / ")
    }
}

/// Which keys the ops aim at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    /// Uniform over the key space.
    Uniform,
    /// Bounded Zipf with skew θ, hot ranks scrambled across the space.
    Zipf(f64),
    /// Adversarial hot band: every op lands in a `width`-key window at
    /// the middle of the space, *unscrambled* — so inserts and deletes
    /// hammer one subtree with repeated splits and consolidations.
    HotBand {
        /// Window width in keys.
        width: u64,
    },
    /// Monotonically increasing appends past the preloaded range
    /// (rightmost-leaf contention; reads sample the appended prefix).
    Sequential,
}

impl Access {
    /// Human-readable form for the JSON config block.
    pub fn describe(&self) -> String {
        match self {
            Access::Uniform => "uniform".into(),
            Access::Zipf(t) => format!("zipf({t})"),
            Access::HotBand { width } => format!("hot-band({width})"),
            Access::Sequential => "sequential".into(),
        }
    }
}

/// Engines a scenario compares (the bin maps these to drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSet {
    /// Π-tree (file-backed, WAL, pipelined commits) vs. the in-memory
    /// lock-coupling baseline at the same pool size.
    PointVsBaselines,
    /// TSB-tree as-of reads/puts vs. Π-tree current-version ops vs.
    /// lock-coupling — the temporal scenario.
    Temporal,
    /// hB-tree window queries vs. Π-tree over the concatenated-attribute
    /// key (x-slab scan + y filter), the classic composite-index strawman
    /// the hB-tree paper argues against.
    MultiAttr,
}

/// One scenario of the matrix.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// JSON/file name suffix (`BENCH_scenario_<name>.json`).
    pub name: &'static str,
    /// One-line description for the JSON.
    pub what: &'static str,
    /// Operation mix.
    pub mix: Mix,
    /// Key access shape.
    pub access: Access,
    /// Engines under comparison.
    pub engines: EngineSet,
}

/// The scenario matrix (EXPERIMENTS.md S7). YCSB letters follow the
/// standard core workloads; `hot-storm` is the adversarial subtree
/// hammer; the last two exercise the paper's other two access methods.
pub fn matrix() -> Vec<ScenarioSpec> {
    let specs = vec![
        ScenarioSpec {
            name: "ycsb-a",
            what: "update-heavy: 50% reads / 50% upserts, zipf(0.99)",
            mix: Mix {
                get: 50,
                insert: 50,
                delete: 0,
                scan: 0,
                scan_len: 0,
            },
            access: Access::Zipf(0.99),
            engines: EngineSet::PointVsBaselines,
        },
        ScenarioSpec {
            name: "ycsb-b",
            what: "read-mostly: 95% reads / 5% upserts, zipf(0.99)",
            mix: Mix {
                get: 95,
                insert: 5,
                delete: 0,
                scan: 0,
                scan_len: 0,
            },
            access: Access::Zipf(0.99),
            engines: EngineSet::PointVsBaselines,
        },
        ScenarioSpec {
            name: "ycsb-c",
            what: "read-only: 100% reads, zipf(0.99)",
            mix: Mix {
                get: 100,
                insert: 0,
                delete: 0,
                scan: 0,
                scan_len: 0,
            },
            access: Access::Zipf(0.99),
            engines: EngineSet::PointVsBaselines,
        },
        ScenarioSpec {
            name: "ycsb-e",
            what: "short scans: 95% scans(50) / 5% inserts, zipf(0.99) start keys",
            mix: Mix {
                get: 0,
                insert: 5,
                delete: 0,
                scan: 95,
                scan_len: 50,
            },
            access: Access::Zipf(0.99),
            engines: EngineSet::PointVsBaselines,
        },
        ScenarioSpec {
            name: "scan-range",
            what: "scan-heavy: 60% scans(500) / 30% reads / 10% upserts, uniform",
            mix: Mix {
                get: 30,
                insert: 10,
                delete: 0,
                scan: 60,
                scan_len: 500,
            },
            access: Access::Uniform,
            engines: EngineSet::PointVsBaselines,
        },
        ScenarioSpec {
            name: "hot-storm",
            what: "adversarial write storm on one subtree: 45% inserts / 45% deletes \
                   / 10% reads in an unscrambled hot band",
            mix: Mix {
                get: 10,
                insert: 45,
                delete: 45,
                scan: 0,
                scan_len: 0,
            },
            access: Access::HotBand { width: 512 },
            engines: EngineSet::PointVsBaselines,
        },
        ScenarioSpec {
            name: "seq-append",
            what: "append storm: 80% sequential inserts / 20% reads of the appended \
                   prefix (rightmost-leaf contention)",
            mix: Mix {
                get: 20,
                insert: 80,
                delete: 0,
                scan: 0,
                scan_len: 0,
            },
            access: Access::Sequential,
            engines: EngineSet::PointVsBaselines,
        },
        ScenarioSpec {
            name: "tsb-asof",
            what: "temporal: 70% as-of reads / 10% as-of scans(50) / 20% puts; \
                   TSB-tree vs current-version Π-tree and lock-coupling",
            mix: Mix {
                get: 70,
                insert: 20,
                delete: 0,
                scan: 10,
                scan_len: 50,
            },
            access: Access::Zipf(0.99),
            engines: EngineSet::Temporal,
        },
        ScenarioSpec {
            name: "hb-multiattr",
            what: "multi-attribute: 70% window queries / 30% point inserts; hB-tree \
                   vs Π-tree over the concatenated (x,y) key",
            mix: Mix {
                get: 0,
                insert: 30,
                delete: 0,
                scan: 70,
                scan_len: 16, // window edge length in attribute units
            },
            access: Access::Uniform,
            engines: EngineSet::MultiAttr,
        },
    ];
    for s in &specs {
        s.mix.check();
    }
    specs
}

/// Seeded key sampler for one scenario over a given key space — the same
/// shape at 1M keys (bench) and at domain ~100 (oracle twin).
#[derive(Debug)]
pub struct KeyStream {
    access: Access,
    key_space: u64,
    zipf: Option<Zipf>,
    next_seq: u64,
}

impl KeyStream {
    /// Build a sampler; `append_base` seeds the sequential cursor (the
    /// preloaded high-water mark, so appends extend the tree).
    pub fn new(access: Access, key_space: u64, append_base: u64) -> KeyStream {
        let zipf = match access {
            Access::Zipf(theta) => Some(Zipf::new(key_space, theta)),
            _ => None,
        };
        KeyStream {
            access,
            key_space,
            zipf,
            next_seq: append_base,
        }
    }

    /// Next target key.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        match self.access {
            Access::Uniform => rng.below(self.key_space),
            Access::Zipf(_) => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("zipf access has a sampler")
                    .sample(rng);
                scramble(rank, self.key_space)
            }
            Access::HotBand { width } => {
                let w = width.min(self.key_space);
                let base = (self.key_space - w) / 2;
                base + rng.below(w.max(1))
            }
            Access::Sequential => {
                let k = self.next_seq;
                self.next_seq += 1;
                k
            }
        }
    }

    /// A key known to exist already (for reads in append scenarios):
    /// uniform over `[0, current sequential cursor)`, else [`Self::next`].
    pub fn next_existing(&mut self, rng: &mut SimRng) -> u64 {
        match self.access {
            Access::Sequential => rng.below(self.next_seq.max(1)),
            _ => self.next(rng),
        }
    }
}

/// Generate a scenario's deterministic twin stream: the same mix and
/// access shape, scaled down to `domain` keys and `ops` steps, with
/// flushes and fuzzy checkpoints sprinkled in so the durability twin
/// crosses eviction and checkpoint boundaries. Pure function of
/// `(spec, seed, ops, domain)`.
pub fn twin_ops(spec: &ScenarioSpec, seed: u64, ops: usize, domain: u64) -> Vec<ScenOp> {
    let mut rng = SimRng::new(seed ^ 0x5ce7_a110);
    let mut stream = KeyStream::new(spec.access, domain, 0);
    // Seed a small preload so read-heavy twins have data to read.
    let mut out: Vec<ScenOp> = (0..domain / 2).map(ScenOp::Insert).collect();
    for i in 0..ops {
        let roll = rng.below(100) as u32;
        let m = &spec.mix;
        if roll < m.get {
            out.push(ScenOp::Get(stream.next_existing(&mut rng)));
        } else if roll < m.get + m.insert {
            out.push(ScenOp::Insert(stream.next(&mut rng)));
        } else if roll < m.get + m.insert + m.delete {
            out.push(ScenOp::Delete(stream.next(&mut rng)));
        } else {
            let lo = stream.next_existing(&mut rng);
            // Scan windows shrink with the domain: ~1/8 of the space.
            out.push(ScenOp::Scan(lo, lo + (domain / 8).max(2)));
        }
        if i % 17 == 13 {
            out.push(ScenOp::Flush);
        }
        if i % 41 == 29 {
            out.push(ScenOp::Checkpoint);
        }
    }
    out
}

// ---- engine-specific twins -------------------------------------------------

/// TSB-tree twin: a seeded put/delete history over a small domain with a
/// brute-force `(key, time) -> value` model, then every key × sampled
/// time checked through `get_as_of`, plus `scan_as_of` windows — the
/// temporal scenario's oracle. Returns `Err(description)` on divergence.
pub fn tsb_twin(seed: u64) -> Result<(), String> {
    use pitree::CrashableStore;
    use pitree_tsb::{TsbConfig, TsbTree};
    use std::sync::Arc;

    let cs = CrashableStore::create(128, 1 << 20).map_err(|e| format!("store: {e}"))?;
    let tree = TsbTree::create(Arc::clone(&cs.store), 1, TsbConfig::small_nodes(4, 4))
        .map_err(|e| format!("tree: {e}"))?;
    let mut rng = SimRng::new(seed ^ 0x75b7);
    let domain = 16u64;
    // history[k] = chronological (time, value-or-deleted).
    let mut history: Vec<Vec<(u64, Option<Vec<u8>>)>> = vec![Vec::new(); domain as usize];
    for i in 0..120usize {
        let k = rng.below(domain);
        let key = k.to_be_bytes();
        let mut t = tree.begin();
        if rng.chance(0.75) {
            let v = format!("t{k}-{i}").into_bytes();
            let at = tree
                .put(&mut t, &key, &v)
                .map_err(|e| format!("put: {e}"))?;
            t.commit().map_err(|e| format!("commit: {e}"))?;
            history[k as usize].push((at, Some(v)));
        } else {
            let at = tree
                .delete(&mut t, &key)
                .map_err(|e| format!("delete: {e}"))?;
            t.commit().map_err(|e| format!("commit: {e}"))?;
            history[k as usize].push((at, None));
        }
    }
    let model_at = |k: u64, t: u64| -> Option<Vec<u8>> {
        history[k as usize]
            .iter()
            .rev()
            .find(|&&(at, _)| at <= t)
            .and_then(|(_, v)| v.clone())
    };
    // Sampled as-of probes: every key at ~8 times across the run.
    let horizon = tree.now();
    for k in 0..domain {
        let key = k.to_be_bytes();
        for _ in 0..8 {
            let t = rng.below(horizon + 1);
            let got = tree
                .get_as_of(&key, t)
                .map_err(|e| format!("get_as_of: {e}"))?;
            let want = model_at(k, t);
            if got != want {
                return Err(format!(
                    "tsb twin (seed {seed:#x}): as-of({k}, t={t}) = {got:?}, model says {want:?}"
                ));
            }
        }
    }
    // As-of scans: the whole domain at sampled times.
    for _ in 0..6 {
        let t = rng.below(horizon + 1);
        let got = tree
            .scan_as_of(&0u64.to_be_bytes(), &domain.to_be_bytes(), t)
            .map_err(|e| format!("scan_as_of: {e}"))?;
        let want: Vec<(Vec<u8>, Vec<u8>)> = (0..domain)
            .filter_map(|k| model_at(k, t).map(|v| (k.to_be_bytes().to_vec(), v)))
            .collect();
        if got != want {
            return Err(format!(
                "tsb twin (seed {seed:#x}): scan_as_of(t={t}) returned {} pairs, model has {}",
                got.len(),
                want.len()
            ));
        }
    }
    Ok(())
}

/// hB-tree twin: seeded 2-attribute inserts/deletes with a brute-force
/// point-set model, window queries checked exactly — the multi-attribute
/// scenario's oracle. Returns `Err(description)` on divergence.
pub fn hb_twin(seed: u64) -> Result<(), String> {
    use pitree::CrashableStore;
    use pitree_hb::{HbConfig, HbTree, Point, Rect};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let cs = CrashableStore::create(128, 1 << 20).map_err(|e| format!("store: {e}"))?;
    let tree = HbTree::create(Arc::clone(&cs.store), 1, HbConfig::small_nodes(6, 4))
        .map_err(|e| format!("tree: {e}"))?;
    let mut rng = SimRng::new(seed ^ 0x4b77);
    let side = 32u64;
    let mut model: BTreeMap<Point, Vec<u8>> = BTreeMap::new();
    for i in 0..150usize {
        let p: Point = [rng.below(side), rng.below(side)];
        let mut t = tree.begin();
        if rng.chance(0.8) {
            let v = format!("p{}-{}-{i}", p[0], p[1]).into_bytes();
            tree.insert(&mut t, &p, &v)
                .map_err(|e| format!("insert: {e}"))?;
            t.commit().map_err(|e| format!("commit: {e}"))?;
            model.insert(p, v);
        } else {
            tree.delete(&mut t, &p)
                .map_err(|e| format!("delete: {e}"))?;
            t.commit().map_err(|e| format!("commit: {e}"))?;
            model.remove(&p);
        }
    }
    for _ in 0..20 {
        let lo = [rng.below(side), rng.below(side)];
        let w = Rect {
            lo,
            hi: [lo[0] + 1 + rng.below(side), lo[1] + 1 + rng.below(side)],
        };
        let mut got = tree
            .window_query(&w)
            .map_err(|e| format!("window_query: {e}"))?;
        got.sort();
        let want: Vec<(Point, Vec<u8>)> = model
            .iter()
            .filter(|(p, _)| w.contains(p))
            .map(|(p, v)| (*p, v.clone()))
            .collect();
        if got != want {
            return Err(format!(
                "hb twin (seed {seed:#x}): window {w:?} returned {} points, model has {}",
                got.len(),
                want.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_well_formed() {
        let m = matrix();
        assert!(m.len() >= 6, "acceptance wants >= 6 scenarios");
        let mut names: Vec<_> = m.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), m.len(), "scenario names must be unique");
    }

    #[test]
    fn twin_streams_are_deterministic() {
        for spec in matrix() {
            let a = twin_ops(&spec, 0xabcd, 100, 96);
            let b = twin_ops(&spec, 0xabcd, 100, 96);
            assert_eq!(
                a, b,
                "{} twin must be a pure function of its seed",
                spec.name
            );
            let c = twin_ops(&spec, 0xabce, 100, 96);
            assert_ne!(a, c, "{} twin must vary with the seed", spec.name);
        }
    }

    #[test]
    fn twin_streams_reflect_the_mix() {
        let m = matrix();
        let ycsb_c = m.iter().find(|s| s.name == "ycsb-c").unwrap();
        let ops = twin_ops(ycsb_c, 1, 200, 96);
        // Read-only mix: no writes beyond the preload prefix.
        let preload = 96 / 2;
        assert!(ops[preload..]
            .iter()
            .all(|op| !matches!(op, ScenOp::Insert(_) | ScenOp::Delete(_))));
        let storm = m.iter().find(|s| s.name == "hot-storm").unwrap();
        let ops = twin_ops(storm, 1, 200, 96);
        let writes = ops[preload..]
            .iter()
            .filter(|op| matches!(op, ScenOp::Insert(_) | ScenOp::Delete(_)))
            .count();
        assert!(writes > 120, "hot storm twin is write-heavy: {writes}");
    }

    #[test]
    fn hot_band_hits_one_window() {
        let mut s = KeyStream::new(Access::HotBand { width: 512 }, 1_000_000, 0);
        let mut rng = SimRng::new(9);
        for _ in 0..500 {
            let k = s.next(&mut rng);
            assert!((499_744..500_256).contains(&k), "escaped the band: {k}");
        }
    }

    #[test]
    fn population_describes_hit_rate() {
        assert_eq!(Population::dense(100).hit_fraction(), 1.0);
        assert_eq!(Population::sparse(50, 100).hit_fraction(), 0.5);
    }

    #[test]
    fn tsb_twin_accepts_the_tree() {
        tsb_twin(0x7e57).expect("tsb twin must pass");
    }

    #[test]
    fn hb_twin_accepts_the_tree() {
        hb_twin(0x7e57).expect("hb twin must pass");
    }
}
