#![warn(missing_docs)]
//! Experiment harness: workload generators, index adapters, and the table
//! printer used by the `exp*` and `fig*` binaries that regenerate every
//! entry in `EXPERIMENTS.md`.

pub mod adapters;
pub mod completer;
pub mod table;
pub mod workload;

pub use adapters::PiTreeIndex;
pub use completer::CompletionWorker;
pub use table::Table;
pub use workload::{KeyDist, Workload};
