#![warn(missing_docs)]
//! Experiment harness: workload generators, index adapters, and the table
//! printer used by the `exp*` and `fig*` binaries that regenerate every
//! entry in `EXPERIMENTS.md`.
//!
//! The harness also hosts the observability demo ([`obsdemo`]) and its
//! `obstop` binary, which runs a deterministic seeded workload across
//! every instrumented layer and prints the unified `pitree-obs` report
//! (see `OBSERVABILITY.md` at the workspace root). The [`adapters`]
//! additionally record whole-operation latency histograms
//! (`op.insert_ns` / `op.get_ns` / `op.delete_ns`) into the store's
//! registry.

pub mod adapters;
pub mod completer;
pub mod obsdemo;
pub mod scenario;
pub mod table;
pub mod workload;

pub use adapters::PiTreeIndex;
pub use completer::CompletionWorker;
pub use scenario::{matrix, Access, EngineSet, KeyStream, Mix, Population, ScenarioSpec};
pub use table::Table;
pub use workload::{KeyDist, Workload};
