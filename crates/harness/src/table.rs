//! Minimal aligned-column table printer for experiment reports.

/// A table accumulated row by row and printed with aligned columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table").finish_non_exhaustive()
    }
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "123456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[3].contains("longer"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
