//! The deterministic workload behind `obstop` and the event-stream
//! determinism gate.
//!
//! One seeded, single-threaded run that deliberately exercises every
//! instrumented layer: small nodes force splits, root growth, and index
//! postings; a small buffer pool forces misses and dirty evictions; a
//! deletion wave forces consolidations; every commit appends and forces
//! WAL records under database locks; a fuzzy checkpoint caps the run.
//!
//! Determinism contract: given the same seed, two runs in the same
//! process emit **byte-identical** event streams
//! ([`pitree_obs::Registry::events_jsonl`]) — events are stamped with
//! the registry's logical clock, never wall time, and the workload makes
//! no timing-dependent decisions. `tests/obs_determinism.rs` holds the
//! gate; `PITREE_SIM_SEED` replays a specific run.

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_sim::SimRng;
use std::sync::Arc;

/// Seed used when `PITREE_SIM_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0x000b_5e24_ab1e; // "observable"

/// Buffer-pool frames — small enough that the load phase spills and the
/// pool must evict dirty pages.
pub const POOL_FRAMES: usize = 64;

/// Keys inserted by the load phase.
pub const LOAD_KEYS: u64 = 600;

/// Mixed operations (get/insert/delete) in the churn phase.
pub const CHURN_OPS: u64 = 900;

/// Resolve the demo seed: `PITREE_SIM_SEED` (decimal or `0x`-hex, same
/// convention as the sim kit) or [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    match std::env::var("PITREE_SIM_SEED") {
        Ok(s) => {
            if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).expect("PITREE_SIM_SEED: bad hex seed")
            } else {
                s.parse().expect("PITREE_SIM_SEED: bad seed")
            }
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// A finished demo run: the live store/tree pair (whose registry holds
/// everything the run recorded) plus summary facts.
pub struct DemoRun {
    /// The crashable store; `store.crash()` starts the recovery phase.
    pub store: CrashableStore,
    /// The tree the workload ran against.
    pub tree: PiTree,
    /// Records present when the workload finished (validated).
    pub records: usize,
    /// The seed the workload ran with.
    pub seed: u64,
}

impl std::fmt::Debug for DemoRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DemoRun").finish_non_exhaustive()
    }
}

fn key_bytes(k: u64) -> [u8; 8] {
    k.to_be_bytes()
}

/// Run the seeded workload. Single-threaded and deterministic: the event
/// stream depends only on `seed`.
pub fn run(seed: u64) -> DemoRun {
    let store = CrashableStore::create(POOL_FRAMES, 1 << 20).expect("store");
    let cfg = PiTreeConfig::small_nodes(8, 8);
    let tree = PiTree::create(Arc::clone(&store.store), 1, cfg).expect("tree");
    let mut rng = SimRng::new(seed);

    // ---- load: shuffled inserts drive splits, postings, evictions ----------
    let mut keys: Vec<u64> = (0..LOAD_KEYS).collect();
    rng.shuffle(&mut keys);
    for k in &keys {
        let mut txn = tree.begin();
        tree.insert(&mut txn, &key_bytes(*k), format!("v{k}").as_bytes())
            .expect("load insert");
        txn.commit().expect("load commit");
    }

    // ---- churn: mixed point ops; the delete share leaves nodes sparse ------
    for _ in 0..CHURN_OPS {
        let k = rng.below(LOAD_KEYS);
        match rng.below(10) {
            0..=4 => {
                let _ = tree.get_unlocked(&key_bytes(k)).expect("get");
            }
            5..=7 => {
                let mut txn = tree.begin();
                tree.delete(&mut txn, &key_bytes(k)).expect("delete");
                txn.commit().expect("delete commit");
            }
            _ => {
                let mut txn = tree.begin();
                tree.insert(&mut txn, &key_bytes(k), b"vv").expect("insert");
                txn.commit().expect("churn commit");
            }
        }
    }

    // Drain scheduled postings/consolidations (lazy SMO completion, §5.1).
    tree.run_completions().expect("completions");

    // ---- checkpoint: a fuzzy checkpoint ends the run (§4.3) ----------------
    pitree_wal::take_checkpoint(&store.store.pool, &store.store.log, Vec::new())
        .expect("checkpoint");

    let report = tree.validate().expect("validate");
    assert!(report.is_well_formed(), "{:?}", report.violations);
    DemoRun {
        records: report.records,
        seed,
        store,
        tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_exercises_every_layer() {
        let run = run(7);
        let reg = run.tree.recorder().registry();
        let rec = run.tree.recorder();
        assert!(rec.counter("latch.acquire_x").get() > 0);
        assert!(rec.counter("buf.misses").get() > 0);
        assert!(rec.counter("buf.dirty_evictions").get() > 0);
        assert!(rec.counter("wal.appends").get() > 0);
        assert!(rec.counter("lock.acquires").get() > 0);
        assert!(rec.counter("tree.splits").get() > 0);
        assert!(rec.counter("action.commits").get() > 0);
        let report = reg.report();
        assert!(report.contains("wal.force_ns"));
    }
}
