//! A background completion worker: drains a Π-tree's completion queue on an
//! interval, the way a production system would run lazy structure-change
//! completion off the critical path (§5.1).

use pitree::PiTree;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a background completion thread; stops (and drains once more)
/// on drop.
pub struct CompletionWorker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CompletionWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionWorker").finish_non_exhaustive()
    }
}

impl CompletionWorker {
    /// Spawn a worker draining `tree`'s queue every `interval`.
    pub fn spawn(tree: Arc<PiTree>, interval: Duration) -> CompletionWorker {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                tree.run_completions().expect("completion action failed");
                std::thread::park_timeout(interval);
            }
            // Final drain so nothing queued is left behind.
            for _ in 0..4 {
                tree.run_completions().expect("completion action failed");
            }
        });
        CompletionWorker {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the worker and wait for its final drain.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            h.join().expect("completion worker panicked");
        }
    }
}

impl Drop for CompletionWorker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree::{CrashableStore, PiTreeConfig};

    #[test]
    fn worker_completes_postings_in_background() {
        let mut cfg = PiTreeConfig::small_nodes(6, 6);
        cfg.auto_complete = false; // the worker is the only completer
        let cs = CrashableStore::create(1024, 200_000).unwrap();
        let tree = Arc::new(PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap());
        let worker = CompletionWorker::spawn(Arc::clone(&tree), Duration::from_millis(1));
        for i in 0..300u64 {
            let mut t = tree.begin();
            tree.insert(&mut t, &i.to_be_bytes(), b"v").unwrap();
            t.commit().unwrap();
        }
        worker.stop();
        let report = tree.validate().unwrap();
        assert!(report.is_well_formed(), "{:?}", report.violations);
        assert_eq!(report.records, 300);
        assert_eq!(
            report.unposted_nodes, 0,
            "the worker must have drained all postings"
        );
        assert!(tree.completions().is_empty());
    }
}
