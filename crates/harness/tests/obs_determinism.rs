//! The sim-determinism gate for the observability layer: the same seed
//! must produce a **byte-identical** event stream, because events are
//! stamped with the registry's logical clock (never wall time) and the
//! demo workload makes no timing-dependent decisions. This is what makes
//! `obstop --jsonl` dumps replayable/diffable under `PITREE_SIM_SEED`.

use pitree_harness::obsdemo;

#[test]
fn same_seed_runs_emit_byte_identical_event_streams() {
    let a = obsdemo::run(0xDECAF);
    let dump_a = a.tree.recorder().registry().events_jsonl();
    drop(a);
    let b = obsdemo::run(0xDECAF);
    let dump_b = b.tree.recorder().registry().events_jsonl();

    assert!(!dump_a.is_empty(), "the demo must emit events");
    assert_eq!(
        dump_a, dump_b,
        "same-seed runs diverged: the event stream is not deterministic"
    );
}

#[test]
fn different_seeds_shuffle_differently() {
    // Sanity check that the gate above is not trivially true: a different
    // seed produces a different (but still valid) stream.
    let a = obsdemo::run(1);
    let dump_a = a.tree.recorder().registry().events_jsonl();
    drop(a);
    let b = obsdemo::run(2);
    let dump_b = b.tree.recorder().registry().events_jsonl();
    assert_ne!(dump_a, dump_b);
}

#[test]
fn counters_match_across_same_seed_runs() {
    let a = obsdemo::run(0xFEED);
    let rec_a = a.tree.recorder().clone();
    let report_a = rec_a.report();
    drop(a);
    let b = obsdemo::run(0xFEED);
    // Counters (unlike wall-clock histograms) must agree exactly.
    for name in [
        "latch.acquire_s",
        "latch.acquire_x",
        "buf.hits",
        "buf.misses",
        "buf.dirty_evictions",
        "wal.appends",
        "wal.forces",
        "lock.acquires",
        "action.begins",
        "action.commits",
        "tree.splits",
    ] {
        assert_eq!(
            rec_a.counter(name).get(),
            b.tree.recorder().counter(name).get(),
            "counter {name} diverged across same-seed runs"
        );
    }
    assert!(report_a.contains("tree.splits"));
}
