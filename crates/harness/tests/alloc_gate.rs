//! The zero-copy read-path gate: a steady-state point read performs exactly
//! **one** heap allocation — the returned value — and a range scan stays
//! within two allocations per returned pair plus a constant.
//!
//! The counter is a wrapping [`GlobalAlloc`] that tallies allocations made
//! by the *measuring thread only* (thread-local flag), so background work —
//! the group-commit daemon, other test threads — cannot perturb the count.
//! Steady state means: the buffer pool already caches the touched nodes and
//! the per-thread observability event ring has grown to capacity (it
//! allocates amortized until full, then overwrites in place), so the test
//! warms both before counting.

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

std::thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn tally() {
        // `try_with`: the allocator runs during TLS teardown too, where the
        // cells are gone — silently skip counting there.
        let _ = COUNTING.try_with(|c| {
            if c.get() {
                let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::tally();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::tally();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::tally();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` with the thread-local allocation counter on; return the count.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

#[test]
fn steady_state_reads_are_allocation_free() {
    // Pool large enough that every node stays resident: steady-state reads
    // must not evict (a miss re-reads from the backing file and allocates).
    let store = CrashableStore::create(4096, 1_000_000).expect("create store");
    let tree =
        PiTree::create(Arc::clone(&store.store), 1, PiTreeConfig::default()).expect("create tree");

    const KEYS: u64 = 4_000;
    let mut txn = tree.begin();
    for i in 0..KEYS {
        tree.insert(&mut txn, &i.to_be_bytes(), &(i * 7).to_be_bytes())
            .expect("insert");
    }
    txn.commit().expect("commit");

    // Warm: fault every node into the pool and grow this thread's event
    // ring to capacity (8192 events by default) so neither allocates during
    // the measured window.
    for round in 0..6 {
        for i in 0..KEYS {
            let v = tree.get_unlocked(&i.to_be_bytes()).expect("get");
            assert!(v.is_some(), "round {round}: key {i} must be present");
        }
    }

    // ---- point reads: exactly one allocation each (the returned value) ----
    const READS: u64 = 1_000;
    let n = count_allocs(|| {
        for i in 0..READS {
            let key = (i % KEYS).to_be_bytes();
            let v = tree.get_unlocked(&key).expect("get");
            std::hint::black_box(&v);
        }
    });
    assert_eq!(
        n, READS,
        "steady-state get_unlocked must allocate exactly once per read \
         (the returned Vec); counted {n} over {READS} reads"
    );

    // ---- missing keys: zero allocations (nothing to return) ----
    let n = count_allocs(|| {
        for i in 0..READS {
            let v = tree
                .get_unlocked(&(KEYS + 1 + i).to_be_bytes())
                .expect("get");
            assert!(v.is_none());
        }
    });
    assert_eq!(n, 0, "a miss returns None without touching the heap");

    // ---- scans: at most 2 allocations per returned pair plus a constant ----
    let (lo, hi) = (100u64, 600u64);
    let mut pairs = 0u64;
    let n = count_allocs(|| {
        let out = tree
            .scan(&lo.to_be_bytes(), &hi.to_be_bytes())
            .expect("scan");
        pairs = out.len() as u64;
        std::hint::black_box(&out);
    });
    assert_eq!(pairs, hi - lo, "scan must return the full range");
    assert!(
        n <= 2 * pairs + 8,
        "scan allocated {n} times for {pairs} pairs (budget: 2/pair + 8 \
         for the output vector's growth)"
    );
}
