//! Instant-restart integration oracles.
//!
//! The heart of this file is the **determinism oracle**: recovery must be
//! a pure function of the durable crash image, no matter which engine
//! replays it. One seeded workload is crashed once, and the same image is
//! recovered three ways — stop-the-world serial REDO, instant restart
//! with parallel background REDO, and instant restart where foreground
//! traffic triggers on-demand REDO before the background workers drain
//! the rest. All three must produce byte-identical pages ("repeating
//! history" has exactly one answer — §4.3.1's invariant restated as an
//! executable test).
//!
//! The second half exercises the **fuzzy-checkpoint trigger**: armed via
//! [`pitree_txnlock::TxnManager::set_checkpoint_every_bytes`], commits
//! under load must advance the master LSN without quiescing writers, and
//! a crash that lands after several checkpoints must still recover the
//! committed state exactly (analysis now starts at the checkpoint, not
//! the log head).

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_pagestore::PageId;
use std::collections::BTreeMap;
use std::sync::Arc;

type Model = BTreeMap<u64, Vec<u8>>;

fn key(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn val(k: u64, tag: &str) -> Vec<u8> {
    format!("{tag}-{k}").into_bytes()
}

/// Forced-commit upsert; the model records it only when the commit
/// returns (a commit that returns is durable).
fn insert(tree: &PiTree, model: &mut Model, k: u64, tag: &str) {
    let mut t = tree.begin();
    tree.insert(&mut t, &key(k), &val(k, tag)).expect("insert");
    t.commit().expect("commit");
    model.insert(k, val(k, tag));
}

fn delete(tree: &PiTree, model: &mut Model, k: u64) {
    let mut t = tree.begin();
    tree.delete(&mut t, &key(k)).expect("delete");
    t.commit().expect("commit");
    model.remove(&k);
}

/// Read every allocated page's logical image through the pool.
fn page_images(cs: &CrashableStore, max_pages: u64) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    for pid in 0..max_pages {
        let id = PageId(pid);
        if cs
            .store
            .space
            .is_allocated(&cs.store.pool, id)
            .expect("space map")
        {
            let page = cs.store.pool.fetch(id).expect("fetch");
            let g = page.s();
            out.push((pid, g.as_bytes().to_vec()));
        }
    }
    out
}

fn check_model(tree: &PiTree, model: &Model, ctx: &str) {
    for (k, v) in model {
        let got = tree
            .get_unlocked(&key(*k))
            .unwrap_or_else(|e| panic!("{ctx}: get {k}: {e}"));
        assert_eq!(got.as_ref(), Some(v), "{ctx}: key {k} wrong");
    }
    let report = tree.validate().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert!(
        report.is_well_formed(),
        "{ctx}: ill-formed: {:?}",
        report.violations
    );
    assert_eq!(report.records, model.len(), "{ctx}: record count");
}

/// Build a crash image with committed SMOs (splits + a consolidation), a
/// loser transaction for undo, and dirty pages beyond what eviction
/// happened to write back — then return the pre-crash store + model.
fn crashed_workload() -> (CrashableStore, Model) {
    let cfg = PiTreeConfig::small_nodes(4, 4);
    // A tiny pool: eviction flushes *some* pages, so REDO has real work
    // and pages differ in how far their disk image lags the log.
    let cs = CrashableStore::create(8, 10_000).expect("store");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).expect("tree");
    let mut model = Model::new();
    for k in 0..40 {
        insert(&tree, &mut model, k, "base");
    }
    for k in (0..40).step_by(3) {
        insert(&tree, &mut model, k, "updated");
    }
    for k in (1..40).step_by(7) {
        delete(&tree, &mut model, k);
    }
    // A loser: logged updates with no commit. The dead machine never
    // cleans it up (forget, not drop — drop would roll back politely).
    let mut loser = tree.begin();
    tree.insert(&mut loser, &key(500), b"loser-uncommitted")
        .expect("loser insert");
    // Force the loser's updates into the durable log (no commit record):
    // recovery must see it and undo it, not lose it with the tail.
    cs.store.log.force_all().expect("force loser tail");
    std::mem::forget(loser);
    drop(tree);
    (cs, model)
}

/// Same crash image, three replay engines, one answer: the page images
/// after serial REDO, parallel background REDO, and traffic-first
/// on-demand REDO must be byte-identical.
#[test]
fn serial_parallel_and_on_demand_redo_agree_byte_for_byte() {
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let (cs, model) = crashed_workload();

    // (a) stop-the-world serial recovery.
    let serial = cs.crash().expect("snapshot a");
    let (tree_a, stats_a) =
        PiTree::recover(Arc::clone(&serial.store), 1, cfg).expect("serial recover");
    assert!(stats_a.redone > 0, "workload left nothing to redo");
    assert!(
        !stats_a.losers.is_empty(),
        "the forced-but-uncommitted loser must be found and undone"
    );
    check_model(&tree_a, &model, "serial");
    drop(tree_a);

    // (b) instant restart, background REDO on 4 workers, no traffic.
    let parallel = cs.crash().expect("snapshot b");
    let (tree_b, plan_b, _) =
        PiTree::recover_instant(Arc::clone(&parallel.store), 1, cfg).expect("instant recover b");
    plan_b
        .drive(&parallel.store.pool, 4)
        .expect("parallel drive");
    assert!(plan_b.is_complete());
    check_model(&tree_b, &model, "parallel");
    drop(tree_b);

    // (c) instant restart, traffic triggers on-demand REDO first, then
    // background workers drain the remainder.
    let on_demand = cs.crash().expect("snapshot c");
    let (tree_c, plan_c, _) =
        PiTree::recover_instant(Arc::clone(&on_demand.store), 1, cfg).expect("instant recover c");
    for (k, v) in &model {
        let got = tree_c.get_unlocked(&key(*k)).expect("get mid-recovery");
        assert_eq!(
            got.as_ref(),
            Some(v),
            "key {k} served wrong value from a half-recovered store"
        );
    }
    plan_c
        .drive(&on_demand.store.pool, 2)
        .expect("drain after traffic");
    assert!(plan_c.is_complete());
    check_model(&tree_c, &model, "on-demand");
    drop(tree_c);

    let img_a = page_images(&serial, 10_000);
    let img_b = page_images(&parallel, 10_000);
    let img_c = page_images(&on_demand, 10_000);
    assert_eq!(
        img_a.len(),
        img_b.len(),
        "allocated page sets diverge (serial vs parallel)"
    );
    for ((pa, ba), (pb, bb)) in img_a.iter().zip(img_b.iter()) {
        assert_eq!(pa, pb, "allocated page sets diverge");
        assert_eq!(ba, bb, "page {pa}: serial and parallel REDO disagree");
    }
    for ((pa, ba), (pc, bc)) in img_a.iter().zip(img_c.iter()) {
        assert_eq!(pa, pc, "allocated page sets diverge");
        assert_eq!(ba, bc, "page {pa}: serial and on-demand REDO disagree");
    }
}

/// The log-bytes trigger takes fuzzy checkpoints inline with commits:
/// the master LSN advances under load with no quiesce, the trigger
/// re-arms (several checkpoints over enough log), and a crash landing
/// after all of that recovers exactly the committed state with analysis
/// seeded from the last checkpoint.
#[test]
fn auto_checkpoint_trigger_advances_master_under_load() {
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let cs = CrashableStore::create(32, 10_000).expect("store");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).expect("tree");
    let rec = cs.store.recorder().clone();

    cs.store.txns.set_checkpoint_every_bytes(2048);
    let mut model = Model::new();
    for k in 0..120 {
        insert(&tree, &mut model, k % 50, "ckpt");
    }

    let taken = rec.counter("wal.ckpt_taken").get();
    assert!(taken >= 2, "trigger must re-arm (took {taken} checkpoints)");
    assert_eq!(rec.counter("wal.ckpt_failed").get(), 0);
    let master = cs.store.log.store().master();
    assert!(master.0 > 0, "master LSN never advanced");
    assert!(
        cs.store.log.bytes_since_checkpoint() < cs.durable_log_len(),
        "last checkpoint should bound the analysis scan below the full log"
    );

    drop(tree);
    let crashed = cs.crash().expect("snapshot");
    let (tree, stats) = PiTree::recover(Arc::clone(&crashed.store), 1, cfg).expect("recover");
    assert!(
        stats.analysis_start >= master,
        "analysis started at {} but the master checkpoint is {}",
        stats.analysis_start,
        master
    );
    check_model(&tree, &model, "post-checkpoint crash");

    // And the instant path honours the same checkpoint.
    let crashed2 = cs.crash().expect("snapshot 2");
    let (tree2, plan, stats2) =
        PiTree::recover_instant(Arc::clone(&crashed2.store), 1, cfg).expect("instant recover");
    assert!(stats2.analysis_start >= master);
    plan.drive(&crashed2.store.pool, 2).expect("drive");
    check_model(&tree2, &model, "post-checkpoint instant");
}
