//! Crash matrix: table-driven crash–recover–verify runs targeted at each
//! structure-modification path — leaf split, index-term posting, and
//! consolidation.
//!
//! The sim kit's seeded sweep (`pitree_sim::crash`) crashes wherever a
//! random workload happens to cross durable-write boundaries; this matrix
//! instead *aims*: each row hand-crafts a workload whose trigger phase is
//! known (via `TreeStats`) to perform the targeted SMO, probes the
//! boundary window `(h0, h1]` that the trigger spans, and then crashes at
//! every boundary inside that window. That guarantees per-SMO crash
//! coverage regardless of what the random sweep draws (the paper's §1
//! point 4: recovery must cope with a crash *during* any structure
//! change).

use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_pagestore::fault::{is_injected, InjectorHandle};
use pitree_pagestore::{StoreError, StoreResult};
use pitree_sim::CrashPlan;
use std::collections::BTreeMap;
use std::sync::Arc;

type Model = BTreeMap<u64, Vec<u8>>;

fn key(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn val(k: u64) -> Vec<u8> {
    format!("cm-{k}").into_bytes()
}

/// Forced-commit upsert; the model records it only when the commit
/// returns `Ok` (a commit that returns is durable).
fn insert(tree: &PiTree, model: &mut Model, k: u64) -> StoreResult<()> {
    let mut t = tree.begin();
    if let Err(e) = tree.insert(&mut t, &key(k), &val(k)) {
        std::mem::forget(t); // dead machine: the txn cannot clean up
        return Err(e);
    }
    t.commit()?;
    model.insert(k, val(k));
    Ok(())
}

fn delete(tree: &PiTree, model: &mut Model, k: u64) -> StoreResult<()> {
    let mut t = tree.begin();
    if let Err(e) = tree.delete(&mut t, &key(k)) {
        std::mem::forget(t);
        return Err(e);
    }
    t.commit()?;
    model.remove(&k);
    Ok(())
}

/// One matrix row: a targeted SMO path.
struct Row {
    name: &'static str,
    cfg: PiTreeConfig,
    /// Workload before the measured window (SMO prerequisites).
    setup: fn(&PiTree, &mut Model) -> StoreResult<()>,
    /// The window that performs the targeted SMO.
    trigger: fn(&CrashableStore, &PiTree, &mut Model) -> StoreResult<()>,
    /// Asserts (from probe-run stat deltas) that the SMO really happened.
    assert_smo: fn(&PiTree, &[(&'static str, u64)]),
}

fn delta(before: &[(&'static str, u64)], tree: &PiTree, name: &str) -> u64 {
    let now: u64 = tree
        .stats()
        .snapshot()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0);
    let was = before
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0);
    now - was
}

fn rows() -> Vec<Row> {
    // All rows drive completions by hand so the probe can place the SMO
    // precisely inside the trigger window.
    let mut manual = PiTreeConfig::small_nodes(4, 4);
    manual.auto_complete = false;

    // Consolidation row: trigger at < 60% so one delete from a 2-entry
    // leaf (cap 4) schedules it, without having to empty the node.
    let mut consol = manual;
    consol.min_utilization = 0.6;

    vec![
        Row {
            name: "leaf-split",
            cfg: manual,
            setup: |tree, model| {
                for k in 0..4 {
                    insert(tree, model, k)?;
                }
                Ok(())
            },
            trigger: |cs, tree, model| {
                insert(tree, model, 4)?; // 5th key overflows the leaf
                cs.store.pool.flush_all()
            },
            assert_smo: |tree, before| {
                assert!(
                    delta(before, tree, "splits") >= 1,
                    "trigger did not split a leaf"
                );
            },
        },
        Row {
            name: "post-index-term",
            cfg: manual,
            setup: |tree, model| {
                // The first split of a single-leaf tree is a root grow (no
                // posting); keep inserting until a *non-root* leaf splits
                // and leaves a pending index-term posting behind.
                for k in 0..10 {
                    insert(tree, model, k)?;
                }
                Ok(())
            },
            trigger: |cs, tree, _model| {
                tree.run_completions()?; // the posting SMO
                cs.store.pool.flush_all()
            },
            assert_smo: |tree, before| {
                assert!(
                    delta(before, tree, "postings_done") >= 1,
                    "trigger did not post an index term"
                );
            },
        },
        Row {
            name: "consolidate",
            cfg: consol,
            setup: |tree, model| {
                for k in 0..8 {
                    insert(tree, model, k)?;
                }
                tree.run_completions()?; // drain the split postings
                                         // Underflow the *rightmost* leaf (the leftmost is the
                                         // first child of its parent, which §3.3 refuses to merge)
                                         // far enough that container + contained fit in one node.
                for k in [7, 6, 5, 4] {
                    delete(tree, model, k)?;
                }
                Ok(())
            },
            trigger: |cs, tree, _model| {
                tree.run_completions()?; // the consolidation SMO
                cs.store.pool.flush_all()
            },
            assert_smo: |tree, before| {
                assert!(
                    delta(before, tree, "consolidations") >= 1,
                    "trigger did not consolidate"
                );
            },
        },
    ]
}

fn build(cfg: PiTreeConfig, plan: &Arc<CrashPlan>) -> (CrashableStore, PiTree) {
    let cs = CrashableStore::create_with_injector(64, 10_000, Arc::clone(plan) as InjectorHandle)
        .expect("store setup (disarmed)");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).expect("tree setup (disarmed)");
    (cs, tree)
}

fn verify_recovery(crashed: &CrashableStore, cfg: PiTreeConfig, model: &Model, ctx: &str) {
    let (tree, _stats) = PiTree::recover(Arc::clone(&crashed.store), 1, cfg)
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    let report = tree.validate().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert!(
        report.is_well_formed(),
        "{ctx}: recovered tree ill-formed: {:?}",
        report.violations
    );
    assert_eq!(
        report.records,
        model.len(),
        "{ctx}: committed records lost or resurrected"
    );
    for (k, v) in model {
        let got = tree
            .get_unlocked(&key(*k))
            .unwrap_or_else(|e| panic!("{ctx}: get {k}: {e}"));
        assert_eq!(got.as_ref(), Some(v), "{ctx}: key {k} wrong after recovery");
    }
    tree.run_completions()
        .unwrap_or_else(|e| panic!("{ctx}: completions: {e}"));
    tree.run_completions()
        .unwrap_or_else(|e| panic!("{ctx}: completions: {e}"));
    let report = tree.validate().unwrap();
    assert!(
        report.is_well_formed(),
        "{ctx}: ill-formed after lazy completion: {:?}",
        report.violations
    );
    assert_eq!(
        report.records,
        model.len(),
        "{ctx}: completion changed records"
    );
}

fn expect_injected(res: StoreResult<()>, ctx: &str) {
    match res {
        Err(ref e) if is_injected(e) => {}
        Err(e) => panic!("{ctx}: non-injected error: {e}"),
        Ok(()) => panic!("{ctx}: trigger completed although the plan should have fired"),
    }
}

fn is_lock_failed(e: &StoreError) -> bool {
    matches!(e, StoreError::LockFailed { .. })
}

/// Probe a row once (no crash), assert the SMO happened in the trigger
/// window, and return `(h0, h1]`: the boundary window to crash inside.
fn probe(row: &Row) -> (u64, u64) {
    let plan = CrashPlan::count_only();
    let (cs, tree) = build(row.cfg, &plan);
    plan.arm();
    let mut model = Model::new();
    (row.setup)(&tree, &mut model).unwrap_or_else(|e| panic!("{}: setup: {e}", row.name));
    let h0 = plan.hits();
    let before = tree.stats().snapshot();
    (row.trigger)(&cs, &tree, &mut model).unwrap_or_else(|e| panic!("{}: trigger: {e}", row.name));
    let h1 = plan.hits();
    (row.assert_smo)(&tree, &before);
    assert!(
        h1 > h0,
        "{}: trigger window crossed no durable-write boundary",
        row.name
    );
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{}: probe end state", row.name);
    assert_eq!(
        report.records,
        model.len(),
        "{}: probe model diverges",
        row.name
    );
    (h0, h1)
}

/// Crash a row at boundary `n`, then recover and verify.
fn crash_at(row: &Row, n: u64) {
    let plan = CrashPlan::fire_at(n);
    let (cs, tree) = build(row.cfg, &plan);
    plan.arm();
    let mut model = Model::new();
    let ctx = format!("{} crash-point {n}", row.name);
    let res = (row.setup)(&tree, &mut model).and_then(|()| (row.trigger)(&cs, &tree, &mut model));
    expect_injected(res, &ctx);
    assert!(plan.fired(), "{ctx}: plan did not fire");
    drop(tree);
    let crashed = cs
        .crash()
        .unwrap_or_else(|e| panic!("{ctx}: snapshot: {e}"));
    verify_recovery(&crashed, row.cfg, &model, &ctx);
}

#[test]
fn crash_matrix_covers_every_smo_path() {
    for row in rows() {
        let (h0, h1) = probe(&row);
        for n in (h0 + 1)..=h1 {
            crash_at(&row, n);
        }
    }
}

/// The matrix rows are meaningful only if their trigger windows really
/// contain the targeted SMO — this meta-test keeps the table honest if
/// node caps or completion policies change.
#[test]
fn matrix_windows_are_nonempty_and_targeted() {
    for row in rows() {
        let (h0, h1) = probe(&row);
        assert!(h1 > h0, "{}: empty crash window", row.name);
    }
}

/// Guard for a subtlety the matrix relies on: with `auto_complete` off,
/// an op that fails with a lock error surfaces it as `LockFailed` (not a
/// panic), so `expect_injected` correctly distinguishes injected crashes.
#[test]
fn lock_failed_is_distinguishable_from_injected() {
    let err = StoreError::LockFailed { deadlock: true };
    assert!(is_lock_failed(&err));
    assert!(!is_injected(&err));
}

// ---- Group-commit crash windows (§4.3.1) ----------------------------------
//
// The lock-split log manager opens two windows the SMO matrix above cannot
// reach: (a) the leader's batch is durably in the store but the in-memory
// `flushed` watermark was never published, and (b) the leader has already
// woken some followers with `Ok` when the machine dies mid-stream. Both
// must leave recovery with exactly the committed state.

/// Crash in the "batch written, `flushed` not yet published" window: the
/// durable log contains a committed action that no in-memory watermark
/// (and no acknowledgment) ever covered. Recovery reads the store, not
/// the watermark, so the action must come back — exactly once.
#[test]
fn crash_between_batch_write_and_flushed_publish() {
    use pitree_wal::{ActionIdentity, RecordKind};
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let cs = CrashableStore::create(64, 10_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model = Model::new();
    for k in 0..6 {
        insert(&tree, &mut model, k).unwrap();
    }

    // Freeze the window by hand: append a committed action, push the
    // volatile tail into the store the way the leader's batch write does,
    // and then "crash" before anything updates `flushed`.
    let log = &cs.store.log;
    let a = log.next_action_id();
    let b = log.append(
        a,
        pitree_pagestore::Lsn::ZERO,
        RecordKind::Begin {
            identity: ActionIdentity::Transaction,
        },
    );
    let c = log.append(a, b, RecordKind::Commit);
    let batch = log.unflushed_tail();
    assert!(!batch.is_empty());
    log.store().append(&batch).unwrap();
    assert!(
        log.flushed_lsn() < c,
        "the point of this test: publish must not have happened"
    );

    drop(tree);
    let crashed = cs.crash().unwrap();
    // The unacknowledged action is durable exactly once (the restart log
    // manager must not re-append the stale volatile tail).
    let recs = crashed.store.log.scan(None).unwrap();
    assert_eq!(
        recs.iter().filter(|r| r.action == a).count(),
        2,
        "Begin+Commit of the unpublished batch, exactly once"
    );
    assert!(recs
        .iter()
        .any(|r| r.lsn == c && matches!(r.kind, RecordKind::Commit)));
    verify_recovery(&crashed, cfg, &model, "batch-written-flushed-unpublished");
}

/// Crash mid-stream while group commit is running multi-threaded: some
/// followers were already woken with `Ok` (their batches made it), later
/// forces die with the injected storage error. Every force that returned
/// `Ok` must be durable after recovery; nothing acknowledged may be lost.
#[test]
fn crash_after_leader_woke_some_followers() {
    use pitree_pagestore::Lsn;
    use pitree_wal::{ActionIdentity, RecordKind};
    use std::collections::HashSet;

    let cfg = PiTreeConfig::small_nodes(4, 4);
    let plan = CrashPlan::fire_at(12);
    let (cs, tree) = build(cfg, &plan);
    let mut model = Model::new();
    for k in 0..6 {
        insert(&tree, &mut model, k).unwrap();
    }
    // Arm only now: the countdown covers the concurrent commit stream.
    plan.arm();

    let log = &cs.store.log;
    let acked: Vec<Lsn> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let a = log.next_action_id();
                        let b = log.append(
                            a,
                            Lsn::ZERO,
                            RecordKind::Begin {
                                identity: ActionIdentity::Transaction,
                            },
                        );
                        let c = log.append(a, b, RecordKind::Commit);
                        match log.force_to(c) {
                            Ok(()) => mine.push(c),
                            Err(ref e) if is_injected(e) => break mine,
                            Err(e) => panic!("unexpected force error: {e}"),
                        }
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker"))
            .collect()
    });
    assert!(plan.fired(), "the commit stream must outlive the countdown");
    assert!(
        !acked.is_empty(),
        "some forces must have been acknowledged before the crash"
    );

    drop(tree);
    let crashed = cs.crash().unwrap();
    let durable: HashSet<u64> = crashed
        .store
        .log
        .scan(None)
        .unwrap()
        .iter()
        .map(|r| r.lsn.0)
        .collect();
    for lsn in &acked {
        assert!(
            durable.contains(&lsn.0),
            "force_to({lsn}) returned Ok but the record is gone after crash"
        );
    }
    verify_recovery(&crashed, cfg, &model, "leader-woke-some-followers");
}

// ---- Linger / early-lock-release crash windows ------------------------------
//
// The adaptive linger window and commit pipelining open three more windows:
// (c) a crash during the linger itself, with committed-in-log transactions
// sitting in the undrained tail; (d) a crash after a transaction released
// its locks at log-append but before the group's force completed; and
// (e) a crash after the group's batch is durably written but before the
// watermark publish, with a *dependent* pipelined transaction in the same
// batch. In every case: unacknowledged commits may vanish, acknowledged
// ones may not, and a dependent commit can never outlive its predecessor.

/// (c) Crash during the linger window with an undrained tail. A committer
/// has published its commit (locks released — a successor can already
/// update the same key) and parked behind the held window; the machine
/// dies before any batch is drained. Neither transaction was acknowledged,
/// so recovery must show neither.
#[test]
fn crash_during_linger_with_undrained_tail() {
    use pitree_txnlock::LockMode;

    let cfg = PiTreeConfig::small_nodes(4, 4);
    let cs = CrashableStore::create(64, 10_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model = Model::new();
    for k in 0..6 {
        insert(&tree, &mut model, k).unwrap();
    }

    let log = &cs.store.log;
    log.set_linger_hold(true);
    let crashed = std::thread::scope(|s| {
        // T1 commits key 50 through the full ack path: its publish releases
        // the locks, then its force elects it leader and parks in the held
        // linger window.
        let t1 = s.spawn(|| {
            let mut t = tree.begin();
            tree.insert(&mut t, &key(50), b"t1-linger").unwrap();
            t.commit()
        });
        while log.pending_forces() < 1 {
            std::thread::yield_now();
        }
        // Early lock release is what makes this window interesting: while
        // T1's commit is parked short of durability, T2 jumps the released
        // key lock and publishes a dependent update.
        let t2 = tree.begin();
        t2.try_lock(&tree.key_lock(&key(50)), LockMode::X)
            .expect("T1 published: its key lock must already be free");
        drop(t2.commit_publish());
        let mut t3 = tree.begin();
        tree.insert(&mut t3, &key(50), b"t2-linger").unwrap();
        let pc = t3.commit_publish();
        assert!(
            !pc.is_durable(),
            "nothing can be durable while the window is held"
        );
        drop(pc);

        // The machine dies mid-linger: both commits live only in the
        // undrained volatile tail.
        let crashed = cs.crash().unwrap();
        // Release the (simulated-past) window so T1's thread can finish
        // against the original, still-running store.
        log.set_linger_hold(false);
        t1.join().expect("t1 thread").expect("t1 commit");
        crashed
    });
    // Neither T1 nor T2 was acknowledged; the model keeps neither.
    verify_recovery(&crashed, cfg, &model, "linger-undrained-tail");
}

/// (d) Crash after early lock release, before the group's force completes:
/// the transaction's locks are gone (a successor observed that), its commit
/// record is in the log, but the batch write dies with an injected fault.
/// The commit was never acknowledged, so recovery must not show it.
#[test]
fn crash_after_lock_release_before_group_force_completes() {
    use pitree_txnlock::LockMode;

    let cfg = PiTreeConfig::small_nodes(4, 4);
    let plan = CrashPlan::fire_at(1);
    let (cs, tree) = build(cfg, &plan);
    let mut model = Model::new();
    for k in 0..6 {
        insert(&tree, &mut model, k).unwrap();
    }
    plan.arm(); // next durable write is the doomed group force

    let mut t = tree.begin();
    tree.insert(&mut t, &key(99), &val(99)).unwrap();
    let pc = t.commit_publish();
    // Locks are already released — the crash window the oracle must cover.
    let t2 = tree.begin();
    t2.try_lock(&tree.key_lock(&key(99)), LockMode::X)
        .expect("early lock release: successor must get the lock before the force");
    std::mem::forget(t2); // dead machine: the successor never cleans up
    let elr = cs.store.pool.recorder().counter("txn.elr_released").get();
    assert!(
        elr >= 7,
        "every user commit releases at log-append (6 setup + 1)"
    );

    expect_injected(pc.wait_durable().map(|_| ()), "elr-before-force");
    assert!(plan.fired());

    drop(tree);
    let crashed = cs.crash().unwrap();
    verify_recovery(&crashed, cfg, &model, "elr-before-force");
}

/// (e) Crash between the group's durable batch write and the watermark
/// publish, with a dependent pipelined transaction in the batch: T2 jumped
/// T1's released lock and overwrote the same key, both commits landed in
/// one store append, and the machine died before `flushed` moved. Recovery
/// reads the store, not the watermark: both commits are honoured — exactly
/// once — and the dependent write wins.
#[test]
fn crash_between_group_write_and_publish_with_dependent_txn() {
    use pitree_wal::RecordKind;

    let cfg = PiTreeConfig::small_nodes(4, 4);
    let cs = CrashableStore::create(64, 10_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model = Model::new();
    for k in 0..6 {
        insert(&tree, &mut model, k).unwrap();
    }

    let mut t1 = tree.begin();
    let a1 = t1.id();
    tree.insert(&mut t1, &key(77), b"predecessor").unwrap();
    let pc1 = t1.commit_publish();
    // Dependent pipelined transaction: sees T1's write, overwrites it.
    let mut t2 = tree.begin();
    let a2 = t2.id();
    tree.insert(&mut t2, &key(77), b"dependent").unwrap();
    let pc2 = t2.commit_publish();

    // The group's batch write happens (both commits durable in one append),
    // but the crash lands before the watermark publish or any ack.
    let log = &cs.store.log;
    let batch = log.unflushed_tail();
    assert!(!batch.is_empty());
    log.store().append(&batch).unwrap();
    assert!(
        log.flushed_lsn() < pc1.lsn(),
        "watermark must not be published"
    );
    assert!(!pc1.is_durable() && !pc2.is_durable());
    drop(pc1);
    drop(pc2);

    drop(tree);
    let crashed = cs.crash().unwrap();
    let recs = crashed.store.log.scan(None).unwrap();
    for a in [a1, a2] {
        assert_eq!(
            recs.iter()
                .filter(|r| r.action == a && matches!(r.kind, RecordKind::Commit))
                .count(),
            1,
            "each pipelined commit must be durable exactly once"
        );
    }
    model.insert(77, b"dependent".to_vec());
    verify_recovery(&crashed, cfg, &model, "group-write-publish-dependent");
}

// ---- Instant-restart / fuzzy-checkpoint crash windows ----------------------
//
// Fuzzy checkpoints and the two-stage restart (analysis, then on-demand +
// parallel REDO) open three windows none of the rows above reach: (f) a
// crash that tears the checkpoint record itself after the master pointer
// was published; (g) a second crash in the middle of *parallel* REDO, with
// one shard's pages already flushed and the rest untouched; and (h) a read
// served from a page the background REDO has not reached yet. The oracles:
// a torn checkpoint must degrade to a full-scan analysis (never a failed
// recovery), a half-redone image must recover to exactly the committed
// state (REDO is idempotent under the per-page LSN check), and a
// mid-recovery read must return committed data.

/// (f) Crash while the checkpoint record is half-written: sweep every
/// durable-log prefix across the checkpoint record's byte range *without*
/// rolling back the master pointer — the exact image a crash between
/// `set_master` publication and a torn final force leaves behind. Reading
/// the master must fail, analysis must fall back to a full scan, and every
/// committed record must survive.
#[test]
fn crash_with_checkpoint_record_half_written() {
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let cs = CrashableStore::create(64, 10_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model = Model::new();
    for k in 0..12 {
        insert(&tree, &mut model, k).unwrap();
    }

    let ckpt = cs.store.txns.checkpoint().expect("checkpoint");
    let ckpt_start = ckpt.0 - 1; // frame offset of the checkpoint record
    let ckpt_end = cs.durable_log_len(); // checkpoint is the last forced record
    assert!(ckpt_end > ckpt_start, "checkpoint record must be durable");
    assert_eq!(
        cs.store.log.store().master(),
        ckpt,
        "master must point at the record the sweep is about to tear"
    );

    drop(tree);
    // Cut at the record boundary, mid-header, mid-body, and one short.
    for cut in [
        ckpt_start,
        ckpt_start + 4,
        (ckpt_start + ckpt_end) / 2,
        ckpt_end - 1,
    ] {
        let crashed = cs.crash_with_log_prefix(cut).unwrap();
        assert_eq!(
            crashed.store.log.store().master(),
            ckpt,
            "the sweep relies on the master outliving the torn record"
        );
        assert!(
            crashed.store.log.read(ckpt).is_err(),
            "cut {cut}: the checkpoint record should be unreadable"
        );
        verify_recovery(&crashed, cfg, &model, &format!("torn-checkpoint cut {cut}"));
    }
}

/// (g) Crash mid-parallel-REDO with one worker's shards complete: start an
/// instant restart, let exactly one of four partitions drain, flush the
/// half-redone pages, crash again, and recover stop-the-world. The second
/// recovery sees pages at wildly different LSNs — some fully redone and
/// flushed, some stale — and must converge to the committed state (the
/// per-page `page_lsn < record_lsn` check makes replay idempotent).
#[test]
fn crash_mid_parallel_redo_with_one_shard_complete() {
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let cs = CrashableStore::create(8, 10_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model = Model::new();
    for k in 0..30 {
        insert(&tree, &mut model, k).unwrap();
    }
    drop(tree);

    let mid = cs.crash().unwrap();
    let (tree_mid, plan, _) =
        PiTree::recover_instant(Arc::clone(&mid.store), 1, cfg).expect("instant recover");
    let before = plan.pending_page_count();
    assert!(before > 0, "nothing pending: the row tests nothing");
    // One worker of four drains its partition; the other three never run.
    plan.drive_partition(&mid.store.pool, 0, 4)
        .expect("partition 0");
    let after = plan.pending_page_count();
    assert!(
        after < before,
        "partition 0 must have redone at least one page"
    );
    drop(tree_mid);
    mid.store.pool.flush_all().expect("flush half-redone image");

    let crashed = mid.crash().unwrap();
    verify_recovery(&crashed, cfg, &model, "mid-parallel-redo");
}

// ---- Eviction write-back crash window (i) ----------------------------------
//
// The scenario harness runs at a pool ~1% of the data, so dirty pages are
// displaced — and written back — constantly *during* user operations, not
// just at flush points. That opens window (i): the machine dies in the
// middle of an eviction write-back, with the half-evicted page's log
// records forced (log-before-dirty) but the page image torn out of the
// sweep. Recovery must rebuild exactly the committed state, and it must do
// so through the *instant* path: on-demand REDO first, then the parallel
// plan drained to completion.

/// Recover the crashed image via `PiTree::recover_instant`, serve every
/// committed key while the REDO plan may still be pending, drain the plan,
/// and verify the full committed-version state.
fn verify_recovery_instant(crashed: &CrashableStore, cfg: PiTreeConfig, model: &Model, ctx: &str) {
    let (tree, plan, _stats) = PiTree::recover_instant(Arc::clone(&crashed.store), 1, cfg)
        .unwrap_or_else(|e| panic!("{ctx}: instant recovery failed: {e}"));
    // Reads during recovery: each pin redoes its page inline if pending.
    for (k, v) in model {
        let got = tree
            .get_unlocked(&key(*k))
            .unwrap_or_else(|e| panic!("{ctx}: get {k} mid-recovery: {e}"));
        assert_eq!(
            got.as_ref(),
            Some(v),
            "{ctx}: key {k} wrong while REDO pending"
        );
    }
    plan.drive(&crashed.store.pool, 2)
        .unwrap_or_else(|e| panic!("{ctx}: drive: {e}"));
    assert!(plan.is_complete(), "{ctx}: plan not drained");
    let report = tree.validate().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert!(
        report.is_well_formed(),
        "{ctx}: recovered tree ill-formed: {:?}",
        report.violations
    );
    assert_eq!(
        report.records,
        model.len(),
        "{ctx}: committed records lost or resurrected"
    );
    for (k, v) in model {
        let got = tree
            .get_unlocked(&key(*k))
            .unwrap_or_else(|e| panic!("{ctx}: get {k}: {e}"));
        assert_eq!(got.as_ref(), Some(v), "{ctx}: key {k} wrong after drain");
    }
}

/// (i) Crash during eviction write-back under hot-key pressure: an
/// 8-frame pool under a tree an order of magnitude larger, hammered on a
/// hot band that spans distant leaves. Every durable-write boundary in
/// the storm window gets a crash — the page-write boundaries among them
/// are exactly "machine died mid-eviction-write-back" — and each image
/// recovers through the instant path to the committed state.
#[test]
fn crash_during_eviction_writeback_under_hot_keys() {
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let hot = [0u64, 8, 16, 24, 32, 39];

    let setup = |tree: &PiTree, model: &mut Model| -> StoreResult<()> {
        for k in 0..40 {
            insert(tree, model, k)?;
        }
        Ok(())
    };
    let storm = |tree: &PiTree, model: &mut Model| -> StoreResult<()> {
        // Three rounds over the hot band (distant leaves → misses →
        // dirty displacement) with fresh appends dirtying new pages.
        for round in 0..3u64 {
            for &k in &hot {
                insert(tree, model, k)?;
            }
            for k in 0..4 {
                insert(tree, model, 40 + round * 4 + k)?;
            }
        }
        Ok(())
    };

    // Probe: find the storm's boundary window and prove it contains
    // eviction write-backs (not merely log forces).
    let plan = CrashPlan::count_only();
    let cs = CrashableStore::create_with_injector(8, 10_000, Arc::clone(&plan) as InjectorHandle)
        .expect("store setup (disarmed)");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).expect("tree setup (disarmed)");
    plan.arm();
    let mut model = Model::new();
    setup(&tree, &mut model).expect("probe setup");
    let wb = cs.store.pool.recorder().counter("buf.writebacks");
    let h0 = plan.hits();
    let wb0 = wb.get();
    storm(&tree, &mut model).expect("probe storm");
    let h1 = plan.hits();
    assert!(h1 > h0, "storm crossed no durable-write boundary");
    assert!(
        wb.get() > wb0,
        "storm performed no eviction write-backs: grow the working set"
    );
    drop(tree);

    // Sweep every boundary in the window; the storm must include
    // page-write crashes (a write-back torn mid-flight).
    let mut page_write_crashes = 0u32;
    for n in (h0 + 1)..=h1 {
        let plan = CrashPlan::fire_at(n);
        let cs =
            CrashableStore::create_with_injector(8, 10_000, Arc::clone(&plan) as InjectorHandle)
                .expect("store setup (disarmed)");
        let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).expect("tree setup (disarmed)");
        plan.arm();
        let mut model = Model::new();
        let ctx = format!("eviction-writeback crash-point {n}");
        let res = setup(&tree, &mut model).and_then(|()| storm(&tree, &mut model));
        match res {
            Err(ref e) if is_injected(e) => {
                if format!("{e}").contains("page-write") {
                    page_write_crashes += 1;
                }
            }
            Err(e) => panic!("{ctx}: non-injected error: {e}"),
            Ok(()) => panic!("{ctx}: storm completed although the plan should have fired"),
        }
        assert!(plan.fired(), "{ctx}: plan did not fire");
        drop(tree);
        let crashed = cs
            .crash()
            .unwrap_or_else(|e| panic!("{ctx}: snapshot: {e}"));
        verify_recovery_instant(&crashed, cfg, &model, &ctx);
    }
    assert!(
        page_write_crashes > 0,
        "no crash landed on a page-write boundary: the row never tore a write-back"
    );
}

/// (h) A get served from a not-yet-redone page: after `recover_instant`
/// opens the store, read every committed key while the REDO plan is still
/// pending. Each read must return the committed value (the first pin
/// replays the page inline — `recovery.on_demand_redos` counts it), and
/// draining the plan afterwards must change nothing.
#[test]
fn get_served_from_not_yet_redone_page() {
    let cfg = PiTreeConfig::small_nodes(4, 4);
    let cs = CrashableStore::create(8, 10_000).unwrap();
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    let mut model = Model::new();
    for k in 0..30 {
        insert(&tree, &mut model, k).unwrap();
    }
    drop(tree);

    let crashed = cs.crash().unwrap();
    let (tree, plan, _) =
        PiTree::recover_instant(Arc::clone(&crashed.store), 1, cfg).expect("instant recover");
    assert!(plan.pending_page_count() > 0, "nothing pending");
    for (k, v) in &model {
        let got = tree.get_unlocked(&key(*k)).expect("get mid-recovery");
        assert_eq!(
            got.as_ref(),
            Some(v),
            "key {k}: wrong value served from a half-recovered store"
        );
    }
    let on_demand = crashed
        .store
        .recorder()
        .counter("recovery.on_demand_redos")
        .get();
    assert!(
        on_demand > 0,
        "reads never hit a pending page: the row tests nothing"
    );
    plan.drive(&crashed.store.pool, 2).expect("drain");
    assert!(plan.is_complete());
    verify_recovery(&crashed, cfg, &model, "on-demand-read");
}
