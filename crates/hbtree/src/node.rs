//! hB-tree node layout: slot 0 holds the header — level, the node's original
//! rectangle, and its kd-tree fragment (Figure 2). Data nodes keep point
//! records in slots 1.., keyed by the big-endian point encoding.

use crate::geometry::{Frag, Rect};
use pitree_pagestore::page::Page;
use pitree_pagestore::{StoreError, StoreResult};

/// Decoded hB node header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbHeader {
    /// Level: 0 for data nodes.
    pub level: u8,
    /// The node's original (rectangular) region; the fragment partitions it.
    pub rect: Rect,
    /// The kd fragment: local space, child terms, sibling terms.
    pub frag: Frag,
}

impl HbHeader {
    /// A fresh root covering the whole space as a data node.
    pub fn new_root_leaf() -> HbHeader {
        HbHeader {
            level: 0,
            rect: Rect::all(),
            frag: Frag::Local,
        }
    }

    /// Encode as the slot-0 record.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.push(self.level);
        self.rect.encode(&mut v);
        self.frag.encode(&mut v);
        v
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> StoreResult<HbHeader> {
        if bytes.is_empty() {
            return Err(StoreError::Corrupt("empty hB header".into()));
        }
        let level = bytes[0];
        let mut pos = 1;
        let rect = Rect::decode(bytes, &mut pos)?;
        let frag = Frag::decode(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(StoreError::Corrupt("trailing bytes in hB header".into()));
        }
        Ok(HbHeader { level, rect, frag })
    }

    /// Read from a page.
    pub fn read(page: &Page) -> StoreResult<HbHeader> {
        HbHeader::decode(page.get(0)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PtrKind;
    use pitree_pagestore::PageId;

    #[test]
    fn header_codec_roundtrip() {
        for h in [
            HbHeader::new_root_leaf(),
            HbHeader {
                level: 2,
                rect: Rect {
                    lo: [5, 5],
                    hi: [50, 90],
                },
                frag: Frag::Split {
                    dim: 1,
                    val: 40,
                    lo: Box::new(Frag::child(PageId(3))),
                    hi: Box::new(Frag::Ptr {
                        kind: PtrKind::Sibling,
                        pid: PageId(4),
                        multi_parent: true,
                    }),
                },
            },
        ] {
            assert_eq!(HbHeader::decode(&h.encode()).unwrap(), h);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(HbHeader::decode(&[]).is_err());
        assert!(HbHeader::decode(&[1, 2, 3]).is_err());
        let mut ok = HbHeader::new_root_leaf().encode();
        ok.push(0);
        assert!(HbHeader::decode(&ok).is_err());
    }
}
