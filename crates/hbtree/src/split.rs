//! hB-tree structure changes: hyperplane splits of data and index nodes
//! (with clipping), root growth, and the fragment-posting action.

use crate::geometry::{key_point, Frag, Point, Rect, DIMS};
use crate::node::HbHeader;
use crate::tree::{HbDescent, HbPost, HbTree};
use pitree::stats::TreeStats;
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::latch::XGuard;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, PageOp, StoreError, StoreResult};
use pitree_txnlock::Txn;

fn alloc_page<'a>(tree: &'a HbTree, chain: &mut Txn<'_>) -> StoreResult<PinnedPage<'a>> {
    let store = tree.store();
    let pid = {
        let mut alloc = store.space.lock_alloc();
        let (pid, bm_pid, bit) = alloc.find_free(&store.pool)?;
        let bm = store.pool.fetch(bm_pid)?;
        let mut bmg = bm.x();
        chain.apply(&bm, &mut bmg, PageOp::SetBit { bit })?;
        pid
    };
    store.pool.fetch_or_create(pid, PageType::Free)
}

/// Choose a hyperplane for a data node: the dimension and median coordinate
/// giving the most balanced record partition with both sides non-empty.
fn choose_data_cut(points: &[Point]) -> StoreResult<(usize, u64)> {
    let mut best: Option<(usize, u64, usize)> = None; // (dim, val, min-side)
    for dim in 0..DIMS {
        let mut coords: Vec<u64> = points.iter().map(|p| p[dim]).collect();
        coords.sort_unstable();
        coords.dedup();
        if coords.len() < 2 {
            continue;
        }
        let val = coords[coords.len() / 2].max(coords[1]);
        let lo = points.iter().filter(|p| p[dim] < val).count();
        let hi = points.len() - lo;
        let score = lo.min(hi);
        if best.map(|(_, _, s)| score > s).unwrap_or(true) {
            best = Some((dim, val, score));
        }
    }
    best.map(|(d, v, _)| (d, v))
        .ok_or_else(|| StoreError::Corrupt("cannot cut: all points identical".into()))
}

/// Choose a hyperplane for an index node from its fragment-leaf boundaries,
/// preferring cuts that balance leaf counts and minimize clipping.
fn choose_index_cut(leaves: &[(Rect, bool)]) -> StoreResult<(usize, u64)> {
    // (region, is_child) pairs; candidate cuts are region boundaries.
    let mut best: Option<(usize, u64, i64)> = None;
    for dim in 0..DIMS {
        let mut cands: Vec<u64> = leaves
            .iter()
            .flat_map(|(r, _)| [r.lo[dim], r.hi[dim]])
            .filter(|&v| v != 0 && v != u64::MAX)
            .collect();
        cands.sort_unstable();
        cands.dedup();
        for &val in &cands {
            let lo = leaves.iter().filter(|(r, _)| r.hi[dim] <= val).count() as i64;
            let hi = leaves.iter().filter(|(r, _)| r.lo[dim] >= val).count() as i64;
            let straddle = leaves.len() as i64 - lo - hi;
            // Each side must get at least one whole leaf, or the split may
            // fail to shrink the fragment (a clipped sliver is not progress).
            // The fragment's own root split always satisfies this, so a
            // viable cut always exists for fragments with ≥ 2 leaves.
            if lo == 0 || hi == 0 {
                continue;
            }
            // Prefer balance, penalize clipping.
            let score = lo.min(hi) - 2 * straddle;
            if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((dim, val, score));
            }
        }
    }
    best.map(|(d, v, _)| (d, v))
        .ok_or_else(|| StoreError::Corrupt("no viable index cut".into()))
}

/// Split the full data node in `d` as an independent atomic action; the
/// caller retries its insert.
pub(crate) fn split_data_node(tree: &HbTree, d: HbDescent<'_>) -> StoreResult<()> {
    let parent_hint = d.parent;
    let hdr = d.hdr.clone();
    let mut g = d.guard.promote().into_x();
    let mut act = tree.store().txns.begin(tree.config().smo_identity);

    if d.page.id() == tree.root_pid() {
        grow_data_root(tree, &mut act, &d.page, &mut g)?;
        drop(g);
        drop(d.page);
        act.commit()?;
        TreeStats::bump(&tree.stats().root_grows);
        TreeStats::bump(&tree.stats().splits_independent);
        return Ok(());
    }

    let old = d.page.id();
    let (new_pid, new_rect) = raw_data_split(tree, &mut act, &d.page, &mut g, &hdr)?;
    drop(g);
    drop(d.page);
    act.commit()?;
    TreeStats::bump(&tree.stats().splits_independent);
    tree.schedule_post(HbPost {
        parent: parent_hint,
        level: 1,
        old,
        new: new_pid,
        rect: new_rect,
    });
    Ok(())
}

/// §3.2.1 for hB data nodes: hyperplane-split the records and fragment.
/// Returns the new node and its rectangle.
fn raw_data_split<'a>(
    tree: &'a HbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'a>,
    g: &mut XGuard<'a, Page>,
    hdr: &HbHeader,
) -> StoreResult<(PageId, Rect)> {
    let entries: Vec<Vec<u8>> = (1..g.slot_count())
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    let points: Vec<Point> = entries
        .iter()
        .map(|e| key_point(Page::entry_key(e)))
        .collect();
    let (dim, val) = choose_data_cut(&points)?;

    let mut clipped = Vec::new();
    let new_frag = hdr.frag.clip(&hdr.rect, dim, val, true, &mut clipped);
    let old_lo = hdr.frag.clip(&hdr.rect, dim, val, false, &mut clipped);
    debug_assert!(
        clipped.is_empty(),
        "data fragments have no child terms to clip"
    );

    let new_pin = alloc_page(tree, act)?;
    let new_pid = new_pin.id();
    let new_rect = hdr.rect.half(dim, val, true);
    let mut ng = new_pin.x();
    act.apply(&new_pin, &mut ng, PageOp::Format { ty: PageType::Node })?;
    let new_hdr = HbHeader {
        level: 0,
        rect: new_rect.clone(),
        frag: new_frag,
    };
    act.apply(
        &new_pin,
        &mut ng,
        PageOp::InsertSlot {
            slot: 0,
            bytes: new_hdr.encode(),
        },
    )?;

    // Move the records on the high side.
    for (e, p) in entries.iter().zip(&points) {
        if p[dim] >= val {
            act.apply(&new_pin, &mut ng, PageOp::KeyedInsert { bytes: e.clone() })?;
        }
    }
    for (e, p) in entries.iter().zip(&points) {
        if p[dim] >= val {
            act.apply(
                page,
                g,
                PageOp::KeyedRemove {
                    key: Page::entry_key(e).to_vec(),
                },
            )?;
        }
    }
    // The old node's fragment gains a split whose high side is the sibling
    // term — Figure 2's hyperplane-split treatment ("one child of the root
    // points to the new sibling").
    let old_hdr = HbHeader {
        level: 0,
        rect: hdr.rect.clone(),
        frag: Frag::Split {
            dim: dim as u8,
            val,
            lo: Box::new(old_lo),
            hi: Box::new(Frag::sibling(new_pid)),
        },
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: old_hdr.encode(),
        },
    )?;
    TreeStats::bump(&tree.stats().splits);
    Ok((new_pid, new_rect))
}

/// Split a full index node by hyperplane, clipping straddling child terms
/// (§3.2.2). Returns the new node and its rectangle.
fn raw_index_split<'a>(
    tree: &'a HbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'a>,
    g: &mut XGuard<'a, Page>,
    hdr: &HbHeader,
) -> StoreResult<(PageId, Rect)> {
    let mut leaves = Vec::new();
    hdr.frag.leaves(&hdr.rect, &mut leaves);
    let leaf_info: Vec<(Rect, bool)> = leaves
        .iter()
        .map(|(l, r)| {
            (
                r.clone(),
                matches!(
                    l,
                    Frag::Ptr {
                        kind: crate::geometry::PtrKind::Child,
                        ..
                    }
                ),
            )
        })
        .collect();
    let (dim, val) = choose_index_cut(&leaf_info)?;

    let mut clipped = Vec::new();
    let new_frag = hdr.frag.clip(&hdr.rect, dim, val, true, &mut clipped);
    let old_lo = hdr.frag.clip(&hdr.rect, dim, val, false, &mut clipped);
    // §3.3: clipped index terms mark multi-parent nodes; `clip` set the
    // markers inside both output fragments.
    let _ = &clipped;

    let new_pin = alloc_page(tree, act)?;
    let new_pid = new_pin.id();
    let new_rect = hdr.rect.half(dim, val, true);
    let mut ng = new_pin.x();
    act.apply(&new_pin, &mut ng, PageOp::Format { ty: PageType::Node })?;
    let new_hdr = HbHeader {
        level: hdr.level,
        rect: new_rect.clone(),
        frag: new_frag,
    };
    act.apply(
        &new_pin,
        &mut ng,
        PageOp::InsertSlot {
            slot: 0,
            bytes: new_hdr.encode(),
        },
    )?;
    let old_hdr = HbHeader {
        level: hdr.level,
        rect: hdr.rect.clone(),
        frag: Frag::Split {
            dim: dim as u8,
            val,
            lo: Box::new(old_lo),
            hi: Box::new(Frag::sibling(new_pid)),
        },
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: old_hdr.encode(),
        },
    )?;
    TreeStats::bump(&tree.stats().splits);
    Ok((new_pid, new_rect))
}

/// Grow at the fixed root (data-node case): contents move to n1, n1 splits,
/// and both fragment references are installed in the root inline.
fn grow_data_root(
    tree: &HbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'_>,
    g: &mut XGuard<'_, Page>,
) -> StoreResult<()> {
    let hdr = HbHeader::read(g)?;
    let n1_pin = alloc_page(tree, act)?;
    let n1_pid = n1_pin.id();
    let mut n1g = n1_pin.x();
    act.apply(&n1_pin, &mut n1g, PageOp::Format { ty: PageType::Node })?;
    let n1_hdr = HbHeader {
        level: hdr.level,
        rect: hdr.rect.clone(),
        frag: hdr.frag.clone(),
    };
    act.apply(
        &n1_pin,
        &mut n1g,
        PageOp::InsertSlot {
            slot: 0,
            bytes: n1_hdr.encode(),
        },
    )?;
    let entries: Vec<Vec<u8>> = (1..g.slot_count())
        .map(|s| g.get(s).map(|e| e.to_vec()))
        .collect::<StoreResult<_>>()?;
    for e in &entries {
        act.apply(&n1_pin, &mut n1g, PageOp::KeyedInsert { bytes: e.clone() })?;
    }
    for e in &entries {
        act.apply(
            page,
            g,
            PageOp::KeyedRemove {
                key: Page::entry_key(e).to_vec(),
            },
        )?;
    }
    let mut root_hdr = HbHeader {
        level: hdr.level + 1,
        rect: hdr.rect.clone(),
        frag: Frag::child(n1_pid),
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: root_hdr.encode(),
        },
    )?;
    // Split n1 and post the pair inline.
    let (n2_pid, n2_rect) = raw_data_split(tree, act, &n1_pin, &mut n1g, &n1_hdr)?;
    root_hdr
        .frag
        .post(&root_hdr.rect.clone(), n1_pid, n2_pid, &n2_rect);
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: root_hdr.encode(),
        },
    )?;
    Ok(())
}

/// The completing posting action: teach a parent fragment that `new` took
/// over `rect` from `old` (§5.3 adapted to fragments). Testable — a parent
/// that already routes `rect` to `new`, or that holds no term for `old`
/// there, makes this a no-op. Splits the parent (or grows the root) within
/// the action when the refined fragment no longer fits.
pub(crate) fn run_post(tree: &HbTree, post: HbPost) -> StoreResult<()> {
    let HbPost {
        parent,
        level,
        old,
        new,
        rect,
    } = post;
    let stats = tree.stats();
    let pool = &tree.store().pool;
    let mut act = tree.store().txns.begin(tree.config().smo_identity);

    // Locate the parent at `level` whose fragment routes rect.lo — starting
    // from the hint (immortal under CNS), descending/hopping as needed.
    let probe: Point = rect.lo;
    let mut pin = pool.fetch(parent)?;
    let mut g = pin.u();
    let mut hdr = HbHeader::read(&g)?;
    if hdr.level < level {
        // Stale hint below the target level: restart from the root.
        drop(g);
        pin = pool.fetch(tree.root_pid())?;
        g = pin.u();
        hdr = HbHeader::read(&g)?;
    }
    loop {
        if hdr.level == level {
            let (leaf, _) = hdr.frag.locate(&hdr.rect, &probe);
            match leaf {
                Frag::Ptr {
                    kind: crate::geometry::PtrKind::Sibling,
                    pid,
                    ..
                } => {
                    let side = *pid;
                    drop(g);
                    pin = pool.fetch(side)?;
                    g = pin.u();
                    hdr = HbHeader::read(&g)?;
                    continue;
                }
                _ => break,
            }
        }
        if hdr.level < level {
            act.commit()?;
            return Ok(()); // degenerate: tree reshaped; traversals will re-detect
        }
        let (leaf, _) = hdr.frag.locate(&hdr.rect, &probe);
        match leaf {
            Frag::Ptr { pid, .. } => {
                let next = *pid;
                drop(g);
                pin = pool.fetch(next)?;
                g = pin.u();
                hdr = HbHeader::read(&g)?;
            }
            Frag::Local => {
                act.commit()?;
                return Ok(());
            }
            Frag::Split { .. } => unreachable!("locate returns leaves"),
        }
    }

    let mut xg = g.promote();
    loop {
        let hdr = HbHeader::read(&xg)?;
        let mut frag = hdr.frag.clone();
        if !frag.post(&hdr.rect, old, new, &rect) {
            TreeStats::bump(&stats.postings_noop);
            break;
        }
        let new_hdr = HbHeader {
            level: hdr.level,
            rect: hdr.rect.clone(),
            frag,
        };
        let bytes = new_hdr.encode();
        let fits_page = bytes.len() <= xg.free_space() + xg.get(0)?.len();
        if fits_page {
            // Apply the posting whenever physically possible; the fragment
            // cap is enforced by an opportunistic split *afterwards*, so a
            // posting can never starve behind restructuring.
            act.apply(&pin, &mut xg, PageOp::UpdateSlot { slot: 0, bytes })?;
            TreeStats::bump(&stats.postings_done);
            if new_hdr.frag.size() > tree.config().max_frag_nodes && pin.id() != tree.root_pid() {
                let (new_sib, new_sib_rect) =
                    raw_index_split(tree, &mut act, &pin, &mut xg, &new_hdr)?;
                tree.schedule_post(HbPost {
                    parent: tree.root_pid(),
                    level: new_hdr.level + 1,
                    old: pin.id(),
                    new: new_sib,
                    rect: new_sib_rect,
                });
            } else if new_hdr.frag.size() > tree.config().max_frag_nodes {
                grow_index_root(tree, &mut act, &pin, &mut xg, &new_hdr)?;
            }
            break;
        }
        // The posted header does not physically fit: restructure, then retry.
        if pin.id() == tree.root_pid() {
            grow_index_root(tree, &mut act, &pin, &mut xg, &hdr)?;
            // The root now holds a single child term; the target level node
            // is that child.
            let child = match &HbHeader::read(&xg)?.frag {
                Frag::Ptr { pid, .. } => *pid,
                _ => unreachable!("grown root has a single child term"),
            };
            drop(xg);
            let np = pool.fetch(child)?;
            let ng = np.x();
            pin = np;
            xg = ng;
            continue;
        }
        let (new_sib, new_sib_rect) = raw_index_split(tree, &mut act, &pin, &mut xg, &hdr)?;
        tree.schedule_post(HbPost {
            parent: tree.root_pid(),
            level: hdr.level + 1,
            old: pin.id(),
            new: new_sib,
            rect: new_sib_rect.clone(),
        });
        // Continue on whichever half routes the probe.
        if new_sib_rect.contains(&probe) {
            drop(xg);
            let np = pool.fetch(new_sib)?;
            let ng = np.x();
            pin = np;
            xg = ng;
        }
    }
    drop(xg);
    drop(pin);
    act.commit()?;
    Ok(())
}

/// Grow the tree at the fixed root (index case): the root's fragment moves
/// wholesale to a fresh child; the root keeps a single child term one level
/// higher.
fn grow_index_root(
    tree: &HbTree,
    act: &mut Txn<'_>,
    page: &PinnedPage<'_>,
    g: &mut XGuard<'_, Page>,
    hdr: &HbHeader,
) -> StoreResult<()> {
    let n1_pin = alloc_page(tree, act)?;
    let n1_pid = n1_pin.id();
    let mut n1g = n1_pin.x();
    act.apply(&n1_pin, &mut n1g, PageOp::Format { ty: PageType::Node })?;
    let n1_hdr = HbHeader {
        level: hdr.level,
        rect: hdr.rect.clone(),
        frag: hdr.frag.clone(),
    };
    act.apply(
        &n1_pin,
        &mut n1g,
        PageOp::InsertSlot {
            slot: 0,
            bytes: n1_hdr.encode(),
        },
    )?;
    let mut root_hdr = HbHeader {
        level: hdr.level + 1,
        rect: hdr.rect.clone(),
        frag: Frag::child(n1_pid),
    };
    act.apply(
        page,
        g,
        PageOp::UpdateSlot {
            slot: 0,
            bytes: root_hdr.encode(),
        },
    )?;
    // Split n1 and post the pair inline (§5.3's "pair of index terms"),
    // keeping the new root from degenerating into a single-child chain.
    if n1_hdr.frag.size() >= 3 {
        let (n2_pid, n2_rect) = raw_index_split(tree, act, &n1_pin, &mut n1g, &n1_hdr)?;
        root_hdr
            .frag
            .post(&root_hdr.rect.clone(), n1_pid, n2_pid, &n2_rect);
        act.apply(
            page,
            g,
            PageOp::UpdateSlot {
                slot: 0,
                bytes: root_hdr.encode(),
            },
        )?;
    }
    TreeStats::bump(&tree.stats().root_grows);
    Ok(())
}
