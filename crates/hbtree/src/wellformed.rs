//! hB-tree structural validation: exact geometric partition checks.
//!
//! Per level, the union of that level's *owned* regions must tile the whole
//! space exactly — Local leaf regions at the data level, Child leaf regions
//! at index levels — with no overlap (checked by exact area arithmetic plus
//! pairwise intersection tests). Records must lie inside one of their
//! node's Local regions, and multi-parent children must carry the §3.3
//! marker in every parent that references them.

use crate::geometry::{key_point, Frag, PtrKind, Rect};
use crate::node::HbHeader;
use crate::tree::HbTree;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::{PageId, StoreResult};
use std::collections::{HashMap, HashSet, VecDeque};

/// The hB checker's findings.
#[derive(Debug, Default)]
pub struct HbReport {
    /// Nodes per level, root level first.
    pub nodes_per_level: Vec<(u8, usize)>,
    /// Total point records.
    pub records: usize,
    /// Children referenced by more than one parent (clipped terms).
    pub multi_parent_nodes: usize,
    /// Sibling-only nodes (reachable but not yet posted in any parent).
    pub unposted_nodes: usize,
    /// Violations; empty iff well-formed.
    pub violations: Vec<String>,
}

impl HbReport {
    /// Whether all invariants hold.
    pub fn is_well_formed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validate `tree` (run quiesced).
pub fn check(tree: &HbTree) -> StoreResult<HbReport> {
    let mut r = HbReport::default();
    let mut v = Vec::new();
    let pool = &tree.store().pool;

    // BFS the whole graph, bucketing nodes by level.
    let mut by_level: HashMap<u8, Vec<PageId>> = HashMap::new();
    let mut queue = VecDeque::from([tree.root_pid()]);
    let mut seen = HashSet::new();
    // parent-reference count and posted-set per child.
    let mut child_refs: HashMap<PageId, usize> = HashMap::new();
    let mut mp_marked: HashMap<PageId, bool> = HashMap::new();
    let mut sibling_targets: HashSet<PageId> = HashSet::new();

    while let Some(pid) = queue.pop_front() {
        if !seen.insert(pid) {
            continue;
        }
        let pin = pool.fetch(pid)?;
        let g = pin.s();
        if g.page_type()? != PageType::Node {
            v.push(format!("reachable page {pid} is not a node"));
            continue;
        }
        let hdr = HbHeader::read(&g)?;
        by_level.entry(hdr.level).or_default().push(pid);

        let mut leaves = Vec::new();
        hdr.frag.leaves(&hdr.rect, &mut leaves);
        // Leaf regions partition the node's rect.
        let area: u128 = leaves.iter().map(|(_, rect)| rect.area()).sum();
        if area != hdr.rect.area() {
            v.push(format!("node {pid}: fragment areas do not sum to the rect"));
        }
        for (leaf, region) in &leaves {
            if region.is_empty() {
                v.push(format!("node {pid}: empty fragment region"));
            }
            match leaf {
                Frag::Local => {
                    if hdr.level != 0 {
                        v.push(format!("index node {pid} has Local space"));
                    }
                }
                Frag::Ptr {
                    kind,
                    pid: target,
                    multi_parent,
                } => {
                    queue.push_back(*target);
                    match kind {
                        PtrKind::Child => {
                            *child_refs.entry(*target).or_insert(0) += 1;
                            let e = mp_marked.entry(*target).or_insert(true);
                            *e = *e && *multi_parent;
                            // Child level must be one below.
                            let cp = pool.fetch(*target)?;
                            let cg = cp.s();
                            let ch = HbHeader::read(&cg)?;
                            if ch.level + 1 != hdr.level {
                                v.push(format!(
                                    "node {pid}: child {target} level {} under level {}",
                                    ch.level, hdr.level
                                ));
                            }
                            if !ch.rect.intersects(region) {
                                v.push(format!(
                                    "node {pid}: child {target} rect disjoint from its term region"
                                ));
                            }
                        }
                        PtrKind::Sibling => {
                            sibling_targets.insert(*target);
                            let sp = pool.fetch(*target)?;
                            let sg = sp.s();
                            let sh = HbHeader::read(&sg)?;
                            if sh.level != hdr.level {
                                v.push(format!("node {pid}: sibling {target} at different level"));
                            }
                            if !sh.rect.contains_rect(region) {
                                v.push(format!(
                                    "node {pid}: sibling {target} not responsible for the \
                                     delegated region"
                                ));
                            }
                        }
                    }
                }
                Frag::Split { .. } => unreachable!("leaves() yields leaves"),
            }
        }

        // Records live inside a Local region.
        if hdr.level == 0 {
            for slot in 1..g.slot_count() {
                let p = key_point(Page::entry_key(g.get(slot)?));
                let (leaf, _) = hdr.frag.locate(&hdr.rect, &p);
                if !matches!(leaf, Frag::Local) {
                    v.push(format!("node {pid}: record {p:?} outside Local space"));
                }
                if !hdr.rect.contains(&p) {
                    v.push(format!("node {pid}: record {p:?} outside node rect"));
                }
                r.records += 1;
            }
        }
    }

    // Per-level exact tiling of the whole space by owned regions.
    let mut levels: Vec<u8> = by_level.keys().copied().collect();
    levels.sort_unstable_by(|a, b| b.cmp(a));
    for &level in &levels {
        let nodes = &by_level[&level];
        r.nodes_per_level.push((level, nodes.len()));
        let mut owned: Vec<Rect> = Vec::new();
        for &pid in nodes {
            let pin = pool.fetch(pid)?;
            let g = pin.s();
            let hdr = HbHeader::read(&g)?;
            let mut leaves = Vec::new();
            hdr.frag.leaves(&hdr.rect, &mut leaves);
            for (leaf, region) in leaves {
                let owns = match leaf {
                    Frag::Local => level == 0,
                    Frag::Ptr {
                        kind: PtrKind::Child,
                        ..
                    } => true,
                    _ => false,
                };
                if owns {
                    owned.push(region);
                }
            }
        }
        let total: u128 = owned.iter().map(|r| r.area()).sum();
        if total != Rect::all().area() {
            v.push(format!(
                "level {level}: owned regions cover {total} of {} area units",
                Rect::all().area()
            ));
        }
        for i in 0..owned.len() {
            for j in i + 1..owned.len() {
                if owned[i].intersects(&owned[j]) {
                    v.push(format!(
                        "level {level}: overlapping owned regions {:?} and {:?}",
                        owned[i], owned[j]
                    ));
                }
            }
        }
    }

    // Multi-parent accounting (§3.3): every child referenced by 2+ parents
    // must be marked in all of them.
    for (child, refs) in &child_refs {
        if *refs > 1 {
            r.multi_parent_nodes += 1;
            if !mp_marked[child] {
                v.push(format!(
                    "child {child} has {refs} parents but lacks the multi-parent marker somewhere"
                ));
            }
        }
    }
    // Sibling-reachable nodes with no parent reference are unposted
    // intermediate states.
    for s in &sibling_targets {
        if !child_refs.contains_key(s) && *s != tree.root_pid() {
            r.unposted_nodes += 1;
        }
    }

    r.violations = v;
    Ok(r)
}
