//! The hB-tree engine (§2.2.3): point records over a multiattribute space,
//! with kd-fragment nodes, hyperplane splits, clipping, and the Π-tree
//! protocol — splits and index postings as separate, testable atomic
//! actions, sibling pointers searchable in between.
//!
//! Scope (per DESIGN.md): node consolidation is omitted — the paper itself
//! defers hB consolidation to its reference \[3\] "(in preparation)" — so the
//! hB-tree runs under the CNS invariant: nodes are immortal, one latch at a
//! time, remembered parents need no verification.

use crate::geometry::{key_point, point_key, Frag, Point, PtrKind, Rect};
use crate::node::HbHeader;
use pitree::node::Guarded;
use pitree::stats::TreeStats;
use pitree::store::Store;
use pitree_pagestore::buffer::PinnedPage;
use pitree_pagestore::page::{Page, PageType};
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{PageId, PageOp, StoreError, StoreResult};
use pitree_txnlock::{LockError, LockMode, LockName, Txn};
use pitree_wal::ActionIdentity;
use std::collections::VecDeque;
use std::sync::Arc;

/// Magic for hB registry records on the meta page.
const HB_META_MAGIC: u32 = 0x4842_5452; // "HBTR"

/// hB-tree tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct HbConfig {
    /// Cap on point records per data node.
    pub max_records: usize,
    /// Cap on kd-fragment nodes per index node.
    pub max_frag_nodes: usize,
    /// Run completions inline after operations.
    pub auto_complete: bool,
    /// Recovery identity for SMO atomic actions.
    pub smo_identity: ActionIdentity,
}

impl Default for HbConfig {
    fn default() -> Self {
        HbConfig {
            max_records: 64,
            max_frag_nodes: 48,
            auto_complete: true,
            smo_identity: ActionIdentity::SystemTransaction,
        }
    }
}

impl HbConfig {
    /// Small nodes for deep test trees.
    pub fn small_nodes(records: usize, frag: usize) -> HbConfig {
        HbConfig {
            max_records: records,
            max_frag_nodes: frag,
            ..Default::default()
        }
    }
}

/// A pending hB index-term posting: `new` took over `rect` (previously part
/// of `old`'s space) and a parent fragment at `level` must learn it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbPost {
    /// Parent hint — the index node on the detecting search path (§3.2.2:
    /// "we post only to the parent that is on the current search path"), or
    /// the root when unknown.
    pub parent: PageId,
    /// Level of the parent to update.
    pub level: u8,
    /// The delegating node.
    pub old: PageId,
    /// The new sibling.
    pub new: PageId,
    /// The region the new node took over.
    pub rect: Rect,
}

/// The hB-tree.
pub struct HbTree {
    store: Arc<Store>,
    cfg: HbConfig,
    tree_id: u32,
    root: PageId,
    queue: Mutex<VecDeque<HbPost>>,
    pub(crate) stats: Arc<TreeStats>,
}

impl std::fmt::Debug for HbTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HbTree").finish_non_exhaustive()
    }
}

/// A descent's outcome: the data node owning the point.
pub(crate) struct HbDescent<'a> {
    pub page: PinnedPage<'a>,
    pub guard: Guarded<'a>,
    pub hdr: HbHeader,
    /// The last index node on the path (posting hint), or the root.
    pub parent: PageId,
}

impl HbTree {
    /// Create a new hB-tree with a fixed root.
    pub fn create(store: Arc<Store>, tree_id: u32, cfg: HbConfig) -> StoreResult<HbTree> {
        let mut act = store.txns.begin(ActionIdentity::Transaction);
        let root = {
            let mut alloc = store.space.lock_alloc();
            let (root, bm_pid, bit) = alloc.find_free(&store.pool)?;
            let bm = store.pool.fetch(bm_pid)?;
            let mut bmg = bm.x();
            act.apply(&bm, &mut bmg, PageOp::SetBit { bit })?;
            root
        };
        {
            let page = store.pool.fetch_or_create(root, PageType::Free)?;
            let mut g = page.x();
            act.apply(&page, &mut g, PageOp::Format { ty: PageType::Node })?;
            act.apply(
                &page,
                &mut g,
                PageOp::InsertSlot {
                    slot: 0,
                    bytes: HbHeader::new_root_leaf().encode(),
                },
            )?;
        }
        {
            let meta = store.pool.fetch(PageId(0))?;
            let mut g = meta.x();
            let slot = g.slot_count();
            let mut rec = Vec::with_capacity(16);
            rec.extend_from_slice(&HB_META_MAGIC.to_le_bytes());
            rec.extend_from_slice(&tree_id.to_le_bytes());
            rec.extend_from_slice(&root.0.to_le_bytes());
            act.apply(&meta, &mut g, PageOp::InsertSlot { slot, bytes: rec })?;
        }
        act.commit()?;
        let stats = Arc::new(TreeStats::new(store.recorder()));
        Ok(HbTree {
            store,
            cfg,
            tree_id,
            root,
            queue: Mutex::new(VecDeque::new()),
            stats,
        })
    }

    /// Open an existing hB-tree by id.
    pub fn open(store: Arc<Store>, tree_id: u32, cfg: HbConfig) -> StoreResult<HbTree> {
        let root = {
            let meta = store.pool.fetch(PageId(0))?;
            let g = meta.s();
            let mut found = None;
            for slot in 1..g.slot_count() {
                let rec = g.get(slot)?;
                if rec.len() == 16
                    && u32::from_le_bytes(rec[0..4].try_into().unwrap()) == HB_META_MAGIC
                    && u32::from_le_bytes(rec[4..8].try_into().unwrap()) == tree_id
                {
                    found = Some(PageId(u64::from_le_bytes(rec[8..16].try_into().unwrap())));
                    break;
                }
            }
            found.ok_or_else(|| StoreError::Corrupt(format!("hB tree {tree_id} not registered")))?
        };
        let stats = Arc::new(TreeStats::new(store.recorder()));
        Ok(HbTree {
            store,
            cfg,
            tree_id,
            root,
            queue: Mutex::new(VecDeque::new()),
            stats,
        })
    }

    /// Open + run crash recovery with this tree's logical-undo handler.
    pub fn recover(
        store: Arc<Store>,
        tree_id: u32,
        cfg: HbConfig,
    ) -> StoreResult<(HbTree, pitree_wal::RecoveryStats)> {
        let handler = crate::undo::HbDeferredHandler::new(Arc::clone(&store), tree_id, cfg);
        let stats = pitree_wal::recover(&store.pool, &store.log, Some(&handler))?;
        let tree = HbTree::open(store, tree_id, cfg)?;
        Ok((tree, stats))
    }

    // ---- accessors -------------------------------------------------------------

    /// The underlying store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The configuration.
    pub fn config(&self) -> &HbConfig {
        &self.cfg
    }

    /// The fixed root page.
    pub fn root_pid(&self) -> PageId {
        self.root
    }

    /// Operation counters.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Pending postings.
    pub fn pending_posts(&self) -> usize {
        self.queue.lock().len()
    }

    /// Begin a user transaction.
    pub fn begin(&self) -> Txn<'_> {
        self.store.txns.begin(ActionIdentity::Transaction)
    }

    /// The lock name of a point record.
    pub fn point_lock(&self, p: &Point) -> LockName {
        let mut name = Vec::with_capacity(20);
        name.extend_from_slice(&self.tree_id.to_le_bytes());
        name.extend_from_slice(&point_key(p));
        LockName::Key(name)
    }

    pub(crate) fn schedule_post(&self, post: HbPost) {
        let mut q = self.queue.lock();
        if !q.iter().any(|e| e.old == post.old && e.new == post.new) {
            q.push_back(post);
            TreeStats::bump(&self.stats.postings_scheduled);
        }
    }

    // ---- traversal ---------------------------------------------------------------

    /// Descend to the data node directly containing `p`, following child and
    /// sibling terms through the kd fragments. One latch at a time (CNS).
    pub(crate) fn descend(
        &self,
        p: &Point,
        update_at_target: bool,
        schedule: bool,
    ) -> StoreResult<HbDescent<'_>> {
        let pool = &self.store.pool;
        let mut parent = self.root;
        let mut cur = pool.fetch(self.root)?;
        let mut g = {
            let peek = Guarded::S(cur.s());
            let hdr = HbHeader::read(peek.page())?;
            if hdr.level == 0 && update_at_target {
                drop(peek);
                Guarded::U(cur.u())
            } else {
                peek
            }
        };
        let mut hdr = HbHeader::read(g.page())?;
        loop {
            let (leaf, region) = hdr.frag.locate(&hdr.rect, p);
            match leaf {
                Frag::Local => {
                    if hdr.level != 0 {
                        return Err(StoreError::Corrupt(format!(
                            "index node {} has Local space at {region:?}",
                            cur.id()
                        )));
                    }
                    return Ok(HbDescent {
                        page: cur,
                        guard: g,
                        hdr,
                        parent,
                    });
                }
                Frag::Ptr {
                    kind: PtrKind::Sibling,
                    pid,
                    ..
                } => {
                    let side = *pid;
                    let from = cur.id();
                    let level = hdr.level;
                    drop(g); // CNS
                    let sib = pool.fetch(side)?;
                    let want_u = update_at_target && level == 0;
                    let sg = if want_u {
                        Guarded::U(sib.u())
                    } else {
                        Guarded::S(sib.s())
                    };
                    let sib_hdr = HbHeader::read(sg.page())?;
                    TreeStats::bump(&self.stats.side_traversals);
                    if schedule {
                        self.schedule_post(HbPost {
                            parent,
                            level: level + 1,
                            old: from,
                            new: side,
                            rect: sib_hdr.rect.clone(),
                        });
                    }
                    cur = sib;
                    g = sg;
                    hdr = sib_hdr;
                }
                Frag::Split { .. } => unreachable!("locate returns leaves"),
                Frag::Ptr {
                    kind: PtrKind::Child,
                    pid,
                    ..
                } => {
                    let child = *pid;
                    parent = cur.id();
                    let next_level = hdr.level - 1;
                    drop(g); // CNS
                    let cpin = pool.fetch(child)?;
                    let want_u = update_at_target && next_level == 0;
                    let cg = if want_u {
                        Guarded::U(cpin.u())
                    } else {
                        Guarded::S(cpin.s())
                    };
                    let child_hdr = HbHeader::read(cg.page())?;
                    cur = cpin;
                    g = cg;
                    hdr = child_hdr;
                }
            }
        }
    }

    // ---- reads ----------------------------------------------------------------

    /// Latch-only point lookup.
    pub fn get(&self, p: &Point) -> StoreResult<Option<Vec<u8>>> {
        let d = self.descend(p, false, true)?;
        let key = point_key(p);
        let out = d
            .guard
            .page()
            .keyed_lookup(&key)
            .map(|(_, e)| Page::entry_payload(e).to_vec());
        drop(d);
        self.maybe_autocomplete()?;
        Ok(out)
    }

    /// Transactional point lookup (S record lock).
    pub fn get_locked(&self, txn: &Txn<'_>, p: &Point) -> StoreResult<Option<Vec<u8>>> {
        let name = self.point_lock(p);
        loop {
            let d = self.descend(p, false, true)?;
            match txn.try_lock(&name, LockMode::S) {
                Ok(()) => {
                    let key = point_key(p);
                    let out = d
                        .guard
                        .page()
                        .keyed_lookup(&key)
                        .map(|(_, e)| Page::entry_payload(e).to_vec());
                    drop(d);
                    self.maybe_autocomplete()?;
                    return Ok(out);
                }
                Err(LockError::WouldBlock) => {
                    drop(d);
                    TreeStats::bump(&self.stats.no_wait_restarts);
                    txn.lock(&name, LockMode::S)
                        .map_err(crate::tree::lock_err)?;
                }
                Err(e) => return Err(lock_err(e)),
            }
        }
    }

    /// All records whose points fall in `window` (latch-only region query).
    /// Walks every data node whose directly-contained space intersects the
    /// window, via the fragment graph.
    pub fn window_query(&self, window: &Rect) -> StoreResult<Vec<(Point, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        let mut seen = std::collections::HashSet::new();
        while let Some(pid) = stack.pop() {
            if !seen.insert(pid) {
                continue;
            }
            let pin = self.store.pool.fetch(pid)?;
            let g = pin.s();
            let hdr = HbHeader::read(&g)?;
            let mut leaves = Vec::new();
            hdr.frag.leaves(&hdr.rect, &mut leaves);
            for (leaf, region) in leaves {
                if !region.intersects(window) {
                    continue;
                }
                match leaf {
                    Frag::Local => {
                        if hdr.level == 0 {
                            for slot in 1..g.slot_count() {
                                let e = g.get(slot)?;
                                let p = key_point(Page::entry_key(e));
                                if window.contains(&p) && region.contains(&p) {
                                    out.push((p, Page::entry_payload(e).to_vec()));
                                }
                            }
                        }
                    }
                    Frag::Ptr { pid, .. } => stack.push(*pid),
                    Frag::Split { .. } => unreachable!("leaves() yields leaves"),
                }
            }
        }
        out.sort();
        out.dedup_by(|a, b| a.0 == b.0);
        Ok(out)
    }

    // ---- writes ---------------------------------------------------------------

    /// Insert or replace the record at `p`. Returns `true` when new.
    pub fn insert(&self, txn: &mut Txn<'_>, p: &Point, value: &[u8]) -> StoreResult<bool> {
        let key = point_key(p);
        let entry = Page::make_entry(&key, value);
        let name = self.point_lock(p);
        loop {
            let d = self.descend(p, true, true)?;
            match txn.try_lock(&name, LockMode::X) {
                Ok(()) => {}
                Err(LockError::WouldBlock) => {
                    drop(d);
                    TreeStats::bump(&self.stats.no_wait_restarts);
                    txn.lock(&name, LockMode::X).map_err(lock_err)?;
                    continue;
                }
                Err(e) => return Err(lock_err(e)),
            }
            let exists = d.guard.page().keyed_find(&key)?.is_ok();
            if !exists
                && (d.guard.page().entry_count() as usize >= self.cfg.max_records
                    || d.guard.page().free_space() < entry.len() + 4)
            {
                crate::split::split_data_node(self, d)?;
                continue;
            }
            let mut g = d.guard.promote().into_x();
            let created = if exists {
                let old = g.get(g.keyed_find(&key)?.unwrap())?.to_vec();
                txn.apply_logical(
                    &d.page,
                    &mut g,
                    PageOp::KeyedUpdate {
                        bytes: entry.clone(),
                    },
                    crate::undo::TAG_HB_RESTORE,
                    old,
                )?;
                false
            } else {
                txn.apply_logical(
                    &d.page,
                    &mut g,
                    PageOp::KeyedInsert {
                        bytes: entry.clone(),
                    },
                    crate::undo::TAG_HB_REMOVE,
                    key.clone(),
                )?;
                true
            };
            drop(g);
            drop(d.page);
            self.maybe_autocomplete()?;
            return Ok(created);
        }
    }

    /// Delete the record at `p`. Returns whether it existed. (No
    /// consolidation — out of scope per the paper's own deferral.)
    pub fn delete(&self, txn: &mut Txn<'_>, p: &Point) -> StoreResult<bool> {
        let key = point_key(p);
        let name = self.point_lock(p);
        loop {
            let d = self.descend(p, true, true)?;
            match txn.try_lock(&name, LockMode::X) {
                Ok(()) => {}
                Err(LockError::WouldBlock) => {
                    drop(d);
                    TreeStats::bump(&self.stats.no_wait_restarts);
                    txn.lock(&name, LockMode::X).map_err(lock_err)?;
                    continue;
                }
                Err(e) => return Err(lock_err(e)),
            }
            if d.guard.page().keyed_find(&key)?.is_err() {
                drop(d);
                return Ok(false);
            }
            let mut g = d.guard.promote().into_x();
            let old = g.get(g.keyed_find(&key)?.unwrap())?.to_vec();
            txn.apply_logical(
                &d.page,
                &mut g,
                PageOp::KeyedRemove { key: key.clone() },
                crate::undo::TAG_HB_RESTORE,
                old,
            )?;
            drop(g);
            drop(d.page);
            self.maybe_autocomplete()?;
            return Ok(true);
        }
    }

    // ---- maintenance -------------------------------------------------------------

    /// Drain one batch of pending index-term postings.
    pub fn run_completions(&self) -> StoreResult<usize> {
        let mut done = 0;
        let batch = self.queue.lock().len();
        for _ in 0..batch {
            let Some(post) = self.queue.lock().pop_front() else {
                break;
            };
            crate::split::run_post(self, post)?;
            done += 1;
        }
        Ok(done)
    }

    pub(crate) fn maybe_autocomplete(&self) -> StoreResult<()> {
        if self.cfg.auto_complete && !self.queue.lock().is_empty() {
            self.run_completions()?;
        }
        Ok(())
    }

    /// Structural validation; see [`crate::wellformed`].
    pub fn validate(&self) -> StoreResult<crate::wellformed::HbReport> {
        crate::wellformed::check(self)
    }
}

pub(crate) fn lock_err(e: LockError) -> StoreError {
    match e {
        LockError::Deadlock => StoreError::LockFailed { deadlock: true },
        LockError::Timeout => StoreError::LockFailed { deadlock: false },
        LockError::WouldBlock => StoreError::Corrupt("WouldBlock escaped retry loop".into()),
    }
}
