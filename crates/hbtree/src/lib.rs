#![warn(missing_docs)]
//! # pitree-hb — the hB-tree
//!
//! The hB-tree (§2.2.3 of Lomet & Salzberg, SIGMOD 1992; full treatment in
//! their TODS 1990 paper) indexes **multiattribute point data** and is the
//! paper's third Π-tree member. Nodes carry **kd-tree fragments** whose
//! leaves are local space, index terms (child pointers), or — per Figure 2 —
//! **sibling pointers** replacing the original design's "External" markers,
//! which is exactly what makes the hB-tree a Π-tree: delegated space stays
//! reachable sideways, so splits and postings decompose into separate,
//! testable atomic actions.
//!
//! Hyperplane splits keep one kd child pointing at the new sibling
//! (Figure 2); index terms whose region straddles a split are **clipped**
//! into both parents and marked **multi-parent** (§3.2.2, §3.3); postings go
//! to the parent on the detecting search path, other parents lazily.
//!
//! Scope (see DESIGN.md): two attributes; node consolidation omitted — the
//! paper itself defers hB consolidation to its reference \[3\]
//! "(in preparation)" — so the tree runs under the CNS invariant.

pub mod geometry;
pub mod node;
pub mod split;
pub mod tree;
pub mod undo;
pub mod wellformed;

pub use geometry::{point_key, Frag, Point, PtrKind, Rect, DIMS};
pub use node::HbHeader;
pub use tree::{HbConfig, HbPost, HbTree};
pub use undo::{TAG_HB_REMOVE, TAG_HB_RESTORE};
pub use wellformed::HbReport;
