//! Logical undo for hB-tree record writes: compensations re-locate the
//! point through the fragment graph, so records moved by splits are found
//! wherever they now live.

use crate::geometry::key_point;
use crate::node::HbHeader;
use crate::tree::{HbConfig, HbTree};
use pitree::store::Store;
use pitree_pagestore::page::Page;
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::{PageOp, StoreError, StoreResult};
use pitree_wal::recovery::LogicalUndoHandler;
use pitree_wal::ActionIdentity;
use std::sync::Arc;

/// Undo of an insert: payload is the point key; remove if present.
pub const TAG_HB_REMOVE: u8 = 32;
/// Undo of an update/delete: payload is the previous entry; restore it.
pub const TAG_HB_RESTORE: u8 = 33;

impl HbTree {
    /// A handler borrowing this tree, for live-transaction rollback.
    pub fn undo_handler(&self) -> HbUndoHandler<'_> {
        HbUndoHandler(self)
    }

    pub(crate) fn compensate(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        let (key, entry): (&[u8], Option<&[u8]>) = match tag {
            TAG_HB_REMOVE => (payload, None),
            TAG_HB_RESTORE => (Page::entry_key(payload), Some(payload)),
            t => return Err(StoreError::Corrupt(format!("unknown hB undo tag {t}"))),
        };
        let p = key_point(key);
        loop {
            let d = self.descend(&p, true, false)?;
            let present = d.guard.page().keyed_find(key)?.is_ok();
            let op = match tag {
                TAG_HB_REMOVE if present => Some(PageOp::KeyedRemove { key: key.to_vec() }),
                TAG_HB_RESTORE => {
                    let bytes = entry
                        .ok_or_else(|| {
                            StoreError::Corrupt(
                                "hB restore record missing its entry payload".to_string(),
                            )
                        })?
                        .to_vec();
                    if present {
                        Some(PageOp::KeyedUpdate { bytes })
                    } else {
                        // Re-insert; splitting if the node is packed.
                        if d.guard.page().entry_count() as usize >= self.config().max_records
                            || d.guard.page().free_space() < bytes.len() + 4
                        {
                            crate::split::split_data_node(self, d)?;
                            continue;
                        }
                        Some(PageOp::KeyedInsert { bytes })
                    }
                }
                _ => None, // testable: nothing to compensate
            };
            let Some(op) = op else {
                drop(d);
                return Ok(());
            };
            let mut act = self.store().txns.begin(ActionIdentity::SystemTransaction);
            let mut g = d.guard.promote().into_x();
            act.apply(&d.page, &mut g, op)?;
            // Sanity: the record belongs to this node's space.
            debug_assert!(HbHeader::read(&g)?.rect.contains(&p));
            drop(g);
            drop(d.page);
            act.commit()?;
            return Ok(());
        }
    }
}

/// [`LogicalUndoHandler`] over a live hB-tree.
pub struct HbUndoHandler<'a>(&'a HbTree);

impl std::fmt::Debug for HbUndoHandler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HbUndoHandler").finish_non_exhaustive()
    }
}

impl LogicalUndoHandler for HbUndoHandler<'_> {
    fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        self.0.compensate(tag, payload)
    }
}

/// Lazily-opened handler for restart recovery.
pub struct HbDeferredHandler {
    store: Arc<Store>,
    tree_id: u32,
    cfg: HbConfig,
    tree: Mutex<Option<HbTree>>,
}

impl std::fmt::Debug for HbDeferredHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HbDeferredHandler").finish_non_exhaustive()
    }
}

impl HbDeferredHandler {
    /// Build a handler for `tree_id` over `store`.
    pub fn new(store: Arc<Store>, tree_id: u32, cfg: HbConfig) -> HbDeferredHandler {
        HbDeferredHandler {
            store,
            tree_id,
            cfg,
            tree: Mutex::new(None),
        }
    }
}

impl LogicalUndoHandler for HbDeferredHandler {
    fn undo(&self, tag: u8, payload: &[u8]) -> StoreResult<()> {
        let mut guard = self.tree.lock();
        let tree = match &mut *guard {
            Some(t) => t,
            slot => slot.insert(HbTree::open(
                Arc::clone(&self.store),
                self.tree_id,
                self.cfg,
            )?),
        };
        tree.compensate(tag, payload)
    }
}
