//! Geometry for the hB-tree: 2-attribute points, rectangles, and the
//! **kd-tree fragments** of §2.2.3 / Figure 2.
//!
//! Every hB-tree node carries a kd fragment describing how its original
//! (rectangular) region is divided among:
//!
//! * [`Frag::Local`] — space whose records live in this node (data nodes) or
//!   which this node has not delegated (transient in index nodes),
//! * `Frag::Ptr` with [`PtrKind::Child`] — space delegated *down* to a child (index terms),
//! * `Frag::Ptr` with [`PtrKind::Sibling`] — space delegated *sideways* to a sibling. Figure 2:
//!   "External markers ... have been replaced with sibling pointers."
//!
//! The node's *directly contained* space is its rectangle minus everything
//! delegated sideways — a "holey brick". When a fragment is cut by a split
//! hyperplane, a `Child` leaf whose region straddles the plane is **clipped**
//! (§3.2.2): the term lands in both halves and is marked multi-parent.

use pitree_pagestore::{PageId, StoreError, StoreResult};

/// Number of attributes (dimensions).
pub const DIMS: usize = 2;

/// A point in attribute space.
pub type Point = [u64; DIMS];

/// Encode a point as a sortable record key.
pub fn point_key(p: &Point) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    for c in p {
        v.extend_from_slice(&c.to_be_bytes());
    }
    v
}

/// Decode a record key back into a point.
pub fn key_point(k: &[u8]) -> Point {
    [
        u64::from_be_bytes(k[0..8].try_into().unwrap()),
        u64::from_be_bytes(k[8..16].try_into().unwrap()),
    ]
}

/// A half-open axis-aligned rectangle `lo ≤ p < hi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rect {
    /// Inclusive lower corner.
    pub lo: Point,
    /// Exclusive upper corner.
    pub hi: Point,
}

impl Rect {
    /// The whole attribute space.
    pub fn all() -> Rect {
        Rect {
            lo: [0; DIMS],
            hi: [u64::MAX; DIMS],
        }
    }

    /// Whether `p` lies inside.
    pub fn contains(&self, p: &Point) -> bool {
        (0..DIMS).all(|d| self.lo[d] <= p[d] && p[d] < self.hi[d])
    }

    /// Whether the interiors intersect.
    pub fn intersects(&self, o: &Rect) -> bool {
        (0..DIMS).all(|d| self.lo[d] < o.hi[d] && o.lo[d] < self.hi[d])
    }

    /// Whether `o` is fully inside `self`.
    pub fn contains_rect(&self, o: &Rect) -> bool {
        (0..DIMS).all(|d| self.lo[d] <= o.lo[d] && o.hi[d] <= self.hi[d])
    }

    /// Whether the rectangle is degenerate (empty).
    pub fn is_empty(&self) -> bool {
        (0..DIMS).any(|d| self.lo[d] >= self.hi[d])
    }

    /// Area as u128 (exact for the test domains used here).
    pub fn area(&self) -> u128 {
        (0..DIMS)
            .map(|d| (self.hi[d] - self.lo[d]) as u128)
            .product()
    }

    /// The half of `self` below / at-or-above `val` on `dim`.
    pub fn half(&self, dim: usize, val: u64, high: bool) -> Rect {
        let mut r = self.clone();
        if high {
            r.lo[dim] = r.lo[dim].max(val);
        } else {
            r.hi[dim] = r.hi[dim].min(val);
        }
        r
    }

    /// Encode.
    pub fn encode(&self, out: &mut Vec<u8>) {
        for c in self.lo.iter().chain(self.hi.iter()) {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// Decode, advancing `pos`.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> StoreResult<Rect> {
        if *pos + 32 > bytes.len() {
            return Err(StoreError::Corrupt("truncated rect".into()));
        }
        let mut vals = [0u64; 4];
        for v in vals.iter_mut() {
            *v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
        }
        Ok(Rect {
            lo: [vals[0], vals[1]],
            hi: [vals[2], vals[3]],
        })
    }
}

/// What a fragment leaf delegates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrKind {
    /// Delegated down: an index term.
    Child,
    /// Delegated sideways: a sibling term.
    Sibling,
}

/// A kd-tree fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frag {
    /// Internal kd node: left subtree covers `< val` on `dim`, right covers
    /// `≥ val`.
    Split {
        /// Splitting attribute.
        dim: u8,
        /// Splitting value.
        val: u64,
        /// Low side.
        lo: Box<Frag>,
        /// High side.
        hi: Box<Frag>,
    },
    /// Space belonging to this node directly.
    Local,
    /// Space delegated via a pointer; `multi_parent` is the §3.3 clipping
    /// marker (meaningful for `Child` pointers).
    Ptr {
        /// Down or sideways.
        kind: PtrKind,
        /// The referenced node.
        pid: PageId,
        /// Set when this term was clipped into more than one parent.
        multi_parent: bool,
    },
}

impl Frag {
    /// A child-pointer leaf.
    pub fn child(pid: PageId) -> Frag {
        Frag::Ptr {
            kind: PtrKind::Child,
            pid,
            multi_parent: false,
        }
    }

    /// A sibling-pointer leaf.
    pub fn sibling(pid: PageId) -> Frag {
        Frag::Ptr {
            kind: PtrKind::Sibling,
            pid,
            multi_parent: false,
        }
    }

    /// Resolve `p` (inside `rect`) to the leaf owning it, returning the leaf
    /// and its region.
    pub fn locate(&self, rect: &Rect, p: &Point) -> (&Frag, Rect) {
        match self {
            Frag::Split { dim, val, lo, hi } => {
                if p[*dim as usize] < *val {
                    lo.locate(&rect.half(*dim as usize, *val, false), p)
                } else {
                    hi.locate(&rect.half(*dim as usize, *val, true), p)
                }
            }
            leaf => (leaf, rect.clone()),
        }
    }

    /// Visit every leaf with its region.
    pub fn leaves<'a>(&'a self, rect: &Rect, out: &mut Vec<(&'a Frag, Rect)>) {
        match self {
            Frag::Split { dim, val, lo, hi } => {
                lo.leaves(&rect.half(*dim as usize, *val, false), out);
                hi.leaves(&rect.half(*dim as usize, *val, true), out);
            }
            leaf => out.push((leaf, rect.clone())),
        }
    }

    /// Clip the fragment to one side of the hyperplane `dim = val`. A `Ptr`
    /// leaf whose region straddles the plane appears in **both** halves —
    /// §3.2.2's clipping; `mark_clipped` records the multi-parent marker on
    /// clipped `Child` leaves (collected into `clipped`).
    pub fn clip(
        &self,
        rect: &Rect,
        dim: usize,
        val: u64,
        high: bool,
        clipped: &mut Vec<PageId>,
    ) -> Frag {
        match self {
            Frag::Split {
                dim: d2,
                val: v2,
                lo,
                hi,
            } => {
                let d2u = *d2 as usize;
                let lo_rect = rect.half(d2u, *v2, false);
                let hi_rect = rect.half(d2u, *v2, true);
                let keep_lo = !lo_rect.half(dim, val, high).is_empty();
                let keep_hi = !hi_rect.half(dim, val, high).is_empty();
                match (keep_lo, keep_hi) {
                    (true, true) => Frag::Split {
                        dim: *d2,
                        val: *v2,
                        lo: Box::new(lo.clip(&lo_rect, dim, val, high, clipped)),
                        hi: Box::new(hi.clip(&hi_rect, dim, val, high, clipped)),
                    },
                    (true, false) => lo.clip(&lo_rect, dim, val, high, clipped),
                    (false, true) => hi.clip(&hi_rect, dim, val, high, clipped),
                    (false, false) => Frag::Local, // degenerate; unreachable for sane cuts
                }
            }
            Frag::Local => Frag::Local,
            Frag::Ptr {
                kind,
                pid,
                multi_parent,
            } => {
                // Does this leaf's region straddle the plane?
                let this_side = !rect.half(dim, val, high).is_empty();
                debug_assert!(this_side, "clip visited a leaf with no area on this side");
                let other = !rect.half(dim, val, !high).is_empty();
                let mp = *multi_parent || (other && *kind == PtrKind::Child);
                if other && *kind == PtrKind::Child && !clipped.contains(pid) {
                    clipped.push(*pid);
                }
                Frag::Ptr {
                    kind: *kind,
                    pid: *pid,
                    multi_parent: mp,
                }
            }
        }
    }

    /// Replace, within the region `target`, every `Child(old)` leaf by
    /// `Child(new)` — refining leaves that only partially overlap `target`
    /// with new kd splits. This is how an hB index term is **posted**: the
    /// parent's fragment learns that `new` now owns `target` (previously
    /// part of `old`'s space). Returns whether anything changed.
    pub fn post(&mut self, rect: &Rect, old: PageId, new: PageId, target: &Rect) -> bool {
        match self {
            Frag::Split { dim, val, lo, hi } => {
                let d = *dim as usize;
                let lo_rect = rect.half(d, *val, false);
                let hi_rect = rect.half(d, *val, true);
                let mut changed = false;
                if lo_rect.intersects(target) {
                    changed |= lo.post(&lo_rect, old, new, target);
                }
                if hi_rect.intersects(target) {
                    changed |= hi.post(&hi_rect, old, new, target);
                }
                changed
            }
            Frag::Ptr {
                kind: PtrKind::Child,
                pid,
                multi_parent,
            } if *pid == old => {
                if target.contains_rect(rect) {
                    *self = Frag::Ptr {
                        kind: PtrKind::Child,
                        pid: new,
                        multi_parent: *multi_parent,
                    };
                    return true;
                }
                // Partial overlap: carve `target ∩ rect` out of this leaf
                // with up to 2·DIMS nested splits.
                let mp = *multi_parent;
                let mut region = rect.clone();
                let mut build: Vec<(u8, u64, bool)> = Vec::new(); // (dim, val, new-side-is-high)
                for d in 0..DIMS {
                    if target.lo[d] > region.lo[d] {
                        build.push((d as u8, target.lo[d], true));
                        region.lo[d] = target.lo[d];
                    }
                    if target.hi[d] < region.hi[d] {
                        build.push((d as u8, target.hi[d], false));
                        region.hi[d] = target.hi[d];
                    }
                }
                let mut frag = Frag::Ptr {
                    kind: PtrKind::Child,
                    pid: new,
                    multi_parent: mp,
                };
                for (d, v, new_high) in build.into_iter().rev() {
                    let old_leaf = Frag::Ptr {
                        kind: PtrKind::Child,
                        pid: old,
                        multi_parent: mp,
                    };
                    frag = if new_high {
                        Frag::Split {
                            dim: d,
                            val: v,
                            lo: Box::new(old_leaf),
                            hi: Box::new(frag),
                        }
                    } else {
                        Frag::Split {
                            dim: d,
                            val: v,
                            lo: Box::new(frag),
                            hi: Box::new(old_leaf),
                        }
                    };
                }
                *self = frag;
                true
            }
            _ => false,
        }
    }

    /// Number of nodes in the fragment (size control).
    pub fn size(&self) -> usize {
        match self {
            Frag::Split { lo, hi, .. } => 1 + lo.size() + hi.size(),
            _ => 1,
        }
    }

    /// Encode.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frag::Split { dim, val, lo, hi } => {
                out.push(0);
                out.push(*dim);
                out.extend_from_slice(&val.to_le_bytes());
                lo.encode(out);
                hi.encode(out);
            }
            Frag::Local => out.push(1),
            Frag::Ptr {
                kind,
                pid,
                multi_parent,
            } => {
                out.push(2);
                out.push(match kind {
                    PtrKind::Child => 0,
                    PtrKind::Sibling => 1,
                });
                out.extend_from_slice(&pid.0.to_le_bytes());
                out.push(*multi_parent as u8);
            }
        }
    }

    /// Decode, advancing `pos`.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> StoreResult<Frag> {
        let tag = *bytes
            .get(*pos)
            .ok_or_else(|| StoreError::Corrupt("truncated fragment".into()))?;
        *pos += 1;
        match tag {
            0 => {
                if *pos + 9 > bytes.len() {
                    return Err(StoreError::Corrupt("truncated kd split".into()));
                }
                let dim = bytes[*pos];
                *pos += 1;
                let val = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
                *pos += 8;
                let lo = Box::new(Frag::decode(bytes, pos)?);
                let hi = Box::new(Frag::decode(bytes, pos)?);
                Ok(Frag::Split { dim, val, lo, hi })
            }
            1 => Ok(Frag::Local),
            2 => {
                if *pos + 10 > bytes.len() {
                    return Err(StoreError::Corrupt("truncated kd pointer".into()));
                }
                let kind = match bytes[*pos] {
                    0 => PtrKind::Child,
                    1 => PtrKind::Sibling,
                    x => return Err(StoreError::Corrupt(format!("bad ptr kind {x}"))),
                };
                *pos += 1;
                let pid = PageId(u64::from_le_bytes(
                    bytes[*pos..*pos + 8].try_into().unwrap(),
                ));
                *pos += 8;
                let multi_parent = bytes[*pos] != 0;
                *pos += 1;
                Ok(Frag::Ptr {
                    kind,
                    pid,
                    multi_parent,
                })
            }
            t => Err(StoreError::Corrupt(format!("bad fragment tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: [u64; 2], hi: [u64; 2]) -> Rect {
        Rect { lo, hi }
    }

    #[test]
    fn rect_basics() {
        let r = rect([0, 0], [10, 10]);
        assert!(r.contains(&[0, 0]) && r.contains(&[9, 9]));
        assert!(!r.contains(&[10, 0]) && !r.contains(&[0, 10]));
        assert!(r.intersects(&rect([5, 5], [15, 15])));
        assert!(
            !r.intersects(&rect([10, 0], [20, 10])),
            "half-open edges do not touch"
        );
        assert!(r.contains_rect(&rect([2, 2], [8, 8])));
        assert_eq!(r.area(), 100);
        assert_eq!(r.half(0, 4, false), rect([0, 0], [4, 10]));
        assert_eq!(r.half(0, 4, true), rect([4, 0], [10, 10]));
    }

    #[test]
    fn point_key_roundtrip_and_order() {
        let a = point_key(&[1, 2]);
        let b = point_key(&[1, 3]);
        let c = point_key(&[2, 0]);
        assert!(a < b && b < c);
        assert_eq!(key_point(&a), [1, 2]);
    }

    #[test]
    fn frag_codec_roundtrip() {
        let f = Frag::Split {
            dim: 0,
            val: 50,
            lo: Box::new(Frag::Local),
            hi: Box::new(Frag::Split {
                dim: 1,
                val: 30,
                lo: Box::new(Frag::child(PageId(7))),
                hi: Box::new(Frag::Ptr {
                    kind: PtrKind::Sibling,
                    pid: PageId(9),
                    multi_parent: true,
                }),
            }),
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(Frag::decode(&buf, &mut pos).unwrap(), f);
        assert_eq!(pos, buf.len());
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn locate_walks_kd_splits() {
        let f = Frag::Split {
            dim: 0,
            val: 50,
            lo: Box::new(Frag::Local),
            hi: Box::new(Frag::sibling(PageId(3))),
        };
        let space = rect([0, 0], [100, 100]);
        let (leaf, region) = f.locate(&space, &[10, 10]);
        assert_eq!(leaf, &Frag::Local);
        assert_eq!(region, rect([0, 0], [50, 100]));
        let (leaf, region) = f.locate(&space, &[60, 10]);
        assert_eq!(leaf, &Frag::sibling(PageId(3)));
        assert_eq!(region, rect([50, 0], [100, 100]));
    }

    #[test]
    fn leaves_partition_the_rect() {
        let f = Frag::Split {
            dim: 1,
            val: 40,
            lo: Box::new(Frag::child(PageId(1))),
            hi: Box::new(Frag::Split {
                dim: 0,
                val: 20,
                lo: Box::new(Frag::child(PageId(2))),
                hi: Box::new(Frag::Local),
            }),
        };
        let space = rect([0, 0], [100, 100]);
        let mut out = Vec::new();
        f.leaves(&space, &mut out);
        assert_eq!(out.len(), 3);
        let total: u128 = out.iter().map(|(_, r)| r.area()).sum();
        assert_eq!(total, space.area());
    }

    #[test]
    fn clip_splits_local_space() {
        let f = Frag::Local;
        let space = rect([0, 0], [100, 100]);
        let mut clipped = Vec::new();
        let lo = f.clip(&space, 0, 50, false, &mut clipped);
        let hi = f.clip(&space, 0, 50, true, &mut clipped);
        assert_eq!(lo, Frag::Local);
        assert_eq!(hi, Frag::Local);
        assert!(clipped.is_empty());
    }

    #[test]
    fn clip_marks_straddling_children_multi_parent() {
        // Child covers y < 40 across all x; a cut at x=50 clips it (§3.2.2).
        let f = Frag::Split {
            dim: 1,
            val: 40,
            lo: Box::new(Frag::child(PageId(7))),
            hi: Box::new(Frag::Local),
        };
        let space = rect([0, 0], [100, 100]);
        let mut clipped = Vec::new();
        let lo = f.clip(&space, 0, 50, false, &mut clipped);
        let hi = f.clip(&space, 0, 50, true, &mut clipped);
        assert_eq!(clipped, vec![PageId(7)], "the child term was clipped");
        for side in [&lo, &hi] {
            let mut leaves = Vec::new();
            side.leaves(&rect([0, 0], [50, 100]), &mut leaves);
            let has_mp_child = leaves.iter().any(|(l, _)| {
                matches!(l, Frag::Ptr { kind: PtrKind::Child, pid, multi_parent: true } if *pid == PageId(7))
            });
            assert!(
                has_mp_child,
                "both halves must carry the clipped child, marked"
            );
        }
    }

    #[test]
    fn clip_drops_subtrees_entirely_on_the_other_side() {
        let f = Frag::Split {
            dim: 0,
            val: 50,
            lo: Box::new(Frag::child(PageId(1))),
            hi: Box::new(Frag::child(PageId(2))),
        };
        let space = rect([0, 0], [100, 100]);
        let mut clipped = Vec::new();
        let lo = f.clip(&space, 0, 50, false, &mut clipped);
        assert_eq!(
            lo,
            Frag::child(PageId(1)),
            "aligned cut keeps exactly one side"
        );
        assert!(clipped.is_empty());
    }

    #[test]
    fn post_replaces_contained_child_leaf() {
        let mut f = Frag::Split {
            dim: 0,
            val: 50,
            lo: Box::new(Frag::child(PageId(1))),
            hi: Box::new(Frag::child(PageId(2))),
        };
        let space = rect([0, 0], [100, 100]);
        // Node 3 took over the whole high half of node 2's region.
        assert!(f.post(&space, PageId(2), PageId(3), &rect([50, 0], [100, 100])));
        let (leaf, _) = f.locate(&space, &[60, 10]);
        assert_eq!(leaf, &Frag::child(PageId(3)));
        let (leaf, _) = f.locate(&space, &[10, 10]);
        assert_eq!(leaf, &Frag::child(PageId(1)), "other child untouched");
    }

    #[test]
    fn post_refines_partially_overlapping_leaf() {
        let mut f = Frag::child(PageId(1));
        let space = rect([0, 0], [100, 100]);
        // Node 9 owns an interior sub-rectangle: the leaf must be refined.
        let target = rect([25, 25], [75, 75]);
        assert!(f.post(&space, PageId(1), PageId(9), &target));
        // All corners still route to 1; the center routes to 9.
        for p in [[0, 0], [99, 0], [0, 99], [99, 99]] {
            let (leaf, _) = f.locate(&space, &p);
            assert_eq!(leaf, &Frag::child(PageId(1)), "corner {p:?}");
        }
        let (leaf, _) = f.locate(&space, &[50, 50]);
        assert_eq!(leaf, &Frag::child(PageId(9)));
        // Regions still partition the space.
        let mut leaves = Vec::new();
        f.leaves(&space, &mut leaves);
        let total: u128 = leaves.iter().map(|(_, r)| r.area()).sum();
        assert_eq!(total, space.area());
    }

    #[test]
    fn post_is_idempotent_when_already_posted() {
        let mut f = Frag::child(PageId(9));
        let space = rect([0, 0], [100, 100]);
        assert!(!f.post(&space, PageId(1), PageId(9), &rect([0, 0], [50, 100])));
    }
}
