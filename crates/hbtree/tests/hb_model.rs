//! Property-based model checking of the hB-tree: arbitrary point inserts,
//! updates, deletes, aborted batches, crash/recover cycles, and completion
//! passes, checked against a `BTreeMap<Point, value>` model — including
//! exhaustive window queries and the exact geometric partition validator.
//!
//! Runs on the pitree-sim property runner: fixed seed corpus, replayable
//! with `PITREE_SIM_SEED=<seed>`.

use pitree::store::CrashableStore;
use pitree_hb::{HbConfig, HbTree, Point, Rect};
use pitree_sim::{prop, SimRng};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8, u8),
    Delete(u8, u8),
    AbortedBatch(Vec<(u8, u8)>),
    Window(u8, u8, u8, u8),
    RunCompletions,
    CrashRecover,
}

fn gen_op(rng: &mut SimRng) -> Op {
    match rng.below(13) {
        0..=5 => Op::Insert(rng.below(32) as u8, rng.below(32) as u8, rng.byte()),
        6..=7 => Op::Delete(rng.below(32) as u8, rng.below(32) as u8),
        8 => {
            let n = rng.range_usize(1..5);
            Op::AbortedBatch(
                (0..n)
                    .map(|_| (rng.below(32) as u8, rng.below(32) as u8))
                    .collect(),
            )
        }
        9..=10 => Op::Window(
            rng.below(32) as u8,
            rng.below(32) as u8,
            rng.below(8) as u8 + 1,
            rng.below(8) as u8 + 1,
        ),
        11 => Op::RunCompletions,
        _ => Op::CrashRecover,
    }
}

fn pt(x: u8, y: u8) -> Point {
    // Spread over a wide domain so kd cuts have room.
    [x as u64 * 1000, y as u64 * 1000]
}

#[test]
fn hb_matches_point_map_model() {
    prop::run_cases("hb_matches_point_map_model", 16, |rng| {
        let n_ops = rng.range_usize(1..100);
        let ops: Vec<Op> = (0..n_ops).map(|_| gen_op(rng)).collect();
        let cfg = HbConfig::small_nodes(5, 10);
        let mut cs = CrashableStore::create(1024, 200_000).unwrap();
        let mut tree = HbTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
        let mut model: BTreeMap<Point, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(x, y, v) => {
                    let p = pt(x, y);
                    let value = vec![v; 3];
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &p, &value).unwrap();
                    txn.commit().unwrap();
                    model.insert(p, value);
                }
                Op::Delete(x, y) => {
                    let p = pt(x, y);
                    let mut txn = tree.begin();
                    let hit = tree.delete(&mut txn, &p).unwrap();
                    txn.commit().unwrap();
                    assert_eq!(hit, model.remove(&p).is_some());
                }
                Op::AbortedBatch(batch) => {
                    let mut txn = tree.begin();
                    for &(x, y) in &batch {
                        tree.insert(&mut txn, &pt(x, y), b"doomed").unwrap();
                    }
                    txn.abort(Some(&tree.undo_handler())).unwrap();
                    // Model unchanged.
                }
                Op::Window(x, y, w, h) => {
                    let window = Rect {
                        lo: pt(x, y),
                        hi: [pt(x, y)[0] + w as u64 * 1000, pt(x, y)[1] + h as u64 * 1000],
                    };
                    let got = tree.window_query(&window).unwrap();
                    let want: Vec<(Point, Vec<u8>)> = model
                        .iter()
                        .filter(|(p, _)| window.contains(p))
                        .map(|(p, v)| (*p, v.clone()))
                        .collect();
                    assert_eq!(got, want, "window {window:?}");
                }
                Op::RunCompletions => {
                    tree.run_completions().unwrap();
                }
                Op::CrashRecover => {
                    drop(tree);
                    let cs2 = cs.crash().unwrap();
                    let (t2, _) = HbTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
                    cs = cs2;
                    tree = t2;
                }
            }
        }

        let report = tree.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "violations: {:?}",
            report.violations
        );
        assert_eq!(report.records, model.len());
        for (p, v) in &model {
            let got = tree.get(p).unwrap();
            assert_eq!(got.as_deref(), Some(v.as_slice()), "point {p:?}");
        }
        // A point never inserted must be absent.
        assert_eq!(tree.get(&[999_999, 999_999]).unwrap(), None);
    });
}
