//! hB-tree functional, structural (Figure 2), and recovery tests.

use pitree::store::CrashableStore;
use pitree_hb::{Frag, HbConfig, HbHeader, HbTree, Point, PtrKind, Rect};
use pitree_sim::SimRng;
use std::sync::Arc;

fn setup(cfg: HbConfig) -> (CrashableStore, HbTree) {
    let cs = CrashableStore::create(1024, 200_000).unwrap();
    let tree = HbTree::create(Arc::clone(&cs.store), 1, cfg).unwrap();
    (cs, tree)
}

fn put(tree: &HbTree, p: Point, v: &[u8]) {
    let mut t = tree.begin();
    tree.insert(&mut t, &p, v).unwrap();
    t.commit().unwrap();
}

fn grid_points(n: u64, stride: u64) -> Vec<Point> {
    let mut out = Vec::new();
    for x in 0..n {
        for y in 0..n {
            out.push([x * stride + 10, y * stride + 10]);
        }
    }
    out
}

#[test]
fn insert_get_roundtrip() {
    let (_cs, tree) = setup(HbConfig::small_nodes(8, 24));
    let pts = grid_points(10, 100);
    for (i, p) in pts.iter().enumerate() {
        put(&tree, *p, format!("v{i}").as_bytes());
    }
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(
            tree.get(p).unwrap(),
            Some(format!("v{i}").into_bytes()),
            "point {p:?}"
        );
    }
    assert_eq!(tree.get(&[5, 5]).unwrap(), None);
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 100);
}

#[test]
fn splits_produce_multiple_levels() {
    let (_cs, tree) = setup(HbConfig::small_nodes(6, 12));
    let pts = grid_points(16, 50);
    for p in &pts {
        put(&tree, *p, b"x");
    }
    for _ in 0..6 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 256);
    assert!(
        report.nodes_per_level.len() >= 2,
        "256 points in 6-record nodes must build index levels: {:?}",
        report.nodes_per_level
    );
    // All points still reachable.
    for p in &pts {
        assert_eq!(tree.get(p).unwrap(), Some(b"x".to_vec()), "point {p:?}");
    }
}

#[test]
fn random_points_stay_searchable() {
    let mut rng = SimRng::new(4);
    let (_cs, tree) = setup(HbConfig::small_nodes(8, 16));
    let mut pts = Vec::new();
    for _ in 0..600 {
        let p: Point = [rng.below(1_000_000), rng.below(1_000_000)];
        pts.push(p);
        put(&tree, p, b"r");
    }
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    pts.sort();
    pts.dedup();
    assert_eq!(report.records, pts.len());
    for p in &pts {
        assert_eq!(tree.get(p).unwrap(), Some(b"r".to_vec()), "point {p:?}");
    }
}

#[test]
fn window_queries_match_linear_scan() {
    let mut rng = SimRng::new(4);
    let (_cs, tree) = setup(HbConfig::small_nodes(8, 16));
    let mut pts = Vec::new();
    for _ in 0..300 {
        let p: Point = [rng.below(10_000), rng.below(10_000)];
        pts.push(p);
        put(&tree, p, b"w");
    }
    pts.sort();
    pts.dedup();
    for _ in 0..5 {
        let lo = [rng.below(8_000), rng.below(8_000)];
        let hi = [lo[0] + rng.range(1..3_000), lo[1] + rng.range(1..3_000)];
        let window = Rect { lo, hi };
        let got = tree.window_query(&window).unwrap();
        let expected: Vec<Point> = pts.iter().copied().filter(|p| window.contains(p)).collect();
        let got_pts: Vec<Point> = got.iter().map(|(p, _)| *p).collect();
        assert_eq!(got_pts, expected, "window {window:?}");
    }
}

#[test]
fn updates_and_deletes() {
    let (_cs, tree) = setup(HbConfig::small_nodes(8, 16));
    for p in grid_points(6, 10) {
        put(&tree, p, b"one");
    }
    let target: Point = [10, 10];
    put(&tree, target, b"two");
    assert_eq!(tree.get(&target).unwrap(), Some(b"two".to_vec()));
    let mut t = tree.begin();
    assert!(tree.delete(&mut t, &target).unwrap());
    assert!(!tree.delete(&mut t, &target).unwrap());
    t.commit().unwrap();
    assert_eq!(tree.get(&target).unwrap(), None);
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 35);
}

#[test]
fn figure_2_structure() {
    // Build a node population that forces hyperplane splits of index nodes,
    // then verify the Figure 2 shape: kd fragments whose leaves mix child
    // pointers and *sibling* pointers (the replaced "External" markers).
    let (cs, tree) = setup(HbConfig::small_nodes(4, 8));
    for p in grid_points(14, 64) {
        put(&tree, p, b"f2");
    }
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert!(report.nodes_per_level.len() >= 2);

    // Find an index node whose fragment carries a sibling pointer.
    let pool = &cs.store.pool;
    let mut stack = vec![tree.root_pid()];
    let mut seen = std::collections::HashSet::new();
    let mut sib_in_index = 0;
    let mut kd_splits_in_index = 0;
    while let Some(pid) = stack.pop() {
        if !seen.insert(pid) {
            continue;
        }
        let pin = pool.fetch(pid).unwrap();
        let g = pin.s();
        let hdr = HbHeader::read(&g).unwrap();
        let mut leaves = Vec::new();
        hdr.frag.leaves(&hdr.rect, &mut leaves);
        if hdr.level > 0 {
            if matches!(hdr.frag, Frag::Split { .. }) {
                kd_splits_in_index += 1;
            }
            for (leaf, _) in &leaves {
                if matches!(
                    leaf,
                    Frag::Ptr {
                        kind: PtrKind::Sibling,
                        ..
                    }
                ) {
                    sib_in_index += 1;
                }
            }
        }
        for (leaf, _) in &leaves {
            if let Frag::Ptr { pid, .. } = leaf {
                stack.push(*pid);
            }
        }
    }
    assert!(
        kd_splits_in_index > 0,
        "index nodes must hold kd-tree fragments (Figure 2)"
    );
    assert!(
        sib_in_index > 0,
        "at least one index node must carry a sibling pointer in its fragment \
         (Figure 2's replaced External markers)"
    );
}

#[test]
fn clipping_marks_multi_parent_nodes() {
    // A dense horizontal band mixed with scattered points produces child
    // regions that straddle the balanced cuts, forcing clipped terms
    // (§3.2.2/§3.3).
    let mut rng = SimRng::new(4);
    let (_cs, tree) = setup(HbConfig::small_nodes(6, 6));
    for i in 0..800 {
        let p: Point = if i % 3 == 0 {
            [rng.below(1000) * 97, rng.below(50)]
        } else {
            [rng.below(100_000), rng.below(100_000)]
        };
        put(&tree, p, b"c");
    }
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    // Clipping is workload-dependent; with 500 random points and tiny
    // fragments it reliably occurs.
    assert!(
        report.multi_parent_nodes > 0,
        "tiny index fragments over dense data must clip at least one term"
    );
}

#[test]
fn aborted_inserts_are_compensated() {
    let (_cs, tree) = setup(HbConfig::small_nodes(6, 12));
    for p in grid_points(5, 100) {
        put(&tree, p, b"keep");
    }
    let mut t = tree.begin();
    for p in grid_points(5, 37) {
        tree.insert(&mut t, &[p[0] + 1, p[1] + 1], b"doomed")
            .unwrap();
    }
    t.abort(Some(&tree.undo_handler())).unwrap();
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 25, "only the committed grid remains");
    for p in grid_points(5, 100) {
        assert_eq!(tree.get(&p).unwrap(), Some(b"keep".to_vec()));
    }
}

#[test]
fn crash_recovery_preserves_committed_points() {
    let cfg = HbConfig::small_nodes(6, 12);
    let (cs, tree) = setup(cfg);
    let pts = grid_points(10, 64);
    for p in &pts {
        put(&tree, *p, b"d");
    }
    drop(tree);
    let cs2 = cs.crash().unwrap();
    let (tree2, _stats) = HbTree::recover(Arc::clone(&cs2.store), 1, cfg).unwrap();
    let report = tree2.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    assert_eq!(report.records, 100);
    for p in &pts {
        assert_eq!(tree2.get(p).unwrap(), Some(b"d".to_vec()), "point {p:?}");
    }
}

#[test]
fn crash_log_prefix_sweep() {
    let cfg = HbConfig::small_nodes(4, 10);
    let (cs, tree) = setup(cfg);
    for p in grid_points(6, 64) {
        put(&tree, p, b"s");
    }
    drop(tree);
    cs.store.log.force_all().unwrap();
    let records = cs.store.log.scan(None).expect("scan");
    for (idx, rec) in records.iter().enumerate() {
        if idx % 5 != 0 {
            continue;
        }
        let cut = rec.lsn.0 - 1;
        let cs2 = cs.crash_with_log_prefix(cut).unwrap();
        let Ok((tree2, _)) = HbTree::recover(Arc::clone(&cs2.store), 1, cfg) else {
            continue;
        };
        let report = tree2.validate().unwrap();
        assert!(
            report.is_well_formed(),
            "cut={cut}: {:?}",
            report.violations
        );
    }
}

#[test]
fn unposted_splits_complete_lazily() {
    let mut cfg = HbConfig::small_nodes(5, 12);
    cfg.auto_complete = false;
    let (_cs, tree) = setup(cfg);
    let pts = grid_points(8, 80);
    for p in &pts {
        put(&tree, *p, b"l");
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    // Searches succeed through sibling pointers even with postings pending.
    for p in &pts {
        assert_eq!(tree.get(p).unwrap(), Some(b"l".to_vec()));
    }
    assert!(tree.pending_posts() > 0 || report.unposted_nodes > 0);
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report2 = tree.validate().unwrap();
    assert!(report2.is_well_formed(), "{:?}", report2.violations);
    assert!(report2.unposted_nodes <= report.unposted_nodes);
}
