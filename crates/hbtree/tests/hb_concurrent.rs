//! hB-tree concurrency: threads inserting and querying point data while
//! hyperplane splits and fragment postings run between them (CNS: one latch
//! at a time, immortal nodes).

use pitree::store::CrashableStore;
use pitree_hb::{HbConfig, HbTree, Point, Rect};
use std::sync::Arc;

#[test]
fn concurrent_point_inserts() {
    let cs = CrashableStore::create(4096, 500_000).unwrap();
    let tree =
        Arc::new(HbTree::create(Arc::clone(&cs.store), 1, HbConfig::small_nodes(6, 12)).unwrap());
    let threads = 6u64;
    let per = 150u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..per {
                    // Disjoint lattices per thread, interleaved in space.
                    let p: Point = [(i * 97) % 10_000 * threads + t, (i * 193) % 10_000];
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &p, b"c").unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    for _ in 0..8 {
        tree.run_completions().unwrap();
    }
    let report = tree.validate().unwrap();
    assert!(report.is_well_formed(), "{:?}", report.violations);
    for t in 0..threads {
        for i in 0..per {
            let p: Point = [(i * 97) % 10_000 * threads + t, (i * 193) % 10_000];
            assert_eq!(tree.get(&p).unwrap(), Some(b"c".to_vec()), "point {p:?}");
        }
    }
}

#[test]
fn readers_and_window_queries_during_split_storm() {
    let cs = CrashableStore::create(4096, 500_000).unwrap();
    let tree =
        Arc::new(HbTree::create(Arc::clone(&cs.store), 1, HbConfig::small_nodes(5, 10)).unwrap());
    // Preload a stable lattice the readers check.
    for x in 0..12u64 {
        for y in 0..12u64 {
            let mut txn = tree.begin();
            tree.insert(&mut txn, &[x * 100 + 5, y * 100 + 5], b"stable")
                .unwrap();
            txn.commit().unwrap();
        }
    }
    std::thread::scope(|s| {
        // Writers extend into fresh space, forcing splits + postings.
        for t in 0..3u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..200u64 {
                    let p: Point = [50_000 + i * 3 + t, 50_000 + (i * 7 + t) % 900];
                    let mut txn = tree.begin();
                    tree.insert(&mut txn, &p, b"new").unwrap();
                    txn.commit().unwrap();
                }
            });
        }
        // Readers: every stable point always visible; windows always
        // complete over the stable region.
        for _ in 0..3 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..20u64 {
                    for x in 0..12u64 {
                        let p: Point = [x * 100 + 5, (round % 12) * 100 + 5];
                        assert_eq!(tree.get(&p).unwrap(), Some(b"stable".to_vec()));
                    }
                    let window = Rect {
                        lo: [0, 0],
                        hi: [1_200, 1_200],
                    };
                    let hits = tree.window_query(&window).unwrap();
                    assert_eq!(hits.len(), 144, "stable lattice must stay complete");
                }
            });
        }
    });
    assert!(tree.validate().unwrap().is_well_formed());
}
