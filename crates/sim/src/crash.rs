//! The crash–recover–verify loop: kill the system at every durable-write
//! boundary of a seeded workload and check recovery against a reference
//! model.
//!
//! This is the executable form of the paper's central claim (§1 point 4,
//! §4.3): a crash at *any* point — mid structure change, mid flush, mid
//! commit force — leaves a state from which generic ARIES-style recovery
//! produces a well-formed tree containing exactly the committed data.
//!
//! Protocol, per seed:
//!
//! 1. Generate a workload script from the seed (upserts, deletes, pool
//!    flushes, fuzzy checkpoints — each user op is its own forced-commit
//!    transaction).
//! 2. **Probe**: run the script once under a counting [`CrashPlan`] to
//!    measure the crash-point space (`fault_points` boundaries), and verify
//!    the no-crash end state against the model.
//! 3. **Sweep**: for each sampled boundary `n`, rebuild from scratch with a
//!    plan that fires at `n`, replay the identical script (determinism makes
//!    the boundary sequence identical), and track a `BTreeMap` model that is
//!    updated only when a commit *returns Ok*. Because every commit forces
//!    the log and `MemLogStore::append` is all-or-nothing, a commit returns
//!    `Ok` iff its commit record is durable — so the model at the crash is
//!    exactly the committed data.
//! 4. Crash (injector-free durable snapshot), recover, and assert:
//!    well-formedness ([`pitree::wellformed`]), record count == model size,
//!    and every model key readable with its exact value. Then complete any
//!    interrupted structure changes lazily and re-check well-formedness.
//!
//! Every panic message carries the seed and crash point, and the [`crate::prop`]
//! runner prints the `PITREE_SIM_SEED` replay command on the way out.

use crate::fault::CrashPlan;
use crate::rng::SimRng;
use pitree::{CrashableStore, PiTree, PiTreeConfig};
use pitree_pagestore::fault::{is_injected, InjectorHandle};
use pitree_pagestore::{StoreError, StoreResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Workload + sweep parameters.
#[derive(Clone, Debug)]
pub struct CrashConfig {
    /// Number of workload operations per seed.
    pub ops: usize,
    /// Keys are drawn from `[0, key_domain)`.
    pub key_domain: u64,
    /// Cap on crash points swept per seed (evenly strided; the final
    /// boundary is always included).
    pub max_crash_points: usize,
    /// Buffer-pool frames (small pools force evictions → page-write faults).
    pub pool_frames: usize,
    /// Space-map capacity for the fresh store.
    pub max_pages: u64,
    /// Tree configuration (small nodes force splits → SMO crash points).
    pub tree_cfg: PiTreeConfig,
}

impl Default for CrashConfig {
    fn default() -> CrashConfig {
        CrashConfig {
            ops: 60,
            key_domain: 48,
            max_crash_points: 12,
            pool_frames: 64,
            max_pages: 10_000,
            tree_cfg: PiTreeConfig::small_nodes(4, 4),
        }
    }
}

/// What one seed's sweep covered.
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// The seed that generated the workload.
    pub seed: u64,
    /// Size of the crash-point space (armed durable-write boundaries).
    pub fault_points: u64,
    /// How many of those boundaries were actually crash-tested.
    pub crash_points_tested: usize,
    /// Committed keys at the end of the no-crash probe run.
    pub final_keys: usize,
}

#[derive(Clone, Copy, Debug)]
enum WorkOp {
    /// Transactional upsert (value derives from key + op index, so repeated
    /// upserts of a key really change its payload).
    Insert(u64),
    Delete(u64),
    /// Flush all dirty pages (page-write boundaries mid-workload).
    Flush,
    /// Fuzzy checkpoint (recovery must honor it after a crash).
    Checkpoint,
}

fn gen_script(rng: &mut SimRng, cfg: &CrashConfig) -> Vec<WorkOp> {
    (0..cfg.ops)
        .map(|_| {
            let k = rng.below(cfg.key_domain);
            match rng.below(100) {
                0..=54 => WorkOp::Insert(k),
                55..=84 => WorkOp::Delete(k),
                85..=94 => WorkOp::Flush,
                _ => WorkOp::Checkpoint,
            }
        })
        .collect()
}

fn key_bytes(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn val_bytes(k: u64, op_index: usize) -> Vec<u8> {
    format!("v{k}-{op_index}").into_bytes()
}

fn build(cfg: &CrashConfig, plan: &Arc<CrashPlan>) -> (CrashableStore, PiTree) {
    // The plan is disarmed during setup: mkfs and root creation are not part
    // of the crash-point space (crashes there recover to "no tree", which
    // the seed's log-prefix sweeps already cover).
    let cs = CrashableStore::create_with_injector(
        cfg.pool_frames,
        cfg.max_pages,
        Arc::clone(plan) as InjectorHandle,
    )
    .expect("store setup (disarmed) cannot crash");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg.tree_cfg)
        .expect("tree setup (disarmed) cannot crash");
    (cs, tree)
}

/// Run the script, maintaining the committed-data model. Stops at the first
/// error (for a firing plan: the injected crash).
fn run_script(
    cs: &CrashableStore,
    tree: &PiTree,
    script: &[WorkOp],
    model: &mut BTreeMap<u64, Vec<u8>>,
) -> StoreResult<()> {
    for (i, op) in script.iter().enumerate() {
        match *op {
            WorkOp::Insert(k) => {
                let v = val_bytes(k, i);
                let mut t = tree.begin();
                if let Err(e) = tree.insert(&mut t, &key_bytes(k), &v) {
                    // The txn may hold log/lock state it can no longer clean
                    // up on a dead machine; a real crash loses it anyway.
                    std::mem::forget(t);
                    return Err(e);
                }
                t.commit()?;
                model.insert(k, v);
            }
            WorkOp::Delete(k) => {
                let mut t = tree.begin();
                if let Err(e) = tree.delete(&mut t, &key_bytes(k)) {
                    std::mem::forget(t);
                    return Err(e);
                }
                t.commit()?;
                model.remove(&k);
            }
            WorkOp::Flush => cs.store.pool.flush_all()?,
            WorkOp::Checkpoint => {
                cs.store.txns.checkpoint()?;
            }
        }
    }
    Ok(())
}

/// Recover the crashed store and assert everything the kit promises.
fn verify_recovery(
    crashed: &CrashableStore,
    cfg: &CrashConfig,
    model: &BTreeMap<u64, Vec<u8>>,
    ctx: &str,
) {
    let (tree, _stats) = PiTree::recover(Arc::clone(&crashed.store), 1, cfg.tree_cfg)
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    let report = tree
        .validate()
        .unwrap_or_else(|e| panic!("{ctx}: validate: {e}"));
    assert!(
        report.is_well_formed(),
        "{ctx}: recovered tree ill-formed: {:?}",
        report.violations
    );
    assert_eq!(
        report.records,
        model.len(),
        "{ctx}: record count diverges from committed model"
    );
    for (k, v) in model {
        let got = tree
            .get_unlocked(&key_bytes(*k))
            .unwrap_or_else(|e| panic!("{ctx}: get {k}: {e}"));
        assert_eq!(got.as_ref(), Some(v), "{ctx}: key {k} lost or wrong value");
    }
    // Interrupted structure changes must be lazily completable, and
    // completion must preserve well-formedness and the data.
    tree.run_completions()
        .unwrap_or_else(|e| panic!("{ctx}: completions: {e}"));
    tree.run_completions()
        .unwrap_or_else(|e| panic!("{ctx}: completions: {e}"));
    let report = tree.validate().unwrap();
    assert!(
        report.is_well_formed(),
        "{ctx}: ill-formed after lazy completion: {:?}",
        report.violations
    );
    assert_eq!(
        report.records,
        model.len(),
        "{ctx}: records changed by completion"
    );
}

fn expect_injected(res: StoreResult<()>, ctx: &str) {
    match res {
        Err(ref e) if is_injected(e) => {}
        Err(e) => panic!("{ctx}: non-injected error {e}"),
        Ok(()) => panic!("{ctx}: workload completed although the plan should have fired"),
    }
}

/// Full crash–recover–verify sweep for one seed. Panics (with a replayable
/// message) on any violation; returns coverage numbers otherwise.
pub fn crash_recover_verify(seed: u64, cfg: &CrashConfig) -> CrashReport {
    let mut rng = SimRng::new(seed);
    let script = gen_script(&mut rng, cfg);

    // Probe: measure the crash-point space and sanity-check the no-crash run.
    let plan = CrashPlan::count_only();
    let (cs, tree) = build(cfg, &plan);
    plan.arm();
    let mut probe_model = BTreeMap::new();
    run_script(&cs, &tree, &script, &mut probe_model)
        .unwrap_or_else(|e| panic!("seed {seed}: probe run failed: {e}"));
    // Capture the count *before* validation: reads can evict dirty pages and
    // cross extra (uninteresting) boundaries.
    let fault_points = plan.hits();
    assert!(
        fault_points > 0,
        "seed {seed}: workload crossed no durable-write boundary"
    );
    let report = tree.validate().unwrap();
    assert!(
        report.is_well_formed(),
        "seed {seed}: probe end state: {:?}",
        report.violations
    );
    assert_eq!(
        report.records,
        probe_model.len(),
        "seed {seed}: probe model diverges"
    );
    drop(tree);

    // Sweep: evenly strided boundaries, always including the first and last.
    let stride = (fault_points as usize / cfg.max_crash_points).max(1);
    let mut points: Vec<u64> = (1..=fault_points).step_by(stride).collect();
    if points.last() != Some(&fault_points) {
        points.push(fault_points);
    }

    for &n in &points {
        let plan = CrashPlan::fire_at(n);
        let (cs, tree) = build(cfg, &plan);
        plan.arm();
        let mut model = BTreeMap::new();
        let res = run_script(&cs, &tree, &script, &mut model);
        let site = plan.fired_site().unwrap_or_else(|| "?".into());
        let ctx = format!("seed {seed} crash-point {n}/{fault_points} ({site})");
        expect_injected(res, &ctx);
        assert!(plan.fired(), "{ctx}: plan did not fire");
        drop(tree);
        // The crash: volatile state is discarded, the durable snapshot is
        // injector-free so recovery runs unimpeded.
        let crashed = cs
            .crash()
            .unwrap_or_else(|e| panic!("{ctx}: snapshot: {e}"));
        verify_recovery(&crashed, cfg, &model, &ctx);
    }

    CrashReport {
        seed,
        fault_points,
        crash_points_tested: points.len(),
        final_keys: probe_model.len(),
    }
}

/// Convenience: assert that an error is an injected crash (re-exported for
/// tests that drive [`CrashPlan`] by hand).
pub fn assert_injected(err: &StoreError) {
    assert!(is_injected(err), "expected injected crash, got: {err}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_seed_sweep_passes() {
        let cfg = CrashConfig {
            ops: 30,
            max_crash_points: 6,
            ..CrashConfig::default()
        };
        let report = crash_recover_verify(0xDEAD_BEEF, &cfg);
        assert!(report.fault_points > 0);
        assert!(
            report.crash_points_tested >= 2,
            "first and last boundary at minimum"
        );
    }

    #[test]
    fn scripts_are_seed_deterministic() {
        let cfg = CrashConfig::default();
        let a = gen_script(&mut SimRng::new(5), &cfg);
        let b = gen_script(&mut SimRng::new(5), &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
