//! Miniature property-test runner with a fixed, replayable seed corpus.
//!
//! Replaces the external `proptest` dependency. Differences are deliberate:
//! no shrinking (the Π-tree's interesting failures are schedule/crash-point
//! dependent, and a shrunk input with a different seed explores a different
//! schedule), and a **fixed** corpus — the seeds for a property are derived
//! from its name, so every CI run and every machine tests the same cases.
//!
//! Environment knobs:
//! * `PITREE_SIM_SEED=<seed>` — run exactly one case with that seed
//!   (decimal or `0x…` hex). This is how a printed failure is replayed.
//! * `PITREE_SIM_CASES=<n>` — override the case count (e.g. a nightly soak).

use crate::rng::{splitmix64, SimRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 32;

/// FNV-1a over the property name: a stable 64-bit corpus base.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The seed of case `i` of property `name`.
pub fn case_seed(name: &str, i: usize) -> u64 {
    let mut x = fnv1a(name).wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut x)
}

fn parse_seed(s: &str) -> u64 {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).expect("PITREE_SIM_SEED: bad hex seed")
    } else {
        s.parse().expect("PITREE_SIM_SEED: bad seed")
    }
}

/// Run `f` over the default-size corpus for `name`. See [`run_cases`].
pub fn run(name: &str, f: impl Fn(&mut SimRng)) {
    run_cases(name, DEFAULT_CASES, f);
}

/// Run `f` over `cases` seeds derived from `name`. On panic, prints the
/// failing seed and the replay command, then re-raises the panic so the
/// test still fails normally.
pub fn run_cases(name: &str, cases: usize, f: impl Fn(&mut SimRng)) {
    // pitree-lint: allow(determinism) PITREE_SIM_SEED is the explicit replay knob; runs are seed-pure when unset
    if let Ok(s) = std::env::var("PITREE_SIM_SEED") {
        let seed = parse_seed(&s);
        eprintln!("[pitree-sim] '{name}': replaying single seed {seed} (0x{seed:016x})");
        f(&mut SimRng::new(seed));
        return;
    }
    // pitree-lint: allow(determinism) PITREE_SIM_CASES is the explicit corpus-size knob; runs are seed-pure when unset
    let cases = match std::env::var("PITREE_SIM_CASES") {
        Ok(n) => n.trim().parse().expect("PITREE_SIM_CASES: bad count"),
        Err(_) => cases,
    };
    for i in 0..cases {
        let seed = case_seed(name, i);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut SimRng::new(seed))));
        if let Err(payload) = outcome {
            eprintln!(
                "[pitree-sim] property '{name}' FAILED on case {i}/{cases}, seed {seed} \
                 (0x{seed:016x}); replay with PITREE_SIM_SEED={seed}"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_stable() {
        // These exact seeds are part of the kit's contract: the corpus for a
        // property never changes between runs or machines.
        assert_eq!(case_seed("demo", 0), case_seed("demo", 0));
        assert_ne!(case_seed("demo", 0), case_seed("demo", 1));
        assert_ne!(case_seed("demo", 0), case_seed("other", 0));
    }

    #[test]
    fn runner_visits_every_case() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        run_cases("count-me", 10, |_rng| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        // PITREE_SIM_SEED / PITREE_SIM_CASES may legitimately alter the
        // count when set by a replaying developer; only assert the default.
        // pitree-lint: allow(determinism) reads the replay knobs only to skip a count assertion during manual replays
        if std::env::var("PITREE_SIM_SEED").is_err() && std::env::var("PITREE_SIM_CASES").is_err() {
            assert_eq!(n.load(Ordering::Relaxed), 10);
        }
    }

    #[test]
    fn failures_propagate() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always-fails", 3, |_rng| panic!("boom"));
        }));
        assert!(r.is_err());
    }
}
