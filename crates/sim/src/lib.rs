#![warn(missing_docs)]
//! # pitree-sim — deterministic simulation kit for the Π-tree workspace
//!
//! A FoundationDB-style simulation harness: every test is a pure function of
//! a 64-bit seed, so any failure is replayable bit-for-bit. Four pieces:
//!
//! * [`rng::SimRng`] — an in-repo seeded PRNG (SplitMix64-seeded
//!   xoshiro256**), replacing the external `rand` crate everywhere in the
//!   workspace. No external dependencies, stable across platforms.
//! * [`prop`] — a miniature property-test runner with a fixed seed corpus
//!   derived from the property name. Failing cases print their seed and are
//!   replayable with `PITREE_SIM_SEED=<seed>`; `PITREE_SIM_CASES=<n>` scales
//!   the corpus.
//! * [`fault::CrashPlan`] — a [`pitree_pagestore::FaultInjector`] that fires
//!   a simulated crash at the *n*-th durable-write boundary (page write or
//!   log append). After firing, every subsequent durable write also fails:
//!   the machine is dead, the durable image is frozen.
//! * [`schedule`] — a deterministic commit-schedule rig for the
//!   group-commit WAL: scripted committer-arrival schedules executed behind
//!   a held linger window, so group formation reproduces byte-for-byte
//!   under a fixed seed.
//! * [`crash`] and [`mod@shake`] — the two closed loops built from those parts:
//!   a crash–recover–verify sweep that kills the system at every injected
//!   boundary of a seeded workload and checks recovery against a `BTreeMap`
//!   reference model, and a seeded multi-thread schedule shaker for
//!   concurrent insert/delete/search + structure-change interleavings.
//!
//! The crate sits *above* the system crates (pagestore, wal, txnlock, core)
//! as a dev-dependency of each — the `FaultInjector` trait lives down in
//! `pitree-pagestore` so the substrate can consult it without depending on
//! the kit.

pub mod crash;
pub mod fault;
pub mod prop;
pub mod rng;
pub mod schedule;
pub mod shake;

pub use crash::{crash_recover_verify, CrashConfig, CrashReport};
pub use fault::CrashPlan;
pub use rng::SimRng;
pub use schedule::{gen_schedule, run_schedule, CountingStore, ScheduleOutcome};
pub use shake::{shake, ShakeConfig, ShakeReport};
