//! Seeded, dependency-free PRNG: xoshiro256** state-seeded with SplitMix64.
//!
//! This is the workspace's only source of randomness. It is deterministic
//! across platforms and rust versions (pure integer arithmetic), so a seed
//! printed by a failing test reproduces the exact same byte stream anywhere.
//! Not cryptographic — it is a simulation/test RNG.

/// One step of SplitMix64 (Steele/Lea/Flood): used to expand a 64-bit seed
/// into xoshiro's 256-bit state, and to derive per-case seeds in [`crate::prop`].
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** (Blackman/Vigna). 256 bits of state, period 2^256 − 1.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Build from a 64-bit seed via SplitMix64 (the seeding procedure the
    /// xoshiro authors recommend — it guarantees a non-zero state).
    pub fn new(seed: u64) -> SimRng {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut x);
        }
        SimRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. Unbiased (rejection sampling). Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        let zone = (u64::MAX / n) * n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[range.start, range.end)`.
    pub fn range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "SimRng::range on empty range");
        range.start + self.below(range.end - range.start)
    }

    /// Uniform in `[range.start, range.end)` for usize indices.
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.range(range.start as u64..range.end as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 high bits → uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// An independent child RNG (e.g. one per simulated thread). The child
    /// stream is decorrelated from the parent's subsequent output.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Published SplitMix64 test vector for seed 1234567.
        let mut x = 1234567u64;
        assert_eq!(splitmix64(&mut x), 6457827717110365317);
        assert_eq!(splitmix64(&mut x), 3203168211198807973);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, sorted, "seed 3 must actually permute");
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = SimRng::new(11);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
