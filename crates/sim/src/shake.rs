//! The schedule shaker: seeded concurrent workloads that provoke
//! insert/delete/search + structure-change interleavings, checked against
//! per-thread reference models.
//!
//! True deterministic thread scheduling needs a virtualized scheduler; this
//! kit takes the pragmatic FoundationDB-adjacent position: all *inputs* are
//! seed-derived (per-thread RNG forks, op sequences, yield jitter), so each
//! seed explores a reproducible workload even though the OS interleaving
//! varies — and every seed adds fresh interleavings ("shaking").
//!
//! Correctness is checked without cross-thread coordination by key
//! ownership: thread `t` only *writes* keys `k` with `k % threads == t`, so
//! its private `BTreeMap` model is exact for those keys at all times — reads
//! and scans of its own keys are asserted exactly, mid-flight, while other
//! threads drive splits and postings through the same pages. Reads of
//! foreign keys and range scans exercise the paper's searcher guarantees
//! (§5.1: searches run through intermediate states via side pointers):
//! scans must return strictly sorted keys and must contain every own
//! committed key strictly inside the window.

use crate::rng::SimRng;
use pitree::{CrashableStore, PiTree, PiTreeConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shaker parameters.
#[derive(Clone, Debug)]
pub struct ShakeConfig {
    /// Worker thread count (also the key-ownership modulus).
    pub threads: usize,
    /// Operations each thread performs.
    pub ops_per_thread: usize,
    /// Keys are drawn from `[0, key_domain)`.
    pub key_domain: u64,
    /// Buffer-pool frames.
    pub pool_frames: usize,
    /// Space-map capacity.
    pub max_pages: u64,
    /// Tree configuration (small nodes → frequent SMOs under contention).
    pub tree_cfg: PiTreeConfig,
}

impl Default for ShakeConfig {
    fn default() -> ShakeConfig {
        ShakeConfig {
            threads: 4,
            ops_per_thread: 100,
            key_domain: 64,
            pool_frames: 256,
            max_pages: 50_000,
            tree_cfg: PiTreeConfig::small_nodes(4, 4),
        }
    }
}

/// What one shake covered.
#[derive(Clone, Debug)]
pub struct ShakeReport {
    /// The driving seed.
    pub seed: u64,
    /// Records in the final (validated) tree.
    pub records: usize,
    /// Total operations executed across threads.
    pub ops: usize,
    /// Index-term postings scheduled during the run — evidence that the
    /// schedule actually interleaved structure changes.
    pub postings_scheduled: u64,
}

fn key_bytes(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

/// A key this thread owns (writes are partitioned by `k % threads == tid`).
fn own_key(rng: &mut SimRng, cfg: &ShakeConfig, tid: usize) -> u64 {
    let slots = cfg.key_domain / cfg.threads as u64;
    rng.below(slots.max(1)) * cfg.threads as u64 + tid as u64
}

fn assert_scan_consistent(
    scan: &[(Vec<u8>, Vec<u8>)],
    model: &BTreeMap<u64, Vec<u8>>,
    lo: u64,
    hi: u64,
    ctx: &str,
) {
    for w in scan.windows(2) {
        assert!(w[0].0 < w[1].0, "{ctx}: scan keys not strictly sorted");
    }
    // Own committed keys strictly inside the window must be visible with
    // their exact values, no matter what SMOs are in flight.
    if lo == hi {
        return;
    }
    for (k, v) in model.range((lo + 1)..hi) {
        let kb = key_bytes(*k);
        let found = scan.iter().find(|(sk, _)| *sk == kb);
        match found {
            Some((_, sv)) => assert_eq!(sv, v, "{ctx}: key {k} has wrong value in scan"),
            None => panic!("{ctx}: own committed key {k} missing from scan [{lo}, {hi}]"),
        }
    }
}

/// Run one seeded shake. Panics (with seed + thread + op context) on any
/// model divergence; returns coverage numbers otherwise.
pub fn shake(seed: u64, cfg: &ShakeConfig) -> ShakeReport {
    assert!(cfg.threads >= 1 && cfg.key_domain >= cfg.threads as u64);
    let cs = CrashableStore::create(cfg.pool_frames, cfg.max_pages).expect("store");
    let tree = PiTree::create(Arc::clone(&cs.store), 1, cfg.tree_cfg).expect("tree");

    let mut root = SimRng::new(seed);
    let forks: Vec<SimRng> = (0..cfg.threads).map(|_| root.fork()).collect();

    let models: Vec<BTreeMap<u64, Vec<u8>>> = std::thread::scope(|s| {
        let tree = &tree;
        let handles: Vec<_> = forks
            .into_iter()
            .enumerate()
            .map(|(tid, mut rng)| {
                s.spawn(move || {
                    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
                    for i in 0..cfg.ops_per_thread {
                        let ctx = format!("seed {seed} thread {tid} op {i}");
                        // Seeded jitter shakes the interleaving.
                        if rng.chance(0.25) {
                            for _ in 0..rng.below(4) {
                                std::thread::yield_now();
                            }
                        }
                        match rng.below(100) {
                            0..=39 => {
                                let k = own_key(&mut rng, cfg, tid);
                                let v = format!("t{tid}-{i}").into_bytes();
                                let mut t = tree.begin();
                                tree.insert(&mut t, &key_bytes(k), &v)
                                    .unwrap_or_else(|e| panic!("{ctx}: insert {k}: {e}"));
                                t.commit().unwrap_or_else(|e| panic!("{ctx}: commit: {e}"));
                                model.insert(k, v);
                            }
                            40..=59 => {
                                let k = own_key(&mut rng, cfg, tid);
                                let mut t = tree.begin();
                                let existed = tree
                                    .delete(&mut t, &key_bytes(k))
                                    .unwrap_or_else(|e| panic!("{ctx}: delete {k}: {e}"));
                                t.commit().unwrap_or_else(|e| panic!("{ctx}: commit: {e}"));
                                let modeled = model.remove(&k).is_some();
                                assert_eq!(
                                    existed, modeled,
                                    "{ctx}: delete {k} disagreed with model"
                                );
                            }
                            60..=79 => {
                                // Exact read of an owned key: no other thread
                                // writes it, so the model answer is the truth.
                                let k = own_key(&mut rng, cfg, tid);
                                let got = tree
                                    .get_unlocked(&key_bytes(k))
                                    .unwrap_or_else(|e| panic!("{ctx}: get {k}: {e}"));
                                assert_eq!(
                                    got,
                                    model.get(&k).cloned(),
                                    "{ctx}: read of own key {k} diverged from model"
                                );
                            }
                            80..=89 => {
                                // Foreign read: value races with its owner, so
                                // only the traversal itself is under test.
                                let k = rng.below(cfg.key_domain);
                                tree.get_unlocked(&key_bytes(k))
                                    .unwrap_or_else(|e| panic!("{ctx}: foreign get {k}: {e}"));
                            }
                            _ => {
                                let a = rng.below(cfg.key_domain);
                                let b = rng.below(cfg.key_domain);
                                let (lo, hi) = (a.min(b), a.max(b));
                                let scan = tree
                                    .scan(&key_bytes(lo), &key_bytes(hi))
                                    .unwrap_or_else(|e| panic!("{ctx}: scan: {e}"));
                                assert_scan_consistent(&scan, &model, lo, hi, &ctx);
                            }
                        }
                    }
                    model
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shaker thread panicked"))
            .collect()
    });

    // Quiesce: finish any pending postings/consolidations, then check the
    // merged model (ownership makes the per-thread maps disjoint).
    for _ in 0..4 {
        tree.run_completions().expect("completions");
    }
    let report = tree.validate().expect("validate");
    assert!(
        report.is_well_formed(),
        "seed {seed}: final tree ill-formed: {:?}",
        report.violations
    );
    let mut merged: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for m in models {
        merged.extend(m);
    }
    assert_eq!(
        report.records,
        merged.len(),
        "seed {seed}: final record count vs merged model"
    );
    for (k, v) in &merged {
        let got = tree.get_unlocked(&key_bytes(*k)).expect("final get");
        assert_eq!(
            got.as_ref(),
            Some(v),
            "seed {seed}: final state lost key {k}"
        );
    }
    ShakeReport {
        seed,
        records: merged.len(),
        ops: cfg.threads * cfg.ops_per_thread,
        postings_scheduled: tree.stats().postings_scheduled.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_seed_shake_passes() {
        let cfg = ShakeConfig {
            ops_per_thread: 60,
            ..ShakeConfig::default()
        };
        let report = shake(0xC0FFEE, &cfg);
        assert_eq!(report.ops, cfg.threads * cfg.ops_per_thread);
        assert!(
            report.postings_scheduled > 0,
            "the schedule must provoke SMOs"
        );
    }

    #[test]
    fn single_thread_shake_matches_model_exactly() {
        let cfg = ShakeConfig {
            threads: 1,
            ops_per_thread: 150,
            ..ShakeConfig::default()
        };
        let report = shake(77, &cfg);
        assert!(report.records > 0);
    }
}
