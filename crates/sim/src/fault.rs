//! [`CrashPlan`]: the kit's [`FaultInjector`] — count durable-write
//! boundaries, or kill the machine at exactly the *n*-th one.
//!
//! A "boundary" is any place the substrate consults the injector before a
//! durable write: `MemDisk::write_page` and `MemLogStore::append`. The plan
//! is used in two modes:
//!
//! 1. **Probe** ([`CrashPlan::count_only`]): run the workload once, count
//!    how many boundaries it crosses. That count is the crash-point space.
//! 2. **Fire** ([`CrashPlan::fire_at`]): run the identical workload again;
//!    at boundary `n` the write fails with
//!    [`pitree_pagestore::StoreError::InjectedCrash`] — and *every later*
//!    boundary fails too. A crashed machine does not come back; the durable
//!    image is frozen at exactly what had been written before the crash.
//!
//! Plans start **disarmed** so that store/tree setup (mkfs, root creation)
//! is not part of the crash-point space — call [`CrashPlan::arm`] once the
//! system under test is assembled.

use pitree_pagestore::fault::{injected_crash, FaultInjector, FaultSite};
use pitree_pagestore::sync::Mutex;
use pitree_pagestore::StoreResult;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A crash-point counter / trigger. See module docs.
pub struct CrashPlan {
    armed: AtomicBool,
    hits: AtomicU64,
    /// 1-based boundary index to fire at; 0 = never fire (count only).
    fire_at: u64,
    fired: AtomicBool,
    fired_site: Mutex<Option<String>>,
}

impl std::fmt::Debug for CrashPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashPlan").finish_non_exhaustive()
    }
}

impl CrashPlan {
    fn build(fire_at: u64) -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            armed: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            fire_at,
            fired: AtomicBool::new(false),
            fired_site: Mutex::new(None),
        })
    }

    /// A plan that never fires — used for the probe run that measures the
    /// crash-point space of a workload.
    pub fn count_only() -> Arc<CrashPlan> {
        CrashPlan::build(0)
    }

    /// A plan that fires at the `n`-th armed boundary (1-based) and keeps
    /// failing every boundary after it.
    pub fn fire_at(n: u64) -> Arc<CrashPlan> {
        assert!(n > 0, "crash points are 1-based");
        CrashPlan::build(n)
    }

    /// Start counting (and, for a firing plan, start the fuse). Boundaries
    /// crossed before arming are ignored entirely.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Boundaries counted since [`CrashPlan::arm`].
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Whether the crash has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Human-readable description of the boundary the crash fired at.
    pub fn fired_site(&self) -> Option<String> {
        self.fired_site.lock().clone()
    }
}

impl FaultInjector for CrashPlan {
    fn check(&self, site: FaultSite) -> StoreResult<()> {
        if self.fired.load(Ordering::SeqCst) {
            // The machine is dead: all durable writes fail from here on.
            return Err(injected_crash(site));
        }
        if !self.armed.load(Ordering::SeqCst) {
            return Ok(());
        }
        let n = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fire_at != 0 && n == self.fire_at {
            self.fired.store(true, Ordering::SeqCst);
            *self.fired_site.lock() = Some(site.describe());
            return Err(injected_crash(site));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitree_pagestore::fault::is_injected;
    use pitree_pagestore::PageId;

    #[test]
    fn disarmed_plan_counts_nothing() {
        let p = CrashPlan::fire_at(1);
        assert!(p.check(FaultSite::PageWrite(PageId(3))).is_ok());
        assert_eq!(p.hits(), 0);
        assert!(!p.fired());
    }

    #[test]
    fn fires_at_exactly_n_then_stays_dead() {
        let p = CrashPlan::fire_at(3);
        p.arm();
        assert!(p.check(FaultSite::PageWrite(PageId(1))).is_ok());
        assert!(p.check(FaultSite::LogAppend { bytes: 10 }).is_ok());
        let err = p.check(FaultSite::PageWrite(PageId(2))).unwrap_err();
        assert!(is_injected(&err));
        assert!(p.fired());
        assert!(p.fired_site().unwrap().contains("page"));
        // Machine dead: later writes fail and are not counted.
        assert!(p.check(FaultSite::LogAppend { bytes: 1 }).is_err());
        assert_eq!(p.hits(), 3);
    }

    #[test]
    fn count_only_never_fires() {
        let p = CrashPlan::count_only();
        p.arm();
        for i in 0..100 {
            assert!(p.check(FaultSite::PageWrite(PageId(i))).is_ok());
        }
        assert_eq!(p.hits(), 100);
        assert!(!p.fired());
    }
}
